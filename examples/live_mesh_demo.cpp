// Live multi-node mesh demo: the forensics workload (paper §5.1) on an
// in-process cluster of N node runtimes, with the §4.1.3 distributed
// cache, cross-node work stealing and master-side result aggregation.
//
// Prints the per-tag traffic table (same net::Tag taxonomy as the
// simulated fabric, so rows are comparable with cluster_sim_demo), the
// mediator-directory hit rate, and per-node execution detail, then
// verifies the mesh result multiset against a single-node run.
//
//   $ ./live_mesh_demo [--nodes 4] [--cameras 4] [--images 8]
//                      [--cache-shards 0]   (0 = auto: min(16, hw threads))
//                      [--prefetch 0]       (look-ahead tiles per device)
//                      [--kill-node N]      (chaos: kill node N mid-run;
//                                            N >= 1, or 0 == --kill-master)
//                      [--kill-master]      (chaos: kill node 0 mid-run; the
//                                            lowest live node adopts the
//                                            master role, DESIGN.md §14)
//                      [--kill-after T]     (seconds until the kill, 0.02;
//                                            must land inside the run — a
//                                            mid-run kill stretches the run
//                                            until recovery completes)
//                      [--kill-all-after T] (chaos: kill EVERY node, staggered
//                                            from T; pair with
//                                            --checkpoint-dir, then rerun with
//                                            --resume to finish the job)
//                      [--checkpoint-dir D] (crash-safe run journal under D,
//                                            DESIGN.md §14)
//                      [--resume]           (replay the journal first; only
//                                            the remaining frontier runs)
//                      [--corrupt-rate R]   (chaos: deliver this fraction of
//                                            frames corrupted first — the CRC
//                                            check drops them)
//                      [--slow-node N]      (grey failure: node N stays alive
//                                            but runs --slow-factor x slower;
//                                            the health machine marks it
//                                            degraded and speculates its
//                                            backlog, DESIGN.md §15)
//                      [--slow-factor F]    (kernel stretch for --slow-node,
//                                            10.0)
//                      [--no-speculation]   (keep the binary alive/dead model:
//                                            no health verdicts, no straggler
//                                            speculation — baseline for the
//                                            --slow-node comparison)
//                      [--flaky-rate R]     (grey failure: this fraction of
//                                            object-store reads throws a
//                                            transient error; the load
//                                            pipeline retries with backoff)
//                      [--live-stats]       (stream per-node cluster
//                                            snapshots mid-run, DESIGN §13)
//                      [--snapshot-interval T]  (seconds, 0.2)
//                      [--trace-out F]      (Chrome trace_event JSON of all
//                                            nodes on one aligned timeline;
//                                            load in Perfetto/about:tracing)
//                      [--summary-out F]    (rocket.run_summary/1 JSON)
//                      [--trace-sample N]   (causal tracing, DESIGN.md §16:
//                                            every Nth tile/item/steal gets a
//                                            full cross-node span DAG; with
//                                            --trace-out the spans render as
//                                            Perfetto flow arrows; 1 = all)
//                      [--critical-path]    (print the critical-path
//                                            attribution table and the
//                                            slowest sampled tiles' causal
//                                            chains; defaults --trace-sample
//                                            to 1 when unset)
//                      [--metrics-out F]    (Prometheus text exposition 0.0.4
//                                            of the cluster-merged metrics
//                                            registry)

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/json_writer.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "apps/forensics.hpp"
#include "rocket/rocket.hpp"
#include "telemetry/run_summary.hpp"
#include "telemetry/trace.hpp"

namespace {

// Mid-run snapshot printer (--live-stats): one block per ClusterSnapshot,
// rewritten in place on a tty (cursor-up), appended otherwise. Runs on the
// master's service thread, so printing needs no extra serialisation.
class LiveStatsPrinter {
 public:
  void print(const rocket::telemetry::ClusterSnapshot& snap) {
    tty_ = isatty(fileno(stdout)) != 0;
    if (tty_ && lines_ > 0) std::printf("\x1b[%zuA", lines_);
    lines_ = 0;
    emit("[snapshot %llu @ %.1fs] %llu pairs done, %.0f pairs/s cluster-wide",
         static_cast<unsigned long long>(snap.seq), snap.uptime_seconds,
         static_cast<unsigned long long>(snap.total_pairs),
         snap.cluster_pairs_per_sec);
    for (const auto& node : snap.nodes) {
      // Health column: A(live) / S(uspected) / D(egraded) / X (dead),
      // DESIGN.md §15.
      emit("  node %u %-5s %c %8.0f pairs/s  busy %5.1f%%  cache hit %5.1f%%  "
           "in-flight %lld  queue %lld  steals %llu",
           node.node, node.alive ? "alive" : "DEAD",
           rocket::telemetry::health_letter(node.health), node.pairs_per_sec,
           100.0 * node.busy_fraction, 100.0 * node.cache_hit_rate,
           static_cast<long long>(node.stats.in_flight_tiles),
           static_cast<long long>(node.stats.result_queue_depth),
           static_cast<unsigned long long>(node.stats.remote_steals));
    }
    std::fflush(stdout);
  }

 private:
  template <typename... Args>
  void emit(const char* fmt, Args... args) {
    if (tty_) std::printf("\x1b[K");  // clear stale tail when rewriting
    std::printf(fmt, args...);
    std::printf("\n");
    ++lines_;
  }

  bool tty_ = false;
  std::size_t lines_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const rocket::Options opts(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  rocket::apps::ForensicsConfig fc;
  fc.cameras = static_cast<std::uint32_t>(opts.get_int("cameras", 4));
  fc.images_per_camera = static_cast<std::uint32_t>(opts.get_int("images", 8));
  fc.width = 128;
  fc.height = 96;
  fc.seed = static_cast<std::uint64_t>(opts.get_int("seed", 17));

  std::printf("generating %u photos from %u cameras...\n",
              fc.cameras * fc.images_per_camera, fc.cameras);
  rocket::storage::MemoryStore store;
  rocket::apps::ForensicsDataset dataset(fc, store);
  rocket::apps::ForensicsApplication app(dataset);

  using ResultMap = std::map<std::pair<rocket::ItemId, rocket::ItemId>, double>;

  // Single-node reference over the same store.
  rocket::Rocket::Config single_cfg;
  single_cfg.host_cache_capacity = rocket::megabytes(64);
  single_cfg.cpu_threads = 2;
  rocket::Rocket single(single_cfg);
  ResultMap reference;
  std::mutex mutex;
  const auto single_report =
      single.run_all_pairs(app, store, [&](const rocket::PairResult& r) {
        std::scoped_lock lock(mutex);
        reference[{r.left, r.right}] = r.score;
      });

  // The live mesh: same workload, N nodes in this process.
  rocket::LiveCluster::Config mesh_cfg;
  mesh_cfg.num_nodes = nodes;
  mesh_cfg.node.host_cache_capacity = rocket::megabytes(64);
  mesh_cfg.node.cpu_threads = 2;
  mesh_cfg.node.cache_shards =
      static_cast<std::uint32_t>(opts.get_int("cache-shards", 0));
  mesh_cfg.node.prefetch_tiles =
      static_cast<std::uint32_t>(opts.get_int("prefetch", 0));

  // Telemetry surfaces (DESIGN.md §13).
  const bool live_stats = opts.get_bool("live-stats", false);
  const std::string trace_out = opts.get("trace-out", "");
  const std::string summary_out = opts.get("summary-out", "");
  LiveStatsPrinter stats_printer;
  if (live_stats) {
    mesh_cfg.snapshot_interval_s = opts.get_double("snapshot-interval", 0.2);
    mesh_cfg.on_cluster_snapshot =
        [&stats_printer](const rocket::telemetry::ClusterSnapshot& snap) {
          stats_printer.print(snap);
        };
  }
  if (!trace_out.empty()) mesh_cfg.node.trace = true;

  // Causal tracing (DESIGN.md §16). --critical-path without an explicit
  // sampling rate traces everything — an attribution table over zero
  // spans would be 100% idle and useless.
  const bool print_critical_path = opts.get_bool("critical-path", false);
  const std::string metrics_out = opts.get("metrics-out", "");
  mesh_cfg.trace_sample_n =
      static_cast<std::uint32_t>(opts.get_int("trace-sample", 0));
  if (print_critical_path && mesh_cfg.trace_sample_n == 0) {
    mesh_cfg.trace_sample_n = 1;
  }
  if (mesh_cfg.trace_sample_n > 0) {
    std::printf("tracing: every %s tile gets a causal span DAG\n",
                mesh_cfg.trace_sample_n == 1
                    ? "single"
                    : (std::to_string(mesh_cfg.trace_sample_n) + "th")
                          .c_str());
  }

  // Durability (DESIGN.md §14): a write-ahead journal under
  // --checkpoint-dir; --resume replays it and runs only the remainder.
  const std::string checkpoint_dir = opts.get("checkpoint-dir", "");
  std::unique_ptr<rocket::storage::DirectoryStore> checkpoint_store;
  if (!checkpoint_dir.empty()) {
    checkpoint_store =
        std::make_unique<rocket::storage::DirectoryStore>(checkpoint_dir);
    mesh_cfg.checkpoint_store = checkpoint_store.get();
    mesh_cfg.resume = opts.get_bool("resume", false);
    std::printf("journal: %s/%s%s\n", checkpoint_dir.c_str(),
                mesh_cfg.checkpoint_name.c_str(),
                mesh_cfg.resume ? " (resuming)" : "");
  } else if (opts.get_bool("resume", false)) {
    std::printf("--resume needs --checkpoint-dir\n");
    return 1;
  }
  mesh_cfg.frame_corrupt_rate = opts.get_double("corrupt-rate", 0.0);

  // Grey failure (DESIGN.md §15): a straggler that stays alive but slow,
  // and/or an object store with transient read errors. The health machine
  // rides on the telemetry snapshot stream, so --slow-node turns it on.
  const auto slow_node = opts.get_int("slow-node", -1);
  const double slow_factor = opts.get_double("slow-factor", 10.0);
  const bool no_speculation = opts.get_bool("no-speculation", false);
  const double flaky_rate = opts.get_double("flaky-rate", 0.0);
  if (slow_node >= 0) {
    if (slow_node >= static_cast<std::int64_t>(nodes)) {
      std::printf("--slow-node must name a node (0..%u)\n", nodes - 1);
      return 1;
    }
    mesh_cfg.slow_node = static_cast<rocket::mesh::NodeId>(slow_node);
    mesh_cfg.slow_factor = slow_factor;
    mesh_cfg.slow_store_latency_us = 200;
    if (!no_speculation) {
      mesh_cfg.degraded_rate_fraction = 0.35;
      mesh_cfg.suspect_intervals = 2;
      // Aggressive drain: undelivered backlog coalesces into row runs, so
      // a straggler owes many small regions — peel a wide slice each
      // interval or the rescue trickles behind the blocked steal path.
      mesh_cfg.speculation_regions_per_interval = 8;
      if (mesh_cfg.snapshot_interval_s <= 0.0) {
        mesh_cfg.snapshot_interval_s = 0.02;  // health needs the rate stream
      }
    }
    std::printf("chaos: node %lld runs %.0fx slow (speculation %s)\n",
                static_cast<long long>(slow_node), slow_factor,
                no_speculation ? "OFF" : "on");
  }
  rocket::storage::ObjectStore* mesh_store = &store;
  std::unique_ptr<rocket::storage::FlakyStore> flaky_store;
  if (flaky_rate > 0.0) {
    rocket::storage::FlakyStore::Config flaky_cfg;
    flaky_cfg.error_rate = flaky_rate;
    flaky_cfg.spike_rate = flaky_rate;
    flaky_cfg.spike_us = 200;
    flaky_cfg.seed = fc.seed;
    flaky_store = std::make_unique<rocket::storage::FlakyStore>(store,
                                                                flaky_cfg);
    mesh_store = flaky_store.get();
    std::printf("chaos: object store injects transient errors at rate %.2f\n",
                flaky_rate);
  }

  // Chaos: kill nodes mid-run (DESIGN.md §12/§14). A worker kill is
  // re-granted by the master; a master kill triggers failover (the lowest
  // live node adopts the role); killing everyone ends the run early — the
  // journal then carries a --resume rerun to the exact result.
  auto kill_node = opts.get_int("kill-node", -1);
  if (opts.get_bool("kill-master", false)) kill_node = 0;
  const double kill_after = opts.get_double("kill-after", 0.02);
  const double kill_all_after = opts.get_double("kill-all-after", -1.0);
  const bool kill_all = kill_all_after >= 0.0;
  bool aggressive_clock = false;
  if (kill_node >= 0 && !kill_all) {
    if (kill_node >= static_cast<std::int64_t>(nodes)) {
      std::printf("--kill-node must name a node (0..%u)\n", nodes - 1);
      return 1;
    }
    rocket::mesh::Fault fault;
    fault.node = static_cast<rocket::mesh::NodeId>(kill_node);
    fault.after_seconds = kill_after;
    mesh_cfg.faults.faults.push_back(fault);
    aggressive_clock = true;
    std::printf("chaos: killing %s %lld after %.2fs\n",
                kill_node == 0 ? "master node" : "node",
                static_cast<long long>(kill_node), kill_after);
  }
  if (kill_all) {
    // Staggered whole-cluster death, master last so it journals the most.
    for (std::uint32_t id = 1; id < nodes; ++id) {
      rocket::mesh::Fault fault;
      fault.node = id;
      fault.after_seconds = kill_all_after + 0.03 * (id - 1);
      mesh_cfg.faults.faults.push_back(fault);
    }
    rocket::mesh::Fault master_fault;
    master_fault.node = 0;
    master_fault.after_seconds =
        kill_all_after + 0.03 * static_cast<double>(nodes);
    mesh_cfg.faults.faults.push_back(master_fault);
    aggressive_clock = true;
    std::printf("chaos: killing ALL %u nodes, staggered from %.2fs\n", nodes,
                kill_all_after);
  }
  if (aggressive_clock) {
    // An aggressive failover clock so the demo shows the recovery, not a
    // five-second detection wait.
    mesh_cfg.lease_timeout_s = 0.1;
    mesh_cfg.heartbeat_interval_s = 0.01;
  }
  rocket::LiveCluster mesh(mesh_cfg);
  ResultMap results;
  const auto report = mesh.run_all_pairs(
      app, *mesh_store, [&](const rocket::PairResult& r) {
        // With failover the delivering master can change mid-run, so the
        // callback hops service threads — serialise the map ourselves.
        std::scoped_lock lock(mutex);
        results[{r.left, r.right}] = r.score;
      });

  std::printf("\n%llu pairs on %u nodes in %.2fs (single node: %.2fs)\n",
              static_cast<unsigned long long>(report.pairs), nodes,
              report.wall_seconds, single_report.wall_seconds);

  rocket::TableWriter node_table("per-node execution");
  node_table.set_header({"node", "pairs", "loads", "peer_loads",
                         "remote_steals", "busy%", "stall_s",
                         "prefetch_hits"});
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    const auto& nr = report.nodes[i];
    // Transfer/compute overlap detail (§4.3): GPU busy share of the wall
    // clock, the load-stall remainder, and the tiles whose loads the
    // prefetch window fully hid behind kernels.
    double busy = 0.0, stall = 0.0;
    for (const double b : nr.device_busy_seconds) busy += b;
    for (const double s : nr.device_stall_seconds) stall += s;
    const double denominator =
        nr.wall_seconds * static_cast<double>(
                              std::max<std::size_t>(
                                  1, nr.device_busy_seconds.size()));
    const double busy_pct =
        denominator > 0.0 ? 100.0 * busy / denominator : 0.0;
    node_table.add_row({rocket::TableWriter::integer(static_cast<long long>(i)),
                        rocket::TableWriter::integer(static_cast<long long>(nr.pairs)),
                        rocket::TableWriter::integer(static_cast<long long>(nr.loads)),
                        rocket::TableWriter::integer(static_cast<long long>(nr.peer_loads)),
                        rocket::TableWriter::integer(
                            static_cast<long long>(nr.steal.remote_steals)),
                        rocket::TableWriter::num(busy_pct, 1),
                        rocket::TableWriter::num(stall, 3),
                        rocket::TableWriter::integer(
                            static_cast<long long>(nr.prefetch_hits))});
  }
  std::printf("\n%s\n", node_table.render().c_str());

  rocket::TableWriter traffic("network traffic by tag");
  traffic.set_header({"tag", "messages", "wire_bytes", "raw_bytes"});
  for (std::size_t t = 0;
       t < static_cast<std::size_t>(rocket::net::Tag::kCount); ++t) {
    const auto& per_tag = report.traffic.per_tag[t];
    if (per_tag.messages == 0) continue;
    traffic.add_row({rocket::net::tag_name(static_cast<rocket::net::Tag>(t)),
                     rocket::TableWriter::integer(
                         static_cast<long long>(per_tag.messages)),
                     rocket::TableWriter::integer(
                         static_cast<long long>(per_tag.bytes)),
                     rocket::TableWriter::integer(
                         static_cast<long long>(per_tag.raw_bytes))});
  }
  std::printf("%s\n", traffic.render().c_str());
  if (report.traffic.total_raw_bytes() > report.traffic.total_bytes()) {
    std::printf("compression: %llu raw bytes -> %llu on the wire (%.1f%% "
                "saved)\n",
                static_cast<unsigned long long>(
                    report.traffic.total_raw_bytes()),
                static_cast<unsigned long long>(report.traffic.total_bytes()),
                100.0 *
                    (1.0 - static_cast<double>(report.traffic.total_bytes()) /
                               static_cast<double>(
                                   report.traffic.total_raw_bytes())));
  }

  const auto& dir = report.directory;
  const double hit_rate =
      dir.requests > 0
          ? static_cast<double>(dir.chain_hits) /
                static_cast<double>(dir.requests)
          : 0.0;
  std::printf("directory: %llu requests, %llu chain hits (%.1f%% hit rate), "
              "%llu misses, %llu hops walked\n",
              static_cast<unsigned long long>(dir.requests),
              static_cast<unsigned long long>(dir.chain_hits),
              100.0 * hit_rate,
              static_cast<unsigned long long>(dir.chain_misses),
              static_cast<unsigned long long>(dir.hops));
  std::printf("loads: %llu from storage, %llu from peers "
              "(single node: %llu loads)\n",
              static_cast<unsigned long long>(report.loads),
              static_cast<unsigned long long>(report.peer_loads),
              static_cast<unsigned long long>(single_report.loads));
  std::printf("host caches: %llu hits, %llu fills, %llu evictions; "
              "lock-free fast-path pins (host+device): %llu\n",
              static_cast<unsigned long long>(report.host_cache.hits),
              static_cast<unsigned long long>(report.host_cache.fills),
              static_cast<unsigned long long>(report.host_cache.evictions),
              static_cast<unsigned long long>(report.cache_fast_hits));
  std::printf("overlap: %.3fs device load-stall across the cluster, "
              "%llu prefetch hits (prefetch window: %u tiles/device)\n",
              report.stall_seconds,
              static_cast<unsigned long long>(report.prefetch_hits),
              mesh_cfg.node.prefetch_tiles);
  if (report.node_deaths > 0) {
    std::printf("failover: %llu node death(s), %llu regions re-executed, "
                "%llu duplicate results dropped, %llu fetch retries\n",
                static_cast<unsigned long long>(report.node_deaths),
                static_cast<unsigned long long>(report.regions_reexecuted),
                static_cast<unsigned long long>(
                    report.duplicate_results_dropped),
                static_cast<unsigned long long>(report.peer_retries));
  }
  if (report.master_failovers > 0) {
    std::printf("failover: master role adopted %llu time(s) — the lowest "
                "live node completed the aggregation\n",
                static_cast<unsigned long long>(report.master_failovers));
  }
  if (report.nodes_degraded > 0 || report.nodes_recovered > 0 ||
      report.regions_speculated > 0) {
    std::printf("health: %llu degradation verdict(s), %llu recovery(ies), "
                "%llu steal draw(s) skipped stragglers\n",
                static_cast<unsigned long long>(report.nodes_degraded),
                static_cast<unsigned long long>(report.nodes_recovered),
                static_cast<unsigned long long>(
                    report.steals_avoided_degraded));
    std::printf("speculation: %llu region(s) of straggler backlog re-granted "
                "to healthy nodes (first result wins; %llu duplicate(s) "
                "dropped)\n",
                static_cast<unsigned long long>(report.regions_speculated),
                static_cast<unsigned long long>(
                    report.duplicate_results_dropped));
  }
  if (flaky_store != nullptr) {
    std::printf("flaky store: %llu transient error(s) injected, %llu latency "
                "spike(s); %llu load retry(ies), %llu load(s) failed for "
                "good\n",
                static_cast<unsigned long long>(
                    flaky_store->injected_errors()),
                static_cast<unsigned long long>(
                    flaky_store->injected_spikes()),
                static_cast<unsigned long long>(report.load_retries),
                static_cast<unsigned long long>(report.failed_loads));
  }
  if (report.corrupted_frames > 0) {
    std::printf("transport: %llu corrupted frame(s) injected; CRC checks "
                "dropped every one before delivery\n",
                static_cast<unsigned long long>(report.corrupted_frames));
  }
  if (report.checkpoint.enabled) {
    std::printf("journal: %llu record(s) appended, %llu replayed, %llu "
                "pair(s) recovered%s%s\n",
                static_cast<unsigned long long>(
                    report.checkpoint.records_appended),
                static_cast<unsigned long long>(
                    report.checkpoint.records_replayed),
                static_cast<unsigned long long>(
                    report.checkpoint.pairs_recovered),
                report.checkpoint.resumed ? " (resumed)" : "",
                report.checkpoint.torn_tail ? ", torn tail truncated" : "");
  }

  if (mesh_cfg.trace_sample_n > 0 && report.spans_aborted > 0) {
    std::printf("tracing: %llu span(s) closed forcibly at teardown "
                "(aborted flag set — expected after a kill)\n",
                static_cast<unsigned long long>(report.spans_aborted));
  }
  if (report.flight_dumps > 0) {
    std::printf("flight recorder: %llu black-box ring(s) dumped to %s as "
                "rocket.flightrec.node<i>\n",
                static_cast<unsigned long long>(report.flight_dumps),
                checkpoint_dir.c_str());
  }
  if (print_critical_path) {
    // Offline critical-path attribution (DESIGN.md §16): at each instant
    // the highest-priority phase active anywhere in the cluster wins, so
    // the percentages sum to 100 and "idle" is genuinely uncovered time.
    const auto& cp = report.critical_path;
    std::printf("\ncritical path: %zu sampled span(s) over a %.2fs window\n",
                cp.spans_analyzed, cp.window_seconds);
    rocket::TableWriter cp_table("critical-path attribution");
    cp_table.set_header({"phase", "seconds", "percent"});
    for (std::size_t i = 0; i < rocket::telemetry::kPathPhases; ++i) {
      const auto phase = static_cast<rocket::telemetry::PathPhase>(i);
      cp_table.add_row({rocket::telemetry::path_phase_name(phase),
                        rocket::TableWriter::num(cp.phases[i].seconds, 4),
                        rocket::TableWriter::num(cp.phases[i].percent, 1)});
    }
    std::printf("%s\n", cp_table.render().c_str());
    for (std::size_t k = 0; k < cp.slowest.size(); ++k) {
      const auto& tile = cp.slowest[k];
      std::printf("slow tile #%zu: trace %016llx on node %u, %.4fs\n",
                  k + 1,
                  static_cast<unsigned long long>(tile.trace_id), tile.node,
                  tile.seconds);
      for (const auto& span : tile.chain) {
        std::printf("    %-17s node %u  %.4fs -> %.4fs (%.4fs)%s\n",
                    rocket::telemetry::span_phase_name(span.phase),
                    span.node, span.start, span.end, span.end - span.start,
                    span.aborted ? "  [aborted]" : "");
      }
    }
  }
  if (!metrics_out.empty()) {
    // Prometheus text exposition 0.0.4 of the cluster-merged registry.
    if (rocket::JsonWriter::write_string_to_file(
            metrics_out, report.metrics.expose_text())) {
      std::printf("metrics: wrote %s (Prometheus text exposition)\n",
                  metrics_out.c_str());
    } else {
      std::printf("metrics: FAILED to write %s\n", metrics_out.c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    rocket::telemetry::TraceExporter exporter;
    for (std::size_t i = 0; i < report.nodes.size(); ++i) {
      exporter.add_node(static_cast<std::uint32_t>(i),
                        report.nodes[i].trace);
    }
    if (exporter.write_file(trace_out)) {
      std::printf("trace: wrote %s (load in Perfetto or about:tracing)\n",
                  trace_out.c_str());
    } else {
      std::printf("trace: FAILED to write %s\n", trace_out.c_str());
      return 1;
    }
  }
  if (!summary_out.empty()) {
    const auto summary = rocket::telemetry::RunSummary::from_cluster(
        "forensics", nodes, report);
    if (summary.write_file(summary_out)) {
      std::printf("summary: wrote %s (%s)\n", summary_out.c_str(),
                  rocket::telemetry::RunSummary::kSchema);
    } else {
      std::printf("summary: FAILED to write %s\n", summary_out.c_str());
      return 1;
    }
  }

  // Everything this run delivered must match the single-node reference;
  // a wrong or invented pair is a failure in every mode.
  std::size_t wrong = 0;
  for (const auto& [pair, score] : results) {
    const auto it = reference.find(pair);
    if (it == reference.end() || it->second != score) ++wrong;
  }
  if (wrong > 0) {
    std::printf("\nresult check vs single node: %zu wrong pair(s) — "
                "MISMATCH\n", wrong);
    return 1;
  }

  if (kill_all) {
    // The whole cluster died: the run is legitimately incomplete. What
    // was delivered is exact, and the journal holds it for --resume.
    std::printf("\nresult check vs single node: %zu/%zu pairs delivered "
                "before the cluster died, all exact; resume with "
                "--checkpoint-dir %s --resume\n",
                results.size(), reference.size(), checkpoint_dir.c_str());
    return 0;
  }

  // Complete modes (including --resume, where journal-recovered pairs
  // count toward the total without being re-delivered): the full
  // single-node multiset, exactly once.
  const std::uint64_t covered =
      report.checkpoint.pairs_recovered + results.size();
  const bool complete = covered == reference.size() &&
                        report.pairs == reference.size();
  std::printf("\nresult check vs single node: %llu/%zu pairs match "
              "(%llu recovered from the journal)%s\n",
              static_cast<unsigned long long>(covered), reference.size(),
              static_cast<unsigned long long>(
                  report.checkpoint.pairs_recovered),
              complete ? " (exact)" : " — MISMATCH");
  return complete ? 0 : 1;
}

// Quickstart: the smallest complete Rocket application.
//
// Items are little binary files holding feature vectors; the comparison is
// their cosine similarity. This shows the full Fig-3 interface — file
// mapping, parse, (no) pre-processing, compare, post-process — and how to
// launch the engine and read the report.
//
//   $ ./quickstart [--items 24] [--dims 256]

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/options.hpp"
#include "common/rng.hpp"
#include "rocket/rocket.hpp"

namespace {

using rocket::Bytes;
using rocket::ByteBuffer;

/// Feature-vector similarity as a Rocket application.
class CosineApp final : public rocket::Application {
 public:
  CosineApp(std::uint32_t items, std::uint32_t dims)
      : items_(items), dims_(dims) {}

  std::string name() const override { return "quickstart"; }
  std::uint32_t item_count() const override { return items_; }

  std::string file_name(rocket::ItemId item) const override {
    return "vector_" + std::to_string(item) + ".bin";
  }

  // CPU stage: raw little-endian floats → host representation (here 1:1).
  void parse(rocket::ItemId, const ByteBuffer& file,
             rocket::runtime::HostBuffer& out) const override {
    out = file;
  }

  // GPU stage: cosine similarity of the two cached vectors.
  double compare(rocket::ItemId, const rocket::gpu::DeviceBuffer& left,
                 rocket::ItemId,
                 const rocket::gpu::DeviceBuffer& right) const override {
    const auto* a = reinterpret_cast<const float*>(left.data());
    const auto* b = reinterpret_cast<const float*>(right.data());
    double dot = 0, na = 0, nb = 0;
    for (std::uint32_t i = 0; i < dims_; ++i) {
      dot += static_cast<double>(a[i]) * b[i];
      na += static_cast<double>(a[i]) * a[i];
      nb += static_cast<double>(b[i]) * b[i];
    }
    return dot / std::sqrt(na * nb);
  }

  // CPU stage: clamp tiny negatives introduced by float rounding.
  double postprocess(rocket::ItemId, rocket::ItemId,
                     double score) const override {
    return std::abs(score) < 1e-12 ? 0.0 : score;
  }

  Bytes slot_size() const override { return dims_ * sizeof(float); }

 private:
  std::uint32_t items_;
  std::uint32_t dims_;
};

}  // namespace

int main(int argc, char** argv) {
  const rocket::Options opts(argc, argv);
  const auto items = static_cast<std::uint32_t>(opts.get_int("items", 24));
  const auto dims = static_cast<std::uint32_t>(opts.get_int("dims", 256));

  // 1. Put the input files in an object store (normally a directory or a
  //    remote server; here generated in memory).
  rocket::storage::MemoryStore store;
  CosineApp app(items, dims);
  rocket::Rng rng(7);
  for (std::uint32_t i = 0; i < items; ++i) {
    std::vector<float> vec(dims);
    for (auto& v : vec) v = static_cast<float>(rng.normal());
    ByteBuffer bytes(dims * sizeof(float));
    std::memcpy(bytes.data(), vec.data(), bytes.size());
    store.put(app.file_name(i), std::move(bytes));
  }

  // 2. Configure the engine: one virtual GPU, a small host cache.
  rocket::Rocket::Config config;
  config.host_cache_capacity = rocket::megabytes(16);
  config.cpu_threads = 2;
  rocket::Rocket engine(config);

  // 3. Run all pairs; collect the best-matching pair.
  rocket::PairResult best{0, 0, -2.0};
  std::uint64_t count = 0;
  const auto report =
      engine.run_all_pairs(app, store, [&](const rocket::PairResult& r) {
        ++count;
        if (r.score > best.score) best = r;
      });

  std::printf("quickstart: %llu pairs over %u items\n",
              static_cast<unsigned long long>(count), items);
  std::printf("best match: (%u, %u) similarity %.4f\n", best.left, best.right,
              best.score);
  std::printf("loads=%llu  reuse factor R=%.2f  wall=%.3fs\n",
              static_cast<unsigned long long>(report.loads),
              report.reuse_factor, report.wall_seconds);
  std::printf("device cache: %llu hits, %llu fills, %llu evictions\n",
              static_cast<unsigned long long>(report.device_caches[0].hits),
              static_cast<unsigned long long>(report.device_caches[0].fills),
              static_cast<unsigned long long>(report.device_caches[0].evictions));
  return 0;
}

// Common-source identification demo (paper §5.1).
//
// Generates a synthetic photo collection from several virtual cameras,
// runs the all-pairs PRNU correlation through Rocket, and groups the
// images by camera using a similarity threshold — the forensics task the
// Netherlands Forensic Institute application performs.
//
//   $ ./forensics_demo [--cameras 4] [--images 6]

#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "apps/forensics.hpp"
#include "common/options.hpp"
#include "common/stats.hpp"
#include "rocket/rocket.hpp"

int main(int argc, char** argv) {
  const rocket::Options opts(argc, argv);
  rocket::apps::ForensicsConfig cfg;
  cfg.cameras = static_cast<std::uint32_t>(opts.get_int("cameras", 4));
  cfg.images_per_camera = static_cast<std::uint32_t>(opts.get_int("images", 6));
  cfg.width = 128;
  cfg.height = 96;
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 17));

  std::printf("generating %u photos from %u cameras...\n",
              cfg.cameras * cfg.images_per_camera, cfg.cameras);
  rocket::storage::MemoryStore store;
  rocket::apps::ForensicsDataset dataset(cfg, store);
  rocket::apps::ForensicsApplication app(dataset);

  rocket::Rocket::Config engine_cfg;
  engine_cfg.devices = {rocket::gpu::titanx_maxwell()};
  engine_cfg.host_cache_capacity = rocket::megabytes(64);
  engine_cfg.cpu_threads = 2;
  rocket::Rocket engine(engine_cfg);

  std::mutex mutex;
  std::vector<rocket::PairResult> results;
  rocket::OnlineStats same_camera, cross_camera;
  const auto report =
      engine.run_all_pairs(app, store, [&](const rocket::PairResult& r) {
        std::scoped_lock lock(mutex);
        results.push_back(r);
        if (dataset.camera_of(r.left) == dataset.camera_of(r.right)) {
          same_camera.add(r.score);
        } else {
          cross_camera.add(r.score);
        }
      });

  std::printf("\n%llu comparisons in %.2fs (R=%.2f)\n",
              static_cast<unsigned long long>(report.pairs),
              report.wall_seconds, report.reuse_factor);
  std::printf("same-camera NCC:  mean %.4f  std %.4f\n", same_camera.mean(),
              same_camera.stddev());
  std::printf("cross-camera NCC: mean %.4f  std %.4f\n", cross_camera.mean(),
              cross_camera.stddev());

  // Classify with a threshold halfway between the two populations.
  const double threshold = (same_camera.mean() + cross_camera.mean()) / 2.0;
  std::uint32_t correct = 0;
  for (const auto& r : results) {
    const bool predicted_same = r.score > threshold;
    const bool actually_same =
        dataset.camera_of(r.left) == dataset.camera_of(r.right);
    if (predicted_same == actually_same) ++correct;
  }
  std::printf("threshold %.4f classifies %.1f%% of pairs correctly\n",
              threshold, 100.0 * correct / results.size());

  // Union-find clustering of above-threshold pairs recovers the cameras.
  std::vector<std::uint32_t> parent(app.item_count());
  for (std::uint32_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<std::uint32_t(std::uint32_t)> find =
      [&](std::uint32_t x) -> std::uint32_t {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (const auto& r : results) {
    if (r.score > threshold) parent[find(r.left)] = find(r.right);
  }
  std::map<std::uint32_t, std::vector<std::uint32_t>> clusters;
  for (std::uint32_t i = 0; i < parent.size(); ++i) {
    clusters[find(i)].push_back(i);
  }
  std::printf("recovered %zu clusters (expected %u cameras):\n",
              clusters.size(), cfg.cameras);
  for (const auto& [root, members] : clusters) {
    std::printf("  cluster:");
    for (const auto m : members) std::printf(" img%u(cam%u)", m, dataset.camera_of(m));
    std::printf("\n");
  }
  return 0;
}

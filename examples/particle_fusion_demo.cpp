// Localization-microscopy particle fusion demo (paper §5.3), with the
// Fig-6-style execution trace.
//
// Registers every pair of synthetic particles (all-to-all registration for
// robustness against misregistration, as in Heydarian et al.), reporting
// the score matrix statistics and the per-thread task timeline that shows
// Rocket overlapping I/O, parsing and GPU work.
//
//   $ ./particle_fusion_demo [--particles 10]

#include <cstdio>
#include <mutex>
#include <vector>

#include "apps/microscopy.hpp"
#include "common/options.hpp"
#include "common/stats.hpp"
#include "rocket/rocket.hpp"

int main(int argc, char** argv) {
  const rocket::Options opts(argc, argv);
  rocket::apps::MicroscopyConfig cfg;
  cfg.particles = static_cast<std::uint32_t>(opts.get_int("particles", 10));
  cfg.binding_sites = 16;
  cfg.localizations_per_site_min = 6;
  cfg.localizations_per_site_max = 14;
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 3));

  std::printf("generating %u particles (%u-site ring template)...\n",
              cfg.particles, cfg.binding_sites);
  rocket::storage::MemoryStore store;
  rocket::apps::MicroscopyDataset dataset(cfg, store);
  rocket::apps::MicroscopyApplication app(dataset);

  // Two virtual GPUs of different generations: watch the load balancer
  // give the faster card more pairs (paper §6.5).
  rocket::Rocket::Config engine_cfg;
  engine_cfg.devices = {rocket::gpu::rtx2080ti(), rocket::gpu::gtx980()};
  engine_cfg.cpu_threads = 2;
  engine_cfg.host_cache_capacity = rocket::megabytes(8);
  engine_cfg.trace = true;
  rocket::Rocket engine(engine_cfg);

  rocket::OnlineStats scores;
  std::mutex mutex;
  const auto report =
      engine.run_all_pairs(app, store, [&](const rocket::PairResult& r) {
        std::scoped_lock lock(mutex);
        scores.add(r.score);
      });

  std::printf("\nregistered %llu pairs in %.2fs\n",
              static_cast<unsigned long long>(report.pairs),
              report.wall_seconds);
  std::printf("overlap scores: mean %.3f  min %.3f  max %.3f\n",
              scores.mean(), scores.min(), scores.max());
  for (std::size_t d = 0; d < report.pairs_per_device.size(); ++d) {
    std::printf("device %zu (%s): %llu pairs\n", d,
                engine.config().devices[d].name.c_str(),
                static_cast<unsigned long long>(report.pairs_per_device[d]));
  }

  std::printf("\nexecution trace (Fig 6 style):\n%s", report.timeline.c_str());
  std::printf("\nper-lane busy seconds:\n");
  for (const auto& [lane, busy] : report.lane_busy) {
    std::printf("  %-22s %.3fs\n", lane.c_str(), busy);
  }
  return 0;
}

// Cluster-scale simulation demo: Rocket's virtual-time backend.
//
// Runs the forensics workload model on a simulated 8-node DAS-5-like
// cluster — with and without the third-level (distributed) cache — and
// prints the effect on run time, data reuse and storage pressure. This is
// the API the benchmark harness uses to regenerate every figure of the
// paper; here it demonstrates the headline result (super-linear scaling
// through the distributed cache) in a couple of seconds.
//
//   $ ./cluster_sim_demo [--nodes 8] [--n 1000]

#include <cstdio>

#include "common/options.hpp"
#include "rocket/rocket.hpp"

int main(int argc, char** argv) {
  const rocket::Options opts(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 8));
  const auto n = static_cast<std::uint32_t>(opts.get_int("n", 1000));

  for (const bool distributed : {true, false}) {
    rocket::cluster::ClusterConfig cfg = rocket::cluster::das5_cluster(nodes);
    cfg.distributed_cache = distributed;
    cfg.seed = 42;
    rocket::cluster::WorkloadConfig wl = rocket::cluster::scaled_workload(
        rocket::apps::forensics_model(), n, cfg);

    rocket::cluster::SimCluster cluster(cfg, wl);
    const auto metrics = cluster.run();

    std::printf("%u nodes, distributed cache %s:\n", nodes,
                distributed ? "ON " : "OFF");
    std::printf("  run time  %s\n",
                rocket::format_seconds(metrics.makespan).c_str());
    std::printf("  reuse     R = %.2f (%llu loads for %u items)\n",
                metrics.reuse_factor,
                static_cast<unsigned long long>(metrics.total_loads), n);
    std::printf("  efficiency %.1f%%   storage traffic %.1f MB/s\n",
                metrics.efficiency * 100.0, metrics.avg_io_usage / 1e6);
    if (distributed) {
      const auto& dc = metrics.dist_cache;
      std::printf("  distributed cache: %llu requests, %llu hits, %llu misses\n",
                  static_cast<unsigned long long>(dc.requests),
                  static_cast<unsigned long long>(dc.total_hits()),
                  static_cast<unsigned long long>(dc.misses));
    }
    std::printf("\n");
  }
  std::printf("Expected shape (paper Fig 12): with the distributed cache the\n"
              "cluster re-loads far fewer items (lower R), touches storage\n"
              "less, and finishes sooner.\n");
  return 0;
}

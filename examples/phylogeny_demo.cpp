// Phylogeny reconstruction demo (paper §5.2).
//
// Generates a synthetic clade tree of proteomes, computes the all-pairs
// composition-vector distance matrix with Rocket, then reconstructs the
// tree by UPGMA hierarchical clustering (the paper's use case: "with
// Rocket we can reconstruct the evolutionary tree of all reference
// bacteria proteomes on Uniprot in under 20 minutes").
//
//   $ ./phylogeny_demo [--species 16]

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "apps/bioinformatics.hpp"
#include "common/options.hpp"
#include "rocket/rocket.hpp"

namespace {

/// UPGMA agglomerative clustering over a distance matrix; returns the
/// newick representation and the merge order.
std::string upgma(std::vector<std::vector<double>> dist) {
  const std::size_t n = dist.size();
  std::vector<std::string> labels(n);
  std::vector<std::size_t> sizes(n, 1);
  std::vector<bool> alive(n, true);
  for (std::size_t i = 0; i < n; ++i) labels[i] = "sp" + std::to_string(i);

  for (std::size_t merges = 0; merges + 1 < n; ++merges) {
    // Find the closest live pair.
    double best = 1e300;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!alive[j]) continue;
        if (dist[i][j] < best) {
          best = dist[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge j into i (size-weighted average distances).
    for (std::size_t k = 0; k < n; ++k) {
      if (!alive[k] || k == bi || k == bj) continue;
      dist[bi][k] = dist[k][bi] =
          (dist[bi][k] * sizes[bi] + dist[bj][k] * sizes[bj]) /
          static_cast<double>(sizes[bi] + sizes[bj]);
    }
    labels[bi] = "(" + labels[bi] + "," + labels[bj] + ")";
    sizes[bi] += sizes[bj];
    alive[bj] = false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i]) return labels[i] + ";";
  }
  return ";";
}

}  // namespace

int main(int argc, char** argv) {
  const rocket::Options opts(argc, argv);
  rocket::apps::BioinformaticsConfig cfg;
  cfg.species = static_cast<std::uint32_t>(opts.get_int("species", 16));
  cfg.proteins = 40;
  cfg.mutation_rate = 0.03;
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 5));

  std::printf("generating %u synthetic proteomes down a clade tree...\n",
              cfg.species);
  rocket::storage::MemoryStore store;
  rocket::apps::BioinformaticsDataset dataset(cfg, store);
  rocket::apps::BioinformaticsApplication app(dataset);

  rocket::Rocket::Config engine_cfg;
  engine_cfg.cpu_threads = 2;
  engine_cfg.host_cache_capacity = rocket::megabytes(128);
  rocket::Rocket engine(engine_cfg);

  std::vector<std::vector<double>> dist(
      cfg.species, std::vector<double>(cfg.species, 0.0));
  std::mutex mutex;
  const auto report =
      engine.run_all_pairs(app, store, [&](const rocket::PairResult& r) {
        std::scoped_lock lock(mutex);
        dist[r.left][r.right] = dist[r.right][r.left] = r.score;
      });

  std::printf("distance matrix complete: %llu pairs, %.2fs, R=%.2f\n",
              static_cast<unsigned long long>(report.pairs),
              report.wall_seconds, report.reuse_factor);

  // Sanity: sibling species should be closer than cross-root pairs.
  double sibling = 0, distant = 0;
  int ns = 0, nd = 0;
  for (std::uint32_t i = 0; i < cfg.species; ++i) {
    for (std::uint32_t j = i + 1; j < cfg.species; ++j) {
      const auto depth = dataset.clade_depth(i, j);
      if (depth >= 1 && i / 2 == j / 2) {
        sibling += dist[i][j];
        ++ns;
      } else if (depth == 0) {
        distant += dist[i][j];
        ++nd;
      }
    }
  }
  if (ns && nd) {
    std::printf("mean sibling distance %.5f vs cross-root %.5f (%s)\n",
                sibling / ns, distant / nd,
                sibling / ns < distant / nd ? "tree signal recovered"
                                            : "WARNING: no signal");
  }

  std::printf("\nUPGMA tree:\n%s\n", upgma(dist).c_str());
  return 0;
}

#!/usr/bin/env python3
"""Validate Rocket's telemetry artifacts (CI smoke, DESIGN.md section 13).

Usage:
    check_telemetry.py summary <run_summary.json> [--nodes N]
    check_telemetry.py trace <trace.json> [--nodes N] [--expect-flows]
    check_telemetry.py metrics <metrics.prom>

Checks that a run summary carries the documented rocket.run_summary/1
schema keys (including the section-16 critical_path block, whose phase
percentages must sum to 100 +/- 1), that a Chrome trace names one process
per node with timestamped events on the shared timeline (--expect-flows
additionally demands matched cross-node "s"/"f" flow-arrow pairs for both
a peer-fetched and a stolen tile), and that a Prometheus text exposition
parses. Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys

SUMMARY_KEYS = [
    "schema", "app", "mode", "num_nodes", "pairs", "wall_seconds",
    "pairs_per_sec", "loads", "peer_loads", "remote_steals",
    "cache_fast_hits", "prefetch_hits", "stall_seconds", "host_cache",
    "directory", "peer_cache", "failover", "health", "speculation",
    "checkpoint", "traffic", "node_traffic", "metrics", "critical_path",
    "nodes",
]

CRITICAL_PATH_KEYS = [
    "wall_seconds", "spans_analyzed", "spans_aborted", "flight_dumps",
    "phases", "slowest_tiles",
]

CRITICAL_PATH_PHASES = [
    "compute", "peer_fetch", "steal", "load", "deliver", "gate_park", "idle",
]

FAILOVER_KEYS = [
    "node_deaths", "regions_reexecuted", "duplicate_results_dropped",
    "results_received", "regions_adopted", "master_failovers",
    "corrupted_frames",
]

HEALTH_KEYS = [
    "nodes_suspected", "nodes_degraded", "nodes_recovered",
    "steals_avoided_degraded", "load_retries", "failed_loads",
]

SPECULATION_KEYS = ["regions", "pairs", "duplicate_results_dropped"]

CHECKPOINT_KEYS = [
    "enabled", "resumed", "torn_tail", "pairs_recovered",
    "records_replayed", "records_appended",
]

HISTOGRAM_KEYS = ["name", "count", "mean_s", "p50_s", "p99_s", "min_s",
                  "max_s"]


def fail(message):
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_summary(path, nodes, expect_master_failover=False,
                  expect_resumed=False, expect_speculation=False):
    doc = json.load(open(path))
    for key in SUMMARY_KEYS:
        if key not in doc:
            fail(f"{path}: missing key {key!r}")
    if doc["schema"] != "rocket.run_summary/1":
        fail(f"{path}: unexpected schema {doc['schema']!r}")
    if nodes is not None:
        if doc["num_nodes"] != nodes:
            fail(f"{path}: num_nodes {doc['num_nodes']} != {nodes}")
        if len(doc["nodes"]) != nodes:
            fail(f"{path}: {len(doc['nodes'])} node entries != {nodes}")
        if len(doc["node_traffic"]) != nodes:
            fail(f"{path}: {len(doc['node_traffic'])} traffic tables "
                 f"!= {nodes}")
    for tag in doc["traffic"]["per_tag"]:
        if tag["raw_bytes"] < tag["bytes"]:
            fail(f"{path}: tag {tag['tag']!r} raw_bytes < wire bytes")
    for key in FAILOVER_KEYS:
        if key not in doc["failover"]:
            fail(f"{path}: failover block missing {key!r}")
    for key in HEALTH_KEYS:
        if key not in doc["health"]:
            fail(f"{path}: health block missing {key!r}")
    for key in SPECULATION_KEYS:
        if key not in doc["speculation"]:
            fail(f"{path}: speculation block missing {key!r}")
    for key in CHECKPOINT_KEYS:
        if key not in doc["checkpoint"]:
            fail(f"{path}: checkpoint block missing {key!r}")
    cp = doc["critical_path"]
    for key in CRITICAL_PATH_KEYS:
        if key not in cp:
            fail(f"{path}: critical_path block missing {key!r}")
    phase_names = [p["phase"] for p in cp["phases"]]
    if phase_names != CRITICAL_PATH_PHASES:
        fail(f"{path}: critical_path phases {phase_names} != "
             f"{CRITICAL_PATH_PHASES}")
    if cp["wall_seconds"] > 0:
        total = sum(p["percent"] for p in cp["phases"])
        if abs(total - 100.0) > 1.0:
            fail(f"{path}: critical_path percentages sum to {total:.3f}, "
                 f"expected 100 +/- 1")
    for tile in cp["slowest_tiles"]:
        for key in ("trace", "node", "seconds", "chain"):
            if key not in tile:
                fail(f"{path}: slowest_tiles entry missing {key!r}")
        if not tile["chain"]:
            fail(f"{path}: slowest tile {tile['trace']} has an empty "
                 f"causal chain")
    for hist in doc["metrics"]["histograms"]:
        for key in HISTOGRAM_KEYS:
            if key not in hist:
                fail(f"{path}: histogram {hist.get('name')!r} missing "
                     f"{key!r}")
    if doc["pairs"] == 0:
        fail(f"{path}: zero pairs recorded")
    if expect_master_failover and doc["failover"]["master_failovers"] == 0:
        fail(f"{path}: expected a master failover, none recorded")
    if expect_resumed:
        if not doc["checkpoint"]["resumed"]:
            fail(f"{path}: expected a resumed run, checkpoint.resumed is "
                 f"false")
        if doc["checkpoint"]["pairs_recovered"] == 0:
            fail(f"{path}: resumed run recovered zero pairs")
    if expect_speculation:
        if doc["speculation"]["regions"] == 0:
            fail(f"{path}: expected straggler speculation, zero regions "
                 f"re-granted")
        if doc["health"]["nodes_degraded"] == 0:
            fail(f"{path}: expected a degraded-node verdict, none recorded")
    print(f"check_telemetry: OK: {path} ({doc['pairs']} pairs, "
          f"{len(doc['nodes'])} nodes, "
          f"{len(doc['metrics']['histograms'])} histograms)")


def check_trace(path, nodes, expect_flows=False):
    doc = json.load(open(path))
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    process_names = {e["pid"]: e["args"]["name"] for e in events
                     if e.get("ph") == "M" and e.get("name") == "process_name"}
    if nodes is not None and len(process_names) != nodes:
        fail(f"{path}: {len(process_names)} process_name entries != {nodes}")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    for e in spans:
        for key in ("pid", "tid", "ts", "dur", "name"):
            if key not in e:
                fail(f"{path}: span missing {key!r}: {e}")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"{path}: negative ts/dur: {e}")
    span_pids = {e["pid"] for e in spans}
    if nodes is not None and len(span_pids) != nodes:
        fail(f"{path}: spans cover {len(span_pids)} nodes, expected {nodes}")
    instants = [e for e in events if e.get("ph") == "i"]
    flows_s = {e["id"]: e for e in events if e.get("ph") == "s"}
    flows_f = [e for e in events if e.get("ph") == "f"]
    if expect_flows:
        # Causal flow arrows (DESIGN.md section 16): an "s" on the parent
        # span's node matched by id with an "f" on the child span's node.
        # The child span's "X" event names the hop, so we can demand both
        # a peer-fetched tile and a stolen tile crossed node boundaries.
        if not flows_s or not flows_f:
            fail(f"{path}: expected flow events, found {len(flows_s)} 's' "
                 f"and {len(flows_f)} 'f'")
        span_name = {}
        for e in spans:
            args = e.get("args") or {}
            if "span" in args:
                span_name[args["span"]] = e["name"]
        cross_names = set()
        for e in flows_f:
            start = flows_s.get(e["id"])
            if start is None:
                continue
            if start["pid"] != e["pid"]:
                cross_names.add(span_name.get(e["id"], "?"))
        if not cross_names:
            fail(f"{path}: flow pairs exist but none cross nodes")
        if not cross_names & {"peer.fetch", "peer.serve"}:
            fail(f"{path}: no cross-node flow arrow for a peer-fetched "
                 f"tile (saw {sorted(cross_names)})")
        if not cross_names & {"steal", "steal.serve", "region.grant"}:
            fail(f"{path}: no cross-node flow arrow for a stolen tile "
                 f"(saw {sorted(cross_names)})")
    print(f"check_telemetry: OK: {path} ({len(spans)} spans over "
          f"{len(span_pids)} nodes, {len(instants)} instant events, "
          f"{len(flows_f)} flow arrows)")


def check_metrics(path):
    """Validate a Prometheus text exposition (format 0.0.4)."""
    types = {}
    samples = []
    for lineno, raw in enumerate(open(path), 1):
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                fail(f"{path}:{lineno}: malformed TYPE line {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        try:
            value = float(value_part)
        except ValueError:
            fail(f"{path}:{lineno}: non-numeric sample value {line!r}")
        name = name_part.split("{", 1)[0]
        if not name.startswith("rocket_"):
            fail(f"{path}:{lineno}: sample {name!r} lacks the rocket_ "
                 f"prefix")
        samples.append((name, name_part, value))
    if not types:
        fail(f"{path}: no # TYPE lines")
    histograms = [n for n, t in types.items() if t == "histogram"]
    for family in histograms:
        buckets = [(n_full, v) for n, n_full, v in samples
                   if n == family + "_bucket"]
        if not any('le="+Inf"' in n_full for n_full, _ in buckets):
            fail(f"{path}: histogram {family!r} missing the +Inf bucket")
        counts = [v for _, v in buckets]
        if counts != sorted(counts):
            fail(f"{path}: histogram {family!r} buckets are not cumulative")
        for suffix in ("_sum", "_count"):
            if not any(n == family + suffix for n, _, _ in samples):
                fail(f"{path}: histogram {family!r} missing {suffix}")
    by_kind = {kind: sum(1 for t in types.values() if t == kind)
               for kind in ("counter", "gauge", "histogram")}
    if 0 in by_kind.values():
        fail(f"{path}: expected counters, gauges and histograms, got "
             f"{by_kind}")
    print(f"check_telemetry: OK: {path} ({len(types)} families: {by_kind}, "
          f"{len(samples)} samples)")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("kind", choices=["summary", "trace", "metrics"])
    parser.add_argument("path")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--expect-flows", action="store_true",
                        help="trace only: fail unless matched cross-node "
                             "flow arrows exist for both a peer-fetched "
                             "and a stolen tile")
    parser.add_argument("--expect-master-failover", action="store_true",
                        help="fail unless failover.master_failovers > 0")
    parser.add_argument("--expect-resumed", action="store_true",
                        help="fail unless the run resumed from a journal "
                             "and recovered pairs")
    parser.add_argument("--expect-speculation", action="store_true",
                        help="fail unless a node was degraded and some of "
                             "its backlog was speculatively re-granted")
    args = parser.parse_args()
    if args.kind == "summary":
        check_summary(args.path, args.nodes, args.expect_master_failover,
                      args.expect_resumed, args.expect_speculation)
    elif args.kind == "trace":
        check_trace(args.path, args.nodes, args.expect_flows)
    else:
        check_metrics(args.path)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate Rocket's telemetry artifacts (CI smoke, DESIGN.md section 13).

Usage:
    check_telemetry.py summary <run_summary.json> [--nodes N]
    check_telemetry.py trace <trace.json> [--nodes N]

Checks that a run summary carries the documented rocket.run_summary/1
schema keys and the expected node count, and that a Chrome trace names one
process per node with timestamped events on the shared timeline. Exits
non-zero with a message on the first violation.
"""

import argparse
import json
import sys

SUMMARY_KEYS = [
    "schema", "app", "mode", "num_nodes", "pairs", "wall_seconds",
    "pairs_per_sec", "loads", "peer_loads", "remote_steals",
    "cache_fast_hits", "prefetch_hits", "stall_seconds", "host_cache",
    "directory", "peer_cache", "failover", "health", "speculation",
    "checkpoint", "traffic", "node_traffic", "metrics", "nodes",
]

FAILOVER_KEYS = [
    "node_deaths", "regions_reexecuted", "duplicate_results_dropped",
    "results_received", "regions_adopted", "master_failovers",
    "corrupted_frames",
]

HEALTH_KEYS = [
    "nodes_suspected", "nodes_degraded", "nodes_recovered",
    "steals_avoided_degraded", "load_retries", "failed_loads",
]

SPECULATION_KEYS = ["regions", "pairs", "duplicate_results_dropped"]

CHECKPOINT_KEYS = [
    "enabled", "resumed", "torn_tail", "pairs_recovered",
    "records_replayed", "records_appended",
]

HISTOGRAM_KEYS = ["name", "count", "mean_s", "p50_s", "p99_s", "min_s",
                  "max_s"]


def fail(message):
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_summary(path, nodes, expect_master_failover=False,
                  expect_resumed=False, expect_speculation=False):
    doc = json.load(open(path))
    for key in SUMMARY_KEYS:
        if key not in doc:
            fail(f"{path}: missing key {key!r}")
    if doc["schema"] != "rocket.run_summary/1":
        fail(f"{path}: unexpected schema {doc['schema']!r}")
    if nodes is not None:
        if doc["num_nodes"] != nodes:
            fail(f"{path}: num_nodes {doc['num_nodes']} != {nodes}")
        if len(doc["nodes"]) != nodes:
            fail(f"{path}: {len(doc['nodes'])} node entries != {nodes}")
        if len(doc["node_traffic"]) != nodes:
            fail(f"{path}: {len(doc['node_traffic'])} traffic tables "
                 f"!= {nodes}")
    for tag in doc["traffic"]["per_tag"]:
        if tag["raw_bytes"] < tag["bytes"]:
            fail(f"{path}: tag {tag['tag']!r} raw_bytes < wire bytes")
    for key in FAILOVER_KEYS:
        if key not in doc["failover"]:
            fail(f"{path}: failover block missing {key!r}")
    for key in HEALTH_KEYS:
        if key not in doc["health"]:
            fail(f"{path}: health block missing {key!r}")
    for key in SPECULATION_KEYS:
        if key not in doc["speculation"]:
            fail(f"{path}: speculation block missing {key!r}")
    for key in CHECKPOINT_KEYS:
        if key not in doc["checkpoint"]:
            fail(f"{path}: checkpoint block missing {key!r}")
    for hist in doc["metrics"]["histograms"]:
        for key in HISTOGRAM_KEYS:
            if key not in hist:
                fail(f"{path}: histogram {hist.get('name')!r} missing "
                     f"{key!r}")
    if doc["pairs"] == 0:
        fail(f"{path}: zero pairs recorded")
    if expect_master_failover and doc["failover"]["master_failovers"] == 0:
        fail(f"{path}: expected a master failover, none recorded")
    if expect_resumed:
        if not doc["checkpoint"]["resumed"]:
            fail(f"{path}: expected a resumed run, checkpoint.resumed is "
                 f"false")
        if doc["checkpoint"]["pairs_recovered"] == 0:
            fail(f"{path}: resumed run recovered zero pairs")
    if expect_speculation:
        if doc["speculation"]["regions"] == 0:
            fail(f"{path}: expected straggler speculation, zero regions "
                 f"re-granted")
        if doc["health"]["nodes_degraded"] == 0:
            fail(f"{path}: expected a degraded-node verdict, none recorded")
    print(f"check_telemetry: OK: {path} ({doc['pairs']} pairs, "
          f"{len(doc['nodes'])} nodes, "
          f"{len(doc['metrics']['histograms'])} histograms)")


def check_trace(path, nodes):
    doc = json.load(open(path))
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    process_names = {e["pid"]: e["args"]["name"] for e in events
                     if e.get("ph") == "M" and e.get("name") == "process_name"}
    if nodes is not None and len(process_names) != nodes:
        fail(f"{path}: {len(process_names)} process_name entries != {nodes}")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    for e in spans:
        for key in ("pid", "tid", "ts", "dur", "name"):
            if key not in e:
                fail(f"{path}: span missing {key!r}: {e}")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"{path}: negative ts/dur: {e}")
    span_pids = {e["pid"] for e in spans}
    if nodes is not None and len(span_pids) != nodes:
        fail(f"{path}: spans cover {len(span_pids)} nodes, expected {nodes}")
    instants = [e for e in events if e.get("ph") == "i"]
    print(f"check_telemetry: OK: {path} ({len(spans)} spans over "
          f"{len(span_pids)} nodes, {len(instants)} instant events)")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("kind", choices=["summary", "trace"])
    parser.add_argument("path")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--expect-master-failover", action="store_true",
                        help="fail unless failover.master_failovers > 0")
    parser.add_argument("--expect-resumed", action="store_true",
                        help="fail unless the run resumed from a journal "
                             "and recovered pairs")
    parser.add_argument("--expect-speculation", action="store_true",
                        help="fail unless a node was degraded and some of "
                             "its backlog was speculatively re-granted")
    args = parser.parse_args()
    if args.kind == "summary":
        check_summary(args.path, args.nodes, args.expect_master_failover,
                      args.expect_resumed, args.expect_speculation)
    else:
        check_trace(args.path, args.nodes)


if __name__ == "__main__":
    main()

// Regenerates Fig 13: average throughput (pairs/second) on each of the
// four heterogeneous nodes individually and on all four combined, for the
// three applications.
//
// Node I: K20m; node II: GTX980 + TitanX Pascal; node III: 2x RTX2080Ti;
// node IV: GTX Titan + TitanX Pascal.
//
// Shape targets: node III is the fastest, node I the slowest; the combined
// run matches or exceeds the sum of the individual nodes (distributed
// cache bonus).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace rocket;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  TableWriter table("Fig 13: heterogeneous-platform throughput (pairs/s)");
  table.set_header({"app", "node I", "node II", "node III", "node IV", "sum",
                    "all (4 nodes)", "all vs sum"});

  const apps::AppModel models[3] = {apps::forensics_model(),
                                    apps::bioinformatics_model(),
                                    apps::microscopy_model()};
  for (const auto& app : models) {
    std::vector<double> throughput;
    double sum = 0.0;
    for (std::uint32_t node = 0; node < 4; ++node) {
      cluster::ClusterConfig cfg = cluster::heterogeneous_cluster({node});
      cfg.seed = env.seed;
      cluster::WorkloadConfig wl =
          cluster::scaled_workload(app, env.n_for(app), cfg);
      const auto m = cluster::SimCluster(cfg, wl).run();
      const double tput = static_cast<double>(m.pairs_done) / m.makespan;
      throughput.push_back(tput);
      sum += tput;
    }
    cluster::ClusterConfig all_cfg = cluster::heterogeneous_cluster();
    all_cfg.seed = env.seed;
    cluster::WorkloadConfig wl =
        cluster::scaled_workload(app, env.n_for(app), all_cfg);
    const auto all = cluster::SimCluster(all_cfg, wl).run();
    const double all_tput = static_cast<double>(all.pairs_done) / all.makespan;

    table.add_row({app.name, TableWriter::num(throughput[0], 1),
                   TableWriter::num(throughput[1], 1),
                   TableWriter::num(throughput[2], 1),
                   TableWriter::num(throughput[3], 1),
                   TableWriter::num(sum, 1), TableWriter::num(all_tput, 1),
                   TableWriter::percent(all_tput / sum)});
  }
  env.emit(table, "fig13_hetero.csv");

  std::printf("Paper reference: per-node ordering III > II~IV > I; the "
              "combined run meets or exceeds the sum of the parts.\n");
  return 0;
}

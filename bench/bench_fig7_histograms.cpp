// Regenerates Fig 7: histograms of the comparison-kernel run time for the
// three applications. The shapes to verify: forensics is sharply peaked
// (regular), bioinformatics is moderately spread, microscopy is heavy-
// tailed over three orders of magnitude more time.

#include <cstdio>

#include "apps/app_model.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"

using namespace rocket;

namespace {

void histogram_for(const apps::AppModel& app, double lo, double hi,
                   const bench::BenchEnv& env) {
  Histogram hist(lo, hi, 30);
  OnlineStats stats;
  const std::uint32_t n = env.n_for(app);
  const std::uint32_t stride = n > 1000 ? n / 1000 : 1;
  for (std::uint32_t i = 0; i < n; i += stride) {
    for (std::uint32_t j = i + 1; j < n; j += stride) {
      const double ms = app.comparison_seconds(i, j, env.seed) * 1e3;
      hist.add(ms);
      stats.add(ms);
    }
  }
  std::printf("-- %s: t_comparison histogram (ms) --\n", app.name.c_str());
  std::printf("%s", hist.render(48).c_str());
  std::printf("samples=%zu mean=%.2f ms std=%.2f ms min=%.2f max=%.2f\n\n",
              stats.count(), stats.mean(), stats.stddev(), stats.min(),
              stats.max());

  TableWriter csv("fig7-" + app.name);
  csv.set_header({"bin_center_ms", "count"});
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    csv.add_row({TableWriter::num(hist.bin_center(b), 4),
                 TableWriter::integer(static_cast<long long>(hist.count(b)))});
  }
  try {
    csv.write_csv(env.csv_dir + "/fig7_" + app.name + ".csv");
  } catch (const std::exception&) {
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  std::printf("== Fig 7: comparison-kernel run time distributions ==\n\n");
  // Axis ranges follow the paper: 0-4 ms for the regular apps, 0-2000+ ms
  // for microscopy.
  histogram_for(apps::forensics_model(), 0.0, 4.0, env);
  histogram_for(apps::bioinformatics_model(), 0.0, 5.0, env);
  histogram_for(apps::microscopy_model(), 0.0, 2200.0, env);

  std::printf("Shape targets (paper): forensics regular/peaked; "
              "bioinformatics irregular; microscopy heavy-tailed with "
              "mean 564 ms and std 348 ms.\n");
  return 0;
}

// Regenerates Fig 11: distribution of distributed-cache request outcomes
// (hit at hop 1/2/3 vs miss) for h = 3 on 16 nodes, plus the §6.4 h-sweep
// showing that h = 1 already captures almost all hits with the least
// traffic.
//
// Shape targets: 75-88% of requests hit at the first hop; hops 2 and 3
// contribute little; 11-19% miss.

#include <cstdio>

#include "bench_util.hpp"

using namespace rocket;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  TableWriter table("Fig 11: distributed cache requests by outcome "
                    "(h=3, 16 nodes)");
  table.set_header({"app", "requests", "hit@1", "hit@2", "hit@3", "miss"});

  const apps::AppModel models[3] = {apps::forensics_model(),
                                    apps::bioinformatics_model(),
                                    apps::microscopy_model()};
  for (const auto& app : models) {
    cluster::ClusterConfig cfg = cluster::das5_cluster(16);
    cfg.seed = env.seed;
    cfg.hop_limit = 3;
    cluster::WorkloadConfig wl =
        cluster::scaled_workload(app, env.n_for(app), cfg);
    const auto m = cluster::SimCluster(cfg, wl).run();

    const double total =
        m.dist_cache.requests > 0 ? static_cast<double>(m.dist_cache.requests)
                                  : 1.0;
    table.add_row(
        {app.name,
         TableWriter::integer(static_cast<long long>(m.dist_cache.requests)),
         TableWriter::percent(m.dist_cache.hits_at_hop[0] / total),
         TableWriter::percent(m.dist_cache.hits_at_hop[1] / total),
         TableWriter::percent(m.dist_cache.hits_at_hop[2] / total),
         TableWriter::percent(m.dist_cache.misses / total)});
  }
  env.emit(table, "fig11_hops.csv");

  // §6.4 h-sweep on the forensics model: hit ratio vs network traffic.
  TableWriter sweep("h-sweep (forensics, 16 nodes): hit ratio vs traffic");
  sweep.set_header({"h", "hit ratio", "control messages", "R", "run time"});
  for (const std::uint32_t h : {1u, 2u, 3u}) {
    cluster::ClusterConfig cfg = cluster::das5_cluster(16);
    cfg.seed = env.seed;
    cfg.hop_limit = h;
    const apps::AppModel app = apps::forensics_model();
    cluster::WorkloadConfig wl =
        cluster::scaled_workload(app, env.n_for(app), cfg);
    const auto m = cluster::SimCluster(cfg, wl).run();
    const double total = m.dist_cache.requests
                             ? static_cast<double>(m.dist_cache.requests)
                             : 1.0;
    std::uint64_t control = 0;
    for (const auto tag :
         {net::Tag::kCacheRequest, net::Tag::kCacheForward,
          net::Tag::kCacheFailure}) {
      control += m.traffic.per_tag[static_cast<int>(tag)].messages;
    }
    sweep.add_row({TableWriter::integer(h),
                   TableWriter::percent(m.dist_cache.total_hits() / total),
                   TableWriter::integer(static_cast<long long>(control)),
                   TableWriter::num(m.reuse_factor, 2),
                   format_seconds(m.makespan)});
  }
  env.emit(sweep, "fig11_h_sweep.csv");

  std::printf("Paper reference: hit@1 75-88%%, misses 11-19%%, hops 2-3 "
              "marginal; h=1 suffices (used for all other experiments).\n");
  return 0;
}

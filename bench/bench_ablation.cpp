// Ablation benches for the design choices DESIGN.md calls out:
//  1. steal-largest (the paper's policy) vs steal-smallest;
//  2. hierarchical victim selection vs a flat victim pool;
//  3. the concurrent-job-limit back-pressure sweep (§4.2/§4.3);
//  4. divide-and-conquer leaf granularity.
//
// Ablations 1, 3 and 4 run the forensics model on 4 single-GPU DAS-5
// nodes; ablation 2 uses 4 nodes x 2 GPUs, since hierarchical victim
// selection only differs from a flat pool when nodes host several workers.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace rocket;

namespace {

cluster::RunMetrics run_once(const bench::BenchEnv& env,
                             void (*tweak)(cluster::ClusterConfig&),
                             std::uint32_t nodes = 4,
                             std::uint32_t gpus_per_node = 1) {
  cluster::ClusterConfig cfg = cluster::das5_cluster(nodes, gpus_per_node);
  cfg.seed = env.seed;
  tweak(cfg);
  const apps::AppModel app = apps::forensics_model();
  // Ablations run at quarter scale by default: effects are scheduling-
  // driven and show at any n, and this keeps the whole suite fast.
  const auto n = static_cast<std::uint32_t>(
      static_cast<double>(app.default_n) * (env.quick ? 0.1 : 0.25));
  cluster::ClusterConfig scratch = cfg;
  cluster::WorkloadConfig wl = cluster::scaled_workload(app, n, cfg);
  (void)scratch;
  return cluster::SimCluster(cfg, wl).run();
}

void add_metrics_row(TableWriter& table, const std::string& variant,
                     const cluster::RunMetrics& m) {
  table.add_row({variant, format_seconds(m.makespan),
                 TableWriter::percent(m.efficiency),
                 TableWriter::num(m.reuse_factor, 2),
                 TableWriter::integer(static_cast<long long>(
                     m.steal_stats.intra_node_steals)),
                 TableWriter::integer(
                     static_cast<long long>(m.steal_stats.remote_steals))});
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  {
    TableWriter table("Ablation 1: steal-largest vs steal-smallest");
    table.set_header({"variant", "run time", "efficiency", "R",
                      "intra steals", "remote steals"});
    add_metrics_row(table, "steal-largest (paper)",
                    run_once(env, [](cluster::ClusterConfig&) {}));
    add_metrics_row(table, "steal-smallest",
                    run_once(env, [](cluster::ClusterConfig& c) {
                      c.steal_smallest = true;
                    }));
    env.emit(table, "ablation_steal_policy.csv");
    std::printf("Expectation: stealing the largest region yields fewer "
                "steals (more work per steal) and better locality.\n\n");
  }

  {
    TableWriter table("Ablation 2: hierarchical vs flat victim selection");
    table.set_header({"variant", "run time", "efficiency", "R",
                      "intra steals", "remote steals"});
    add_metrics_row(table, "hierarchical (paper)",
                    run_once(env, [](cluster::ClusterConfig&) {}, 4, 2));
    add_metrics_row(table, "flat",
                    run_once(env, [](cluster::ClusterConfig& c) {
                      c.flat_victim_selection = true;
                    }, 4, 2));
    env.emit(table, "ablation_victims.csv");
    std::printf("Expectation: the flat pool steals across nodes far more "
                "often, hurting data locality (higher R).\n\n");
  }

  {
    TableWriter table("Ablation 3: concurrent job limit (back-pressure)");
    table.set_header({"job limit/worker", "run time", "efficiency", "R",
                      "GPU busy share", ""});
    for (const std::uint32_t limit : {1u, 2u, 4u, 8u, 16u, 32u}) {
      cluster::ClusterConfig cfg = cluster::das5_cluster(4);
      cfg.seed = env.seed;
      cfg.job_limit_per_worker = limit;
      const apps::AppModel app = apps::forensics_model();
      const auto n = static_cast<std::uint32_t>(
          static_cast<double>(app.default_n) * (env.quick ? 0.1 : 0.25));
      cluster::WorkloadConfig wl = cluster::scaled_workload(app, n, cfg);
      const auto m = cluster::SimCluster(cfg, wl).run();
      const double gpu_busy =
          (m.busy_gpu_comparison + m.busy_gpu_preprocess) /
          (m.makespan * m.effective_p);
      table.add_row({TableWriter::integer(limit), format_seconds(m.makespan),
                     TableWriter::percent(m.efficiency),
                     TableWriter::num(m.reuse_factor, 2),
                     TableWriter::percent(gpu_busy), ""});
    }
    env.emit(table, "ablation_job_limit.csv");
    std::printf("Expectation: limit=1 serialises the pipeline (GPU idles "
                "during loads); a modest limit saturates the GPU (§4.3); "
                "very large limits add no further benefit.\n\n");
  }

  {
    TableWriter table("Ablation 4: divide-and-conquer leaf granularity");
    table.set_header({"max leaf pairs", "run time", "efficiency", "R",
                      "intra steals", "remote steals"});
    for (const std::uint64_t leaf : {1ull, 4ull, 16ull, 64ull, 256ull}) {
      cluster::ClusterConfig cfg = cluster::das5_cluster(4);
      cfg.seed = env.seed;
      cfg.max_leaf_pairs = leaf;
      const apps::AppModel app = apps::forensics_model();
      const auto n = static_cast<std::uint32_t>(
          static_cast<double>(app.default_n) * (env.quick ? 0.1 : 0.25));
      cluster::WorkloadConfig wl = cluster::scaled_workload(app, n, cfg);
      const auto m = cluster::SimCluster(cfg, wl).run();
      add_metrics_row(table, TableWriter::integer(static_cast<long long>(leaf)), m);
    }
    env.emit(table, "ablation_leaf_granularity.csv");
    std::printf("Expectation: coarser leaves cut scheduling overhead but "
                "reduce steal granularity; R stays cache-driven.\n");
  }
  return 0;
}

// Regenerates Fig 12: speedup, system efficiency, reuse factor R and
// average I/O usage when scaling from 1 to 16 nodes, with the distributed
// cache enabled vs disabled, for all three applications.
//
// Shape targets (paper):
//  * microscopy: ~15.8x speedup at 16 nodes, insensitive to the cache;
//  * forensics/bioinformatics: super-linear speedup WITH the distributed
//    cache (16.1x / 16.9x) and sub-linear without (14.7x / 14.6x);
//  * forensics R: 6.7 -> 1.7 (with) vs -> 14.3 (without) at 16 nodes;
//  * I/O usage grows ~4x with the cache vs ~31x without.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace rocket;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  const std::vector<std::uint32_t> node_counts =
      env.quick ? std::vector<std::uint32_t>{1, 4, 16}
                : std::vector<std::uint32_t>{1, 2, 4, 8, 16};

  TableWriter table("Fig 12: scaling 1-16 nodes, dist-cache on/off");
  table.set_header({"app", "dist-cache", "nodes", "run time", "speedup",
                    "efficiency", "R", "I/O (MB/s)"});

  const apps::AppModel models[3] = {apps::forensics_model(),
                                    apps::bioinformatics_model(),
                                    apps::microscopy_model()};
  for (const auto& app : models) {
    for (const bool dist : {true, false}) {
      double base_runtime = 0.0;
      for (const auto p : node_counts) {
        cluster::ClusterConfig cfg = cluster::das5_cluster(p);
        cfg.seed = env.seed;
        cfg.distributed_cache = dist;
        cluster::WorkloadConfig wl =
            cluster::scaled_workload(app, env.n_for(app), cfg);
        const auto m = cluster::SimCluster(cfg, wl).run();
        if (p == 1) base_runtime = m.makespan;
        table.add_row({app.name, dist ? "on" : "off",
                       TableWriter::integer(p), format_seconds(m.makespan),
                       bench::speedup_str(base_runtime, m.makespan),
                       TableWriter::percent(m.efficiency),
                       TableWriter::num(m.reuse_factor, 2),
                       TableWriter::num(m.avg_io_usage / 1e6, 1)});
      }
    }
  }
  env.emit(table, "fig12_scaling.csv");

  std::printf("Paper reference: super-linear speedup with the distributed "
              "cache for forensics (16.1x) and bioinformatics (16.9x); "
              "sub-linear without (~14.6x); forensics I/O 39.9 MB/s with vs "
              "294.7 MB/s without at 16 nodes.\n");
  return 0;
}

// Regenerates Fig 10: per-resource busy time for the forensics application
// on one node at host cache sizes 20, 10 and 5 GB.
//
// Shape target: shrinking the cache inflates TCPU, TGPU and TIO together
// (items are re-loaded more often), with the run time growing accordingly.

#include <cstdio>

#include "bench_util.hpp"

using namespace rocket;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  TableWriter table(
      "Fig 10: forensics per-resource busy time vs host cache size (hours)");
  table.set_header({"host cache", "GPU(pre)", "GPU(cmp)", "CPU", "CPU->GPU",
                    "GPU->CPU", "IO", "run time", "R", "efficiency"});

  for (const double cache_gb : {20.0, 10.0, 5.0}) {
    cluster::ClusterConfig cfg = cluster::das5_cluster(1);
    cfg.seed = env.seed;
    cfg.nodes[0].host_cache_capacity = gigabytes(cache_gb);
    const apps::AppModel app = apps::forensics_model();
    cluster::WorkloadConfig wl =
        cluster::scaled_workload(app, env.n_for(app), cfg);
    const auto m = cluster::SimCluster(cfg, wl).run();

    auto hours = [](double s) { return TableWriter::num(s / 3600.0, 3); };
    table.add_row({TableWriter::num(cache_gb, 0) + " GB",
                   hours(m.busy_gpu_preprocess), hours(m.busy_gpu_comparison),
                   hours(m.busy_cpu), hours(m.busy_h2d), hours(m.busy_d2h),
                   hours(m.busy_io), hours(m.makespan),
                   TableWriter::num(m.reuse_factor, 2),
                   TableWriter::percent(m.efficiency)});
  }
  env.emit(table, "fig10_cache_threads.csv");

  std::printf("Paper reference: all resource times grow as the cache "
              "shrinks 20->10->5 GB; run time grows correspondingly.\n");
  return 0;
}

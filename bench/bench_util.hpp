#pragma once

// Shared helpers for the figure/table regeneration benches.
//
// Every bench prints the paper's rows/series as an aligned table, writes a
// CSV sidecar next to the binary, and accepts:
//   --quick        reduced item counts (CI-friendly, shapes preserved)
//   --scale=F      multiply all item counts by F (0 < F <= 1)
//   --seed=S       simulation seed
//   --csv-dir=DIR  where to drop CSVs (default: current directory)

#include <cstdio>
#include <string>

#include "common/options.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "cluster/experiments.hpp"
#include "cluster/sim_cluster.hpp"

namespace rocket::bench {

struct BenchEnv {
  double scale = 1.0;
  std::uint64_t seed = 42;
  std::string csv_dir = ".";
  bool quick = false;

  explicit BenchEnv(const Options& opts) {
    quick = opts.get_bool("quick", false);
    scale = opts.get_double("scale", quick ? 0.25 : 1.0);
    if (scale <= 0.0 || scale > 1.0) scale = 1.0;
    seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
    csv_dir = opts.get("csv-dir", ".");
  }

  /// Item count for an app under the current scale (at least 16).
  std::uint32_t n_for(const apps::AppModel& app) const {
    const auto n = static_cast<std::uint32_t>(
        static_cast<double>(app.default_n) * scale);
    return n < 16 ? 16 : n;
  }

  void emit(TableWriter& table, const std::string& csv_name) const {
    std::fputs(table.render().c_str(), stdout);
    std::fputs("\n", stdout);
    const std::string path = csv_dir + "/" + csv_name;
    try {
      table.write_csv(path);
      std::printf("[csv] %s\n\n", path.c_str());
    } catch (const std::exception& e) {
      std::printf("[csv] skipped (%s)\n\n", e.what());
    }
  }
};

/// Paper-style speedup reporting helper.
inline std::string speedup_str(double base, double current) {
  return TableWriter::num(base / current, 2) + "x";
}

}  // namespace rocket::bench

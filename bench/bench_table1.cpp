// Regenerates Table 1: characteristics of the three applications on an
// NVIDIA TitanX Maxwell — dataset sizes, pair counts, cache-slot geometry
// and per-stage times (avg ± std).
//
// Stage time statistics are measured by sampling the calibrated stage
// models over the full workload (the live kernels are exercised by
// examples/ and the apps tests; Table 1's numbers are the model's ground
// truth, so this bench verifies the round trip model → samples → moments).

#include <cstdio>

#include "apps/app_model.hpp"
#include "bench_util.hpp"
#include "cache/slot_cache.hpp"
#include "common/stats.hpp"
#include "gpu/device_spec.hpp"

using namespace rocket;

namespace {

struct Column {
  apps::AppModel app;
  std::uint32_t device_slots;
  std::uint32_t host_slots;
  Bytes preprocessed_total;
};

Column make_column(apps::AppModel app) {
  Column c{app, 0, 0, 0};
  c.device_slots = cache::slots_for_capacity(
      gpu::titanx_maxwell().cache_capacity(), app.slot_size, app.default_n);
  c.host_slots = cache::slots_for_capacity(gigabytes(40), app.slot_size,
                                           app.default_n);
  c.preprocessed_total = app.avg_item_memory * app.default_n;
  return c;
}

std::string stage_stats(const apps::AppModel& app, char stage,
                        std::uint64_t seed) {
  OnlineStats stats;
  const std::uint32_t n = app.default_n;
  switch (stage) {
    case 'p':
      for (std::uint32_t i = 0; i < n; ++i) stats.add(app.parse_seconds(i, seed));
      break;
    case 'r':
      if (!app.has_preprocess()) return "N/A";
      for (std::uint32_t i = 0; i < n; ++i)
        stats.add(app.preprocess_seconds(i, seed));
      break;
    case 'c': {
      // Sample a bounded subset of pairs for the big apps.
      const std::uint32_t stride = n > 1200 ? n / 1200 : 1;
      for (std::uint32_t i = 0; i < n; i += stride)
        for (std::uint32_t j = i + 1; j < n; j += stride)
          stats.add(app.comparison_seconds(i, j, seed));
      break;
    }
    default:
      return "0 ms";
  }
  return TableWriter::num(stats.mean() * 1e3, 1) + " ± " +
         TableWriter::num(stats.stddev() * 1e3, 2) + " ms";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  const Column cols[3] = {make_column(apps::forensics_model()),
                          make_column(apps::bioinformatics_model()),
                          make_column(apps::microscopy_model())};

  TableWriter table(
      "Table 1: application characteristics (NVIDIA TitanX Maxwell)");
  table.set_header({"Characteristic", "Forensics", "Bioinformatics",
                    "Microscopy"});

  auto row = [&](const std::string& name, auto&& fn) {
    table.add_row({name, fn(cols[0]), fn(cols[1]), fn(cols[2])});
  };

  row("No. of input files (n)", [](const Column& c) {
    return TableWriter::integer(c.app.default_n);
  });
  row("Size of raw data on disk", [](const Column& c) {
    return format_bytes(c.app.total_raw_bytes);
  });
  row("Size of preprocessed data in memory", [](const Column& c) {
    return format_bytes(c.preprocessed_total);
  });
  row("No. of pairs", [](const Column& c) {
    return TableWriter::integer(
        static_cast<long long>(model::pair_count(c.app.default_n)));
  });
  row("Total data pair-wise processed", [](const Column& c) {
    // Each of the n items is retrieved (n-1) times: 2 * pairs * item size.
    return format_bytes(2 * model::pair_count(c.app.default_n) *
                        c.app.avg_item_memory);
  });
  row("Cache slot size", [](const Column& c) {
    return format_bytes(c.app.slot_size);
  });
  row("No. device cache slots", [](const Column& c) {
    return TableWriter::integer(c.device_slots);
  });
  row("No. host cache slots", [](const Column& c) {
    return TableWriter::integer(c.host_slots);
  });
  row("Time parse (CPU)", [&](const Column& c) {
    return stage_stats(c.app, 'p', env.seed);
  });
  row("Time pre-process (GPU)", [&](const Column& c) {
    return stage_stats(c.app, 'r', env.seed);
  });
  row("Time comparison (GPU)", [&](const Column& c) {
    return stage_stats(c.app, 'c', env.seed);
  });
  row("Time post-process (CPU)", [](const Column&) { return std::string("0 ms"); });

  env.emit(table, "table1.csv");

  std::printf("Paper reference: n=4980/2500/256, slots 291/81/256 (device), "
              "1050/280/256 (host),\nparse 130.8/36.9/27.4 ms, pre-process "
              "20.5/27.0/- ms, comparison 1.1/2.1/564.3 ms.\n");
  return 0;
}

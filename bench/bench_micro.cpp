// Microbenchmarks (google-benchmark) for Rocket's hot substrate paths:
// slot-cache operations, Chase–Lev deque throughput, pair-space math and
// the DES event loop. These guard the constants that make full-scale
// figure regeneration tractable (tens of millions of virtual events).
//
// After the registered benchmarks, main() runs a head-to-head of the live
// runtime's per-pair vs tile-batched execution modes, MpmcQueue single-op
// vs bulk-op throughput, the mesh peer-fetch path vs the storage load it
// replaces, the look-ahead prefetch pipeline vs today's schedule on a
// load-bound workload, and the leaf-traversal orders' load counts, and
// writes the numbers to BENCH_micro.json (machine-readable, for the perf
// trajectory; CI gates prefetch >= off and hilbert < row-major).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "apps/forensics.hpp"
#include "cache/sharded_slot_cache.hpp"
#include "cache/slot_cache.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "dnc/pair_space.hpp"
#include "mesh/mesh_node.hpp"
#include "mesh/transport.hpp"
#include "runtime/node_runtime.hpp"
#include "telemetry/span.hpp"
#include "sim/primitives.hpp"
#include "sim/process.hpp"
#include "steal/deque.hpp"
#include "storage/object_store.hpp"

namespace {

using namespace rocket;

void BM_SlotCacheHit(benchmark::State& state) {
  cache::SlotCache cache({64, 1_MB, "bench"});
  for (cache::ItemId i = 0; i < 64; ++i) {
    const auto g = cache.acquire(i, nullptr);
    cache.publish(g.slot);
    cache.release(g.slot);
  }
  cache::ItemId item = 0;
  for (auto _ : state) {
    const auto g = cache.acquire(item, nullptr);
    benchmark::DoNotOptimize(g.slot);
    cache.release(g.slot);
    item = (item + 1) & 63;
  }
}
BENCHMARK(BM_SlotCacheHit);

void BM_SlotCacheMissEvict(benchmark::State& state) {
  cache::SlotCache cache({64, 1_MB, "bench"});
  cache::ItemId item = 0;
  for (auto _ : state) {
    const auto g = cache.acquire(item++, nullptr);
    cache.publish(g.slot);
    cache.release(g.slot);
  }
}
BENCHMARK(BM_SlotCacheMissEvict);

void BM_ChaseLevOwner(benchmark::State& state) {
  steal::ChaseLevDeque<int> deque;
  int value = 7;
  for (auto _ : state) {
    deque.push(&value);
    benchmark::DoNotOptimize(deque.pop());
  }
}
BENCHMARK(BM_ChaseLevOwner);

void BM_PairCount(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    const dnc::Region region{
        static_cast<dnc::ItemIndex>(rng.uniform_index(1000)),
        static_cast<dnc::ItemIndex>(1000 + rng.uniform_index(4000)),
        static_cast<dnc::ItemIndex>(rng.uniform_index(1000)),
        static_cast<dnc::ItemIndex>(1000 + rng.uniform_index(4000)), 0};
    benchmark::DoNotOptimize(dnc::count_pairs(region));
  }
}
BENCHMARK(BM_PairCount);

void BM_RegionSplit(benchmark::State& state) {
  const dnc::Region root = dnc::root_region(4980);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnc::split(root));
  }
}
BENCHMARK(BM_RegionSplit);

void BM_SlotCacheBatchAcquireHit(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  cache::SlotCache cache({64, 1_MB, "bench"});
  for (cache::ItemId i = 0; i < 64; ++i) {
    const auto g = cache.acquire(i, nullptr);
    cache.publish(g.slot);
    cache.release(g.slot);
  }
  std::vector<cache::ItemId> items(batch);
  cache::ItemId base = 0;
  for (auto _ : state) {
    for (std::size_t k = 0; k < batch; ++k) {
      items[k] = (base + static_cast<cache::ItemId>(k)) & 63;
    }
    const auto grants = cache.acquire_batch(items, nullptr);
    benchmark::DoNotOptimize(grants.data());
    for (const auto& g : grants) cache.release(g.slot);
    base = (base + 1) & 63;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SlotCacheBatchAcquireHit)->Arg(8)->Arg(32);

void BM_ShardedCacheFastPathHit(benchmark::State& state) {
  cache::ShardedSlotCache cache({64, 1_MB, "bench", 8, 64});
  std::vector<cache::SlotId> base_pins;
  for (cache::ItemId i = 0; i < 64; ++i) {
    const auto g = cache.acquire(i, nullptr);
    cache.publish(g.slot);
    base_pins.push_back(g.slot);  // keep one pin: fast path engages
  }
  cache::ItemId item = 0;
  for (auto _ : state) {
    const auto g = cache.acquire(item, nullptr);
    benchmark::DoNotOptimize(g.slot);
    cache.release(g.slot);
    item = (item + 1) & 63;
  }
  for (const auto slot : base_pins) cache.release(slot);
}
BENCHMARK(BM_ShardedCacheFastPathHit);

void BM_QueueSinglePushPop(benchmark::State& state) {
  MpmcQueue<int> q;
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueSinglePushPop);

void BM_QueueBulkPushPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  MpmcQueue<int> q;
  std::vector<int> in;
  for (auto _ : state) {
    in.assign(batch, 1);
    q.push_bulk(in);
    benchmark::DoNotOptimize(q.pop_bulk(batch));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_QueueBulkPushPop)->Arg(16)->Arg(64);

sim::Process ping(sim::Simulation&, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await sim::delay(1e-6);
  }
}

void BM_SimEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    spawn(sim, ping(sim, 1000));
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimEventLoop);

void BM_LognormalSample(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_from_moments(564.3, 348.0));
  }
}
BENCHMARK(BM_LognormalSample);

// --- runtime execution-mode head-to-head + JSON emission -----------------

/// Cache-friendly synthetic all-pairs workload: n items that all fit in
/// the device cache, trivial parse and a cheap compare, so the engine's
/// per-pair overheads (queue hops, cache mutex traffic, allocations,
/// result locking) dominate — exactly what tile batching amortises.
class SyntheticApp final : public runtime::Application {
 public:
  /// `compare_passes` scales the kernel cost: the prefetch head-to-head
  /// needs compute roughly balanced against the throttled store's load
  /// time so the overlap is visible in wall clock.
  SyntheticApp(std::uint32_t n, storage::MemoryStore& store,
               int compare_passes = 1)
      : n_(n), passes_(compare_passes) {
    for (std::uint32_t i = 0; i < n_; ++i) {
      ByteBuffer bytes(kItemBytes);
      for (std::size_t b = 0; b < bytes.size(); ++b) {
        bytes[b] = static_cast<std::uint8_t>((i * 131 + b * 31) & 0xFF);
      }
      store.put(file_name(i), std::move(bytes));
    }
  }

  std::string name() const override { return "synthetic"; }
  std::uint32_t item_count() const override { return n_; }
  std::string file_name(runtime::ItemId item) const override {
    return "syn_" + std::to_string(item);
  }
  void parse(runtime::ItemId, const ByteBuffer& file,
             runtime::HostBuffer& out) const override {
    out.assign(file.begin(), file.end());
  }
  double compare(runtime::ItemId, const gpu::DeviceBuffer& left,
                 runtime::ItemId,
                 const gpu::DeviceBuffer& right) const override {
    std::uint64_t acc = 0;
    for (int p = 0; p < passes_; ++p) {
      for (std::size_t b = 0; b < kItemBytes; b += 8) {
        acc += static_cast<std::uint64_t>(left.data()[b]) *
               static_cast<std::uint64_t>(right.data()[b] + 1 + p);
      }
    }
    return static_cast<double>(acc);
  }
  Bytes slot_size() const override { return kItemBytes; }

  static constexpr std::size_t kItemBytes = 4096;

 private:
  std::uint32_t n_;
  int passes_ = 1;
};

struct ModeResult {
  double wall_seconds = 0.0;
  double pairs_per_sec = 0.0;
  std::uint64_t loads = 0;
  std::uint64_t tiles = 0;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> results;
};

ModeResult run_mode(const runtime::Application& app,
                    storage::MemoryStore& store, bool tile_batching) {
  runtime::NodeRuntime::Config cfg;
  cfg.devices = {gpu::titanx_maxwell()};
  cfg.host_cache_capacity = 64_MiB;
  cfg.cpu_threads = 2;
  cfg.tile_batching = tile_batching;
  runtime::NodeRuntime rt(cfg);
  ModeResult mode;
  std::mutex mutex;
  const auto report = rt.run(app, store, [&](const runtime::PairResult& r) {
    std::scoped_lock lock(mutex);
    mode.results[{r.left, r.right}] = r.score;
  });
  mode.wall_seconds = report.wall_seconds;
  mode.pairs_per_sec =
      report.wall_seconds > 0
          ? static_cast<double>(report.pairs) / report.wall_seconds
          : 0.0;
  mode.loads = report.loads;
  mode.tiles = report.tiles;
  return mode;
}

struct QueueThroughput {
  double single_ops_per_sec = 0.0;
  double bulk_ops_per_sec = 0.0;
};

QueueThroughput measure_queue_throughput() {
  using Clock = std::chrono::steady_clock;
  constexpr int kOps = 400000;
  constexpr std::size_t kBatch = 64;
  QueueThroughput out;
  {
    MpmcQueue<int> q;
    const auto t0 = Clock::now();
    for (int i = 0; i < kOps; ++i) {
      q.push(i);
      benchmark::DoNotOptimize(q.try_pop());
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    out.single_ops_per_sec = kOps / secs;
  }
  {
    MpmcQueue<int> q;
    std::vector<int> in;
    const auto t0 = Clock::now();
    for (int i = 0; i < kOps; i += static_cast<int>(kBatch)) {
      in.assign(kBatch, i);
      q.push_bulk(in);
      benchmark::DoNotOptimize(q.pop_bulk(kBatch));
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    out.bulk_ops_per_sec = kOps / secs;
  }
  return out;
}

// --- peer fetch vs storage load ------------------------------------------

/// Stand-in host cache for the candidate node: always serves the item.
struct BenchProbe final : runtime::HostCacheProbe {
  runtime::ItemId item = 0;
  runtime::HostBuffer bytes;

  bool probe(runtime::ItemId asked, runtime::HostBuffer& out) override {
    if (asked != item) return false;
    out = bytes;
    return true;
  }
};

struct PeerFetchResult {
  double storage_load_us = 0.0;  // store read + parse (the replaced work)
  double peer_fetch_us = 0.0;    // full mediator + chain round trip
};

/// Head-to-head of the §4.1.3 peer-fetch path against the object-store
/// load it replaces, on a real forensics item: a fetch round-trips
/// requester → mediator → candidate → requester through the in-process
/// transport; the storage path re-runs read + image decode.
PeerFetchResult measure_peer_fetch_vs_storage() {
  using Clock = std::chrono::steady_clock;
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 1;
  fc.images_per_camera = 2;
  fc.width = 128;
  fc.height = 96;
  fc.seed = 7;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const runtime::ItemId item = 1;  // mediator_of(1, 2) == node 1

  runtime::HostBuffer parsed;
  app.parse(item, store.read(app.file_name(item)), parsed);
  parsed.resize(app.slot_size());  // slot-sized, like a real host slot

  constexpr int kIters = 1000;
  PeerFetchResult out;
  {
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      runtime::HostBuffer buffer;
      app.parse(item, store.read(app.file_name(item)), buffer);
      benchmark::DoNotOptimize(buffer.data());
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    out.storage_load_us = 1e6 * secs / kIters;
  }
  {
    mesh::InProcessTransport transport(2);
    const auto done = std::make_shared<std::atomic<bool>>(false);
    std::vector<std::unique_ptr<mesh::MeshNode>> nodes;
    for (mesh::NodeId id = 0; id < 2; ++id) {
      mesh::MeshNode::Config mc;
      mc.id = id;
      mc.hop_limit = 2;
      nodes.push_back(
          std::make_unique<mesh::MeshNode>(mc, transport, done));
    }
    BenchProbe probe;
    probe.item = item;
    probe.bytes = parsed;
    nodes[1]->register_probe(&probe);
    for (auto& node : nodes) node->start();

    // Faithful consumer: undo wire compression like the runtime's peer
    // stage, so the comparison includes that cost if the payload ever
    // crosses the transport's threshold.
    const auto fetch_once = [&](mesh::NodeId from) {
      std::promise<runtime::HostBuffer> promise;
      auto future = promise.get_future();
      nodes[from]->fetch(item, [&promise](runtime::PeerPayload payload) {
        promise.set_value(payload.compressed ? lz_decompress(payload.bytes)
                                             : std::move(payload.bytes));
      });
      return future.get();
    };
    fetch_once(1);  // registers node 1 (the holder) as the candidate
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(fetch_once(0).data());
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    out.peer_fetch_us = 1e6 * secs / kIters;

    transport.close();
    for (auto& node : nodes) node->join();
  }
  return out;
}

// --- sharded vs single-lock cache contention ------------------------------

struct ContentionResult {
  unsigned threads = 0;
  double single_lock_pairs_per_sec = 0.0;
  double sharded_pairs_per_sec = 0.0;
  double speedup = 0.0;
};

/// T worker threads hammer a fully resident cache with pair-style accesses
/// (pin two items, release both) — the runtime's compare hot path with the
/// load pipeline factored out. Every item keeps one baseline pin for the
/// duration, the steady state of a busy node (in-flight tiles hold the hot
/// working set), which also makes the two variants do identical LRU work
/// (none). single-lock = the pre-sharding runtime: one SlotCache behind
/// one mutex. sharded = ShardedSlotCache with 16 shards + the lock-free
/// fast path.
ContentionResult measure_cache_contention(unsigned nthreads) {
  using Clock = std::chrono::steady_clock;
  constexpr cache::ItemId kItems = 256;
  constexpr std::uint64_t kPairsPerThread = 60000;

  const auto run_workers_once = [&](auto&& pin_pair) {
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < nthreads; ++t) {
      workers.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) {
        }
        std::uint64_t lcg = 0x9E3779B97F4A7C15ULL * (t + 1);
        for (std::uint64_t i = 0; i < kPairsPerThread; ++i) {
          lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
          const auto a = static_cast<cache::ItemId>((lcg >> 33) % kItems);
          const auto b = static_cast<cache::ItemId>((lcg >> 13) % kItems);
          pin_pair(a, b);
        }
      });
    }
    const auto t0 = Clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return static_cast<double>(nthreads) * kPairsPerThread / secs;
  };
  // Best of two trials: a single trial is at the mercy of whatever else
  // the scheduler runs in its window, and the CI gate compares the two
  // variants' numbers directly.
  const auto run_workers = [&](auto&& pin_pair) {
    const double first = run_workers_once(pin_pair);
    const double second = run_workers_once(pin_pair);
    return std::max(first, second);
  };

  ContentionResult out;
  out.threads = nthreads;
  {
    cache::SlotCache cache({kItems, 4096, "single"});
    std::mutex mutex;
    for (cache::ItemId i = 0; i < kItems; ++i) {
      const auto g = cache.acquire(i, nullptr);
      cache.publish(g.slot);  // writer keeps the baseline pin
    }
    out.single_lock_pairs_per_sec = run_workers([&](cache::ItemId a,
                                                    cache::ItemId b) {
      cache::SlotId sa, sb;
      {
        std::scoped_lock lock(mutex);
        sa = cache.acquire(a, nullptr).slot;
      }
      {
        std::scoped_lock lock(mutex);
        sb = cache.acquire(b, nullptr).slot;
      }
      std::scoped_lock lock(mutex);
      cache.release(sa);
      cache.release(sb);
    });
  }
  {
    cache::ShardedSlotCache cache({kItems, 4096, "sharded", 16, kItems});
    for (cache::ItemId i = 0; i < kItems; ++i) {
      const auto g = cache.acquire(i, nullptr);
      cache.publish(g.slot);  // writer keeps the baseline pin
    }
    out.sharded_pairs_per_sec =
        run_workers([&](cache::ItemId a, cache::ItemId b) {
          const auto sa = cache.acquire(a, nullptr).slot;
          const auto sb = cache.acquire(b, nullptr).slot;
          cache.release(sa);
          cache.release(sb);
        });
  }
  out.speedup = out.single_lock_pairs_per_sec > 0
                    ? out.sharded_pairs_per_sec / out.single_lock_pairs_per_sec
                    : 0.0;
  return out;
}

// --- prefetch pipeline + traversal order ----------------------------------

struct PrefetchVariant {
  double pairs_per_sec = 0.0;
  double wall_seconds = 0.0;
  double stall_seconds = 0.0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t loads = 0;
};

struct PrefetchResult {
  PrefetchVariant off;  // prefetch_tiles = 0 — today's schedule
  PrefetchVariant on;   // prefetch_tiles = 7 — look-ahead pipeline
  double speedup = 0.0;
};

/// Shared load-bound runtime configuration: device cache half the item
/// population, host cache off, every miss pays the throttled store's
/// 250 us latency on the single I/O thread, and ONE compute slot per
/// device (job_limit 1) so without a prefetch window loads and kernels
/// strictly alternate. Compute passes are tuned so kernel time roughly
/// balances load time — the regime where overlap pays.
runtime::NodeRuntime::Config load_bound_config() {
  runtime::NodeRuntime::Config cfg;
  cfg.devices = {gpu::titanx_maxwell()};
  cfg.host_cache_capacity = 0;
  cfg.device_cache_capacity = 64 * SyntheticApp::kItemBytes;
  cfg.cpu_threads = 2;
  cfg.cache_shards = 1;
  cfg.job_limit_per_worker = 1;
  cfg.max_leaf_pairs = 16;
  cfg.leaf_order = dnc::Traversal::kHilbert;
  return cfg;
}

constexpr std::uint32_t kPrefetchItems = 128;
constexpr int kPrefetchComparePasses = 50;
constexpr std::uint64_t kStoreLatencyUs = 250;
constexpr std::uint32_t kPrefetchWindow = 7;

PrefetchVariant run_prefetch_variant(std::uint32_t window) {
  storage::MemoryStore mem;
  SyntheticApp app(kPrefetchItems, mem, kPrefetchComparePasses);
  storage::ThrottledStore store(mem, kStoreLatencyUs);
  auto cfg = load_bound_config();
  cfg.prefetch_tiles = window;
  runtime::NodeRuntime rt(cfg);
  const auto report = rt.run(app, store, [](const runtime::PairResult&) {});
  PrefetchVariant out;
  out.wall_seconds = report.wall_seconds;
  out.pairs_per_sec =
      report.wall_seconds > 0
          ? static_cast<double>(report.pairs) / report.wall_seconds
          : 0.0;
  out.stall_seconds = report.stall_seconds;
  out.prefetch_hits = report.prefetch_hits;
  out.loads = report.loads;
  return out;
}

/// Head-to-head of the look-ahead pipeline against today's schedule on a
/// load-bound workload. Best of two trials per variant (the CI gate
/// compares the numbers directly and a single trial is at the scheduler's
/// mercy); the kept trial's stall/hit counters travel with it.
PrefetchResult measure_prefetch_overlap() {
  const auto best_of_two = [](std::uint32_t window) {
    const PrefetchVariant first = run_prefetch_variant(window);
    const PrefetchVariant second = run_prefetch_variant(window);
    return first.pairs_per_sec >= second.pairs_per_sec ? first : second;
  };
  PrefetchResult out;
  out.off = best_of_two(0);
  out.on = best_of_two(kPrefetchWindow);
  out.speedup = out.off.pairs_per_sec > 0
                    ? out.on.pairs_per_sec / out.off.pairs_per_sec
                    : 0.0;
  return out;
}

// --- instrumentation overhead ---------------------------------------------

struct OverheadResult {
  double on_pairs_per_sec = 0.0;   // best trial, informational
  double off_pairs_per_sec = 0.0;  // best trial, informational
  double ratio = 0.0;  // max(median paired ratio, best-of); CI gates >= 0.98
};

/// Paired on/off throughput comparison with a noise-robust gate
/// statistic. The statistic combines two estimators, each robust to a
/// different noise shape: the MEDIAN of per-trial ratios (adjacent on/off
/// pairs with alternating order — adjacent runs share the machine's
/// momentary speed, which swings far more than 2% on a busy runner) and
/// the ratio of best-trial throughputs (peaks converge to the machine's
/// clean-phase ceiling as trials accumulate). A persistent regression
/// fails both — every pair loses AND the armed peak stays under the
/// disarmed peak — so the gate takes the max of the two.
template <typename RunOnce>
OverheadResult measure_overhead(RunOnce run_once) {
  constexpr int kTrialsPerRound = 7;
  constexpr int kMaxRounds = 4;
  OverheadResult out;
  run_once(true);  // warm-up: page in the store and prime the allocator
  std::vector<double> ratios;
  // Adaptive rounds: when the median still looks like a regression, gather
  // another round of pairs — all ratios accumulate, so a transient noise
  // phase that poisoned one round gets outvoted by later clean rounds,
  // while a genuine persistent regression keeps losing every round and can
  // never be sampled into passing.
  for (int round = 0; round < kMaxRounds; ++round) {
    for (int trial = 0; trial < kTrialsPerRound; ++trial) {
      const bool on_first = (trial & 1) != 0;
      const double first = run_once(on_first);
      const double second = run_once(!on_first);
      const double on = on_first ? first : second;
      const double off = on_first ? second : first;
      out.off_pairs_per_sec = std::max(out.off_pairs_per_sec, off);
      out.on_pairs_per_sec = std::max(out.on_pairs_per_sec, on);
      if (off > 0) ratios.push_back(on / off);
    }
    std::vector<double> sorted = ratios;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
    // A persistent regression fails both estimators: every pair loses
    // (median) and the armed variant's peak stays under the disarmed peak
    // (best-of). Noise rarely depresses both at once, so gate on the max.
    const double best_of = out.off_pairs_per_sec > 0
                               ? out.on_pairs_per_sec / out.off_pairs_per_sec
                               : 0.0;
    out.ratio = std::max(median, best_of);
    if (out.ratio >= 0.99) break;
  }
  return out;
}

/// Metrics layer armed vs disarmed (Config::telemetry), on the
/// cache-friendly synthetic workload where per-pair overheads dominate —
/// the worst case for instrument cost.
OverheadResult measure_telemetry_overhead() {
  constexpr std::uint32_t kItems = 512;
  storage::MemoryStore store;
  SyntheticApp app(kItems, store);
  return measure_overhead([&](bool telemetry) {
    runtime::NodeRuntime::Config cfg;
    cfg.devices = {gpu::titanx_maxwell()};
    cfg.host_cache_capacity = 64_MiB;
    cfg.cpu_threads = 2;
    cfg.telemetry = telemetry;
    runtime::NodeRuntime rt(cfg);
    const auto report =
        rt.run(app, store, [](const runtime::PairResult&) {});
    return report.wall_seconds > 0
               ? static_cast<double>(report.pairs) / report.wall_seconds
               : 0.0;
  });
}

/// Causal tracing armed (trace_sample_n = 1, every tile sampled — far
/// denser than the production every-Nth setting) vs off, same worst-case
/// workload. Sampled spans hash ids, stamp clocks and append to the
/// per-node ring on every tile transition, so this bounds the cost the
/// --trace-sample flag can add; CI gates the ratio >= 0.98 (DESIGN.md
/// section 16).
OverheadResult measure_tracing_overhead() {
  constexpr std::uint32_t kItems = 512;
  storage::MemoryStore store;
  SyntheticApp app(kItems, store);
  return measure_overhead([&](bool tracing) {
    telemetry::SpanLog spans(0);
    runtime::NodeRuntime::Config cfg;
    cfg.devices = {gpu::titanx_maxwell()};
    cfg.host_cache_capacity = 64_MiB;
    cfg.cpu_threads = 2;
    cfg.span_log = tracing ? &spans : nullptr;
    cfg.trace_sample_n = tracing ? 1 : 0;
    runtime::NodeRuntime rt(cfg);
    const auto report =
        rt.run(app, store, [](const runtime::PairResult&) {});
    return report.wall_seconds > 0
               ? static_cast<double>(report.pairs) / report.wall_seconds
               : 0.0;
  });
}

struct TraversalResult {
  std::uint64_t depth_first_loads = 0;
  std::uint64_t hilbert_loads = 0;
  std::uint64_t row_major_loads = 0;
};

/// Load-pipeline executions per leaf traversal order on the same
/// cache-starved workload (no store throttle — only the load count
/// matters, and a serial schedule keeps it deterministic). Row-major
/// re-walks the full column span every tile row; the curve orders keep
/// consecutive tiles on shared rows/columns, so the small cache absorbs
/// most transitions.
TraversalResult measure_traversal_loads() {
  const auto loads_for = [](dnc::Traversal order) {
    storage::MemoryStore store;
    SyntheticApp app(kPrefetchItems, store);
    auto cfg = load_bound_config();
    cfg.cpu_threads = 1;
    cfg.leaf_order = order;
    runtime::NodeRuntime rt(cfg);
    return rt.run(app, store, [](const runtime::PairResult&) {}).loads;
  };
  TraversalResult out;
  out.depth_first_loads = loads_for(dnc::Traversal::kDepthFirst);
  out.hilbert_loads = loads_for(dnc::Traversal::kHilbert);
  out.row_major_loads = loads_for(dnc::Traversal::kRowMajor);
  return out;
}

/// Run the execution-mode comparison and write BENCH_micro.json.
void run_mode_comparison_and_emit_json() {
  constexpr std::uint32_t kItems = 512;
  storage::MemoryStore store;
  SyntheticApp app(kItems, store);

  const ModeResult per_pair = run_mode(app, store, /*tile_batching=*/false);
  const ModeResult tiled = run_mode(app, store, /*tile_batching=*/true);

  bool results_match = per_pair.results.size() == tiled.results.size();
  if (results_match) {
    for (const auto& [pair, score] : per_pair.results) {
      const auto it = tiled.results.find(pair);
      if (it == tiled.results.end() ||
          std::abs(it->second - score) > 1e-9) {
        results_match = false;
        break;
      }
    }
  }
  const double speedup = per_pair.pairs_per_sec > 0
                             ? tiled.pairs_per_sec / per_pair.pairs_per_sec
                             : 0.0;
  const QueueThroughput queue = measure_queue_throughput();
  const PeerFetchResult peer = measure_peer_fetch_vs_storage();
  const std::vector<ContentionResult> contention = {
      measure_cache_contention(2), measure_cache_contention(8)};
  const PrefetchResult prefetch = measure_prefetch_overlap();
  const TraversalResult traversal = measure_traversal_loads();
  const OverheadResult telemetry = measure_telemetry_overhead();
  const OverheadResult tracing = measure_tracing_overhead();

  std::printf("\n-- execution mode head-to-head (n=%u, %zu pairs) --\n",
              kItems, per_pair.results.size());
  std::printf("per-pair:     %12.0f pairs/s  (loads=%" PRIu64 ")\n",
              per_pair.pairs_per_sec, per_pair.loads);
  std::printf("tile-batched: %12.0f pairs/s  (loads=%" PRIu64
              ", tiles=%" PRIu64 ")\n",
              tiled.pairs_per_sec, tiled.loads, tiled.tiles);
  std::printf("speedup: %.2fx  results_match: %s\n", speedup,
              results_match ? "yes" : "NO");
  std::printf("queue: single %.0f ops/s, bulk(64) %.0f ops/s (%.2fx)\n",
              queue.single_ops_per_sec, queue.bulk_ops_per_sec,
              queue.bulk_ops_per_sec / queue.single_ops_per_sec);
  std::printf("peer fetch: %.1f us vs storage load %.1f us (%.2fx)\n",
              peer.peer_fetch_us, peer.storage_load_us,
              peer.peer_fetch_us > 0
                  ? peer.storage_load_us / peer.peer_fetch_us
                  : 0.0);
  for (const auto& c : contention) {
    std::printf(
        "cache contention @%u threads: sharded %.0f pairs/s vs "
        "single-lock %.0f pairs/s (%.2fx)\n",
        c.threads, c.sharded_pairs_per_sec, c.single_lock_pairs_per_sec,
        c.speedup);
  }
  std::printf(
      "prefetch pipeline (load-bound, %u us store): off %.0f pairs/s "
      "stall %.3fs | on(W=%u) %.0f pairs/s stall %.3fs, %" PRIu64
      " prefetch hits (%.2fx)\n",
      static_cast<unsigned>(kStoreLatencyUs), prefetch.off.pairs_per_sec,
      prefetch.off.stall_seconds, kPrefetchWindow,
      prefetch.on.pairs_per_sec, prefetch.on.stall_seconds,
      prefetch.on.prefetch_hits, prefetch.speedup);
  std::printf(
      "traversal loads (64-slot cache, %u items): hilbert %" PRIu64
      ", depth-first %" PRIu64 ", row-major %" PRIu64 "\n",
      kPrefetchItems, traversal.hilbert_loads, traversal.depth_first_loads,
      traversal.row_major_loads);
  std::printf(
      "telemetry overhead: on %.0f pairs/s vs off %.0f pairs/s "
      "(ratio %.3f; gate >= 0.98)\n",
      telemetry.on_pairs_per_sec, telemetry.off_pairs_per_sec,
      telemetry.ratio);
  std::printf(
      "tracing overhead (sample every tile): on %.0f pairs/s vs off "
      "%.0f pairs/s (ratio %.3f; gate >= 0.98)\n",
      tracing.on_pairs_per_sec, tracing.off_pairs_per_sec, tracing.ratio);

  FILE* f = std::fopen("BENCH_micro.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_micro.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workload\": {\"items\": %u, \"pairs\": %zu},\n", kItems,
               per_pair.results.size());
  std::fprintf(f,
               "  \"per_pair\": {\"pairs_per_sec\": %.1f, "
               "\"wall_seconds\": %.6f, \"loads\": %" PRIu64 "},\n",
               per_pair.pairs_per_sec, per_pair.wall_seconds, per_pair.loads);
  std::fprintf(f,
               "  \"tile_batched\": {\"pairs_per_sec\": %.1f, "
               "\"wall_seconds\": %.6f, \"loads\": %" PRIu64
               ", \"tiles\": %" PRIu64 "},\n",
               tiled.pairs_per_sec, tiled.wall_seconds, tiled.loads,
               tiled.tiles);
  std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"results_match\": %s,\n",
               results_match ? "true" : "false");
  std::fprintf(f, "  \"loads_match\": %s,\n",
               per_pair.loads == tiled.loads ? "true" : "false");
  std::fprintf(f,
               "  \"queue\": {\"single_ops_per_sec\": %.1f, "
               "\"bulk_ops_per_sec\": %.1f, \"bulk_batch\": 64},\n",
               queue.single_ops_per_sec, queue.bulk_ops_per_sec);
  std::fprintf(f,
               "  \"peer_fetch\": {\"fetch_us\": %.2f, "
               "\"storage_load_us\": %.2f, \"speedup\": %.3f},\n",
               peer.peer_fetch_us, peer.storage_load_us,
               peer.peer_fetch_us > 0
                   ? peer.storage_load_us / peer.peer_fetch_us
                   : 0.0);
  std::fprintf(
      f,
      "  \"prefetch\": {\"store_latency_us\": %u, \"window\": %u,\n"
      "    \"off\": {\"pairs_per_sec\": %.1f, \"wall_seconds\": %.6f, "
      "\"stall_seconds\": %.6f, \"prefetch_hits\": %" PRIu64
      ", \"loads\": %" PRIu64 "},\n"
      "    \"on\": {\"pairs_per_sec\": %.1f, \"wall_seconds\": %.6f, "
      "\"stall_seconds\": %.6f, \"prefetch_hits\": %" PRIu64
      ", \"loads\": %" PRIu64 "},\n"
      "    \"speedup\": %.3f},\n",
      static_cast<unsigned>(kStoreLatencyUs), kPrefetchWindow,
      prefetch.off.pairs_per_sec,
      prefetch.off.wall_seconds, prefetch.off.stall_seconds,
      prefetch.off.prefetch_hits, prefetch.off.loads,
      prefetch.on.pairs_per_sec, prefetch.on.wall_seconds,
      prefetch.on.stall_seconds, prefetch.on.prefetch_hits,
      prefetch.on.loads, prefetch.speedup);
  std::fprintf(f,
               "  \"traversal\": {\"hilbert_loads\": %" PRIu64
               ", \"depth_first_loads\": %" PRIu64
               ", \"row_major_loads\": %" PRIu64 "},\n",
               traversal.hilbert_loads, traversal.depth_first_loads,
               traversal.row_major_loads);
  std::fprintf(f,
               "  \"telemetry\": {\"on_pairs_per_sec\": %.1f, "
               "\"off_pairs_per_sec\": %.1f, \"ratio\": %.4f},\n",
               telemetry.on_pairs_per_sec, telemetry.off_pairs_per_sec,
               telemetry.ratio);
  std::fprintf(f,
               "  \"tracing\": {\"on_pairs_per_sec\": %.1f, "
               "\"off_pairs_per_sec\": %.1f, \"ratio\": %.4f},\n",
               tracing.on_pairs_per_sec, tracing.off_pairs_per_sec,
               tracing.ratio);
  std::fprintf(f, "  \"cache_contention\": [\n");
  for (std::size_t i = 0; i < contention.size(); ++i) {
    const auto& c = contention[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"single_lock_pairs_per_sec\": %.1f, "
                 "\"sharded_pairs_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
                 c.threads, c.single_lock_pairs_per_sec,
                 c.sharded_pairs_per_sec, c.speedup,
                 i + 1 < contention.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_micro.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_mode_comparison_and_emit_json();
  return 0;
}

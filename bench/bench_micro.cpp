// Microbenchmarks (google-benchmark) for Rocket's hot substrate paths:
// slot-cache operations, Chase–Lev deque throughput, pair-space math and
// the DES event loop. These guard the constants that make full-scale
// figure regeneration tractable (tens of millions of virtual events).

#include <benchmark/benchmark.h>

#include "cache/slot_cache.hpp"
#include "common/rng.hpp"
#include "dnc/pair_space.hpp"
#include "sim/primitives.hpp"
#include "sim/process.hpp"
#include "steal/deque.hpp"

namespace {

using namespace rocket;

void BM_SlotCacheHit(benchmark::State& state) {
  cache::SlotCache cache({64, 1_MB, "bench"});
  for (cache::ItemId i = 0; i < 64; ++i) {
    const auto g = cache.acquire(i, nullptr);
    cache.publish(g.slot);
    cache.release(g.slot);
  }
  cache::ItemId item = 0;
  for (auto _ : state) {
    const auto g = cache.acquire(item, nullptr);
    benchmark::DoNotOptimize(g.slot);
    cache.release(g.slot);
    item = (item + 1) & 63;
  }
}
BENCHMARK(BM_SlotCacheHit);

void BM_SlotCacheMissEvict(benchmark::State& state) {
  cache::SlotCache cache({64, 1_MB, "bench"});
  cache::ItemId item = 0;
  for (auto _ : state) {
    const auto g = cache.acquire(item++, nullptr);
    cache.publish(g.slot);
    cache.release(g.slot);
  }
}
BENCHMARK(BM_SlotCacheMissEvict);

void BM_ChaseLevOwner(benchmark::State& state) {
  steal::ChaseLevDeque<int> deque;
  int value = 7;
  for (auto _ : state) {
    deque.push(&value);
    benchmark::DoNotOptimize(deque.pop());
  }
}
BENCHMARK(BM_ChaseLevOwner);

void BM_PairCount(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    const dnc::Region region{
        static_cast<dnc::ItemIndex>(rng.uniform_index(1000)),
        static_cast<dnc::ItemIndex>(1000 + rng.uniform_index(4000)),
        static_cast<dnc::ItemIndex>(rng.uniform_index(1000)),
        static_cast<dnc::ItemIndex>(1000 + rng.uniform_index(4000)), 0};
    benchmark::DoNotOptimize(dnc::count_pairs(region));
  }
}
BENCHMARK(BM_PairCount);

void BM_RegionSplit(benchmark::State& state) {
  const dnc::Region root = dnc::root_region(4980);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnc::split(root));
  }
}
BENCHMARK(BM_RegionSplit);

sim::Process ping(sim::Simulation&, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await sim::delay(1e-6);
  }
}

void BM_SimEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    spawn(sim, ping(sim, 1000));
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimEventLoop);

void BM_LognormalSample(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_from_moments(564.3, 348.0));
  }
}
BENCHMARK(BM_LognormalSample);

}  // namespace

BENCHMARK_MAIN();

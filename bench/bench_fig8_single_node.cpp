// Regenerates Fig 8: per-resource busy time on one node (TitanX Maxwell)
// for each application, alongside the measured run time and the modelled
// lower bound Tmin.
//
// Shape targets (paper): GPU time dominates every app; the measured run
// time ≈ the GPU busy time (asynchronous overlap hides CPU/transfer/I/O);
// single-node efficiencies 94.6% (forensics), 88.5% (bioinformatics),
// 99.2% (microscopy).

#include <cstdio>

#include "bench_util.hpp"

using namespace rocket;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  TableWriter table("Fig 8: single-node per-resource busy time (hours)");
  table.set_header({"app", "n", "GPU(pre)", "GPU(cmp)", "CPU", "CPU->GPU",
                    "GPU->CPU", "IO", "run time", "Tmin", "efficiency", "R"});

  const apps::AppModel models[3] = {apps::forensics_model(),
                                    apps::bioinformatics_model(),
                                    apps::microscopy_model()};
  for (const auto& app : models) {
    cluster::ClusterConfig cfg = cluster::das5_cluster(1);
    cfg.seed = env.seed;
    const std::uint32_t n = env.n_for(app);
    cluster::WorkloadConfig wl = cluster::scaled_workload(app, n, cfg);
    const auto m = cluster::SimCluster(cfg, wl).run();

    auto hours = [](double s) { return TableWriter::num(s / 3600.0, 3); };
    table.add_row({app.name, TableWriter::integer(n),
                   hours(m.busy_gpu_preprocess), hours(m.busy_gpu_comparison),
                   hours(m.busy_cpu), hours(m.busy_h2d), hours(m.busy_d2h),
                   hours(m.busy_io), hours(m.makespan), hours(m.t_min),
                   TableWriter::percent(m.efficiency),
                   TableWriter::num(m.reuse_factor, 2)});
  }
  env.emit(table, "fig8_single_node.csv");

  std::printf("Paper reference: run time tracks GPU busy time; efficiency "
              "94.6%% / 88.5%% / 99.2%%; forensics Tmin ~3.8 h.\n");
  return 0;
}

// Regenerates Fig 9: system efficiency and the reuse factor R versus the
// local cache size S on one node, for all three applications.
//
// Following §6.3: for S below the GPU memory (11 GB) the host cache is
// disabled and the device cache is limited to S; above it the device cache
// is the full GPU and the host cache grows to S.
//
// Shape targets: microscopy is flat (its data always fits); forensics and
// bioinformatics degrade as S shrinks, with R roughly inversely
// proportional to S; bioinformatics at 6 GB still reaches ~50% efficiency.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "cache/slot_cache.hpp"

using namespace rocket;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  const double device_limit_gb = 11.1;
  const std::vector<double> sweep_gb = env.quick
      ? std::vector<double>{2, 6, 11.1, 20, 40}
      : std::vector<double>{1, 2, 3, 4, 6, 8, 11.1, 15, 20, 30, 40};

  TableWriter table("Fig 9: efficiency and R vs local cache size (1 node)");
  table.set_header({"app", "cache S (GB)", "region", "device slots",
                    "host slots", "efficiency", "R"});

  const apps::AppModel models[3] = {apps::forensics_model(),
                                    apps::bioinformatics_model(),
                                    apps::microscopy_model()};
  for (const auto& app : models) {
    for (const double s_gb : sweep_gb) {
      cluster::ClusterConfig cfg = cluster::das5_cluster(1);
      cfg.seed = env.seed;
      const bool device_region = s_gb < device_limit_gb;
      if (device_region) {
        cfg.host_cache_enabled = false;
        cfg.device_cache_capacity_override = gigabytes(s_gb);
      } else {
        cfg.nodes[0].host_cache_capacity = gigabytes(s_gb);
      }
      const std::uint32_t n = env.n_for(app);
      // Note: scaled_workload shrinks capacities proportionally when n is
      // reduced, preserving the dataset:cache ratio of each sweep point.
      cluster::WorkloadConfig wl = cluster::scaled_workload(app, n, cfg);
      const auto m = cluster::SimCluster(cfg, wl).run();

      const auto dev_slots = rocket::cache::slots_for_capacity(
          cfg.device_cache_capacity_override.value_or(
              gpu::titanx_maxwell().cache_capacity()),
          wl.app.slot_size, wl.n);
      const std::uint32_t host_slots =
          cfg.host_cache_enabled
              ? rocket::cache::slots_for_capacity(
                    cfg.nodes[0].host_cache_capacity, wl.app.slot_size, wl.n)
              : 0;
      table.add_row({app.name, TableWriter::num(s_gb, 1),
                     std::string(device_region ? "device-limit" : "host-limit"),
                     TableWriter::integer(dev_slots),
                     TableWriter::integer(host_slots),
                     TableWriter::percent(m.efficiency),
                     TableWriter::num(m.reuse_factor, 1)});
    }
  }
  env.emit(table, "fig9_cache_sweep.csv");

  std::printf("Paper reference: microscopy flat ~99%%; forensics/bioinfo "
              "efficiency degrades gradually as S shrinks; R rises as ~1/S; "
              "bioinformatics at 6 GB: eff ~52.5%%.\n");
  return 0;
}

// Regenerates Fig 14: processing throughput over time (rolling one-minute
// average, pairs/second) per GPU during the heterogeneous microscopy run.
//
// Shape targets: all seven GPUs are busy until the very end (balanced
// finish); faster cards (RTX2080Ti) sustain a proportionally higher rate
// than slower ones (K20m, GTX980); rates fluctuate due to the irregular
// comparison times (Fig 7 right).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"

using namespace rocket;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  cluster::ClusterConfig cfg = cluster::heterogeneous_cluster();
  cfg.seed = env.seed;
  cfg.record_completions = true;
  const apps::AppModel app = apps::microscopy_model();
  cluster::WorkloadConfig wl = cluster::scaled_workload(app, env.n_for(app), cfg);
  const auto m = cluster::SimCluster(cfg, wl).run();

  std::printf("== Fig 14: heterogeneous microscopy run, makespan %s ==\n\n",
              format_seconds(m.makespan).c_str());

  // Rolling one-minute throughput per GPU, sampled every 1/20th of the run.
  const double step = m.makespan / 20.0;
  TableWriter table("throughput over time (pairs/s, rolling 60 s window)");
  std::vector<std::string> header{"t"};
  std::vector<RollingThroughput> rates;
  for (const auto& g : m.gpus) {
    header.push_back(g.device_name + "#" + std::to_string(g.node));
    RollingThroughput r(60.0);
    for (const double t : g.completion_times) r.record(t);
    rates.push_back(std::move(r));
  }
  table.set_header(header);
  for (double t = step; t <= m.makespan + 1e-9; t += step) {
    std::vector<std::string> row{format_seconds(t)};
    for (const auto& r : rates) {
      row.push_back(TableWriter::num(r.rate_at(t), 2));
    }
    table.add_row(std::move(row));
  }
  env.emit(table, "fig14_timeline.csv");

  // Balanced-finish check: last completion per GPU.
  TableWriter finish("per-GPU finish times and totals");
  finish.set_header({"gpu", "relative speed", "pairs", "last completion",
                     "share of makespan"});
  for (std::size_t i = 0; i < m.gpus.size(); ++i) {
    const auto& g = m.gpus[i];
    const double last =
        g.completion_times.empty() ? 0.0 : g.completion_times.back();
    finish.add_row({g.device_name + "#" + std::to_string(g.node),
                    TableWriter::num(g.relative_speed, 2),
                    TableWriter::integer(static_cast<long long>(g.pairs_done)),
                    format_seconds(last),
                    TableWriter::percent(last / m.makespan)});
  }
  env.emit(finish, "fig14_finish.csv");

  std::printf("Paper reference: all GPUs finish at roughly the same time; "
              "throughput ordering follows device speed.\n");
  return 0;
}

// Regenerates Fig 15: the large-scale Cartesius experiment — the
// bioinformatics application over all 6818 reference bacteria proteomes,
// scaling from 1 node (2 K40m GPUs) to 48 nodes (96 GPUs).
//
// Shape targets (paper): run time drops from ~16 h to ~20 min; speedup is
// super-linear throughout (distributed cache); R falls from 31.9 at one
// node to 2.7 at 48 nodes; efficiency rises with the node count.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace rocket;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const bench::BenchEnv env(opts);

  const apps::AppModel app = apps::bioinformatics_model(6818);
  const std::vector<std::uint32_t> node_counts =
      env.quick ? std::vector<std::uint32_t>{1, 16, 48}
                : std::vector<std::uint32_t>{1, 8, 16, 24, 32, 40, 48};

  TableWriter table(
      "Fig 15: Cartesius large-scale run (bioinformatics, 6818 proteomes)");
  table.set_header({"nodes", "GPUs", "run time (h)", "speedup", "R",
                    "efficiency", "I/O (MB/s)"});

  double base_runtime = 0.0;
  for (const auto p : node_counts) {
    cluster::ClusterConfig cfg = cluster::cartesius_cluster(p);
    cfg.seed = env.seed;
    cluster::WorkloadConfig wl =
        cluster::scaled_workload(app, env.n_for(app), cfg);
    const auto m = cluster::SimCluster(cfg, wl).run();
    if (p == node_counts.front()) base_runtime = m.makespan * p;
    table.add_row({TableWriter::integer(p), TableWriter::integer(2 * p),
                   TableWriter::num(m.makespan / 3600.0, 2),
                   bench::speedup_str(base_runtime, m.makespan),
                   TableWriter::num(m.reuse_factor, 1),
                   TableWriter::percent(m.efficiency),
                   TableWriter::num(m.avg_io_usage / 1e6, 1)});
  }
  env.emit(table, "fig15_large_scale.csv");

  std::printf("Paper reference: 16 h at 1 node -> <20 min at 48 nodes; "
              "super-linear speedup; R 31.9 -> 2.7.\n");
  return 0;
}

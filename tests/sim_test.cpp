#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/primitives.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rocket::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_fn(3.0, [&] { order.push_back(3); });
  sim.schedule_fn(1.0, [&] { order.push_back(1); });
  sim.schedule_fn(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, SameTimestampIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_fn(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule_fn(1.0, [&] { ++fired; });
  sim.schedule_fn(5.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventLimitThrows) {
  Simulation sim;
  sim.set_event_limit(10);
  std::function<void()> loop = [&] { sim.schedule_fn(0.0, loop); };
  sim.schedule_fn(0.0, loop);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Process sleeper(std::vector<double>* log, Simulation* sim, Time dt) {
  co_await delay(dt);
  log->push_back(sim->now());
}

TEST(Process, DelayAdvancesVirtualTime) {
  Simulation sim;
  std::vector<double> log;
  spawn(sim, sleeper(&log, &sim, 2.5));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 2.5);
}

[[maybe_unused]] Process parent(std::vector<std::string>* log,
                                Simulation* sim) {
  log->push_back("parent-start");
  Process child = sleeper(nullptr, sim, 0.0);  // placeholder; replaced below
  (void)child;
  co_await delay(1.0);
  log->push_back("parent-end");
}

Process child_proc(std::vector<std::string>* log, Time dt) {
  co_await delay(dt);
  log->push_back("child-done");
}

Process joining_parent(std::vector<std::string>* log) {
  log->push_back("start");
  co_await child_proc(log, 3.0);  // await_transform auto-starts the child
  log->push_back("joined");
}

TEST(Process, JoinChildWaitsForCompletion) {
  Simulation sim;
  std::vector<std::string> log;
  spawn(sim, joining_parent(&log));
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"start", "child-done", "joined"}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

Process thrower() {
  co_await delay(1.0);
  throw std::runtime_error("boom");
}

Process catcher(bool* caught) {
  try {
    co_await thrower();
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(Process, ExceptionPropagatesToJoiner) {
  Simulation sim;
  bool caught = false;
  spawn(sim, catcher(&caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Process, FailedFlagOnDetachedProcess) {
  Simulation sim;
  Process p = spawn(sim, thrower());
  sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_TRUE(p.failed());
  EXPECT_THROW(p.rethrow_if_failed(), std::runtime_error);
}

Process wait_event(Event* ev, std::vector<double>* log, Simulation* sim) {
  co_await *ev;
  log->push_back(sim->now());
}

Process trigger_later(Event* ev) {
  co_await delay(4.0);
  ev->trigger();
}

TEST(Event, BroadcastWakesAllWaiters) {
  Simulation sim;
  Event ev(sim);
  std::vector<double> log;
  spawn(sim, wait_event(&ev, &log, &sim));
  spawn(sim, wait_event(&ev, &log, &sim));
  spawn(sim, trigger_later(&ev));
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0], 4.0);
  EXPECT_DOUBLE_EQ(log[1], 4.0);
}

TEST(Event, AwaitAfterTriggerIsImmediate) {
  Simulation sim;
  Event ev(sim);
  ev.trigger();
  std::vector<double> log;
  spawn(sim, wait_event(&ev, &log, &sim));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 0.0);
}

Process worker_arrives(WaitGroup* wg, Time dt) {
  co_await delay(dt);
  wg->arrive();
}

Process wait_group_waiter(WaitGroup* wg, double* done_at, Simulation* sim) {
  co_await *wg;
  *done_at = sim->now();
}

TEST(WaitGroup, JoinsAllArrivals) {
  Simulation sim;
  WaitGroup wg(sim, 3);
  double done_at = -1;
  spawn(sim, wait_group_waiter(&wg, &done_at, &sim));
  spawn(sim, worker_arrives(&wg, 1.0));
  spawn(sim, worker_arrives(&wg, 5.0));
  spawn(sim, worker_arrives(&wg, 2.0));
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

Process resource_user(Resource* res, std::vector<std::pair<double, double>>* spans,
                      Simulation* sim, Time hold) {
  co_await res->acquire();
  const double start = sim->now();
  co_await delay(hold);
  res->release();
  spans->emplace_back(start, sim->now());
}

TEST(Resource, SerialisesBeyondCapacity) {
  Simulation sim;
  Resource res(sim, 2);
  std::vector<std::pair<double, double>> spans;
  for (int i = 0; i < 4; ++i) {
    spawn(sim, resource_user(&res, &spans, &sim, 10.0));
  }
  sim.run();
  ASSERT_EQ(spans.size(), 4u);
  // Two run [0,10], two run [10,20].
  int early = 0, late = 0;
  for (const auto& [start, end] : spans) {
    if (start == 0.0) ++early;
    if (start == 10.0) ++late;
    EXPECT_DOUBLE_EQ(end - start, 10.0);
  }
  EXPECT_EQ(early, 2);
  EXPECT_EQ(late, 2);
  // Busy integral: 2 units × 10 s + 2 units × 10 s = 40 resource-seconds.
  EXPECT_DOUBLE_EQ(res.busy_time(), 40.0);
}

[[maybe_unused]] Process big_then_small(Resource* res,
                                        std::vector<int>* order, int id,
                                        std::uint64_t amount) {
  co_await res->acquire(amount);
  order->push_back(id);
  res->release(amount);
}

TEST(Resource, FifoNoOvertaking) {
  Simulation sim;
  Resource res(sim, 4);
  std::vector<int> order;

  // Occupy the whole resource until t=1.
  spawn(sim, [](Resource* r) -> Process {
    co_await r->acquire(4);
    co_await delay(1.0);
    r->release(4);
  }(&res));

  // A large request queues first, then a small one; the small one must NOT
  // overtake even though it would fit earlier.
  spawn(sim, [](Resource* r, std::vector<int>* ord) -> Process {
    co_await delay(0.1);
    co_await r->acquire(4);
    ord->push_back(1);
    co_await delay(1.0);
    r->release(4);
  }(&res, &order));
  spawn(sim, [](Resource* r, std::vector<int>* ord) -> Process {
    co_await delay(0.2);
    co_await r->acquire(1);
    ord->push_back(2);
    r->release(1);
  }(&res, &order));

  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

Process mailbox_producer(Mailbox<int>* box, int count) {
  for (int i = 0; i < count; ++i) {
    co_await delay(1.0);
    box->send(i);
  }
}

Process mailbox_consumer(Mailbox<int>* box, std::vector<int>* got, int count) {
  for (int i = 0; i < count; ++i) {
    got->push_back(co_await box->recv());
  }
}

TEST(Mailbox, FifoDelivery) {
  Simulation sim;
  Mailbox<int> box(sim);
  std::vector<int> got;
  spawn(sim, mailbox_consumer(&box, &got, 5));
  spawn(sim, mailbox_producer(&box, 5));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Mailbox, BufferedBeforeReceiverArrives) {
  Simulation sim;
  Mailbox<std::string> box(sim);
  box.send("a");
  box.send("b");
  std::vector<std::string> got;
  spawn(sim, [](Mailbox<std::string>* b, std::vector<std::string>* g) -> Process {
    g->push_back(co_await b->recv());
    g->push_back(co_await b->recv());
  }(&box, &got));
  sim.run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

Process transfer_task(SharedBandwidth* link, Bytes bytes, double* done_at,
                      Simulation* sim, Time start_delay = 0.0) {
  co_await delay(start_delay);
  co_await link->transfer(bytes);
  *done_at = sim->now();
}

TEST(SharedBandwidth, SingleTransferAtFullRate) {
  Simulation sim;
  SharedBandwidth link(sim, 100.0);  // 100 B/s
  double done = 0;
  spawn(sim, transfer_task(&link, 500, &done, &sim));
  sim.run();
  EXPECT_NEAR(done, 5.0, 1e-9);
}

TEST(SharedBandwidth, TwoTransfersShareFairly) {
  Simulation sim;
  SharedBandwidth link(sim, 100.0);
  double done_a = 0, done_b = 0;
  spawn(sim, transfer_task(&link, 500, &done_a, &sim));
  spawn(sim, transfer_task(&link, 500, &done_b, &sim));
  sim.run();
  // Both share 100 B/s → each effectively 50 B/s → 10 s.
  EXPECT_NEAR(done_a, 10.0, 1e-6);
  EXPECT_NEAR(done_b, 10.0, 1e-6);
}

TEST(SharedBandwidth, LateArrivalSlowsExisting) {
  Simulation sim;
  SharedBandwidth link(sim, 100.0);
  double done_a = 0, done_b = 0;
  spawn(sim, transfer_task(&link, 500, &done_a, &sim));
  spawn(sim, transfer_task(&link, 250, &done_b, &sim, 2.5));
  sim.run();
  // A alone for 2.5 s (250 B done), then shares: A needs 250 B at 50 B/s
  // (5 s) → done at 7.5; B needs 250 B at 50 B/s → done at 7.5.
  EXPECT_NEAR(done_a, 7.5, 1e-6);
  EXPECT_NEAR(done_b, 7.5, 1e-6);
  EXPECT_EQ(link.total_transferred(), Bytes{750});
  EXPECT_NEAR(link.busy_time(), 7.5, 1e-6);
}

TEST(SharedBandwidth, ZeroByteTransferCompletesImmediately) {
  Simulation sim;
  SharedBandwidth link(sim, 100.0);
  double done = -1;
  spawn(sim, transfer_task(&link, 0, &done, &sim));
  sim.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

// Determinism: the same seed-free topology must replay identically.
Process busy_loop(Resource* res, Mailbox<int>* box, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await res->acquire();
    co_await delay(0.25);
    res->release();
    box->send(i);
  }
}

TEST(Simulation, DeterministicReplay) {
  auto run_once = [] {
    Simulation sim;
    Resource res(sim, 2);
    Mailbox<int> box(sim);
    std::vector<int> got;
    for (int w = 0; w < 5; ++w) spawn(sim, busy_loop(&res, &box, 20));
    spawn(sim, [](Mailbox<int>* b, std::vector<int>* g) -> Process {
      for (int i = 0; i < 100; ++i) g->push_back(co_await b->recv());
    }(&box, &got));
    const double end = sim.run();
    return std::pair{end, got};
  };
  const auto [end1, got1] = run_once();
  const auto [end2, got2] = run_once();
  EXPECT_DOUBLE_EQ(end1, end2);
  EXPECT_EQ(got1, got2);
}

}  // namespace
}  // namespace rocket::sim

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>

#include "dnc/pair_space.hpp"

namespace rocket::dnc {
namespace {

TEST(PairSpace, RootRegionCountsMatchFormula) {
  for (const ItemIndex n : {0u, 1u, 2u, 3u, 8u, 100u, 4980u}) {
    const Region root = root_region(n);
    EXPECT_EQ(count_pairs(root),
              static_cast<PairCount>(n) * (n - 1) / 2)
        << "n=" << n;
  }
}

TEST(PairSpace, PaperWorkloadSizes) {
  // Table 1: number of pairs for the three applications.
  EXPECT_EQ(count_pairs(root_region(4980)), 12397710u);   // forensics
  EXPECT_EQ(count_pairs(root_region(2500)), 3123750u);    // bioinformatics
  EXPECT_EQ(count_pairs(root_region(256)), 32640u);       // microscopy (C(256,2))
}

// The paper's Table 1 lists 130,816 pairs for microscopy: that is C(512,2),
// i.e. counting each of the 256 particles' two scoring methods; our model
// uses C(n,2) with n given per experiment, so we verify the formula both ways.
TEST(PairSpace, MicroscopyPairAccounting) {
  EXPECT_EQ(count_pairs(root_region(512)), 130816u);
}

TEST(PairSpace, CountMatchesEnumerationOnRectangles) {
  // Exhaustive check on small rectangles including degenerate ones.
  for (ItemIndex r0 = 0; r0 <= 6; ++r0)
    for (ItemIndex r1 = r0; r1 <= 7; ++r1)
      for (ItemIndex c0 = 0; c0 <= 6; ++c0)
        for (ItemIndex c1 = c0; c1 <= 7; ++c1) {
          const Region region{r0, r1, c0, c1, 0};
          PairCount listed = 0;
          for_each_pair(region, [&](Pair p) {
            EXPECT_LT(p.left, p.right);
            EXPECT_GE(p.left, r0);
            EXPECT_LT(p.left, r1);
            EXPECT_GE(p.right, c0);
            EXPECT_LT(p.right, c1);
            ++listed;
          });
          EXPECT_EQ(count_pairs(region), listed)
              << "region [" << r0 << "," << r1 << ")x[" << c0 << "," << c1 << ")";
        }
}

TEST(PairSpace, SplitPreservesPairSetExactly) {
  // Property: recursively splitting the root must enumerate every pair
  // exactly once (the paper's Fig 5 decomposition is a partition).
  for (const ItemIndex n : {2u, 3u, 5u, 8u, 13u, 33u, 64u}) {
    std::set<std::pair<ItemIndex, ItemIndex>> seen;
    std::deque<Region> work{root_region(n)};
    while (!work.empty()) {
      const Region region = work.front();
      work.pop_front();
      if (count_pairs(region) <= 1) {
        for_each_pair(region, [&](Pair p) {
          const bool inserted = seen.insert({p.left, p.right}).second;
          EXPECT_TRUE(inserted) << "duplicate pair " << p.left << "," << p.right;
        });
        continue;
      }
      PairCount child_total = 0;
      for (const Region& child : split(region)) {
        EXPECT_EQ(child.depth, region.depth + 1);
        EXPECT_GT(count_pairs(child), 0u);
        child_total += count_pairs(child);
        work.push_back(child);
      }
      EXPECT_EQ(child_total, count_pairs(region));
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n) * (n - 1) / 2);
  }
}

TEST(PairSpace, SplitOfSinglePairReturnsSelf) {
  const Region leaf{3, 4, 7, 8, 5};
  ASSERT_EQ(count_pairs(leaf), 1u);
  const auto children = split(leaf);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], leaf);
}

TEST(PairSpace, EmptyRegions) {
  EXPECT_TRUE(is_empty(Region{0, 0, 0, 0, 0}));
  EXPECT_TRUE(is_empty(Region{5, 10, 0, 5, 0}));  // entirely below diagonal
  EXPECT_FALSE(is_empty(root_region(2)));
}

TEST(PairSpace, WorkingSetMatchesEnumeration) {
  for (ItemIndex r0 = 0; r0 <= 5; ++r0)
    for (ItemIndex r1 = r0; r1 <= 6; ++r1)
      for (ItemIndex c0 = 0; c0 <= 5; ++c0)
        for (ItemIndex c1 = c0; c1 <= 6; ++c1) {
          const Region region{r0, r1, c0, c1, 0};
          std::set<ItemIndex> items;
          for_each_pair(region, [&](Pair p) {
            items.insert(p.left);
            items.insert(p.right);
          });
          EXPECT_EQ(working_set_size(region), items.size())
              << "region [" << r0 << "," << r1 << ")x[" << c0 << "," << c1 << ")";
        }
}

TEST(PairSpace, WorkingSetItemsMatchEnumeration) {
  // row_items / col_items / working_set_items feed the tile-batched
  // execution path: the union must be exactly the sorted distinct items of
  // the region, and its size must agree with the closed-form count.
  for (ItemIndex r0 = 0; r0 <= 5; ++r0)
    for (ItemIndex r1 = r0; r1 <= 6; ++r1)
      for (ItemIndex c0 = 0; c0 <= 5; ++c0)
        for (ItemIndex c1 = c0; c1 <= 6; ++c1) {
          const Region region{r0, r1, c0, c1, 0};
          std::set<ItemIndex> lefts, rights, all;
          for_each_pair(region, [&](Pair p) {
            lefts.insert(p.left);
            rights.insert(p.right);
            all.insert(p.left);
            all.insert(p.right);
          });
          const ItemRange rows = row_items(region);
          const ItemRange cols = col_items(region);
          std::set<ItemIndex> row_set, col_set;
          for (ItemIndex i = rows.begin; i < rows.end; ++i) row_set.insert(i);
          for (ItemIndex j = cols.begin; j < cols.end; ++j) col_set.insert(j);
          EXPECT_EQ(row_set, lefts)
              << "rows of [" << r0 << "," << r1 << ")x[" << c0 << "," << c1 << ")";
          EXPECT_EQ(col_set, rights)
              << "cols of [" << r0 << "," << r1 << ")x[" << c0 << "," << c1 << ")";

          const std::vector<ItemIndex> ws = working_set_items(region);
          EXPECT_TRUE(std::is_sorted(ws.begin(), ws.end()));
          EXPECT_EQ(std::set<ItemIndex>(ws.begin(), ws.end()), all);
          EXPECT_EQ(ws.size(), all.size()) << "duplicates in working set";
          EXPECT_EQ(ws.size(), working_set_size(region));
        }
}

TEST(PairSpace, WorkingSetItemsOfRootAndLeaf) {
  const std::vector<ItemIndex> root_ws = working_set_items(root_region(8));
  ASSERT_EQ(root_ws.size(), 8u);
  for (ItemIndex i = 0; i < 8; ++i) EXPECT_EQ(root_ws[i], i);

  // Off-diagonal tile: rows and cols are disjoint ranges.
  const Region tile{0, 2, 6, 8, 3};
  const std::vector<ItemIndex> ws = working_set_items(tile);
  EXPECT_EQ(ws, (std::vector<ItemIndex>{0, 1, 6, 7}));
  EXPECT_EQ(row_items(tile), (ItemRange{0, 2}));
  EXPECT_EQ(col_items(tile), (ItemRange{6, 8}));
}

TEST(PairSpace, DeepSplitShrinksWorkingSet) {
  // Locality property motivating divide-and-conquer: each split at least
  // halves (approximately) the referenced item span.
  Region region = root_region(1024);
  std::uint64_t prev = working_set_size(region);
  for (int depth = 0; depth < 8; ++depth) {
    const auto children = split(region);
    ASSERT_FALSE(children.empty());
    // Follow the densest child.
    region = *std::max_element(
        children.begin(), children.end(), [](const Region& a, const Region& b) {
          return count_pairs(a) < count_pairs(b);
        });
    const std::uint64_t ws = working_set_size(region);
    EXPECT_LE(ws, prev);
    prev = ws;
  }
  EXPECT_LE(prev, 16u);
}

TEST(PairSpace, PairsOfReturnsRowMajor) {
  const Region region{0, 3, 0, 3, 0};
  const auto pairs = pairs_of(region);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (Pair{0, 1}));
  EXPECT_EQ(pairs[1], (Pair{0, 2}));
  EXPECT_EQ(pairs[2], (Pair{1, 2}));
}

TEST(PairSpace, LeavesEnumerateIdenticalSetAcrossOrders) {
  // Traversal order is a pure permutation: every order must produce the
  // exact leaf set of the executor's depth-first descent, whose pairs
  // partition the region.
  for (const Region& region :
       {root_region(64), Region{0, 64, 64, 128, 0}, root_region(17)}) {
    const auto reference = leaves(region, 16, Traversal::kDepthFirst);
    std::set<std::pair<ItemIndex, ItemIndex>> covered;
    PairCount total = 0;
    for (const Region& leaf : reference) {
      EXPECT_LE(count_pairs(leaf), 16u);
      for_each_pair(leaf, [&](Pair p) {
        EXPECT_TRUE(covered.insert({p.left, p.right}).second);
        ++total;
      });
    }
    EXPECT_EQ(total, count_pairs(region));

    auto sorted_ref = reference;
    std::sort(sorted_ref.begin(), sorted_ref.end(),
              [](const Region& a, const Region& b) {
                return std::tie(a.row_begin, a.col_begin) <
                       std::tie(b.row_begin, b.col_begin);
              });
    for (const Traversal order :
         {Traversal::kMorton, Traversal::kHilbert, Traversal::kRowMajor}) {
      auto ordered = leaves(region, 16, order);
      ASSERT_EQ(ordered.size(), reference.size());
      std::sort(ordered.begin(), ordered.end(),
                [](const Region& a, const Region& b) {
                  return std::tie(a.row_begin, a.col_begin) <
                         std::tie(b.row_begin, b.col_begin);
                });
      EXPECT_EQ(ordered, sorted_ref);
    }
  }
}

TEST(PairSpace, CurveOrderBeatsRowMajorOnTransitions) {
  // The locality property the tile scheduler leans on, measured as the
  // cold items consecutive leaves introduce (a 1-leaf-lookback cache).
  // On an n=64 square region (64 8x8 tiles) the Hilbert curve — the
  // Morton-family order whose consecutive tiles always share a side, i.e.
  // share rows or columns — must yield strictly fewer distinct-item
  // transitions than a row-major scan. Plain Z/Morton nesting bounds
  // *reuse distance* instead (its win shows up against a real LRU cache:
  // see the traversal head-to-head in bench_micro), so only <= sanity is
  // asserted for it here.
  const Region square{0, 64, 64, 128, 0};
  const auto hilbert =
      cold_transition_items(leaves(square, 64, Traversal::kHilbert));
  const auto row_major =
      cold_transition_items(leaves(square, 64, Traversal::kRowMajor));
  const auto depth_first =
      cold_transition_items(leaves(square, 64, Traversal::kDepthFirst));
  EXPECT_LT(hilbert, row_major);
  EXPECT_LE(hilbert, depth_first);

  // Every Hilbert step shares a side: 64 tiles of 16 items, first tile
  // all cold, then 8 new items per step.
  EXPECT_EQ(hilbert, 16u + 63u * 8u);

  // The triangle (the real workload's root) preserves the ordering.
  const auto tri_hilbert =
      cold_transition_items(leaves(root_region(64), 64, Traversal::kHilbert));
  const auto tri_row_major =
      cold_transition_items(leaves(root_region(64), 64, Traversal::kRowMajor));
  EXPECT_LT(tri_hilbert, tri_row_major);
}

TEST(PairSpace, DepthFirstLeavesMatchMortonNesting) {
  // kDepthFirst (the executor's native order) and the Morton-code sort
  // agree on power-of-two squares — the DFS *is* the Z curve; the code
  // sort is its flattened form.
  const Region square{0, 64, 64, 128, 0};
  EXPECT_EQ(leaves(square, 64, Traversal::kDepthFirst),
            leaves(square, 64, Traversal::kMorton));
}

TEST(PairSpace, PartitionRootCoversPairSetExactly) {
  for (const ItemIndex n : {2u, 3u, 17u, 37u}) {
    for (const std::uint32_t parts : {1u, 2u, 5u, 8u}) {
      const auto partition = partition_root(n, parts);
      ASSERT_EQ(partition.size(), parts);
      std::set<std::pair<ItemIndex, ItemIndex>> seen;
      for (const auto& regions : partition) {
        for (const Region& region : regions) {
          for_each_pair(region, [&](Pair p) {
            EXPECT_TRUE(seen.insert({p.left, p.right}).second)
                << "duplicate pair " << p.left << "," << p.right;
          });
        }
      }
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(n) * (n - 1) / 2)
          << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(PairSpace, PartitionRootBalancesLoad) {
  const auto partition = partition_root(64, 4);
  std::vector<PairCount> load;
  for (const auto& regions : partition) {
    PairCount pairs = 0;
    for (const Region& region : regions) pairs += count_pairs(region);
    load.push_back(pairs);
  }
  const auto [min_it, max_it] = std::minmax_element(load.begin(), load.end());
  EXPECT_GT(*min_it, 0u) << "every node gets work";
  // Greedy largest-first keeps the spread modest (not a tight bound; the
  // mesh corrects residual imbalance by stealing).
  EXPECT_LE(*max_it, 2 * *min_it);
}

TEST(PairSpace, PartitionRootIsDeterministic) {
  const auto a = partition_root(33, 3);
  const auto b = partition_root(33, 3);
  EXPECT_EQ(a, b);
}

TEST(PairSpace, PartitionRootEdgeCases) {
  EXPECT_TRUE(partition_root(10, 0).empty());
  // More parts than pairs: trailing parts are empty, nothing is lost.
  const auto partition = partition_root(3, 8);
  ASSERT_EQ(partition.size(), 8u);
  PairCount total = 0;
  for (const auto& regions : partition) {
    for (const Region& region : regions) total += count_pairs(region);
  }
  EXPECT_EQ(total, 3u);
  // n too small for any pair.
  for (const auto& regions : partition_root(1, 4)) {
    EXPECT_TRUE(regions.empty());
  }
}

}  // namespace
}  // namespace rocket::dnc

// Telemetry layer tests (DESIGN.md §13): histogram bucket math and merge
// associativity, lock-free concurrent accumulation (run under TSAN in
// CI), the snapshot message's transport round trip, live cluster
// snapshot streaming, the Chrome-trace exporter's epoch alignment, the
// run-summary JSON shape, the profiler's span-retention cap, and the
// ROCKET_LOG_LEVEL parser.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "apps/forensics.hpp"
#include "common/log.hpp"
#include "dnc/pair_space.hpp"
#include "mesh/live_cluster.hpp"
#include "mesh/transport.hpp"
#include "runtime/profiler.hpp"
#include "storage/object_store.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_summary.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace.hpp"

namespace rocket::telemetry {
namespace {

// --- histogram bucket math ------------------------------------------------

TEST(LatencyHistogram, BucketBoundaries) {
  // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b) ns.
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 11u);
  // The top bucket absorbs everything too large for 63 shifted bits.
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}),
            kHistogramBuckets - 1);

  // Every bucket's floor maps back into that bucket, and floor-1 maps to
  // the bucket below — the boundary is exact everywhere.
  for (std::size_t b = 1; b + 1 < kHistogramBuckets; ++b) {
    const auto floor = HistogramSnapshot::bucket_floor_ns(b);
    EXPECT_EQ(LatencyHistogram::bucket_of(floor), b) << "bucket " << b;
    EXPECT_EQ(LatencyHistogram::bucket_of(floor - 1), b - 1)
        << "bucket " << b;
  }
}

TEST(LatencyHistogram, RecordAndSnapshot) {
  LatencyHistogram h;
  h.record_ns(0);
  h.record_ns(5);       // bucket 3: [4, 8)
  h.record_ns(1000);    // bucket 10: [512, 1024)
  h.record_seconds(1e-6);  // 1000 ns again
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum_ns, 2005u);
  EXPECT_EQ(snap.min_ns, 0u);
  EXPECT_EQ(snap.max_ns, 1000u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.buckets[10], 2u);
  // Quantiles stay inside the recorded envelope (the bucket midpoint is
  // clamped to [min, max]).
  EXPECT_GE(snap.quantile_seconds(0.99), 0.0);
  EXPECT_LE(snap.quantile_seconds(0.99), 1000e-9);
  EXPECT_DOUBLE_EQ(snap.mean_seconds(), 2005e-9 / 4.0);
}

TEST(HistogramSnapshot, MergeIsAssociativeAndCommutative) {
  const auto make = [](std::uint64_t seed) {
    LatencyHistogram h;
    for (std::uint64_t i = 1; i <= 50; ++i) h.record_ns(seed * i * i);
    auto s = h.snapshot();
    s.name = "m";
    return s;
  };
  const auto a = make(3), b = make(17), c = make(1001);

  auto ab_c = a;
  ab_c += b;
  ab_c += c;
  auto bc = b;
  bc += c;
  auto a_bc = a;
  a_bc += bc;
  auto ba = b;
  ba += a;
  ba += c;

  for (const auto& merged : {a_bc, ba}) {
    EXPECT_EQ(ab_c.count, merged.count);
    EXPECT_EQ(ab_c.sum_ns, merged.sum_ns);
    EXPECT_EQ(ab_c.min_ns, merged.min_ns);
    EXPECT_EQ(ab_c.max_ns, merged.max_ns);
    EXPECT_EQ(ab_c.buckets, merged.buckets);
  }
}

// --- concurrent accumulation (TSAN target) --------------------------------

TEST(MetricsRegistry, ConcurrentAccumulationIsExact) {
  MetricsRegistry registry(true);
  auto& counter = registry.counter("c");
  auto& gauge = registry.gauge("g");
  auto& histogram = registry.histogram("h");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add();
        gauge.add(2);
        gauge.sub(1);
        histogram.record_ns(i);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("c"), kThreads * kPerThread);
  EXPECT_EQ(snap.gauge_value("g"),
            static_cast<std::int64_t>(kThreads * kPerThread));
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, kThreads * kPerThread);
}

TEST(MetricsRegistry, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry(false);
  auto& counter = registry.counter("c");
  auto& histogram = registry.histogram("h");
  counter.add(42);
  histogram.record_ns(1000);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("c"), 0u);
  EXPECT_EQ(snap.histogram("h")->count, 0u);
}

TEST(MetricsSnapshot, MergeByNameAddsAndAppends) {
  MetricsRegistry a(true), b(true);
  a.counter("shared").add(3);
  b.counter("shared").add(4);
  b.counter("only_b").add(5);
  a.histogram("lat").record_ns(10);
  b.histogram("lat").record_ns(20);
  auto merged = a.snapshot();
  merged += b.snapshot();
  EXPECT_EQ(merged.counter_value("shared"), 7u);
  EXPECT_EQ(merged.counter_value("only_b"), 5u);
  EXPECT_EQ(merged.histogram("lat")->count, 2u);
}

// --- snapshot transport round trip ----------------------------------------

TEST(TelemetrySnapshot, RoundTripsThroughTransport) {
  mesh::InProcessTransport transport(2, {128});
  NodeStats stats;
  stats.pairs = 12345;
  stats.cache_hits = 77;
  stats.in_flight_tiles = -3;  // gauges may read transiently negative
  stats.busy_seconds = 1.5;
  stats.lanes = 9;
  ASSERT_TRUE(transport.send(1, 0, net::Tag::kTelemetry,
                             mesh::TelemetrySnapshot{1, 42, stats}));
  const auto msg = transport.recv(0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, net::Tag::kTelemetry);
  const auto* snap = std::get_if<mesh::TelemetrySnapshot>(&msg->body);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->node, 1u);
  EXPECT_EQ(snap->seq, 42u);
  EXPECT_EQ(snap->stats.pairs, 12345u);
  EXPECT_EQ(snap->stats.cache_hits, 77u);
  EXPECT_EQ(snap->stats.in_flight_tiles, -3);
  EXPECT_DOUBLE_EQ(snap->stats.busy_seconds, 1.5);
  EXPECT_EQ(snap->stats.lanes, 9u);
  // Telemetry traffic lands under its own tag in the counters.
  const auto& per_tag = transport.counters()
      .per_tag[static_cast<std::size_t>(net::Tag::kTelemetry)];
  EXPECT_EQ(per_tag.messages, 1u);
}

// --- live cluster snapshot streaming --------------------------------------

TEST(LiveCluster, StreamsClusterSnapshotsMidRun) {
  storage::MemoryStore mem;
  apps::ForensicsConfig fc;
  fc.cameras = 2;
  fc.images_per_camera = 6;
  fc.width = 64;
  fc.height = 48;
  fc.seed = 5;
  apps::ForensicsDataset dataset(fc, mem);
  apps::ForensicsApplication app(dataset);
  // Throttle the store so the run comfortably spans several snapshot
  // intervals on any CI machine.
  storage::ThrottledStore store(mem, 2000);

  mesh::LiveClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.node.host_cache_capacity = 8_MiB;
  cfg.node.cpu_threads = 2;
  cfg.snapshot_interval_s = 0.005;
  std::atomic<std::uint64_t> callbacks{0};
  std::atomic<std::uint64_t> max_nodes_seen{0};
  cfg.on_cluster_snapshot = [&](const telemetry::ClusterSnapshot& snap) {
    callbacks.fetch_add(1);
    std::uint64_t prev = max_nodes_seen.load();
    while (prev < snap.nodes.size() &&
           !max_nodes_seen.compare_exchange_weak(prev, snap.nodes.size())) {
    }
  };
  mesh::LiveCluster cluster(cfg);
  std::uint64_t pairs = 0;
  const auto report = cluster.run_all_pairs(
      app, store, [&](const runtime::PairResult&) { ++pairs; });

  EXPECT_EQ(pairs, report.pairs);
  EXPECT_GE(callbacks.load(), 1u);
  // Once both publishers have been sampled the snapshot covers the mesh.
  EXPECT_EQ(max_nodes_seen.load(), 2u);
  const auto last = cluster.cluster_snapshot();
  EXPECT_GE(last.seq, 1u);
  EXPECT_GT(last.uptime_seconds, 0.0);
  for (const auto& node : last.nodes) {
    EXPECT_TRUE(node.alive);
    EXPECT_LE(node.cache_hit_rate, 1.0);
  }
  // The cluster metrics merge carries the hot-seam histograms.
  EXPECT_NE(report.metrics.histogram("tile.latency"), nullptr);
  EXPECT_GT(report.metrics.histogram("tile.latency")->count, 0u);
  EXPECT_NE(report.metrics.histogram("cache.acquire_wait"), nullptr);
  // Per-node traffic tables sum to the cluster table.
  ASSERT_EQ(report.node_traffic.size(), 2u);
  std::uint64_t per_node_messages = 0;
  for (const auto& t : report.node_traffic) {
    per_node_messages += t.total_messages();
  }
  EXPECT_EQ(per_node_messages, report.traffic.total_messages());
}

// --- trace exporter -------------------------------------------------------

TEST(TraceExporter, AlignsNodesOnOneTimeline) {
  using runtime::Profiler;
  using runtime::TaskKind;

  NodeTrace n0;
  n0.epoch_offset_s = 0.0;
  n0.lanes.push_back(Profiler::LaneView{
      "gpu0", 0.002, {{TaskKind::kCompare, 0.001, 0.003}}});
  n0.events.push_back(TraceEvent{EventKind::kNodeDeath, 0.004, 2, 1});

  NodeTrace n1;
  n1.epoch_offset_s = 0.010;  // started 10 ms after the process epoch
  n1.lanes.push_back(Profiler::LaneView{
      "gpu0", 0.001, {{TaskKind::kIo, 0.001, 0.002}}});

  TraceExporter exporter;
  exporter.add_node(0, n0);
  exporter.add_node(1, n1);
  const std::string json = exporter.to_json();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"node 0\""), std::string::npos);
  EXPECT_NE(json.find("\"node 1\""), std::string::npos);
  EXPECT_NE(json.find("\"node_death\""), std::string::npos);
  EXPECT_NE(json.find("\"compare\""), std::string::npos);
  // Node 0's span starts at 1 ms on the shared timeline; node 1's io span
  // starts at its epoch offset + 1 ms = 11 ms. Timestamps are written in
  // microseconds.
  EXPECT_NE(json.find("\"ts\":1000,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":11000,"), std::string::npos);
  // Balanced JSON at the macro level.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(EventLog, CapsAndCounts) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.record(EventKind::kPrefetchPark, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
}

// --- run summary ----------------------------------------------------------

TEST(RunSummary, EmitsDocumentedSchema) {
  runtime::NodeRuntime::Report node_report;
  node_report.pairs = 10;
  node_report.wall_seconds = 0.5;
  node_report.loads = 4;
  MetricsRegistry reg(true);
  reg.histogram("tile.latency").record_ns(1000000);
  reg.counter("peer_fetch.retry").add(2);
  node_report.metrics = reg.snapshot();

  const auto summary = RunSummary::from_node("unit", node_report);
  const std::string json = summary.to_json();
  EXPECT_NE(json.find("\"schema\":\"rocket.run_summary/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"single_node\""), std::string::npos);
  EXPECT_NE(json.find("\"pairs\":10"), std::string::npos);
  EXPECT_NE(json.find("\"tile.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"peer_fetch.retry\":2"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --- profiler span cap ----------------------------------------------------

TEST(Profiler, CapsSpanRetentionAndCounts) {
  using runtime::Profiler;
  using runtime::TaskKind;
  Profiler profiler(/*trace=*/true, /*max_spans_per_lane=*/4);
  const auto lane = profiler.add_lane("test");
  const auto t0 = Profiler::Clock::now();
  for (int i = 0; i < 10; ++i) {
    profiler.record(lane, TaskKind::kCompare, t0, t0);
  }
  EXPECT_EQ(profiler.spans_dropped(), 6u);
  const auto lanes = profiler.lanes_view();
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].spans.size(), 4u);
}

TEST(Profiler, DisabledRecordIsANoOp) {
  using runtime::Profiler;
  using runtime::TaskKind;
  Profiler profiler(/*trace=*/true);
  profiler.set_enabled(false);
  const auto lane = profiler.add_lane("test");
  const auto t0 = Profiler::Clock::now();
  profiler.record(lane, TaskKind::kCompare, t0, t0 + std::chrono::seconds(1));
  EXPECT_EQ(profiler.lanes_view()[0].spans.size(), 0u);
  EXPECT_DOUBLE_EQ(profiler.lane_busy_seconds(lane), 0.0);
}

// --- causal tracing (DESIGN.md §16) ---------------------------------------

TEST(Span, MakeTraceIsDeterministicAndSamplesEveryNth) {
  // Same (seed, key, n) → byte-identical context: replays trace the same
  // population.
  const auto a = make_trace(42, 1234, 8);
  const auto b = make_trace(42, 1234, 8);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_EQ(a.parent_id, 0u);

  EXPECT_FALSE(make_trace(42, 1234, 0).sampled());  // 0 disables
  EXPECT_TRUE(make_trace(42, 1234, 1).sampled());   // 1 traces everything

  // n = 8 samples roughly every 8th key (hash-based, so statistical).
  std::size_t sampled = 0;
  constexpr std::size_t kKeys = 8000;
  for (std::size_t k = 0; k < kKeys; ++k) {
    if (make_trace(42, k, 8).sampled()) ++sampled;
  }
  EXPECT_GT(sampled, kKeys / 16);
  EXPECT_LT(sampled, kKeys / 4);

  // Different seeds pick different populations.
  std::size_t differs = 0;
  for (std::size_t k = 0; k < 100; ++k) {
    if (make_trace(1, k, 4).sampled() != make_trace(2, k, 4).sampled()) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 0u);
}

TEST(Span, ChildIdsDeriveIdenticallyOnBothEndsOfAHop) {
  const auto root = make_trace(7, 99, 1);
  ASSERT_TRUE(root.sampled());
  // Both ends of a message hop hold the same parent context, so both
  // derive the same child id without coordination.
  const auto sender_view = child_of(root, 0x73657276);
  const auto receiver_view = child_of(root, 0x73657276);
  EXPECT_EQ(sender_view.span_id, receiver_view.span_id);
  EXPECT_EQ(sender_view.trace_id, root.trace_id);
  EXPECT_EQ(sender_view.parent_id, root.span_id);
  // Different salts fan out to different children of the same parent.
  EXPECT_NE(child_of(root, 1).span_id, child_of(root, 2).span_id);
}

TEST(SpanLog, OpenCloseAbortAccounting) {
  SpanLog log(3);
  const auto t1 = make_trace(1, 0, 1);
  const auto t2 = make_trace(1, 1, 1);
  const auto t3 = make_trace(1, 2, 1);
  log.open(t1, SpanPhase::kTile, 1.0);
  log.open(t2, SpanPhase::kPeerFetch, 1.5);
  log.open(t3, SpanPhase::kSteal, 2.0);
  EXPECT_EQ(log.open_count(), 3u);

  EXPECT_TRUE(log.close(t1.span_id, 3.0));
  EXPECT_FALSE(log.close(t1.span_id, 3.0));  // already closed: no-op
  EXPECT_FALSE(log.close(0xdead, 3.0));      // unknown id: no-op
  EXPECT_EQ(log.open_count(), 2u);

  // The teardown sweep (satellite-3 invariant): every straggler closes
  // with the aborted flag; nothing leaks.
  EXPECT_EQ(log.abort_open(4.0), 2u);
  EXPECT_EQ(log.open_count(), 0u);
  EXPECT_EQ(log.aborted_count(), 2u);

  const auto records = log.records();
  ASSERT_EQ(records.size(), 3u);
  std::size_t aborted = 0;
  for (const auto& span : records) {
    EXPECT_GE(span.end, span.start);
    EXPECT_EQ(span.node, 3u);
    if (span.aborted) ++aborted;
  }
  EXPECT_EQ(aborted, 2u);
}

TEST(SpanLog, DropsPastCapacityAndCounts) {
  SpanLog log(0, /*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    log.record(make_trace(1, static_cast<std::uint64_t>(i), 1),
               SpanPhase::kCompute, 0.0, 1.0);
  }
  EXPECT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.dropped(), 3u);
}

TEST(FlightRecorder, ConcurrentWritersKeepLastK) {
  FlightRecorder ring(256);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ring.record(static_cast<std::uint16_t>(kFlightMessageBase + t),
                    static_cast<std::uint32_t>(t), i, i + 1, i, i);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(ring.total_recorded(), kThreads * kPerThread);
  const auto dump = ring.dump();
  EXPECT_EQ(dump.size(), 256u);  // exactly the last K survive
  // Oldest-first order by claim sequence.
  const auto lines = ring.dump_json_lines();
  std::size_t newlines = std::count(lines.begin(), lines.end(), '\n');
  EXPECT_EQ(newlines, dump.size());
}

TEST(FlightRecorder, SpanLogTeesClosesIntoTheRing) {
  FlightRecorder ring(16);
  SpanLog log(1, 64, &ring);
  const auto ctx = make_trace(3, 5, 1);
  log.record(ctx, SpanPhase::kCompute, 0.25, 0.75);
  const auto dump = ring.dump();
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].kind,
            static_cast<std::uint16_t>(SpanPhase::kCompute));
  EXPECT_EQ(dump[0].node, 1u);
  EXPECT_EQ(dump[0].trace_id, ctx.trace_id);
  EXPECT_EQ(dump[0].a, 250000u);  // start in µs
  EXPECT_EQ(dump[0].b, 750000u);  // end in µs
}

TEST(CriticalPath, HighestPriorityPhaseWinsAndIdleIsRemainder) {
  // Window [0, 1]. Load covers [0.1, 0.6), compute covers [0.2, 0.5) on
  // top of it; compute outranks load, so load keeps only its uncovered
  // flanks. Everything outside [0.1, 0.6) is idle.
  std::vector<SpanRecord> spans;
  SpanRecord load;
  load.ctx = make_trace(1, 0, 1);
  load.phase = SpanPhase::kLoadWait;
  load.start = 0.1;
  load.end = 0.6;
  SpanRecord compute;
  compute.ctx = make_trace(1, 1, 1);
  compute.phase = SpanPhase::kCompute;
  compute.start = 0.2;
  compute.end = 0.5;
  spans.push_back(load);
  spans.push_back(compute);

  const auto report = analyze_critical_path(spans, 0.0, 1.0);
  EXPECT_EQ(report.spans_analyzed, 2u);
  EXPECT_DOUBLE_EQ(report.window_seconds, 1.0);
  const auto seconds = [&](PathPhase p) {
    return report.phases[static_cast<std::size_t>(p)].seconds;
  };
  EXPECT_NEAR(seconds(PathPhase::kCompute), 0.3, 1e-9);
  EXPECT_NEAR(seconds(PathPhase::kLoad), 0.2, 1e-9);
  EXPECT_NEAR(seconds(PathPhase::kIdle), 0.5, 1e-9);
  double total_percent = 0.0;
  for (const auto& share : report.phases) total_percent += share.percent;
  EXPECT_NEAR(total_percent, 100.0, 1e-6);
}

TEST(CriticalPath, RanksSlowestTilesWithTheirChains) {
  std::vector<SpanRecord> spans;
  const auto slow = make_trace(9, 0, 1);
  const auto fast = make_trace(9, 1, 1);
  SpanRecord tile;
  tile.ctx = slow;
  tile.phase = SpanPhase::kTile;
  tile.start = 0.0;
  tile.end = 0.8;
  spans.push_back(tile);
  SpanRecord child;
  child.ctx = child_of(slow, 1);
  child.phase = SpanPhase::kCompute;
  child.start = 0.1;
  child.end = 0.7;
  spans.push_back(child);
  SpanRecord quick;
  quick.ctx = fast;
  quick.phase = SpanPhase::kTile;
  quick.start = 0.0;
  quick.end = 0.2;
  spans.push_back(quick);

  const auto report = analyze_critical_path(spans, 0.0, 1.0, /*top_k=*/2);
  ASSERT_EQ(report.slowest.size(), 2u);
  EXPECT_EQ(report.slowest[0].trace_id, slow.trace_id);
  EXPECT_NEAR(report.slowest[0].seconds, 0.8, 1e-9);
  EXPECT_EQ(report.slowest[0].chain.size(), 2u);  // tile + its child
  EXPECT_EQ(report.slowest[1].trace_id, fast.trace_id);
}

TEST(CriticalPath, EmptyInputIsAllIdle) {
  const auto report = analyze_critical_path({}, 0.0, 2.0);
  EXPECT_NEAR(report.percent(PathPhase::kIdle), 100.0, 1e-9);
  EXPECT_TRUE(report.slowest.empty());
}

TEST(MetricsSnapshot, PrometheusTextExposition) {
  MetricsRegistry registry(true);
  registry.counter("peer_fetch.retry").add(3);
  registry.gauge("result.queue_depth").add(7);
  registry.histogram("tile.latency").record_ns(1000000);
  registry.histogram("tile.latency").record_ns(4000000);
  const std::string text = registry.expose_text();

  // Names sanitise to the rocket_ prefix; dots become underscores.
  EXPECT_NE(text.find("# TYPE rocket_peer_fetch_retry counter"),
            std::string::npos);
  EXPECT_NE(text.find("rocket_peer_fetch_retry 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rocket_result_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("rocket_result_queue_depth 7"), std::string::npos);
  // Histograms export as cumulative _seconds families.
  EXPECT_NE(text.find("# TYPE rocket_tile_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("rocket_tile_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rocket_tile_latency_seconds_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("rocket_tile_latency_seconds_sum"),
            std::string::npos);
  // The exposition ends with a newline (required by the format).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(TraceExporter, EmitsCausalSpansWithCrossNodeFlowArrows) {
  const auto root = make_trace(11, 0, 1);
  const auto serve = child_of(root, 0x73657276);

  NodeTrace n0;  // requester: opens the peer.fetch root
  n0.epoch_offset_s = 0.0;
  SpanRecord fetch;
  fetch.ctx = root;
  fetch.phase = SpanPhase::kPeerFetch;
  fetch.node = 0;
  fetch.start = 0.001;
  fetch.end = 0.004;
  n0.causal_spans.push_back(fetch);

  NodeTrace n1;  // server: records the serve child of the propagated ctx
  n1.epoch_offset_s = 0.0;
  SpanRecord served;
  served.ctx = serve;
  served.phase = SpanPhase::kPeerServe;
  served.node = 1;
  served.start = 0.002;
  served.end = 0.003;
  n1.causal_spans.push_back(served);

  TraceExporter exporter;
  exporter.add_node(0, n0);
  exporter.add_node(1, n1);
  const std::string json = exporter.to_json();

  EXPECT_NE(json.find("\"peer.fetch\""), std::string::npos);
  EXPECT_NE(json.find("\"peer.serve\""), std::string::npos);
  // Parent on node 0, child on node 1 → one "s"/"f" flow pair binds the
  // two slices across processes.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"causal\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// Satellite 3: a node killed mid-run (its peer fetches in flight) must not
// leak sampled spans — the teardown sweep closes every orphan with the
// aborted flag, and the surviving spans still produce a coherent
// critical-path attribution. Runs under TSAN in CI like the rest of this
// binary, so it also exercises the tracing hot paths for races.
TEST(LiveCluster, KilledNodeLeavesNoUnclosedSampledSpans) {
  storage::MemoryStore mem;
  apps::ForensicsConfig fc;
  fc.cameras = 2;
  fc.images_per_camera = 6;
  fc.width = 64;
  fc.height = 48;
  fc.seed = 5;
  apps::ForensicsDataset dataset(fc, mem);
  apps::ForensicsApplication app(dataset);
  // Slow loads keep peer fetches in flight when the kill lands.
  storage::ThrottledStore store(mem, 1500);

  mesh::LiveClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.node.host_cache_capacity = 8_MiB;
  cfg.node.cpu_threads = 2;
  cfg.node.trace = true;
  cfg.trace_sample_n = 1;  // trace everything: maximal leak surface
  cfg.heartbeat_interval_s = 0.005;
  cfg.lease_timeout_s = 0.05;
  cfg.fetch_timeout_s = 0.02;
  mesh::Fault fault;
  fault.node = 2;
  fault.after_seconds = 0.02;
  cfg.faults.faults.push_back(fault);

  mesh::LiveCluster cluster(cfg);
  std::atomic<std::uint64_t> pairs{0};
  const auto report = cluster.run_all_pairs(
      app, store, [&](const runtime::PairResult&) { pairs.fetch_add(1); });

  // Exactly-once survived the kill.
  EXPECT_EQ(pairs.load(), report.pairs);
  EXPECT_EQ(report.pairs, dnc::count_pairs(dnc::root_region(
                              app.item_count())));

  // Every sampled span in every node's trace is closed (end >= start);
  // orphans of the dead node carry the aborted flag instead of leaking.
  std::size_t spans_seen = 0;
  for (const auto& node : report.nodes) {
    for (const auto& span : node.trace.causal_spans) {
      EXPECT_GE(span.end, span.start);
      ++spans_seen;
    }
  }
  EXPECT_GT(spans_seen, 0u);
  // The attribution still accounts for (essentially) the whole window.
  double total_percent = 0.0;
  for (const auto& share : report.critical_path.phases) {
    total_percent += share.percent;
  }
  EXPECT_NEAR(total_percent, 100.0, 1.0);
  EXPECT_GT(report.critical_path.spans_analyzed, 0u);
}

// --- log level parsing ----------------------------------------------------

TEST(LogLevel, ParsesNamesAndDigits) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("bogus"), std::nullopt);
  EXPECT_EQ(parse_log_level("5"), std::nullopt);
}

}  // namespace
}  // namespace rocket::telemetry

// Telemetry layer tests (DESIGN.md §13): histogram bucket math and merge
// associativity, lock-free concurrent accumulation (run under TSAN in
// CI), the snapshot message's transport round trip, live cluster
// snapshot streaming, the Chrome-trace exporter's epoch alignment, the
// run-summary JSON shape, the profiler's span-retention cap, and the
// ROCKET_LOG_LEVEL parser.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "apps/forensics.hpp"
#include "common/log.hpp"
#include "mesh/live_cluster.hpp"
#include "mesh/transport.hpp"
#include "runtime/profiler.hpp"
#include "storage/object_store.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_summary.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/trace.hpp"

namespace rocket::telemetry {
namespace {

// --- histogram bucket math ------------------------------------------------

TEST(LatencyHistogram, BucketBoundaries) {
  // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b) ns.
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 11u);
  // The top bucket absorbs everything too large for 63 shifted bits.
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}),
            kHistogramBuckets - 1);

  // Every bucket's floor maps back into that bucket, and floor-1 maps to
  // the bucket below — the boundary is exact everywhere.
  for (std::size_t b = 1; b + 1 < kHistogramBuckets; ++b) {
    const auto floor = HistogramSnapshot::bucket_floor_ns(b);
    EXPECT_EQ(LatencyHistogram::bucket_of(floor), b) << "bucket " << b;
    EXPECT_EQ(LatencyHistogram::bucket_of(floor - 1), b - 1)
        << "bucket " << b;
  }
}

TEST(LatencyHistogram, RecordAndSnapshot) {
  LatencyHistogram h;
  h.record_ns(0);
  h.record_ns(5);       // bucket 3: [4, 8)
  h.record_ns(1000);    // bucket 10: [512, 1024)
  h.record_seconds(1e-6);  // 1000 ns again
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum_ns, 2005u);
  EXPECT_EQ(snap.min_ns, 0u);
  EXPECT_EQ(snap.max_ns, 1000u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.buckets[10], 2u);
  // Quantiles stay inside the recorded envelope (the bucket midpoint is
  // clamped to [min, max]).
  EXPECT_GE(snap.quantile_seconds(0.99), 0.0);
  EXPECT_LE(snap.quantile_seconds(0.99), 1000e-9);
  EXPECT_DOUBLE_EQ(snap.mean_seconds(), 2005e-9 / 4.0);
}

TEST(HistogramSnapshot, MergeIsAssociativeAndCommutative) {
  const auto make = [](std::uint64_t seed) {
    LatencyHistogram h;
    for (std::uint64_t i = 1; i <= 50; ++i) h.record_ns(seed * i * i);
    auto s = h.snapshot();
    s.name = "m";
    return s;
  };
  const auto a = make(3), b = make(17), c = make(1001);

  auto ab_c = a;
  ab_c += b;
  ab_c += c;
  auto bc = b;
  bc += c;
  auto a_bc = a;
  a_bc += bc;
  auto ba = b;
  ba += a;
  ba += c;

  for (const auto& merged : {a_bc, ba}) {
    EXPECT_EQ(ab_c.count, merged.count);
    EXPECT_EQ(ab_c.sum_ns, merged.sum_ns);
    EXPECT_EQ(ab_c.min_ns, merged.min_ns);
    EXPECT_EQ(ab_c.max_ns, merged.max_ns);
    EXPECT_EQ(ab_c.buckets, merged.buckets);
  }
}

// --- concurrent accumulation (TSAN target) --------------------------------

TEST(MetricsRegistry, ConcurrentAccumulationIsExact) {
  MetricsRegistry registry(true);
  auto& counter = registry.counter("c");
  auto& gauge = registry.gauge("g");
  auto& histogram = registry.histogram("h");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add();
        gauge.add(2);
        gauge.sub(1);
        histogram.record_ns(i);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("c"), kThreads * kPerThread);
  EXPECT_EQ(snap.gauge_value("g"),
            static_cast<std::int64_t>(kThreads * kPerThread));
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, kThreads * kPerThread);
}

TEST(MetricsRegistry, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry(false);
  auto& counter = registry.counter("c");
  auto& histogram = registry.histogram("h");
  counter.add(42);
  histogram.record_ns(1000);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("c"), 0u);
  EXPECT_EQ(snap.histogram("h")->count, 0u);
}

TEST(MetricsSnapshot, MergeByNameAddsAndAppends) {
  MetricsRegistry a(true), b(true);
  a.counter("shared").add(3);
  b.counter("shared").add(4);
  b.counter("only_b").add(5);
  a.histogram("lat").record_ns(10);
  b.histogram("lat").record_ns(20);
  auto merged = a.snapshot();
  merged += b.snapshot();
  EXPECT_EQ(merged.counter_value("shared"), 7u);
  EXPECT_EQ(merged.counter_value("only_b"), 5u);
  EXPECT_EQ(merged.histogram("lat")->count, 2u);
}

// --- snapshot transport round trip ----------------------------------------

TEST(TelemetrySnapshot, RoundTripsThroughTransport) {
  mesh::InProcessTransport transport(2, {128});
  NodeStats stats;
  stats.pairs = 12345;
  stats.cache_hits = 77;
  stats.in_flight_tiles = -3;  // gauges may read transiently negative
  stats.busy_seconds = 1.5;
  stats.lanes = 9;
  ASSERT_TRUE(transport.send(1, 0, net::Tag::kTelemetry,
                             mesh::TelemetrySnapshot{1, 42, stats}));
  const auto msg = transport.recv(0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, net::Tag::kTelemetry);
  const auto* snap = std::get_if<mesh::TelemetrySnapshot>(&msg->body);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->node, 1u);
  EXPECT_EQ(snap->seq, 42u);
  EXPECT_EQ(snap->stats.pairs, 12345u);
  EXPECT_EQ(snap->stats.cache_hits, 77u);
  EXPECT_EQ(snap->stats.in_flight_tiles, -3);
  EXPECT_DOUBLE_EQ(snap->stats.busy_seconds, 1.5);
  EXPECT_EQ(snap->stats.lanes, 9u);
  // Telemetry traffic lands under its own tag in the counters.
  const auto& per_tag = transport.counters()
      .per_tag[static_cast<std::size_t>(net::Tag::kTelemetry)];
  EXPECT_EQ(per_tag.messages, 1u);
}

// --- live cluster snapshot streaming --------------------------------------

TEST(LiveCluster, StreamsClusterSnapshotsMidRun) {
  storage::MemoryStore mem;
  apps::ForensicsConfig fc;
  fc.cameras = 2;
  fc.images_per_camera = 6;
  fc.width = 64;
  fc.height = 48;
  fc.seed = 5;
  apps::ForensicsDataset dataset(fc, mem);
  apps::ForensicsApplication app(dataset);
  // Throttle the store so the run comfortably spans several snapshot
  // intervals on any CI machine.
  storage::ThrottledStore store(mem, 2000);

  mesh::LiveClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.node.host_cache_capacity = 8_MiB;
  cfg.node.cpu_threads = 2;
  cfg.snapshot_interval_s = 0.005;
  std::atomic<std::uint64_t> callbacks{0};
  std::atomic<std::uint64_t> max_nodes_seen{0};
  cfg.on_cluster_snapshot = [&](const telemetry::ClusterSnapshot& snap) {
    callbacks.fetch_add(1);
    std::uint64_t prev = max_nodes_seen.load();
    while (prev < snap.nodes.size() &&
           !max_nodes_seen.compare_exchange_weak(prev, snap.nodes.size())) {
    }
  };
  mesh::LiveCluster cluster(cfg);
  std::uint64_t pairs = 0;
  const auto report = cluster.run_all_pairs(
      app, store, [&](const runtime::PairResult&) { ++pairs; });

  EXPECT_EQ(pairs, report.pairs);
  EXPECT_GE(callbacks.load(), 1u);
  // Once both publishers have been sampled the snapshot covers the mesh.
  EXPECT_EQ(max_nodes_seen.load(), 2u);
  const auto last = cluster.cluster_snapshot();
  EXPECT_GE(last.seq, 1u);
  EXPECT_GT(last.uptime_seconds, 0.0);
  for (const auto& node : last.nodes) {
    EXPECT_TRUE(node.alive);
    EXPECT_LE(node.cache_hit_rate, 1.0);
  }
  // The cluster metrics merge carries the hot-seam histograms.
  EXPECT_NE(report.metrics.histogram("tile.latency"), nullptr);
  EXPECT_GT(report.metrics.histogram("tile.latency")->count, 0u);
  EXPECT_NE(report.metrics.histogram("cache.acquire_wait"), nullptr);
  // Per-node traffic tables sum to the cluster table.
  ASSERT_EQ(report.node_traffic.size(), 2u);
  std::uint64_t per_node_messages = 0;
  for (const auto& t : report.node_traffic) {
    per_node_messages += t.total_messages();
  }
  EXPECT_EQ(per_node_messages, report.traffic.total_messages());
}

// --- trace exporter -------------------------------------------------------

TEST(TraceExporter, AlignsNodesOnOneTimeline) {
  using runtime::Profiler;
  using runtime::TaskKind;

  NodeTrace n0;
  n0.epoch_offset_s = 0.0;
  n0.lanes.push_back(Profiler::LaneView{
      "gpu0", 0.002, {{TaskKind::kCompare, 0.001, 0.003}}});
  n0.events.push_back(TraceEvent{EventKind::kNodeDeath, 0.004, 2, 1});

  NodeTrace n1;
  n1.epoch_offset_s = 0.010;  // started 10 ms after the process epoch
  n1.lanes.push_back(Profiler::LaneView{
      "gpu0", 0.001, {{TaskKind::kIo, 0.001, 0.002}}});

  TraceExporter exporter;
  exporter.add_node(0, n0);
  exporter.add_node(1, n1);
  const std::string json = exporter.to_json();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"node 0\""), std::string::npos);
  EXPECT_NE(json.find("\"node 1\""), std::string::npos);
  EXPECT_NE(json.find("\"node_death\""), std::string::npos);
  EXPECT_NE(json.find("\"compare\""), std::string::npos);
  // Node 0's span starts at 1 ms on the shared timeline; node 1's io span
  // starts at its epoch offset + 1 ms = 11 ms. Timestamps are written in
  // microseconds.
  EXPECT_NE(json.find("\"ts\":1000,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":11000,"), std::string::npos);
  // Balanced JSON at the macro level.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(EventLog, CapsAndCounts) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.record(EventKind::kPrefetchPark, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
}

// --- run summary ----------------------------------------------------------

TEST(RunSummary, EmitsDocumentedSchema) {
  runtime::NodeRuntime::Report node_report;
  node_report.pairs = 10;
  node_report.wall_seconds = 0.5;
  node_report.loads = 4;
  MetricsRegistry reg(true);
  reg.histogram("tile.latency").record_ns(1000000);
  reg.counter("peer_fetch.retry").add(2);
  node_report.metrics = reg.snapshot();

  const auto summary = RunSummary::from_node("unit", node_report);
  const std::string json = summary.to_json();
  EXPECT_NE(json.find("\"schema\":\"rocket.run_summary/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"single_node\""), std::string::npos);
  EXPECT_NE(json.find("\"pairs\":10"), std::string::npos);
  EXPECT_NE(json.find("\"tile.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"peer_fetch.retry\":2"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --- profiler span cap ----------------------------------------------------

TEST(Profiler, CapsSpanRetentionAndCounts) {
  using runtime::Profiler;
  using runtime::TaskKind;
  Profiler profiler(/*trace=*/true, /*max_spans_per_lane=*/4);
  const auto lane = profiler.add_lane("test");
  const auto t0 = Profiler::Clock::now();
  for (int i = 0; i < 10; ++i) {
    profiler.record(lane, TaskKind::kCompare, t0, t0);
  }
  EXPECT_EQ(profiler.spans_dropped(), 6u);
  const auto lanes = profiler.lanes_view();
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].spans.size(), 4u);
}

TEST(Profiler, DisabledRecordIsANoOp) {
  using runtime::Profiler;
  using runtime::TaskKind;
  Profiler profiler(/*trace=*/true);
  profiler.set_enabled(false);
  const auto lane = profiler.add_lane("test");
  const auto t0 = Profiler::Clock::now();
  profiler.record(lane, TaskKind::kCompare, t0, t0 + std::chrono::seconds(1));
  EXPECT_EQ(profiler.lanes_view()[0].spans.size(), 0u);
  EXPECT_DOUBLE_EQ(profiler.lane_busy_seconds(lane), 0.0);
}

// --- log level parsing ----------------------------------------------------

TEST(LogLevel, ParsesNamesAndDigits) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("bogus"), std::nullopt);
  EXPECT_EQ(parse_log_level("5"), std::nullopt);
}

}  // namespace
}  // namespace rocket::telemetry

// Grey-failure resilience tests (DESIGN.md §15): the FlakyStore fault
// injector, the load pipeline's transient-error retry loop and run-level
// error budget, the master's node health state machine driven by
// fabricated telemetry snapshots (alive → suspected → degraded →
// recovered), straggler backlog speculation, health-aware steal-victim
// selection, and the hysteresis guarantee that a recovered node becomes
// grantable again.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "apps/forensics.hpp"
#include "dnc/pair_space.hpp"
#include "mesh/mesh_node.hpp"
#include "mesh/result_ledger.hpp"
#include "mesh/transport.hpp"
#include "runtime/node_runtime.hpp"
#include "storage/object_store.hpp"
#include "telemetry/snapshot.hpp"

namespace rocket::mesh {
namespace {

using runtime::ItemId;
using runtime::PairResult;
using ResultMap = std::map<std::pair<ItemId, ItemId>, double>;

// --- FlakyStore fault injector --------------------------------------------

TEST(FlakyStore, InjectsBoundedConsecutiveTransientErrors) {
  storage::MemoryStore inner;
  inner.put("item", ByteBuffer{42});

  storage::FlakyStore::Config cfg;
  cfg.error_rate = 1.0;  // every draw fails...
  cfg.max_consecutive_failures = 2;  // ...but never 3+ times in a row
  storage::FlakyStore store(inner, cfg);

  // Two throws, then the consecutive-failure cap forces a success.
  EXPECT_THROW(store.read("item"), storage::TransientStoreError);
  EXPECT_THROW(store.read("item"), storage::TransientStoreError);
  const auto bytes = store.read("item");
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 42u);
  EXPECT_EQ(store.injected_errors(), 2u);

  // The success reset the streak: the pattern repeats.
  EXPECT_THROW(store.read("item"), storage::TransientStoreError);
  EXPECT_THROW(store.read("item"), storage::TransientStoreError);
  EXPECT_NO_THROW(store.read("item"));
  EXPECT_EQ(store.injected_errors(), 4u);
}

TEST(FlakyStore, ZeroRatePassesThroughAndSpikesCount) {
  storage::MemoryStore inner;
  inner.put("a", ByteBuffer{1, 2});

  storage::FlakyStore::Config cfg;
  cfg.error_rate = 0.0;
  cfg.spike_rate = 1.0;
  cfg.spike_us = 1;  // keep the test fast; the count is what matters
  storage::FlakyStore store(inner, cfg);

  EXPECT_EQ(store.read("a").size(), 2u);
  EXPECT_EQ(store.read("a").size(), 2u);
  EXPECT_EQ(store.injected_errors(), 0u);
  EXPECT_EQ(store.injected_spikes(), 2u);
  EXPECT_TRUE(store.exists("a"));
  EXPECT_EQ(store.size_of("a"), 2u);
}

// --- load-pipeline retry loop ---------------------------------------------

ResultMap run_single_node(const runtime::Application& app,
                          storage::ObjectStore& store,
                          runtime::NodeRuntime::Config cfg,
                          runtime::NodeRuntime::Report* report_out) {
  runtime::NodeRuntime rt(std::move(cfg));
  ResultMap results;
  std::mutex mutex;
  const auto report = rt.run(app, store, [&](const PairResult& r) {
    std::scoped_lock lock(mutex);
    results[{r.left, r.right}] = r.score;
  });
  if (report_out != nullptr) *report_out = report;
  return results;
}

runtime::NodeRuntime::Config small_node_config() {
  runtime::NodeRuntime::Config cfg;
  cfg.devices = {gpu::titanx_maxwell()};
  cfg.host_cache_capacity = 64_MiB;
  cfg.cpu_threads = 2;
  return cfg;
}

TEST(NodeRuntime, TransientLoadErrorsRetryToTheExactResult) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 3;
  fc.images_per_camera = 4;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 11;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);

  const ResultMap expected =
      run_single_node(app, store, small_node_config(), nullptr);
  ASSERT_EQ(expected.size(), 12ull * 11 / 2);

  // Half of all reads throw, but never more than twice in a row — the
  // default per-load retry allowance absorbs every streak, so the result
  // multiset is bit-identical to the clean run.
  storage::FlakyStore::Config flaky_cfg;
  flaky_cfg.error_rate = 0.5;
  flaky_cfg.max_consecutive_failures = 2;
  flaky_cfg.seed = 7;
  storage::FlakyStore flaky(store, flaky_cfg);

  runtime::NodeRuntime::Report report;
  const ResultMap results =
      run_single_node(app, flaky, small_node_config(), &report);

  EXPECT_EQ(results, expected);
  EXPECT_GT(report.load_retries, 0u) << "the injector must have fired";
  EXPECT_EQ(report.failed_loads, 0u)
      << "no load may exhaust its retries under the consecutive cap";
  EXPECT_GT(flaky.injected_errors(), 0u);
}

TEST(NodeRuntime, ExhaustedErrorBudgetFailsLoadsWithoutHanging) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 2;
  fc.images_per_camera = 4;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 13;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const std::uint64_t total = 8ull * 7 / 2;

  // Every read fails and streaks are effectively unbounded; a tiny
  // run-level error budget guarantees the retry loop gives up instead of
  // spinning forever. Failed items flow through the failed-pair path:
  // every pair is still delivered, with a NaN score.
  storage::FlakyStore::Config flaky_cfg;
  flaky_cfg.error_rate = 1.0;
  flaky_cfg.max_consecutive_failures = 1000000;
  storage::FlakyStore flaky(store, flaky_cfg);

  auto cfg = small_node_config();
  cfg.max_load_retries = 1000;   // per-load allowance is NOT the limiter
  cfg.load_error_budget = 16;    // ...the run-level budget is
  runtime::NodeRuntime::Report report;
  const ResultMap results = run_single_node(app, flaky, std::move(cfg),
                                            &report);

  ASSERT_EQ(results.size(), total) << "every pair must still be delivered";
  EXPECT_GT(report.failed_loads, 0u);
  std::size_t nan_pairs = 0;
  for (const auto& [pair, score] : results) {
    if (std::isnan(score)) ++nan_pairs;
  }
  EXPECT_EQ(nan_pairs, total)
      << "all items failed to load, so every pair must carry NaN";
}

// --- ResultLedger owed-work accounting ------------------------------------

TEST(ResultLedger, PairsOwedTracksGrantsTransfersAndDeliveries) {
  ResultLedger ledger(6, 3);
  EXPECT_EQ(ledger.pairs_owed(0), 0u);

  // Rows 0-1 (5 + 4 pairs) to node 0, rows 2-4 (3 + 2 + 1) to node 1.
  ledger.grant(0, dnc::Region{0, 2, 1, 6, 0}, false);
  ledger.grant(1, dnc::Region{2, 5, 3, 6, 0}, false);
  EXPECT_EQ(ledger.pairs_owed(0), 9u);
  EXPECT_EQ(ledger.pairs_owed(1), 6u);

  // Delivery shrinks the owner's debt; a duplicate changes nothing.
  EXPECT_TRUE(ledger.record(0, 1));
  EXPECT_FALSE(ledger.record(0, 1));
  EXPECT_EQ(ledger.pairs_owed(0), 8u);

  // A steal transfer moves the undelivered remainder of the region.
  ledger.transfer(dnc::Region{0, 1, 1, 6, 0}, 2);
  EXPECT_EQ(ledger.pairs_owed(0), 4u);
  EXPECT_EQ(ledger.pairs_owed(2), 4u);

  // Re-granting (speculation / failover) moves debt the same way: row 1's
  // four undelivered pairs leave node 0 and join node 1's six.
  ledger.grant(1, dnc::Region{1, 2, 2, 6, 0}, true);
  EXPECT_EQ(ledger.pairs_owed(0), 0u);
  EXPECT_EQ(ledger.pairs_owed(1), 10u);
}

// --- node health state machine --------------------------------------------

/// Three MeshNodes with the health detector live on the master and NO
/// runtimes or tickers: telemetry snapshots are fabricated by the test,
/// so every rate — and therefore every verdict — is scripted. The master
/// holds a real ledger (grants pin the owed-work guard open).
struct HealthHarness {
  static constexpr std::uint32_t kNodes = 3;
  static constexpr dnc::ItemIndex kItems = 30;

  InProcessTransport transport{kNodes};
  std::shared_ptr<std::atomic<bool>> done =
      std::make_shared<std::atomic<bool>>(false);
  std::vector<std::unique_ptr<MeshNode>> nodes;
  std::vector<std::uint64_t> pairs = std::vector<std::uint64_t>(kNodes, 0);
  std::vector<std::uint64_t> seq = std::vector<std::uint64_t>(kNodes, 0);
  bool joined = false;

  HealthHarness() {
    for (NodeId id = 0; id < kNodes; ++id) {
      MeshNode::Config mc;
      mc.id = id;
      if (id == MeshNode::kMaster) {
        mc.ledger_items = kItems;
        mc.initial_grants = dnc::partition_root(kItems, kNodes, 2);
        mc.degraded_rate_fraction = 0.5;
        mc.suspect_intervals = 2;
        mc.recover_rate_fraction = 0.7;
        mc.recover_intervals = 2;
        mc.health_ewma_alpha = 1.0;  // rate == last delta: fully scripted
        mc.speculation_regions_per_interval = 2;
      }
      nodes.push_back(std::make_unique<MeshNode>(mc, transport, done));
    }
    for (auto& node : nodes) node->start();
  }

  ~HealthHarness() { shutdown(); }

  void shutdown() {
    if (joined) return;
    joined = true;
    transport.close();
    for (auto& node : nodes) node->join();
  }

  /// One telemetry interval: bump each node's cumulative pair counter by
  /// the given delta and publish all three snapshots, the master's own
  /// LAST (its arrival is the evaluation metronome).
  void round(std::uint64_t d0, std::uint64_t d1, std::uint64_t d2) {
    // Spacing between rounds gives every per-node sample pair a real,
    // strictly positive arrival delta.
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
    const std::uint64_t deltas[kNodes] = {d0, d1, d2};
    for (NodeId id = kNodes; id-- > 0;) {  // 2, 1, then master 0 last
      pairs[id] += deltas[id];
      TelemetrySnapshot snap;
      snap.node = id;
      snap.seq = ++seq[id];
      snap.stats.pairs = pairs[id];
      transport.send(id, MeshNode::kMaster, net::Tag::kTelemetry, snap);
    }
    // Let the master's service thread drain the inbox before the caller
    // inspects verdicts.
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
  }

  /// Spin until `observer` sees `node` in `state` (gossip is async).
  bool await_health(NodeId observer, NodeId node,
                    telemetry::NodeHealth state, double timeout_s = 5.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      if (nodes[observer]->health_of(node) == state) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  /// Spin until `node` adopts a region (a speculated grant reached it).
  bool await_adoption(NodeId node, double timeout_s = 5.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      if (nodes[node]->remote_steal(0).has_value()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }
};

TEST(NodeHealth, StragglerIsSuspectedDegradedSpeculatedAndRecovers) {
  using telemetry::NodeHealth;
  HealthHarness mesh;

  // Round 1 is the baseline sample (no rate yet); rounds 2-3 show node 2
  // far below the cluster median.
  mesh.round(0, 0, 0);
  mesh.round(1000, 1000, 10);
  EXPECT_EQ(mesh.nodes[0]->health_of(2), NodeHealth::kSuspected);
  EXPECT_EQ(mesh.nodes[0]->health_of(1), NodeHealth::kAlive);
  mesh.round(1000, 1000, 10);
  EXPECT_EQ(mesh.nodes[0]->health_of(2), NodeHealth::kDegraded);

  // The verdict is gossiped: every peer's steal-victim selection sees it.
  EXPECT_TRUE(mesh.await_health(1, 2, NodeHealth::kDegraded));
  EXPECT_TRUE(mesh.await_health(2, 2, NodeHealth::kDegraded));

  // Degradation fired speculation: a slice of node 2's backlog was
  // re-granted to the healthy nodes, and node 1 adopts its share.
  EXPECT_TRUE(mesh.await_adoption(1))
      << "a speculated region must reach a healthy node";

  // While the straggler is degraded, node 1's victim sweeps skip it.
  (void)mesh.nodes[1]->remote_steal(0);
  EXPECT_GT(mesh.nodes[1]->failover_stats().steals_avoided_degraded, 0u);

  // Recovery hysteresis: two consecutive healthy intervals above the
  // recover threshold flip node 2 back to alive.
  mesh.round(1000, 1000, 1000);
  EXPECT_EQ(mesh.nodes[0]->health_of(2), NodeHealth::kDegraded)
      << "one good interval must not recover (hysteresis)";
  mesh.round(1000, 1000, 1000);
  EXPECT_EQ(mesh.nodes[0]->health_of(2), NodeHealth::kAlive);
  EXPECT_TRUE(mesh.await_health(1, 2, NodeHealth::kAlive));

  const FailoverStats stats = mesh.nodes[0]->failover_stats();
  EXPECT_GE(stats.nodes_suspected, 1u);
  EXPECT_EQ(stats.nodes_degraded, 1u);
  EXPECT_EQ(stats.nodes_recovered, 1u);
  EXPECT_GT(stats.regions_speculated, 0u);
  EXPECT_GT(stats.pairs_speculated, 0u);
}

TEST(NodeHealth, RecoveredNodeReceivesSpeculatedGrantsAgain) {
  using telemetry::NodeHealth;
  HealthHarness mesh;

  // Degrade node 2, then recover it (as above, compressed).
  mesh.round(0, 0, 0);
  mesh.round(1000, 1000, 10);
  mesh.round(1000, 1000, 10);
  ASSERT_EQ(mesh.nodes[0]->health_of(2), NodeHealth::kDegraded);
  mesh.round(1000, 1000, 1000);
  mesh.round(1000, 1000, 1000);
  ASSERT_EQ(mesh.nodes[0]->health_of(2), NodeHealth::kAlive);

  // Now node 1 degrades. The healthy set is {0, 2}: the RECOVERED node
  // must be grantable again — hysteresis ends its exclusion.
  mesh.round(1000, 10, 1000);
  mesh.round(1000, 10, 1000);
  ASSERT_EQ(mesh.nodes[0]->health_of(1), NodeHealth::kDegraded);
  bool adopted = false;
  for (int i = 0; i < 50 && !adopted; ++i) {
    mesh.round(1000, 10, 1000);  // each interval drains another slice
    adopted = mesh.nodes[2]->remote_steal(0).has_value();
  }
  EXPECT_TRUE(adopted)
      << "a recovered node must receive speculated grants again";

  // A one-interval dip must clear a suspicion without degrading.
  mesh.round(1000, 1000, 10);
  EXPECT_EQ(mesh.nodes[0]->health_of(2), NodeHealth::kSuspected);
  mesh.round(1000, 1000, 1000);
  EXPECT_EQ(mesh.nodes[0]->health_of(2), NodeHealth::kAlive);
}

TEST(NodeHealth, DeathVerdictOutranksGossipAndFreezesState) {
  using telemetry::NodeHealth;
  HealthHarness mesh;

  mesh.round(0, 0, 0);
  mesh.round(1000, 1000, 10);
  mesh.round(1000, 1000, 10);
  ASSERT_EQ(mesh.nodes[0]->health_of(2), NodeHealth::kDegraded);

  // Node 1 learns of node 2's death (e.g. a lease verdict broadcast).
  // Late health gossip about the corpse must not resurrect it.
  mesh.transport.send(0, 1, net::Tag::kFailover, NodeDown{2, 0});
  EXPECT_TRUE(mesh.await_health(1, 2, NodeHealth::kDead));

  mesh.transport.send(
      0, 1, net::Tag::kFailover,
      HealthUpdate{2, static_cast<std::uint8_t>(NodeHealth::kAlive), 1000});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(mesh.nodes[1]->health_of(2), NodeHealth::kDead)
      << "dead outranks any health gossip";
}

}  // namespace
}  // namespace rocket::mesh

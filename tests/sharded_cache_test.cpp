// ShardedSlotCache: shards=1 bit-compatibility with the single-threaded
// SlotCache policy, hashed shard placement, the lock-free read fast path,
// batched (shard-grouped) acquire/release, and a multi-threaded contention
// stress run with per-shard invariant audits (exercised under TSAN in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "cache/sharded_slot_cache.hpp"
#include "cache/slot_cache.hpp"

namespace rocket::cache {
namespace {

using Outcome = SlotCache::Outcome;
using Grant = SlotCache::Grant;

ShardedSlotCache::Config make_config(std::uint32_t slots,
                                     std::uint32_t shards,
                                     std::uint32_t max_items) {
  return ShardedSlotCache::Config{slots, megabytes(1), "test", shards,
                                  max_items};
}

TEST(ShardedSlotCache, ShardCountIsClampedToTwoSlotsPerShard) {
  ShardedSlotCache tiny(make_config(4, 16, 100));
  EXPECT_EQ(tiny.num_shards(), 2u);
  EXPECT_EQ(tiny.num_slots(), 4u);
  EXPECT_EQ(tiny.min_shard_slots(), 2u);

  ShardedSlotCache wide(make_config(64, 8, 100));
  EXPECT_EQ(wide.num_shards(), 8u);
  EXPECT_EQ(wide.min_shard_slots(), 8u);
}

TEST(ShardedSlotCache, ItemAlwaysHashesToTheSameShardAndSpreads) {
  ShardedSlotCache cache(make_config(64, 8, 256));
  std::set<std::uint32_t> used;
  for (ItemId i = 0; i < 256; ++i) {
    const auto s = cache.shard_of(i);
    EXPECT_EQ(s, cache.shard_of(i));
    EXPECT_LT(s, cache.num_shards());
    used.insert(s);
  }
  // 256 items over 8 shards: a hash that funnels everything into one or
  // two shards would resurrect the global serialization point.
  EXPECT_GE(used.size(), 6u);
}

// Drive an identical operation script through a bare SlotCache and a
// shards=1 ShardedSlotCache and demand identical grants and identical
// stats — the escape hatch the simulator-equivalence argument rests on.
TEST(ShardedSlotCache, ShardsOneIsBitCompatibleWithSlotCache) {
  SlotCache plain({4, megabytes(1), "plain"});
  ShardedSlotCache sharded(make_config(4, 1, 16));

  const auto step = [&](ItemId item) {
    const Grant a = plain.acquire(item, [](Grant) {});
    const Grant b = sharded.acquire(item, [](Grant) {});
    ASSERT_EQ(a.outcome, b.outcome);
    ASSERT_EQ(a.slot, b.slot);
    if (a.outcome == Outcome::kFill) {
      plain.publish(a.slot);
      sharded.publish(b.slot);
    }
    if (a.outcome == Outcome::kHit || a.outcome == Outcome::kFill) {
      plain.release(a.slot);
      sharded.release(b.slot);
    }
  };
  // Fills, hits, evictions, a probe, and an abort — the full stat surface.
  for (const ItemId item : {0u, 1u, 2u, 3u, 0u, 1u, 4u, 5u, 6u, 2u, 0u}) {
    step(item);
  }
  {
    const auto a = plain.try_pin(9);
    const auto b = sharded.try_pin(9);
    EXPECT_EQ(a.has_value(), b.has_value());
  }
  {
    const Grant a = plain.acquire(10, nullptr);
    const Grant b = sharded.acquire(10, nullptr);
    ASSERT_EQ(a.outcome, Outcome::kFill);
    ASSERT_EQ(b.outcome, Outcome::kFill);
    plain.abort(a.slot);
    sharded.abort(b.slot);
  }

  const CacheStats sa = plain.stats();
  const CacheStats sb = sharded.stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.write_waits, sb.write_waits);
  EXPECT_EQ(sa.fills, sb.fills);
  EXPECT_EQ(sa.evictions, sb.evictions);
  EXPECT_EQ(sa.alloc_stalls, sb.alloc_stalls);
  EXPECT_EQ(sa.failures, sb.failures);
  EXPECT_EQ(plain.probe_hits(), sharded.probe_hits());
  EXPECT_EQ(plain.probe_misses(), sharded.probe_misses());
  EXPECT_EQ(plain.resident_items(), sharded.resident_items());
  EXPECT_EQ(sharded.fast_hits(), 0u);  // fast path is off at shards=1
  plain.check_invariants();
  sharded.check_invariants();
}

TEST(ShardedSlotCache, FastPathPinsAlreadyPinnedItemsWithoutTheLock) {
  ShardedSlotCache cache(make_config(16, 4, 16));
  std::vector<SlotId> base;
  for (ItemId i = 0; i < 8; ++i) {
    const Grant g = cache.acquire(i, nullptr);
    ASSERT_EQ(g.outcome, Outcome::kFill);
    cache.publish(g.slot);
    base.push_back(g.slot);  // keep the writer pin: fast path eligible
  }
  EXPECT_EQ(cache.fast_hits(), 0u);
  for (ItemId i = 0; i < 8; ++i) {
    const Grant g = cache.acquire(i, nullptr);
    ASSERT_EQ(g.outcome, Outcome::kHit);
    EXPECT_EQ(g.slot, base[i]);
    cache.release(g.slot);
  }
  EXPECT_EQ(cache.fast_hits(), 8u);
  EXPECT_EQ(cache.stats().hits, 8u);  // fast hits fold into merged stats

  // try_pin rides the same fast path and counts as a probe hit.
  const auto pin = cache.try_pin(3);
  ASSERT_TRUE(pin.has_value());
  cache.release(*pin);
  EXPECT_EQ(cache.probe_hits(), 1u);

  // Unpinned items (policy readers == 0) must take the locked path — a
  // lock-free pin there could race eviction.
  for (const auto slot : base) cache.release(slot);
  const auto before = cache.fast_hits();
  const Grant g = cache.acquire(2, nullptr);
  EXPECT_EQ(g.outcome, Outcome::kHit);
  cache.release(g.slot);
  EXPECT_EQ(cache.fast_hits(), before);
  cache.check_invariants();
}

TEST(ShardedSlotCache, BatchAcquireAndReleaseSpanShards) {
  ShardedSlotCache cache(make_config(32, 4, 64));
  std::vector<ItemId> items;
  for (ItemId i = 0; i < 12; ++i) items.push_back(i);

  const auto grants = cache.acquire_batch(items, nullptr);
  ASSERT_EQ(grants.size(), items.size());
  std::vector<SlotId> slots;
  for (const auto& g : grants) {
    ASSERT_EQ(g.outcome, Outcome::kFill);  // cold cache: all fills
    cache.publish(g.slot);
    slots.push_back(g.slot);
  }
  EXPECT_EQ(cache.resident_items(), 12u);

  // Second batch: all hits, slots stable, grants index-aligned.
  const auto again = cache.acquire_batch(items, nullptr);
  for (std::size_t k = 0; k < again.size(); ++k) {
    EXPECT_EQ(again[k].outcome, Outcome::kHit);
    EXPECT_EQ(again[k].slot, slots[k]);
  }

  std::vector<SlotId> all = slots;
  all.insert(all.end(), slots.begin(), slots.end());
  cache.release_batch(all);  // writer pins + batch pins in one pass
  EXPECT_EQ(cache.resident_items(), 12u);
  cache.check_invariants();
}

TEST(ShardedSlotCache, QueuedBatchEntriesResolveWithOriginalIndices) {
  ShardedSlotCache cache(make_config(8, 2, 16));
  // Make item 5 busy: a writer holds its slot in WRITE.
  const Grant writer = cache.acquire(5, nullptr);
  ASSERT_EQ(writer.outcome, Outcome::kFill);

  std::vector<std::pair<std::size_t, Grant>> resolved;
  const std::vector<ItemId> items = {1, 5, 2};
  const auto grants = cache.acquire_batch(
      items, [&](std::size_t k, Grant g) { resolved.push_back({k, g}); });
  EXPECT_EQ(grants[0].outcome, Outcome::kFill);
  EXPECT_EQ(grants[1].outcome, Outcome::kQueued);
  EXPECT_EQ(grants[2].outcome, Outcome::kFill);

  cache.publish(writer.slot);
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].first, 1u);  // the batch's index of item 5
  EXPECT_EQ(resolved[0].second.outcome, Outcome::kHit);

  cache.release(writer.slot);
  cache.release(resolved[0].second.slot);
  cache.publish(grants[0].slot);
  cache.publish(grants[2].slot);
  cache.release_batch({grants[0].slot, grants[2].slot});
  cache.check_invariants();
}

// Many threads race hits, fills, aborts, probes and batched tile pins
// across shards; afterwards every shard's policy invariants and the
// fast-path word mirror must audit clean. Run under TSAN in CI.
TEST(ShardedSlotCacheStress, ContentionAcrossShards) {
  constexpr std::uint32_t kItems = 48;
  constexpr std::uint32_t kSlots = 64;
  constexpr unsigned kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  ShardedSlotCache cache(make_config(kSlots, 8, kItems));

  // Queued grants resolve from inside another thread's publish/abort/
  // release, with the shard mutex held — exactly like the runtime, the
  // callback must not re-enter the cache. Park them here and settle after
  // the workers join.
  std::mutex late_mutex;
  std::vector<Grant> late;
  const auto park = [&](Grant g) {
    std::scoped_lock lock(late_mutex);
    late.push_back(g);
  };

  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t rng = 0x9E3779B97F4A7C15ULL * (t + 1);
      const auto next = [&rng] {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        return rng >> 33;
      };
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto kind = next() % 10;
        if (kind < 6) {
          // Pair-style access: pin two items (fill on miss, sometimes
          // abort the fill), then release.
          std::vector<SlotId> pins;
          for (int p = 0; p < 2; ++p) {
            const auto item = static_cast<ItemId>(next() % kItems);
            const Grant g = cache.acquire(item, park);
            if (g.outcome == Outcome::kFill) {
              if (next() % 8 == 0) {
                cache.abort(g.slot);
              } else {
                cache.publish(g.slot);
                pins.push_back(g.slot);
              }
            } else if (g.outcome == Outcome::kHit) {
              pins.push_back(g.slot);
            }
          }
          for (const auto slot : pins) cache.release(slot);
        } else if (kind < 8) {
          // Tile-style batch over a small working set.
          std::vector<ItemId> items;
          const auto start = static_cast<ItemId>(next() % kItems);
          for (ItemId i = 0; i < 4; ++i) {
            items.push_back((start + i) % kItems);
          }
          std::sort(items.begin(), items.end());
          items.erase(std::unique(items.begin(), items.end()), items.end());
          const auto grants = cache.acquire_batch(
              items, [&](std::size_t, Grant g) { park(g); });
          std::vector<SlotId> pins;
          for (const auto& g : grants) {
            if (g.outcome == Outcome::kFill) {
              cache.publish(g.slot);
              pins.push_back(g.slot);
            } else if (g.outcome == Outcome::kHit) {
              pins.push_back(g.slot);
            }
          }
          cache.release_batch(pins);
        } else {
          // Remote-style probe: non-disruptive pin + release.
          const auto pin = cache.try_pin(static_cast<ItemId>(next() % kItems));
          if (pin) cache.release(*pin);
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(completed.load(), kThreads * kOpsPerThread);

  // Settle the parked grants: hits drop their pin, fills publish and
  // drop. Settling can unblock further queued grants (the callbacks run
  // inline now), so loop until the list drains.
  for (;;) {
    std::vector<Grant> batch;
    {
      std::scoped_lock lock(late_mutex);
      batch.swap(late);
    }
    if (batch.empty()) break;
    for (const auto& g : batch) {
      if (g.outcome == Outcome::kHit) {
        cache.release(g.slot);
      } else if (g.outcome == Outcome::kFill) {
        cache.publish(g.slot);
        cache.release(g.slot);
      }
    }
  }

  cache.check_invariants();
  const auto stats = cache.stats();
  EXPECT_GT(stats.fills, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(cache.fast_hits(), 0u);
  // Every shard saw traffic (hashing spreads the key space).
  for (std::uint32_t s = 0; s < cache.num_shards(); ++s) {
    const auto shard = cache.shard_stats(s);
    EXPECT_GT(shard.hits + shard.fills, 0u) << "shard " << s;
  }
}

TEST(CacheStatsMerge, AccumulatesEveryCounter) {
  CacheStats a{1, 2, 3, 4, 5, 6};
  const CacheStats b{10, 20, 30, 40, 50, 60};
  a += b;
  EXPECT_EQ(a.hits, 11u);
  EXPECT_EQ(a.write_waits, 22u);
  EXPECT_EQ(a.fills, 33u);
  EXPECT_EQ(a.evictions, 44u);
  EXPECT_EQ(a.alloc_stalls, 55u);
  EXPECT_EQ(a.failures, 66u);
}

}  // namespace
}  // namespace rocket::cache

// Tests for the platform substrates: net (fabric), storage, gpu.

#include <gtest/gtest.h>

#include <string>

#include "gpu/device_spec.hpp"
#include "gpu/virtual_device.hpp"
#include "net/fabric.hpp"
#include "storage/object_store.hpp"
#include "storage/sim_store.hpp"

namespace rocket {
namespace {

// --- net ---

struct Payload {
  int value = 0;
};

using TestFabric = net::Fabric<Payload>;

sim::Process receive_one(TestFabric* fabric, net::NodeId node,
                         std::vector<std::pair<double, int>>* log,
                         sim::Simulation* sim) {
  auto env = co_await fabric->mailbox(node).recv();
  log->emplace_back(sim->now(), env.body.value);
}

TEST(Fabric, ControlMessageLatency) {
  sim::Simulation sim;
  net::FabricConfig cfg;
  cfg.latency = 2e-6;
  TestFabric fabric(sim, 4, cfg);
  std::vector<std::pair<double, int>> log;
  spawn(sim, receive_one(&fabric, 2, &log, &sim));
  fabric.send(0, 2, net::Tag::kControl, Payload{42});
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0].first, 2e-6);
  EXPECT_EQ(log[0].second, 42);
}

TEST(Fabric, LocalDeliveryHasZeroLatency) {
  sim::Simulation sim;
  TestFabric fabric(sim, 2, net::FabricConfig{});
  std::vector<std::pair<double, int>> log;
  spawn(sim, receive_one(&fabric, 1, &log, &sim));
  fabric.send(1, 1, net::Tag::kControl, Payload{7});
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0].first, 0.0);
}

sim::Process bulk_sender(TestFabric* fabric, Bytes bytes) {
  co_await fabric->send_bulk(0, 1, net::Tag::kCacheData, Payload{1}, bytes);
}

TEST(Fabric, BulkTransferSerialisesThroughNic) {
  sim::Simulation sim;
  net::FabricConfig cfg;
  cfg.latency = 0.0;
  cfg.link_bandwidth = mb_per_sec(100);
  TestFabric fabric(sim, 2, cfg);
  std::vector<std::pair<double, int>> log;
  spawn(sim, receive_one(&fabric, 1, &log, &sim));
  spawn(sim, bulk_sender(&fabric, 50_MB));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NEAR(log[0].first, 0.5, 1e-9);  // 50 MB at 100 MB/s
}

TEST(Fabric, TrafficAccountingPerTag) {
  sim::Simulation sim;
  TestFabric fabric(sim, 2, net::FabricConfig{});
  fabric.send(0, 1, net::Tag::kCacheRequest, Payload{});
  fabric.send(0, 1, net::Tag::kCacheRequest, Payload{});
  fabric.send(1, 0, net::Tag::kStealRequest, Payload{});
  sim.run_until(1.0);
  const auto& counters = fabric.counters();
  EXPECT_EQ(counters.per_tag[static_cast<int>(net::Tag::kCacheRequest)].messages, 2u);
  EXPECT_EQ(counters.per_tag[static_cast<int>(net::Tag::kStealRequest)].messages, 1u);
  EXPECT_EQ(counters.total_messages(), 3u);
  EXPECT_STREQ(net::tag_name(net::Tag::kCacheData), "cache-data");
}

// --- storage ---

TEST(MemoryStore, PutReadAndStats) {
  storage::MemoryStore store;
  store.put("a.bin", ByteBuffer{1, 2, 3});
  EXPECT_TRUE(store.exists("a.bin"));
  EXPECT_FALSE(store.exists("b.bin"));
  EXPECT_EQ(store.size_of("a.bin"), 3u);
  EXPECT_EQ(store.read("a.bin"), (ByteBuffer{1, 2, 3}));
  EXPECT_EQ(store.stats().reads, 1u);
  EXPECT_EQ(store.stats().bytes_read, 3u);
  EXPECT_THROW(store.read("missing"), std::runtime_error);
}

TEST(DirectoryStore, RoundTripsFiles) {
  storage::DirectoryStore store(::testing::TempDir() + "/rocket_store_test");
  ByteBuffer payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  store.put("item_0001.dat", payload);
  EXPECT_TRUE(store.exists("item_0001.dat"));
  EXPECT_EQ(store.size_of("item_0001.dat"), payload.size());
  EXPECT_EQ(store.read("item_0001.dat"), payload);
  const auto names = store.list();
  EXPECT_NE(std::find(names.begin(), names.end(), "item_0001.dat"), names.end());
  EXPECT_THROW(store.read("nope"), std::runtime_error);
}

sim::Process timed_read(storage::SimulatedStore* store, Bytes bytes,
                        double* done, sim::Simulation* sim) {
  co_await store->read(bytes);
  *done = sim->now();
}

TEST(SimulatedStore, SingleReadTime) {
  sim::Simulation sim;
  storage::SimulatedStoreConfig cfg;
  cfg.bandwidth = mb_per_sec(100);
  cfg.request_overhead = 0.001;
  storage::SimulatedStore store(sim, cfg);
  double done = 0;
  spawn(sim, timed_read(&store, 10_MB, &done, &sim));
  sim.run();
  EXPECT_NEAR(done, 0.101, 1e-9);  // 1 ms overhead + 10 MB / 100 MBps
  EXPECT_EQ(store.reads(), 1u);
  EXPECT_EQ(store.bytes_read(), 10_MB);
}

TEST(SimulatedStore, ConcurrentReadsContend) {
  sim::Simulation sim;
  storage::SimulatedStoreConfig cfg;
  cfg.bandwidth = mb_per_sec(100);
  cfg.request_overhead = 0.0;
  storage::SimulatedStore store(sim, cfg);
  double a = 0, b = 0;
  spawn(sim, timed_read(&store, 10_MB, &a, &sim));
  spawn(sim, timed_read(&store, 10_MB, &b, &sim));
  sim.run();
  // Two concurrent 10 MB reads at 100 MB/s shared → 0.2 s each.
  EXPECT_NEAR(a, 0.2, 1e-6);
  EXPECT_NEAR(b, 0.2, 1e-6);
  EXPECT_NEAR(store.average_usage(sim.now()), mb_per_sec(100), mb_per_sec(1));
}

// --- gpu ---

TEST(DeviceSpec, CatalogueOrderingMatchesGenerations) {
  // Relative speeds must preserve the paper's qualitative ordering.
  EXPECT_LT(gpu::k20m().relative_speed, gpu::gtx980().relative_speed);
  EXPECT_LT(gpu::gtx980().relative_speed, gpu::titanx_maxwell().relative_speed);
  EXPECT_LT(gpu::titanx_maxwell().relative_speed,
            gpu::titanx_pascal().relative_speed);
  EXPECT_LT(gpu::titanx_pascal().relative_speed,
            gpu::rtx2080ti().relative_speed);
  EXPECT_DOUBLE_EQ(gpu::titanx_maxwell().relative_speed, 1.0);
}

TEST(DeviceSpec, CacheCapacityMatchesTable1) {
  // 291 slots of 38.1 MB fit in the TitanX Maxwell cache budget.
  const auto spec = gpu::titanx_maxwell();
  const auto slots = spec.cache_capacity() / megabytes(38.1);
  EXPECT_GE(slots, 288u);
  EXPECT_LE(slots, 294u);
}

TEST(DeviceSpec, KernelScaling) {
  const auto fast = gpu::rtx2080ti();
  const auto slow = gpu::k20m();
  EXPECT_NEAR(fast.scale_kernel_time(1.0), 1.0 / 2.4, 1e-12);
  EXPECT_GT(slow.scale_kernel_time(1.0), 2.0);
}

TEST(DeviceSpec, LookupByName) {
  EXPECT_EQ(gpu::device_by_name("RTX2080Ti").generation,
            gpu::Generation::kTuring);
  EXPECT_THROW(gpu::device_by_name("H100"), std::invalid_argument);
  EXPECT_STREQ(gpu::generation_name(gpu::Generation::kPascal), "Pascal");
}

TEST(VirtualDevice, AllocationAccounting) {
  gpu::VirtualDevice device(0, gpu::gtx980());  // 4 GB
  auto buffer = device.allocate(1_GB);
  EXPECT_EQ(device.allocated(), 1_GB);
  EXPECT_EQ(buffer.size(), 1_GB);
  {
    auto second = device.allocate(2_GB);
    EXPECT_EQ(device.allocated(), 3_GB);
  }
  EXPECT_EQ(device.allocated(), 1_GB);  // RAII returned the bytes
}

TEST(VirtualDevice, OutOfMemoryThrows) {
  gpu::VirtualDevice device(0, gpu::gtx980());
  auto hog = device.allocate(3_GB);
  EXPECT_THROW(device.allocate(2_GB), gpu::DeviceOutOfMemory);
  EXPECT_EQ(device.allocated(), 3_GB);  // failed alloc left no residue
}

TEST(VirtualDevice, MoveTransfersOwnership) {
  gpu::VirtualDevice device(0, gpu::titanx_maxwell());
  auto a = device.allocate(100_MB);
  a.data()[0] = 0xAB;
  gpu::DeviceBuffer b = std::move(a);
  EXPECT_EQ(b.size(), 100_MB);
  EXPECT_EQ(b.data()[0], 0xAB);
  EXPECT_EQ(device.allocated(), 100_MB);
  b = gpu::DeviceBuffer();
  EXPECT_EQ(device.allocated(), 0u);
}

}  // namespace
}  // namespace rocket

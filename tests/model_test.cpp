#include <gtest/gtest.h>

#include "model/performance_model.hpp"

namespace rocket::model {
namespace {

// The paper's forensics column of Table 1 (TitanX Maxwell).
StageProfile forensics_profile() {
  StageProfile p;
  p.t_parse = milliseconds(130.8);
  p.t_preprocess = milliseconds(20.5);
  p.t_comparison = milliseconds(1.1);
  p.t_postprocess = 0.0;
  p.file_size = megabytes(3.9);  // 19.4 GB / 4980 files
  p.slot_size = megabytes(38.1);
  return p;
}

TEST(PerformanceModel, PairCountFormula) {
  EXPECT_EQ(pair_count(4980), 12397710u);
  EXPECT_EQ(pair_count(2500), 3123750u);
  EXPECT_EQ(pair_count(2), 1u);
  EXPECT_EQ(pair_count(1), 0u);
  EXPECT_EQ(pair_count(0), 0u);
}

TEST(PerformanceModel, TminMatchesHandComputation) {
  const PerformanceModel model(forensics_profile(), 4980);
  // Tmin = n * t_pre + C(n,2) * t_cmp = 4980*0.0205 + 12397710*0.0011
  const double expected = 4980 * 0.0205 + 12397710.0 * 0.0011;
  EXPECT_NEAR(model.t_min(), expected, 1e-9);
  // ≈ 3.8 hours, matching Fig 8's dotted line magnitude.
  EXPECT_NEAR(model.t_min() / 3600.0, 3.82, 0.05);
}

TEST(PerformanceModel, GpuTimeScalesWithReuseFactor) {
  const PerformanceModel model(forensics_profile(), 4980);
  const double t1 = model.t_gpu(1.0);
  const double t2 = model.t_gpu(6.7);
  // Only the preprocess term grows with R.
  EXPECT_NEAR(t2 - t1, (6.7 - 1.0) * 4980 * 0.0205, 1e-9);
}

TEST(PerformanceModel, CpuAndIoEquations) {
  const PerformanceModel model(forensics_profile(), 4980);
  EXPECT_NEAR(model.t_cpu(2.0), 2.0 * 4980 * 0.1308, 1e-9);
  // R=1, 100 MB/s: 4980 * 3.9 MB / 100 MB/s.
  EXPECT_NEAR(model.t_io(1.0, mb_per_sec(100)), 4980 * 3.9 / 100.0, 1e-6);
  EXPECT_DOUBLE_EQ(model.t_io(1.0, 0.0), 0.0);
}

TEST(PerformanceModel, EfficiencyDefinition) {
  const PerformanceModel model(forensics_profile(), 4980);
  const double tmin = model.t_min();
  // Running exactly at the bound on 1 GPU → efficiency 1.
  EXPECT_NEAR(model.efficiency(tmin, 1), 1.0, 1e-12);
  // Paper: 94.6% single-node efficiency → measured = Tmin / 0.946.
  EXPECT_NEAR(model.efficiency(tmin / 0.946, 1), 0.946, 1e-12);
  // Super-linear: measured better than Tmin/p gives efficiency > 1.
  EXPECT_GT(model.efficiency(tmin / 16.9, 16), 1.0);
  EXPECT_DOUBLE_EQ(model.efficiency(0.0, 16), 0.0);
  EXPECT_DOUBLE_EQ(model.efficiency(100.0, 0), 0.0);
}

TEST(PerformanceModel, ReuseFactor) {
  const PerformanceModel model(forensics_profile(), 4980);
  EXPECT_DOUBLE_EQ(model.reuse_factor(4980), 1.0);
  EXPECT_NEAR(model.reuse_factor(33366), 6.7, 0.01);
}

TEST(PerformanceModel, PredictedRuntimeIsMaxOfResources) {
  StageProfile p = forensics_profile();
  const PerformanceModel model(p, 1000);
  // With a crippled I/O bandwidth, I/O dominates.
  const double slow_io = model.predicted_runtime(1.0, mb_per_sec(0.1));
  EXPECT_DOUBLE_EQ(slow_io, model.t_io(1.0, mb_per_sec(0.1)));
  // With fast I/O, the GPU dominates for this profile (t_parse > t_pre per
  // load, but the comparison term dwarfs both at n=1000).
  const double fast_io = model.predicted_runtime(1.0, gb_per_sec(100));
  EXPECT_DOUBLE_EQ(fast_io, std::max(model.t_gpu(1.0), model.t_cpu(1.0)));
}

TEST(PerformanceModel, MicroscopyIsComputeBound) {
  StageProfile p;
  p.t_parse = milliseconds(27.4);
  p.t_comparison = milliseconds(564.3);
  p.file_size = kilobytes(586);  // 150 MB / 256
  p.slot_size = kilobytes(6);
  const PerformanceModel model(p, 256);
  // Comparison time dominates: Tmin ≈ C(256,2) * 0.5643 s ≈ 5.1 hours,
  // matching the magnitude of Fig 8 (microscopy).
  EXPECT_NEAR(model.t_min() / 3600.0, 5.12, 0.1);
  EXPECT_GT(model.t_gpu(1.0), model.t_cpu(1.0));
  EXPECT_GT(model.t_gpu(1.0), model.t_io(1.0, mb_per_sec(100)));
}

}  // namespace
}  // namespace rocket::model

#include <gtest/gtest.h>

#include <cmath>

#include "apps/bioinformatics.hpp"
#include "apps/forensics.hpp"
#include "apps/image.hpp"
#include "apps/json.hpp"
#include "apps/microscopy.hpp"
#include "common/stats.hpp"

namespace rocket::apps {
namespace {

// --- image codec ---

Image noisy_gradient(std::uint32_t w, std::uint32_t h, std::uint64_t seed) {
  Rng rng(seed);
  Image img = make_image(w, h);
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      img.at(x, y) = static_cast<float>(
          64.0 + 0.5 * x + 0.3 * y + rng.normal(0, 3.0));
    }
  }
  return img;
}

TEST(ImageCodec, RoundTripIsCloseAtHighQuality) {
  const Image original = noisy_gradient(64, 48, 1);
  const ByteBuffer encoded = encode_image(original, 0.95);
  const Image decoded = decode_image(encoded);
  ASSERT_EQ(decoded.width, original.width);
  ASSERT_EQ(decoded.height, original.height);
  OnlineStats error;
  for (std::size_t i = 0; i < original.size(); ++i) {
    error.add(std::abs(decoded.pixels[i] - original.pixels[i]));
  }
  EXPECT_LT(error.mean(), 2.5) << "high quality should be near-lossless";
}

TEST(ImageCodec, LowerQualityMeansSmallerFiles) {
  const Image img = noisy_gradient(64, 64, 2);
  const auto high = encode_image(img, 0.95).size();
  const auto low = encode_image(img, 0.2).size();
  EXPECT_LT(low, high);
}

TEST(ImageCodec, RejectsCorruptData) {
  const Image img = noisy_gradient(16, 16, 3);
  ByteBuffer bytes = encode_image(img);
  bytes.resize(bytes.size() / 3);
  EXPECT_THROW(decode_image(bytes), std::runtime_error);
  EXPECT_THROW(decode_image(ByteBuffer{1, 2, 3}), std::runtime_error);
}

TEST(ImageOps, BoxBlurPreservesConstantImages) {
  const Image constant = make_image(32, 32, 77.0f);
  const Image blurred = box_blur(constant, 3);
  for (const float p : blurred.pixels) EXPECT_NEAR(p, 77.0f, 1e-4f);
}

TEST(ImageOps, ResidualIsZeroMeanUnitNorm) {
  const Image img = noisy_gradient(64, 64, 4);
  const auto residual = noise_residual(img);
  double mean = 0, norm2 = 0;
  for (const float r : residual) {
    mean += r;
    norm2 += static_cast<double>(r) * r;
  }
  EXPECT_NEAR(mean / residual.size(), 0.0, 1e-6);
  EXPECT_NEAR(norm2, 1.0, 1e-4);
}

TEST(ImageOps, NccBoundsAndIdentity) {
  const Image img = noisy_gradient(32, 32, 5);
  const auto a = noise_residual(img);
  EXPECT_NEAR(normalized_cross_correlation(a, a), 1.0, 1e-9);
  const auto b = noise_residual(noisy_gradient(32, 32, 6));
  const double c = normalized_cross_correlation(a, b);
  EXPECT_GE(c, -1.0);
  EXPECT_LE(c, 1.0);
}

// --- forensics end-to-end discrimination ---

TEST(Forensics, SameCameraPairsCorrelateHigher) {
  storage::MemoryStore store;
  ForensicsConfig cfg;
  cfg.cameras = 3;
  cfg.images_per_camera = 4;
  cfg.width = 96;
  cfg.height = 64;
  cfg.seed = 11;
  ForensicsDataset dataset(cfg, store);
  ForensicsApplication app(dataset);

  // Drive the pipeline manually: parse → preprocess → compare.
  gpu::VirtualDevice device(0, gpu::titanx_maxwell());
  auto load = [&](runtime::ItemId item) {
    runtime::HostBuffer parsed;
    app.parse(item, store.read(app.file_name(item)), parsed);
    auto buffer = device.allocate(app.slot_size());
    std::copy(parsed.begin(), parsed.end(), buffer.data());
    app.preprocess(item, buffer);
    return buffer;
  };

  OnlineStats same, cross;
  std::vector<gpu::DeviceBuffer> items;
  for (runtime::ItemId i = 0; i < dataset.item_count(); ++i) {
    items.push_back(load(i));
  }
  for (runtime::ItemId i = 0; i < dataset.item_count(); ++i) {
    for (runtime::ItemId j = i + 1; j < dataset.item_count(); ++j) {
      const double score = app.compare(i, items[i], j, items[j]);
      if (dataset.camera_of(i) == dataset.camera_of(j)) {
        same.add(score);
      } else {
        cross.add(score);
      }
    }
  }
  EXPECT_GT(same.mean(), cross.mean() + 3 * cross.stddev())
      << "PRNU must separate same-camera pairs (same mean=" << same.mean()
      << " cross mean=" << cross.mean() << ")";
}

// --- JSON ---

TEST(Json, ParsesDocuments) {
  const auto doc = json_parse(std::string(
      R"({"name": "particle", "n": 3, "ok": true, "pts": [[1.5, -2], [0, 4e2]], "none": null})"));
  EXPECT_EQ(doc.at("name").as_string(), "particle");
  EXPECT_DOUBLE_EQ(doc.at("n").as_number(), 3.0);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  const auto& pts = doc.at("pts").as_array();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].as_array()[1].as_number(), -2.0);
  EXPECT_DOUBLE_EQ(pts[1].as_array()[1].as_number(), 400.0);
}

TEST(Json, DumpParseRoundTrip) {
  JsonObject obj;
  obj["a"] = JsonValue(1.5);
  obj["b"] = JsonValue("text with \"quotes\"");
  JsonArray arr;
  arr.emplace_back(true);
  arr.emplace_back(nullptr);
  obj["c"] = JsonValue(std::move(arr));
  const std::string text = JsonValue(std::move(obj)).dump();
  const auto parsed = json_parse(text);
  EXPECT_DOUBLE_EQ(parsed.at("a").as_number(), 1.5);
  EXPECT_EQ(parsed.at("b").as_string(), "text with \"quotes\"");
  EXPECT_TRUE(parsed.at("c").as_array()[0].as_bool());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(std::string("{")), std::runtime_error);
  EXPECT_THROW(json_parse(std::string("[1, 2,")), std::runtime_error);
  EXPECT_THROW(json_parse(std::string("{\"a\" 1}")), std::runtime_error);
  EXPECT_THROW(json_parse(std::string("12 34")), std::runtime_error);
  EXPECT_THROW(json_parse(std::string("truu")), std::runtime_error);
}

// --- microscopy ---

std::vector<Point2> ring_points(int count, double radius, double rot,
                                Point2 shift, double noise, Rng& rng) {
  std::vector<Point2> pts;
  for (int i = 0; i < count; ++i) {
    const double angle = 6.2831853 * i / count + rot;
    pts.push_back(Point2{radius * std::cos(angle) + shift.x + rng.normal(0, noise),
                         radius * std::sin(angle) + shift.y + rng.normal(0, noise)});
  }
  return pts;
}

TEST(Microscopy, GmmOverlapPeaksAtTrueRotation) {
  Rng rng(3);
  const auto base = ring_points(40, 30.0, 0.0, {0, 0}, 0.5, rng);
  // A copy rotated by 0.5 rad: overlap at 0.5 must beat overlap at 0.
  const auto rotated = ring_points(40, 30.0, 0.5, {0, 0}, 0.5, rng);
  const double aligned = gmm_overlap(base, rotated, 0.5, {0, 0}, 2.0);
  const double misaligned = gmm_overlap(base, rotated, 0.0, {0, 0}, 2.0);
  EXPECT_GT(aligned, misaligned);
}

TEST(Microscopy, RegistrationRecoversAlignment) {
  Rng rng(7);
  const auto a = ring_points(30, 40.0, 0.0, {0, 0}, 1.0, rng);
  const auto b = ring_points(30, 40.0, 0.9, {5.0, -3.0}, 1.0, rng);
  const auto result = register_particles(a, b, 2.0);
  EXPECT_GT(result.score, 0.4) << "registration should find strong overlap";
  EXPECT_GT(result.iterations, 50) << "optimiser must do real work";
  // Same-structure particles align far better than structure vs noise.
  std::vector<Point2> noise_cloud;
  for (int i = 0; i < 30; ++i) {
    noise_cloud.push_back(Point2{rng.uniform(-40, 40), rng.uniform(-40, 40)});
  }
  const auto nonsense = register_particles(a, noise_cloud, 2.0);
  EXPECT_GT(result.score, nonsense.score);
}

TEST(Microscopy, DatasetRoundTripThroughApplication) {
  storage::MemoryStore store;
  MicroscopyConfig cfg;
  cfg.particles = 4;
  cfg.seed = 5;
  MicroscopyDataset dataset(cfg, store);
  MicroscopyApplication app(dataset);
  EXPECT_EQ(app.item_count(), 4u);

  gpu::VirtualDevice device(0, gpu::titanx_maxwell());
  runtime::HostBuffer parsed;
  app.parse(0, store.read(app.file_name(0)), parsed);
  EXPECT_LE(parsed.size(), app.slot_size());
  auto b0 = device.allocate(app.slot_size());
  std::copy(parsed.begin(), parsed.end(), b0.data());
  app.parse(1, store.read(app.file_name(1)), parsed);
  auto b1 = device.allocate(app.slot_size());
  std::copy(parsed.begin(), parsed.end(), b1.data());

  // All particles share the ring template: registration must find overlap.
  const double score = app.compare(0, b0, 1, b1);
  EXPECT_GT(score, 0.3);
}

// --- bioinformatics ---

TEST(Bioinformatics, CompositionVectorProperties) {
  Rng rng(9);
  std::string seq;
  for (int i = 0; i < 5000; ++i) {
    seq += "ACDEFGHIKLMNPQRSTVWY"[rng.uniform_index(20)];
  }
  const auto cv = build_composition_vector(seq, 3);
  EXPECT_GT(cv.size(), 100u);
  // Sorted unique indices.
  for (std::size_t i = 1; i < cv.size(); ++i) {
    EXPECT_LT(cv.indices[i - 1], cv.indices[i]);
  }
  // Self-correlation is exactly 1.
  EXPECT_NEAR(cv_correlation(cv, cv), 1.0, 1e-9);
  EXPECT_NEAR(cv_distance(cv, cv), 0.0, 1e-9);
}

TEST(Bioinformatics, DistanceTracksMutationLoad) {
  Rng rng(13);
  std::string base;
  for (int i = 0; i < 8000; ++i) {
    base += "ACDEFGHIKLMNPQRSTVWY"[rng.uniform_index(20)];
  }
  auto mutate_copy = [&](double rate, std::uint64_t seed) {
    Rng mrng(seed);
    std::string out = base;
    for (auto& c : out) {
      if (mrng.uniform() < rate) {
        c = "ACDEFGHIKLMNPQRSTVWY"[mrng.uniform_index(20)];
      }
    }
    return out;
  };
  const auto cv0 = build_composition_vector(base, 3);
  const auto near = build_composition_vector(mutate_copy(0.02, 1), 3);
  const auto far = build_composition_vector(mutate_copy(0.3, 2), 3);
  const double d_near = cv_distance(cv0, near);
  const double d_far = cv_distance(cv0, far);
  EXPECT_LT(d_near, d_far) << "more mutations → larger CV distance";
  EXPECT_GT(d_near, 0.0);
  EXPECT_LE(d_far, 1.0);
}

TEST(Bioinformatics, CladeStructureIsRecoverable) {
  storage::MemoryStore store;
  BioinformaticsConfig cfg;
  cfg.species = 8;
  cfg.proteins = 30;
  cfg.mutation_rate = 0.04;
  cfg.seed = 21;
  BioinformaticsDataset dataset(cfg, store);
  BioinformaticsApplication app(dataset);

  gpu::VirtualDevice device(0, gpu::titanx_maxwell());
  std::vector<gpu::DeviceBuffer> cvs;
  for (runtime::ItemId i = 0; i < 8; ++i) {
    runtime::HostBuffer parsed;
    app.parse(i, store.read(app.file_name(i)), parsed);
    auto buffer = device.allocate(app.slot_size());
    std::copy(parsed.begin(), parsed.end(), buffer.data());
    app.preprocess(i, buffer);
    cvs.push_back(std::move(buffer));
  }

  // Average distance within the deepest clades (siblings) must be smaller
  // than across the root split.
  OnlineStats sibling, distant;
  for (runtime::ItemId i = 0; i < 8; ++i) {
    for (runtime::ItemId j = i + 1; j < 8; ++j) {
      const double d = app.compare(i, cvs[i], j, cvs[j]);
      if (dataset.clade_depth(i, j) == 2) {
        sibling.add(d);
      } else if (dataset.clade_depth(i, j) == 0) {
        distant.add(d);
      }
    }
  }
  EXPECT_LT(sibling.mean(), distant.mean())
      << "sibling species must be closer than cross-root pairs";
}

TEST(Bioinformatics, CladeDepthOracle) {
  storage::MemoryStore store;
  BioinformaticsConfig cfg;
  cfg.species = 8;
  cfg.proteins = 2;
  cfg.protein_len_min = 50;
  cfg.protein_len_max = 60;
  BioinformaticsDataset dataset(cfg, store);
  EXPECT_EQ(dataset.clade_depth(0, 1), 2u);  // siblings
  EXPECT_EQ(dataset.clade_depth(0, 2), 1u);  // cousins
  EXPECT_EQ(dataset.clade_depth(0, 7), 0u);  // across the root
  EXPECT_EQ(dataset.clade_depth(3, 3), 32u);
}

}  // namespace
}  // namespace rocket::apps

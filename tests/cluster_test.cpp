#include <gtest/gtest.h>

#include <numeric>

#include "cluster/experiments.hpp"
#include "cluster/sim_cluster.hpp"

namespace rocket::cluster {
namespace {

// A small calibrated workload for fast tests: forensics-like timing with a
// reduced item count (stage times and slot sizes unchanged).
WorkloadConfig small_forensics(std::uint32_t n, ClusterConfig& cfg) {
  return scaled_workload(apps::forensics_model(), n, cfg);
}

ClusterConfig small_das5(std::uint32_t nodes) {
  ClusterConfig cfg = das5_cluster(nodes);
  cfg.event_limit = 80'000'000;
  cfg.seed = 42;
  return cfg;
}

TEST(SimCluster, SingleNodeCompletesAllPairs) {
  ClusterConfig cfg = small_das5(1);
  const WorkloadConfig wl = small_forensics(100, cfg);
  SimCluster cluster(cfg, wl);
  const RunMetrics m = cluster.run();
  EXPECT_EQ(m.pairs_done, 100u * 99 / 2);
  EXPECT_GT(m.makespan, 0.0);
  // Every item must be loaded at least once.
  EXPECT_GE(m.total_loads, 100u);
  EXPECT_GE(m.reuse_factor, 1.0);
  // All pairs ran on the single GPU.
  ASSERT_EQ(m.gpus.size(), 1u);
  EXPECT_EQ(m.gpus[0].pairs_done, m.pairs_done);
}

TEST(SimCluster, EfficiencyWithinSaneBounds) {
  // Microscopy is compute-bound with a dataset that fits in cache, so even
  // a reduced-n run must reach the paper's ~99% single-node efficiency
  // regime (Fig 8 right). Forensics at small n becomes load-dominated
  // (loads scale with n, comparisons with n²), so it only gets a
  // physicality bound here; its full-scale efficiency is validated by
  // bench_fig8.
  ClusterConfig cfg = small_das5(1);
  WorkloadConfig wl;
  wl.app = apps::microscopy_model();
  wl.n = 64;
  const RunMetrics m = SimCluster(cfg, wl).run();
  EXPECT_GT(m.efficiency, 0.85);
  EXPECT_LE(m.efficiency, 1.05);
  // GPU comparison time dominates the makespan.
  EXPECT_GT(m.busy_gpu_comparison / m.makespan, 0.85);

  ClusterConfig fcfg = small_das5(1);
  const WorkloadConfig fwl = small_forensics(200, fcfg);
  const RunMetrics fm = SimCluster(fcfg, fwl).run();
  EXPECT_GT(fm.efficiency, 0.0);
  EXPECT_LE(fm.efficiency, 1.05);
}

TEST(SimCluster, DeterministicAcrossRuns) {
  auto once = [] {
    ClusterConfig cfg = small_das5(2);
    const WorkloadConfig wl = small_forensics(80, cfg);
    return SimCluster(cfg, wl).run();
  };
  const RunMetrics a = once();
  const RunMetrics b = once();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_loads, b.total_loads);
  EXPECT_EQ(a.traffic.total_messages(), b.traffic.total_messages());
}

TEST(SimCluster, MultiNodeSpeedsUp) {
  ClusterConfig cfg1 = small_das5(1);
  const WorkloadConfig wl1 = small_forensics(150, cfg1);
  const RunMetrics one = SimCluster(cfg1, wl1).run();

  ClusterConfig cfg4 = small_das5(4);
  const WorkloadConfig wl4 = small_forensics(150, cfg4);
  const RunMetrics four = SimCluster(cfg4, wl4).run();

  EXPECT_EQ(one.pairs_done, four.pairs_done);
  const double speedup = one.makespan / four.makespan;
  EXPECT_GT(speedup, 2.5) << "4 nodes should be much faster than 1";
  // Work spread across all GPUs.
  for (const auto& g : four.gpus) {
    EXPECT_GT(g.pairs_done, 0u);
  }
}

TEST(SimCluster, DistributedCacheReducesLoads) {
  ClusterConfig with = small_das5(4);
  with.distributed_cache = true;
  const WorkloadConfig wl_with = small_forensics(150, with);
  const RunMetrics m_with = SimCluster(with, wl_with).run();

  ClusterConfig without = small_das5(4);
  without.distributed_cache = false;
  const WorkloadConfig wl_without = small_forensics(150, without);
  const RunMetrics m_without = SimCluster(without, wl_without).run();

  EXPECT_LT(m_with.total_loads, m_without.total_loads)
      << "the third-level cache must reduce cluster-wide loads";
  EXPECT_LT(m_with.storage_bytes, m_without.storage_bytes);
  EXPECT_GT(m_with.dist_cache.requests, 0u);
  EXPECT_GT(m_with.dist_cache.total_hits(), 0u);
  EXPECT_EQ(m_without.dist_cache.requests, 0u);
}

TEST(SimCluster, HopAccountingIsConsistent) {
  ClusterConfig cfg = small_das5(4);
  cfg.hop_limit = 3;
  const WorkloadConfig wl = small_forensics(120, cfg);
  const RunMetrics m = SimCluster(cfg, wl).run();
  ASSERT_EQ(m.dist_cache.hits_at_hop.size(), 3u);
  EXPECT_EQ(m.dist_cache.total_hits() + m.dist_cache.misses,
            m.dist_cache.requests);
  // First hop should dominate hits (paper Fig 11: 75–88% at hop 1).
  if (m.dist_cache.total_hits() > 20) {
    EXPECT_GT(m.dist_cache.hits_at_hop[0], m.dist_cache.hits_at_hop[2]);
  }
  // The aggregated directory stats mirror the protocol-level metrics: one
  // mediator lookup per remote fetch, chain outcomes recorded per walk.
  EXPECT_EQ(m.directory.requests, m.dist_cache.requests);
  EXPECT_EQ(m.directory.chain_hits, m.dist_cache.total_hits());
  EXPECT_EQ(m.directory.chain_misses, m.dist_cache.misses);
  EXPECT_GE(m.directory.hops, m.directory.chain_hits);
}

TEST(SimCluster, LoadsAreBoundedByPairDemand) {
  ClusterConfig cfg = small_das5(2);
  const WorkloadConfig wl = small_forensics(60, cfg);
  const RunMetrics m = SimCluster(cfg, wl).run();
  // Worst case: every pair loads both items everywhere; realistically far
  // lower, but the hard upper bound is 2 * pairs.
  EXPECT_LE(m.total_loads, 2 * m.pairs_done);
  EXPECT_GE(m.total_loads, 60u);
}

TEST(SimCluster, HeterogeneousNodesShareWorkProportionally) {
  ClusterConfig cfg = heterogeneous_cluster();
  cfg.seed = 7;
  cfg.event_limit = 80'000'000;
  WorkloadConfig wl = scaled_workload(apps::microscopy_model(), 96, cfg);
  const RunMetrics m = SimCluster(cfg, wl).run();
  EXPECT_EQ(m.pairs_done, 96u * 95 / 2);
  ASSERT_EQ(m.gpus.size(), 7u);  // 1 + 2 + 2 + 2
  // The RTX2080Ti (speed 2.4) must process more pairs than the K20m (0.45).
  std::uint64_t k20m_pairs = 0, rtx_pairs = 0;
  for (const auto& g : m.gpus) {
    if (g.device_name == "K20m") k20m_pairs += g.pairs_done;
    if (g.device_name == "RTX2080Ti") rtx_pairs += g.pairs_done;
  }
  rtx_pairs /= 2;  // two cards
  EXPECT_GT(rtx_pairs, k20m_pairs);
}

TEST(SimCluster, MicroscopyIgnoresCacheSize) {
  // Microscopy's dataset fits everywhere: loads ≈ n regardless of cache.
  ClusterConfig cfg = small_das5(1);
  WorkloadConfig wl;
  wl.app = apps::microscopy_model();
  wl.n = 64;
  const RunMetrics m = SimCluster(cfg, wl).run();
  EXPECT_EQ(m.pairs_done, 64u * 63 / 2);
  EXPECT_EQ(m.total_loads, 64u);
  EXPECT_DOUBLE_EQ(m.reuse_factor, 1.0);
}

TEST(SimCluster, HostCacheDisabledStillCorrect) {
  ClusterConfig cfg = small_das5(1);
  cfg.host_cache_enabled = false;
  const WorkloadConfig wl = small_forensics(60, cfg);
  const RunMetrics m = SimCluster(cfg, wl).run();
  EXPECT_EQ(m.pairs_done, 60u * 59 / 2);
  // Without a host cache, reuse comes from the device level only: loads
  // must be at least as many as with the host cache enabled.
  ClusterConfig cfg2 = small_das5(1);
  const WorkloadConfig wl2 = small_forensics(60, cfg2);
  const RunMetrics m2 = SimCluster(cfg2, wl2).run();
  EXPECT_GE(m.total_loads, m2.total_loads);
}

TEST(SimCluster, SmallerCacheMeansMoreLoads) {
  ClusterConfig big = small_das5(1);
  WorkloadConfig wl_big = small_forensics(150, big);
  const RunMetrics m_big = SimCluster(big, wl_big).run();

  ClusterConfig tiny = small_das5(1);
  WorkloadConfig wl_tiny = small_forensics(150, tiny);
  // Shrink both cache levels far below the dataset size.
  tiny.device_cache_capacity_override = megabytes(38.1) * 10;
  for (auto& node : tiny.nodes) node.host_cache_capacity = megabytes(38.1) * 20;
  const RunMetrics m_tiny = SimCluster(tiny, wl_tiny).run();

  EXPECT_GT(m_tiny.total_loads, m_big.total_loads);
  EXPECT_GT(m_tiny.reuse_factor, m_big.reuse_factor);
  EXPECT_LT(m_tiny.efficiency, m_big.efficiency + 1e-9);
}

TEST(SimCluster, TrivialWorkloads) {
  ClusterConfig cfg = small_das5(1);
  WorkloadConfig wl;
  wl.app = apps::microscopy_model();
  wl.n = 0;  // falls back to default_n? No: 0 means use app default.
  wl.n = 1;
  const RunMetrics m1 = SimCluster(cfg, wl).run();
  EXPECT_EQ(m1.pairs_done, 0u);
  EXPECT_EQ(m1.total_loads, 0u);

  ClusterConfig cfg2 = small_das5(2);
  WorkloadConfig wl2;
  wl2.app = apps::microscopy_model();
  wl2.n = 2;
  const RunMetrics m2 = SimCluster(cfg2, wl2).run();
  EXPECT_EQ(m2.pairs_done, 1u);
  EXPECT_EQ(m2.total_loads, 2u);
}

TEST(SimCluster, CartesiusTopologyRuns) {
  ClusterConfig cfg = cartesius_cluster(2);
  cfg.seed = 11;
  cfg.event_limit = 80'000'000;
  WorkloadConfig wl = scaled_workload(apps::bioinformatics_model(), 120, cfg);
  const RunMetrics m = SimCluster(cfg, wl).run();
  EXPECT_EQ(m.pairs_done, 120u * 119 / 2);
  EXPECT_EQ(m.gpus.size(), 4u);  // 2 nodes × 2 K40m
  EXPECT_DOUBLE_EQ(m.gpus[0].relative_speed, 0.55);
}

TEST(SimCluster, CompletionTimelinesWhenRequested) {
  ClusterConfig cfg = small_das5(1);
  cfg.record_completions = true;
  WorkloadConfig wl;
  wl.app = apps::microscopy_model();
  wl.n = 24;
  const RunMetrics m = SimCluster(cfg, wl).run();
  ASSERT_EQ(m.gpus.size(), 1u);
  EXPECT_EQ(m.gpus[0].completion_times.size(), 24u * 23 / 2);
  // Timestamps nondecreasing and within the makespan.
  double prev = 0.0;
  for (const double t : m.gpus[0].completion_times) {
    EXPECT_GE(t, prev);
    EXPECT_LE(t, m.makespan + 1e-9);
    prev = t;
  }
}

}  // namespace
}  // namespace rocket::cluster

// Failure-model tests (DESIGN.md §12): scripted fault schedules and link
// partitions at the transport, the master's exactly-once ResultLedger, the
// mediator chain-walk cap, the heartbeat/lease failure detector, orphaned
// steal regions re-adopted under a racing node death (TSAN target), the
// bounded kFailed retry path, and the chaos acceptance matrix — LiveCluster
// runs that kill nodes mid-computation and must still produce the exact
// single-node result multiset.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "apps/forensics.hpp"
#include "apps/microscopy.hpp"
#include "cache/distributed_directory.hpp"
#include "dnc/pair_space.hpp"
#include "mesh/live_cluster.hpp"
#include "mesh/mesh_node.hpp"
#include "mesh/result_ledger.hpp"
#include "mesh/transport.hpp"
#include "runtime/node_runtime.hpp"
#include "steal/executor.hpp"

namespace rocket::mesh {
namespace {

using runtime::ItemId;
using runtime::PairResult;
using ResultMap = std::map<std::pair<ItemId, ItemId>, double>;
using PairSet = std::set<std::pair<dnc::ItemIndex, dnc::ItemIndex>>;

/// Expand regions into their pair set, asserting the regions are disjoint.
PairSet pair_set(const std::vector<dnc::Region>& regions) {
  PairSet out;
  for (const auto& region : regions) {
    dnc::for_each_pair(region, [&](const dnc::Pair& p) {
      EXPECT_TRUE(out.insert({p.left, p.right}).second)
          << "regions overlap at (" << p.left << "," << p.right << ")";
    });
  }
  return out;
}

// --- scripted fault schedules at the transport ----------------------------

TEST(FaultSchedule, SingleKillIsDeterministicAndSparesTheMaster) {
  std::set<NodeId> victims;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto schedule = FaultSchedule::single_kill(seed, 4, 200);
    ASSERT_EQ(schedule.faults.size(), 1u);
    const Fault& fault = schedule.faults[0];
    EXPECT_GE(fault.node, 1u) << "the master must never be scheduled";
    EXPECT_LE(fault.node, 3u);
    EXPECT_GE(fault.after_messages, 1u);
    EXPECT_LE(fault.after_messages, 200u);
    EXPECT_EQ(fault.after_seconds, 0.0);
    victims.insert(fault.node);

    // Replayable: the same seed derives the same schedule.
    const auto again = FaultSchedule::single_kill(seed, 4, 200);
    EXPECT_EQ(again.faults[0].node, fault.node);
    EXPECT_EQ(again.faults[0].after_messages, fault.after_messages);
  }
  // 64 seeds over 3 victims: every non-master node gets its turn.
  EXPECT_EQ(victims.size(), 3u);

  // Degenerate inputs produce no faults instead of killing the master.
  EXPECT_TRUE(FaultSchedule::single_kill(7, 1, 100).empty());
  EXPECT_TRUE(FaultSchedule::single_kill(7, 4, 0).empty());
}

TEST(InProcessTransport, MessageTriggeredFaultKillsTheNode) {
  InProcessTransport::Config tc;
  tc.faults.faults.push_back(Fault{2, /*after_messages=*/2, 0.0});
  InProcessTransport transport(3, tc);

  ASSERT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{1, 0}));
  ASSERT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{2, 0}));
  EXPECT_FALSE(transport.is_down(2)) << "faults fire on send, not eagerly";

  // Two messages delivered: the next send evaluates the schedule and the
  // fault fires before delivery — node 2 is dead in both directions.
  EXPECT_FALSE(transport.send(0, 2, net::Tag::kCacheRequest,
                              CacheRequest{3, 0}));
  EXPECT_TRUE(transport.is_down(2));
  EXPECT_FALSE(transport.send(2, 1, net::Tag::kCacheRequest,
                              CacheRequest{4, 2}));
  // Survivor links keep working, and rejected sends are not recorded.
  EXPECT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{5, 0}));
  EXPECT_EQ(transport.counters().total_messages(), 3u);
  EXPECT_EQ(transport.delivered_messages(), 3u);
  transport.close();
}

TEST(InProcessTransport, TimeTriggeredFaultKillsTheNode) {
  InProcessTransport::Config tc;
  tc.faults.faults.push_back(Fault{1, 0, /*after_seconds=*/0.001});
  InProcessTransport transport(2, tc);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(transport.send(0, 1, net::Tag::kCacheRequest,
                              CacheRequest{1, 0}));
  EXPECT_TRUE(transport.is_down(1));
  transport.close();
}

TEST(InProcessTransport, LinkDownIsAsymmetric) {
  InProcessTransport transport(2);
  transport.set_link_down(0, 1);
  // The one-way partition: 0 cannot reach 1, but 1 still reaches 0 — the
  // shape that fools failure detectors without killing anybody.
  EXPECT_FALSE(transport.send(0, 1, net::Tag::kCacheRequest,
                              CacheRequest{1, 0}));
  EXPECT_TRUE(transport.send(1, 0, net::Tag::kCacheRequest,
                             CacheRequest{1, 1}));
  EXPECT_FALSE(transport.is_down(0));
  EXPECT_FALSE(transport.is_down(1));
  transport.set_link_down(0, 1, false);
  EXPECT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{2, 0}));
  transport.close();
}

// --- exactly-once result ledger -------------------------------------------

TEST(ResultLedger, FirstResultWinsLaterOnesDrop) {
  ResultLedger ledger(4, 2);
  ledger.grant(1, dnc::root_region(4), /*reexecution=*/false);

  EXPECT_TRUE(ledger.record(0, 1));
  EXPECT_FALSE(ledger.record(0, 1)) << "duplicates are dropped";
  EXPECT_FALSE(ledger.record(0, 1));
  EXPECT_TRUE(ledger.record(0, 2));
  EXPECT_EQ(ledger.delivered(), 2u);
  EXPECT_EQ(ledger.duplicates(), 2u);
  EXPECT_EQ(ledger.max_epoch(), 0u);
}

TEST(ResultLedger, UndeliveredRegionsCoalesceIntoRowRuns) {
  const dnc::ItemIndex n = 8;
  ResultLedger ledger(n, 3);
  ledger.grant(1, dnc::root_region(n), false);

  // Deliver a prefix of row 0 and a mid-row pair of row 3: the remainder
  // must come back as exact row runs — no over- or under-coverage.
  ASSERT_TRUE(ledger.record(0, 1));
  ASSERT_TRUE(ledger.record(0, 2));
  ASSERT_TRUE(ledger.record(0, 3));
  ASSERT_TRUE(ledger.record(3, 5));

  const auto regions = ledger.undelivered_of(1);
  PairSet expected;
  dnc::for_each_pair(dnc::root_region(n), [&](const dnc::Pair& p) {
    expected.insert({p.left, p.right});
  });
  expected.erase({0, 1});
  expected.erase({0, 2});
  expected.erase({0, 3});
  expected.erase({3, 5});
  EXPECT_EQ(pair_set(regions), expected);
  for (const auto& region : regions) {
    EXPECT_EQ(region.row_end, region.row_begin + 1) << "row runs only";
  }
  // Row 3 splits around the delivered pair: (3,4) and (3,6..7).
  EXPECT_TRUE(std::find(regions.begin(), regions.end(),
                        dnc::Region{3, 4, 4, 5, 0}) != regions.end());
  EXPECT_TRUE(std::find(regions.begin(), regions.end(),
                        dnc::Region{3, 4, 6, 8, 0}) != regions.end());

  // An unknown owner holds nothing.
  EXPECT_TRUE(ledger.undelivered_of(2).empty());
}

TEST(ResultLedger, TransferMovesOnlyUndeliveredPairs) {
  const dnc::ItemIndex n = 6;
  ResultLedger ledger(n, 3);
  const auto root = dnc::root_region(n);
  ledger.grant(1, root, false);
  ASSERT_TRUE(ledger.record(0, 1));

  // Steal-transfer notice: everything undelivered now belongs to node 2;
  // the delivered pair's race is already over and stays put.
  ledger.transfer(root, 2);
  EXPECT_TRUE(ledger.undelivered_of(1).empty());
  PairSet expected;
  dnc::for_each_pair(root, [&](const dnc::Pair& p) {
    expected.insert({p.left, p.right});
  });
  expected.erase({0, 1});
  EXPECT_EQ(pair_set(ledger.undelivered_of(2)), expected);

  // A survivor re-grant bumps the re-execution epoch of live pairs only.
  ledger.grant(0, dnc::Region{0, 1, 1, 6, 0}, /*reexecution=*/true);
  EXPECT_EQ(ledger.regions_regranted(), 1u);
  EXPECT_EQ(ledger.max_epoch(), 1u);
}

// --- mediator chain-walk cap and prune ------------------------------------

TEST(DistributedDirectory, ChainWalkCapTruncatesAndCounts) {
  cache::DistributedDirectory directory(/*max_candidates=*/4,
                                        /*max_chain_hops=*/1);
  const cache::ItemId item = 9;
  EXPECT_TRUE(directory.on_request(item, 1).empty());
  EXPECT_EQ(directory.on_request(item, 2), (std::vector<cache::NodeId>{1}));
  EXPECT_EQ(directory.stats().chain_aborts, 0u);

  // Three candidates known; the hand-out is capped at one hop and the
  // truncation is counted.
  EXPECT_EQ(directory.on_request(item, 3), (std::vector<cache::NodeId>{2}));
  EXPECT_EQ(directory.on_request(item, 4), (std::vector<cache::NodeId>{3}));
  EXPECT_EQ(directory.stats().chain_aborts, 2u);
}

TEST(DistributedDirectory, RemoveNodePrunesCandidates) {
  cache::DistributedDirectory directory(4);
  const cache::ItemId item = 9;
  directory.on_request(item, 1);
  directory.on_request(item, 2);
  directory.on_request(item, 3);
  ASSERT_EQ(directory.candidates(item),
            (std::vector<cache::NodeId>{3, 2, 1}));

  // The failure detector's prune: a dead node must never be handed out
  // as a candidate again.
  directory.remove_node(2);
  EXPECT_EQ(directory.candidates(item), (std::vector<cache::NodeId>{3, 1}));
  EXPECT_EQ(directory.on_request(item, 4),
            (std::vector<cache::NodeId>{3, 1}));
}

// --- heartbeat / lease failure detector -----------------------------------

/// p MeshNodes with the failure model live: the master runs the lease
/// detector over a small ledger, non-masters heartbeat. No runtimes.
struct DetectorHarness {
  static constexpr std::uint32_t kNodes = 3;
  static constexpr dnc::ItemIndex kItems = 8;

  InProcessTransport transport{kNodes};
  std::shared_ptr<std::atomic<bool>> done =
      std::make_shared<std::atomic<bool>>(false);
  std::vector<std::unique_ptr<MeshNode>> nodes;
  bool joined = false;

  DetectorHarness() {
    for (NodeId id = 0; id < kNodes; ++id) {
      MeshNode::Config mc;
      mc.id = id;
      if (id == MeshNode::kMaster) {
        // Generous lease vs heartbeat period: a healthy node missing a
        // verdict here would be a detector bug, not scheduling jitter.
        mc.lease_timeout_s = 0.25;
        mc.ledger_items = kItems;
        mc.initial_grants = dnc::partition_root(kItems, kNodes, 2);
      } else {
        mc.heartbeat_interval_s = 0.02;
      }
      nodes.push_back(std::make_unique<MeshNode>(mc, transport, done));
    }
    for (auto& node : nodes) node->start();
  }

  ~DetectorHarness() { shutdown(); }

  void shutdown() {
    if (joined) return;
    joined = true;
    transport.close();
    for (auto& node : nodes) node->join();
  }

  /// Spin until `node` is declared dead at every live observer.
  bool await_verdict(NodeId node, std::vector<NodeId> observers,
                     double timeout_s = 5.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      bool all = true;
      for (const NodeId observer : observers) {
        all = all && nodes[observer]->is_dead(node);
      }
      if (all) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }
};

TEST(FailureDetector, MissedLeasesTriggerClusterWideVerdict) {
  DetectorHarness mesh;

  // Healthy cluster: heartbeats renew every lease, nobody is declared.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_FALSE(mesh.nodes[0]->is_dead(1));
  EXPECT_FALSE(mesh.nodes[0]->is_dead(2));

  // Kill node 2: its silence exceeds the lease and the master's verdict
  // is broadcast — the surviving peer learns it too.
  mesh.transport.set_down(2);
  EXPECT_TRUE(mesh.await_verdict(2, {0, 1}));
  EXPECT_FALSE(mesh.nodes[0]->is_dead(1)) << "healthy node unaffected";

  mesh.shutdown();
  FailoverStats failover = mesh.nodes[0]->failover_stats();
  for (NodeId id = 1; id < DetectorHarness::kNodes; ++id) {
    failover += mesh.nodes[id]->failover_stats();
  }
  EXPECT_GE(failover.node_deaths, 1u);
  // Node 2's initial grant had no delivered results: every one of its
  // pairs was re-granted to a survivor, and a survivor adopted them.
  EXPECT_GE(failover.regions_reexecuted, 1u);
  EXPECT_GE(failover.regions_adopted, 1u);
}

TEST(FailureDetector, OneWayPartitionStillDrawsVerdict) {
  DetectorHarness mesh;

  // Node 1 can receive but not send: its heartbeats vanish, so the master
  // must declare it — a false positive from the node's point of view,
  // which the ledger's dedup makes correctness-safe (DESIGN.md §12).
  mesh.transport.set_link_down(1, 0);
  EXPECT_TRUE(mesh.await_verdict(1, {0, 2}));
  EXPECT_FALSE(mesh.transport.is_down(1)) << "the node itself is alive";

  mesh.shutdown();
  FailoverStats failover = mesh.nodes[0]->failover_stats();
  EXPECT_GE(failover.node_deaths, 1u);
  EXPECT_GE(failover.regions_reexecuted, 1u);
}

// --- orphaned steal regions under a racing death (TSAN target) -------------

TEST(StealFailover, OrphanedRegionsExecuteExactlyOnce) {
  // Two mesh nodes, real executors, no failure detector: node 0 owns the
  // whole pair space and exports work, node 1 owns nothing and lives off
  // stealing. Node 1 is killed mid-run, so in-flight steal replies race
  // the kill three ways: delivered-and-executed on the thief, queued on
  // the wire (still drained — it was sent before the crash), or rejected
  // at send, in which case the victim parks the region as an orphan and
  // re-adopts it through its own steal hook. Every pair must execute
  // exactly once across both nodes — no loss, no re-execution.
  const dnc::ItemIndex n = 48;
  const auto root = dnc::root_region(n);
  const std::uint64_t total = dnc::count_pairs(root);

  InProcessTransport transport(2);
  auto done = std::make_shared<std::atomic<bool>>(false);
  std::vector<std::unique_ptr<MeshNode>> nodes;
  for (NodeId id = 0; id < 2; ++id) {
    MeshNode::Config mc;
    mc.id = id;
    mc.num_workers = 2;
    mc.seed = 17 + id;
    nodes.push_back(std::make_unique<MeshNode>(mc, transport, done));
  }
  for (auto& node : nodes) node->start();

  std::mutex mutex;
  std::map<std::pair<dnc::ItemIndex, dnc::ItemIndex>, int> counts;
  std::atomic<std::uint64_t> executed{0};
  const auto leaf = [&](const dnc::Region& region, std::uint32_t) {
    std::uint64_t batch = 0;
    {
      std::scoped_lock lock(mutex);
      dnc::for_each_pair(region, [&](const dnc::Pair& p) {
        ++counts[{p.left, p.right}];
        ++batch;
      });
    }
    if (executed.fetch_add(batch, std::memory_order_acq_rel) + batch ==
        total) {
      done->store(true, std::memory_order_release);
      for (auto& node : nodes) node->wake();
    }
  };

  // Kill the thief once a quarter of the work has run — deep inside the
  // steal traffic, not before it starts or after it drains.
  std::thread killer([&] {
    while (!done->load(std::memory_order_acquire) &&
           executed.load(std::memory_order_acquire) < total / 4) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    transport.set_down(1);
  });

  steal::StealExporter exporter;
  nodes[0]->register_exporter(&exporter);
  std::thread victim([&] {
    steal::StealExecutor::Config ec;
    ec.num_workers = 2;
    ec.max_leaf_pairs = 4;  // many leaves => many steals
    ec.seed = 5;
    steal::StealExecutor ex(ec);
    steal::StealExecutor::RemoteHooks hooks;
    hooks.steal = [&](std::uint32_t w) { return nodes[0]->remote_steal(w); };
    hooks.done = [&] { return nodes[0]->global_done(); };
    ex.run_partition({root}, leaf, hooks, &exporter);
  });
  std::thread thief([&] {
    steal::StealExecutor::Config ec;
    ec.num_workers = 2;
    ec.max_leaf_pairs = 4;
    ec.seed = 6;
    steal::StealExecutor ex(ec);
    steal::StealExecutor::RemoteHooks hooks;
    hooks.steal = [&](std::uint32_t w) { return nodes[1]->remote_steal(w); };
    hooks.done = [&] { return nodes[1]->global_done(); };
    ex.run_partition({}, leaf, hooks, nullptr);
  });

  victim.join();
  thief.join();
  killer.join();
  nodes[0]->register_exporter(nullptr);
  transport.close();
  for (auto& node : nodes) node->join();

  EXPECT_EQ(executed.load(), total);
  ASSERT_EQ(counts.size(), total);
  for (const auto& [pair, count] : counts) {
    EXPECT_EQ(count, 1) << "pair (" << pair.first << "," << pair.second
                        << ") executed " << count << " times";
  }
}

// --- chaos acceptance matrix ----------------------------------------------

ResultMap single_node_reference(const runtime::Application& app,
                                storage::ObjectStore& store) {
  runtime::NodeRuntime::Config cfg;
  cfg.devices = {gpu::titanx_maxwell()};
  cfg.host_cache_capacity = 64_MiB;
  cfg.cpu_threads = 2;
  runtime::NodeRuntime rt(cfg);
  ResultMap results;
  std::mutex mutex;
  rt.run(app, store, [&](const PairResult& r) {
    std::scoped_lock lock(mutex);
    results[{r.left, r.right}] = r.score;
  });
  return results;
}

struct ChaosOutcome {
  ResultMap results;
  LiveClusterReport report;
};

/// A 4-node cluster with an aggressive failover clock (millisecond leases
/// and fetch deadlines) and the given kill schedule.
ChaosOutcome run_chaos(const runtime::Application& app,
                       storage::ObjectStore& store, FaultSchedule faults) {
  LiveClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.node.devices = {gpu::titanx_maxwell()};
  cfg.node.host_cache_capacity = 64_MiB;
  cfg.node.cpu_threads = 2;
  cfg.node.cache_shards = 2;
  cfg.hop_limit = 2;
  cfg.max_chain_hops = 1;  // exercise the chain-walk cap under churn
  cfg.heartbeat_interval_s = 0.005;
  cfg.lease_timeout_s = 0.05;
  cfg.fetch_timeout_s = 0.02;
  cfg.max_fetch_retries = 2;
  cfg.faults = std::move(faults);
  LiveCluster cluster(cfg);

  ChaosOutcome outcome;
  outcome.report = cluster.run_all_pairs(
      app, store, [&](const PairResult& r) {
        outcome.results[{r.left, r.right}] = r.score;
      });
  return outcome;
}

void expect_survived_exactly(const ChaosOutcome& outcome,
                             const ResultMap& expected,
                             std::uint64_t min_deaths) {
  // The tentpole guarantee: the exact single-node result multiset, with
  // every re-executed duplicate dropped at the master — never
  // double-counted, never lost.
  EXPECT_EQ(outcome.results, expected);
  EXPECT_EQ(outcome.report.pairs, expected.size());
  EXPECT_GE(outcome.report.node_deaths, min_deaths);
  EXPECT_GT(outcome.report.regions_reexecuted, 0u)
      << "a mid-run death must orphan work";
  EXPECT_EQ(outcome.report.failover.results_received,
            outcome.report.pairs + outcome.report.duplicate_results_dropped)
      << "every received result is either delivered once or dropped";
}

TEST(ChaosMatrix, SingleKillsPreserveExactResults) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 5;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 17;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);
  ASSERT_EQ(expected.size(), 20ull * 19 / 2);

  // Kill each non-master node at an early, mid and late point of the
  // message stream. Message triggers make the schedules replayable
  // independent of wall-clock speed.
  for (const NodeId victim : {1u, 2u, 3u}) {
    for (const std::uint64_t after : {5ull, 35ull, 90ull}) {
      SCOPED_TRACE("kill node " + std::to_string(victim) + " after " +
                   std::to_string(after) + " messages");
      FaultSchedule schedule;
      schedule.faults.push_back(Fault{victim, after, 0.0});
      const auto outcome = run_chaos(app, store, std::move(schedule));
      expect_survived_exactly(outcome, expected, 1);
    }
  }
}

TEST(ChaosMatrix, TwoNodeDeathsSurvived) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 5;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 29;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);

  // Two of the three workers die at different points; the master and one
  // survivor absorb the whole pair space.
  FaultSchedule schedule;
  schedule.faults.push_back(Fault{1, 20, 0.0});
  schedule.faults.push_back(Fault{2, 70, 0.0});
  const auto outcome = run_chaos(app, store, std::move(schedule));
  expect_survived_exactly(outcome, expected, 2);
}

TEST(ChaosMatrix, SeededSingleKillScheduleReplays) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 5;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 31;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);

  // The randomized-sweep entry point: a seed fully determines the kill.
  const auto schedule = FaultSchedule::single_kill(99, 4, 120);
  ASSERT_EQ(schedule.faults.size(), 1u);
  const auto outcome = run_chaos(app, store, schedule);
  expect_survived_exactly(outcome, expected, 1);
}

// --- bounded kFailed retry: the terminal paths -----------------------------

TEST(NodeRuntime, ExhaustedAcquireRetriesFailPairsAndTerminate) {
  // A missing input makes every fill of that item abort, so queued
  // waiters see kFailed grants. With a zero retry budget each kFailed
  // goes straight to its terminal path (host-level load bypass, NaN
  // pair, failed tile item) — the run must still terminate with every
  // other pair exact, in both execution modes.
  storage::MemoryStore store;
  apps::MicroscopyConfig mc;
  mc.particles = 5;
  mc.binding_sites = 8;
  mc.localizations_per_site_min = 3;
  mc.localizations_per_site_max = 5;
  apps::MicroscopyDataset dataset(mc, store);
  apps::MicroscopyApplication app(dataset);

  const ResultMap expected = single_node_reference(app, store);

  storage::MemoryStore broken;
  for (ItemId i = 0; i < 5; ++i) {
    if (i == 2) continue;
    broken.put(app.file_name(i), store.read(app.file_name(i)));
  }

  for (const bool tile_batching : {true, false}) {
    SCOPED_TRACE(tile_batching ? "tile-batched" : "per-pair");
    runtime::NodeRuntime::Config rt;
    rt.cpu_threads = 2;
    rt.host_cache_capacity = 1_MiB;
    rt.tile_batching = tile_batching;
    rt.max_acquire_retries = 0;  // first kFailed is terminal
    runtime::NodeRuntime runtime(rt);
    ResultMap actual;
    std::mutex mutex;
    const auto report =
        runtime.run(app, broken, [&](const PairResult& r) {
          std::scoped_lock lock(mutex);
          actual[{r.left, r.right}] = r.score;
        });

    ASSERT_EQ(actual.size(), expected.size());
    for (const auto& [pair, score] : actual) {
      if (pair.first == 2 || pair.second == 2) {
        EXPECT_TRUE(std::isnan(score));
      } else {
        EXPECT_NEAR(score, expected.at(pair), 1e-9);
      }
    }
    EXPECT_EQ(report.pairs, expected.size());
  }
}

}  // namespace
}  // namespace rocket::mesh

// Failure-model tests (DESIGN.md §12): scripted fault schedules and link
// partitions at the transport, the master's exactly-once ResultLedger, the
// mediator chain-walk cap, the heartbeat/lease failure detector, orphaned
// steal regions re-adopted under a racing node death (TSAN target), the
// bounded kFailed retry path, and the chaos acceptance matrix — LiveCluster
// runs that kill nodes mid-computation and must still produce the exact
// single-node result multiset.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "apps/forensics.hpp"
#include "apps/microscopy.hpp"
#include "cache/distributed_directory.hpp"
#include "common/backoff.hpp"
#include "common/crc32.hpp"
#include "dnc/pair_space.hpp"
#include "mesh/checkpoint.hpp"
#include "mesh/live_cluster.hpp"
#include "mesh/mesh_node.hpp"
#include "mesh/result_ledger.hpp"
#include "mesh/transport.hpp"
#include "runtime/node_runtime.hpp"
#include "steal/executor.hpp"

namespace rocket::mesh {
namespace {

using runtime::ItemId;
using runtime::PairResult;
using ResultMap = std::map<std::pair<ItemId, ItemId>, double>;
using PairSet = std::set<std::pair<dnc::ItemIndex, dnc::ItemIndex>>;

/// Expand regions into their pair set, asserting the regions are disjoint.
PairSet pair_set(const std::vector<dnc::Region>& regions) {
  PairSet out;
  for (const auto& region : regions) {
    dnc::for_each_pair(region, [&](const dnc::Pair& p) {
      EXPECT_TRUE(out.insert({p.left, p.right}).second)
          << "regions overlap at (" << p.left << "," << p.right << ")";
    });
  }
  return out;
}

// --- scripted fault schedules at the transport ----------------------------

TEST(FaultSchedule, SingleKillIsDeterministicAndSparesTheMaster) {
  std::set<NodeId> victims;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto schedule = FaultSchedule::single_kill(seed, 4, 200);
    ASSERT_EQ(schedule.faults.size(), 1u);
    const Fault& fault = schedule.faults[0];
    EXPECT_GE(fault.node, 1u) << "the master must never be scheduled";
    EXPECT_LE(fault.node, 3u);
    EXPECT_GE(fault.after_messages, 1u);
    EXPECT_LE(fault.after_messages, 200u);
    EXPECT_EQ(fault.after_seconds, 0.0);
    victims.insert(fault.node);

    // Replayable: the same seed derives the same schedule.
    const auto again = FaultSchedule::single_kill(seed, 4, 200);
    EXPECT_EQ(again.faults[0].node, fault.node);
    EXPECT_EQ(again.faults[0].after_messages, fault.after_messages);
  }
  // 64 seeds over 3 victims: every non-master node gets its turn.
  EXPECT_EQ(victims.size(), 3u);

  // Degenerate inputs produce no faults instead of killing the master.
  EXPECT_TRUE(FaultSchedule::single_kill(7, 1, 100).empty());
  EXPECT_TRUE(FaultSchedule::single_kill(7, 4, 0).empty());
}

TEST(InProcessTransport, MessageTriggeredFaultKillsTheNode) {
  InProcessTransport::Config tc;
  tc.faults.faults.push_back(Fault{2, /*after_messages=*/2, 0.0});
  InProcessTransport transport(3, tc);

  ASSERT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{1, 0}));
  ASSERT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{2, 0}));
  EXPECT_FALSE(transport.is_down(2)) << "faults fire on send, not eagerly";

  // Two messages delivered: the next send evaluates the schedule and the
  // fault fires before delivery — node 2 is dead in both directions.
  EXPECT_FALSE(transport.send(0, 2, net::Tag::kCacheRequest,
                              CacheRequest{3, 0}));
  EXPECT_TRUE(transport.is_down(2));
  EXPECT_FALSE(transport.send(2, 1, net::Tag::kCacheRequest,
                              CacheRequest{4, 2}));
  // Survivor links keep working, and rejected sends are not recorded.
  EXPECT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{5, 0}));
  EXPECT_EQ(transport.counters().total_messages(), 3u);
  EXPECT_EQ(transport.delivered_messages(), 3u);
  transport.close();
}

TEST(InProcessTransport, TimeTriggeredFaultKillsTheNode) {
  InProcessTransport::Config tc;
  tc.faults.faults.push_back(Fault{1, 0, /*after_seconds=*/0.001});
  InProcessTransport transport(2, tc);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(transport.send(0, 1, net::Tag::kCacheRequest,
                              CacheRequest{1, 0}));
  EXPECT_TRUE(transport.is_down(1));
  transport.close();
}

TEST(InProcessTransport, LinkDownIsAsymmetric) {
  InProcessTransport transport(2);
  transport.set_link_down(0, 1);
  // The one-way partition: 0 cannot reach 1, but 1 still reaches 0 — the
  // shape that fools failure detectors without killing anybody.
  EXPECT_FALSE(transport.send(0, 1, net::Tag::kCacheRequest,
                              CacheRequest{1, 0}));
  EXPECT_TRUE(transport.send(1, 0, net::Tag::kCacheRequest,
                             CacheRequest{1, 1}));
  EXPECT_FALSE(transport.is_down(0));
  EXPECT_FALSE(transport.is_down(1));
  transport.set_link_down(0, 1, false);
  EXPECT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{2, 0}));
  transport.close();
}

// --- exactly-once result ledger -------------------------------------------

TEST(ResultLedger, FirstResultWinsLaterOnesDrop) {
  ResultLedger ledger(4, 2);
  ledger.grant(1, dnc::root_region(4), /*reexecution=*/false);

  EXPECT_TRUE(ledger.record(0, 1));
  EXPECT_FALSE(ledger.record(0, 1)) << "duplicates are dropped";
  EXPECT_FALSE(ledger.record(0, 1));
  EXPECT_TRUE(ledger.record(0, 2));
  EXPECT_EQ(ledger.delivered(), 2u);
  EXPECT_EQ(ledger.duplicates(), 2u);
  EXPECT_EQ(ledger.max_epoch(), 0u);
}

TEST(ResultLedger, UndeliveredRegionsCoalesceIntoRowRuns) {
  const dnc::ItemIndex n = 8;
  ResultLedger ledger(n, 3);
  ledger.grant(1, dnc::root_region(n), false);

  // Deliver a prefix of row 0 and a mid-row pair of row 3: the remainder
  // must come back as exact row runs — no over- or under-coverage.
  ASSERT_TRUE(ledger.record(0, 1));
  ASSERT_TRUE(ledger.record(0, 2));
  ASSERT_TRUE(ledger.record(0, 3));
  ASSERT_TRUE(ledger.record(3, 5));

  const auto regions = ledger.undelivered_of(1);
  PairSet expected;
  dnc::for_each_pair(dnc::root_region(n), [&](const dnc::Pair& p) {
    expected.insert({p.left, p.right});
  });
  expected.erase({0, 1});
  expected.erase({0, 2});
  expected.erase({0, 3});
  expected.erase({3, 5});
  EXPECT_EQ(pair_set(regions), expected);
  for (const auto& region : regions) {
    EXPECT_EQ(region.row_end, region.row_begin + 1) << "row runs only";
  }
  // Row 3 splits around the delivered pair: (3,4) and (3,6..7).
  EXPECT_TRUE(std::find(regions.begin(), regions.end(),
                        dnc::Region{3, 4, 4, 5, 0}) != regions.end());
  EXPECT_TRUE(std::find(regions.begin(), regions.end(),
                        dnc::Region{3, 4, 6, 8, 0}) != regions.end());

  // An unknown owner holds nothing.
  EXPECT_TRUE(ledger.undelivered_of(2).empty());
}

TEST(ResultLedger, TransferMovesOnlyUndeliveredPairs) {
  const dnc::ItemIndex n = 6;
  ResultLedger ledger(n, 3);
  const auto root = dnc::root_region(n);
  ledger.grant(1, root, false);
  ASSERT_TRUE(ledger.record(0, 1));

  // Steal-transfer notice: everything undelivered now belongs to node 2;
  // the delivered pair's race is already over and stays put.
  ledger.transfer(root, 2);
  EXPECT_TRUE(ledger.undelivered_of(1).empty());
  PairSet expected;
  dnc::for_each_pair(root, [&](const dnc::Pair& p) {
    expected.insert({p.left, p.right});
  });
  expected.erase({0, 1});
  EXPECT_EQ(pair_set(ledger.undelivered_of(2)), expected);

  // A survivor re-grant bumps the re-execution epoch of live pairs only.
  ledger.grant(0, dnc::Region{0, 1, 1, 6, 0}, /*reexecution=*/true);
  EXPECT_EQ(ledger.regions_regranted(), 1u);
  EXPECT_EQ(ledger.max_epoch(), 1u);
}

// --- mediator chain-walk cap and prune ------------------------------------

TEST(DistributedDirectory, ChainWalkCapTruncatesAndCounts) {
  cache::DistributedDirectory directory(/*max_candidates=*/4,
                                        /*max_chain_hops=*/1);
  const cache::ItemId item = 9;
  EXPECT_TRUE(directory.on_request(item, 1).empty());
  EXPECT_EQ(directory.on_request(item, 2), (std::vector<cache::NodeId>{1}));
  EXPECT_EQ(directory.stats().chain_aborts, 0u);

  // Three candidates known; the hand-out is capped at one hop and the
  // truncation is counted.
  EXPECT_EQ(directory.on_request(item, 3), (std::vector<cache::NodeId>{2}));
  EXPECT_EQ(directory.on_request(item, 4), (std::vector<cache::NodeId>{3}));
  EXPECT_EQ(directory.stats().chain_aborts, 2u);
}

TEST(DistributedDirectory, RemoveNodePrunesCandidates) {
  cache::DistributedDirectory directory(4);
  const cache::ItemId item = 9;
  directory.on_request(item, 1);
  directory.on_request(item, 2);
  directory.on_request(item, 3);
  ASSERT_EQ(directory.candidates(item),
            (std::vector<cache::NodeId>{3, 2, 1}));

  // The failure detector's prune: a dead node must never be handed out
  // as a candidate again.
  directory.remove_node(2);
  EXPECT_EQ(directory.candidates(item), (std::vector<cache::NodeId>{3, 1}));
  EXPECT_EQ(directory.on_request(item, 4),
            (std::vector<cache::NodeId>{3, 1}));
}

// --- heartbeat / lease failure detector -----------------------------------

/// p MeshNodes with the failure model live: the master runs the lease
/// detector over a small ledger, non-masters heartbeat. No runtimes.
struct DetectorHarness {
  static constexpr std::uint32_t kNodes = 3;
  static constexpr dnc::ItemIndex kItems = 8;

  InProcessTransport transport{kNodes};
  std::shared_ptr<std::atomic<bool>> done =
      std::make_shared<std::atomic<bool>>(false);
  std::vector<std::unique_ptr<MeshNode>> nodes;
  bool joined = false;

  DetectorHarness() {
    for (NodeId id = 0; id < kNodes; ++id) {
      MeshNode::Config mc;
      mc.id = id;
      if (id == MeshNode::kMaster) {
        // Generous lease vs heartbeat period: a healthy node missing a
        // verdict here would be a detector bug, not scheduling jitter.
        mc.lease_timeout_s = 0.25;
        mc.ledger_items = kItems;
        mc.initial_grants = dnc::partition_root(kItems, kNodes, 2);
      } else {
        mc.heartbeat_interval_s = 0.02;
      }
      nodes.push_back(std::make_unique<MeshNode>(mc, transport, done));
    }
    for (auto& node : nodes) node->start();
  }

  ~DetectorHarness() { shutdown(); }

  void shutdown() {
    if (joined) return;
    joined = true;
    transport.close();
    for (auto& node : nodes) node->join();
  }

  /// Spin until `node` is declared dead at every live observer.
  bool await_verdict(NodeId node, std::vector<NodeId> observers,
                     double timeout_s = 5.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
      bool all = true;
      for (const NodeId observer : observers) {
        all = all && nodes[observer]->is_dead(node);
      }
      if (all) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }
};

TEST(FailureDetector, MissedLeasesTriggerClusterWideVerdict) {
  DetectorHarness mesh;

  // Healthy cluster: heartbeats renew every lease, nobody is declared.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_FALSE(mesh.nodes[0]->is_dead(1));
  EXPECT_FALSE(mesh.nodes[0]->is_dead(2));

  // Kill node 2: its silence exceeds the lease and the master's verdict
  // is broadcast — the surviving peer learns it too.
  mesh.transport.set_down(2);
  EXPECT_TRUE(mesh.await_verdict(2, {0, 1}));
  EXPECT_FALSE(mesh.nodes[0]->is_dead(1)) << "healthy node unaffected";

  mesh.shutdown();
  FailoverStats failover = mesh.nodes[0]->failover_stats();
  for (NodeId id = 1; id < DetectorHarness::kNodes; ++id) {
    failover += mesh.nodes[id]->failover_stats();
  }
  EXPECT_GE(failover.node_deaths, 1u);
  // Node 2's initial grant had no delivered results: every one of its
  // pairs was re-granted to a survivor, and a survivor adopted them.
  EXPECT_GE(failover.regions_reexecuted, 1u);
  EXPECT_GE(failover.regions_adopted, 1u);
}

TEST(FailureDetector, OneWayPartitionStillDrawsVerdict) {
  DetectorHarness mesh;

  // Node 1 can receive but not send: its heartbeats vanish, so the master
  // must declare it — a false positive from the node's point of view,
  // which the ledger's dedup makes correctness-safe (DESIGN.md §12).
  mesh.transport.set_link_down(1, 0);
  EXPECT_TRUE(mesh.await_verdict(1, {0, 2}));
  EXPECT_FALSE(mesh.transport.is_down(1)) << "the node itself is alive";

  mesh.shutdown();
  FailoverStats failover = mesh.nodes[0]->failover_stats();
  EXPECT_GE(failover.node_deaths, 1u);
  EXPECT_GE(failover.regions_reexecuted, 1u);
}

// --- orphaned steal regions under a racing death (TSAN target) -------------

TEST(StealFailover, OrphanedRegionsExecuteExactlyOnce) {
  // Two mesh nodes, real executors, no failure detector: node 0 owns the
  // whole pair space and exports work, node 1 owns nothing and lives off
  // stealing. Node 1 is killed mid-run, so in-flight steal replies race
  // the kill three ways: delivered-and-executed on the thief, queued on
  // the wire (still drained — it was sent before the crash), or rejected
  // at send, in which case the victim parks the region as an orphan and
  // re-adopts it through its own steal hook. Every pair must execute
  // exactly once across both nodes — no loss, no re-execution.
  const dnc::ItemIndex n = 48;
  const auto root = dnc::root_region(n);
  const std::uint64_t total = dnc::count_pairs(root);

  InProcessTransport transport(2);
  auto done = std::make_shared<std::atomic<bool>>(false);
  std::vector<std::unique_ptr<MeshNode>> nodes;
  for (NodeId id = 0; id < 2; ++id) {
    MeshNode::Config mc;
    mc.id = id;
    mc.num_workers = 2;
    mc.seed = 17 + id;
    nodes.push_back(std::make_unique<MeshNode>(mc, transport, done));
  }
  for (auto& node : nodes) node->start();

  std::mutex mutex;
  std::map<std::pair<dnc::ItemIndex, dnc::ItemIndex>, int> counts;
  std::atomic<std::uint64_t> executed{0};
  const auto leaf = [&](const dnc::Region& region, std::uint32_t) {
    std::uint64_t batch = 0;
    {
      std::scoped_lock lock(mutex);
      dnc::for_each_pair(region, [&](const dnc::Pair& p) {
        ++counts[{p.left, p.right}];
        ++batch;
      });
    }
    if (executed.fetch_add(batch, std::memory_order_acq_rel) + batch ==
        total) {
      done->store(true, std::memory_order_release);
      for (auto& node : nodes) node->wake();
    }
  };

  // Kill the thief once a quarter of the work has run — deep inside the
  // steal traffic, not before it starts or after it drains.
  std::thread killer([&] {
    while (!done->load(std::memory_order_acquire) &&
           executed.load(std::memory_order_acquire) < total / 4) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    transport.set_down(1);
  });

  steal::StealExporter exporter;
  nodes[0]->register_exporter(&exporter);
  std::thread victim([&] {
    steal::StealExecutor::Config ec;
    ec.num_workers = 2;
    ec.max_leaf_pairs = 4;  // many leaves => many steals
    ec.seed = 5;
    steal::StealExecutor ex(ec);
    steal::StealExecutor::RemoteHooks hooks;
    hooks.steal = [&](std::uint32_t w) { return nodes[0]->remote_steal(w); };
    hooks.done = [&] { return nodes[0]->global_done(); };
    ex.run_partition({root}, leaf, hooks, &exporter);
  });
  std::thread thief([&] {
    steal::StealExecutor::Config ec;
    ec.num_workers = 2;
    ec.max_leaf_pairs = 4;
    ec.seed = 6;
    steal::StealExecutor ex(ec);
    steal::StealExecutor::RemoteHooks hooks;
    hooks.steal = [&](std::uint32_t w) { return nodes[1]->remote_steal(w); };
    hooks.done = [&] { return nodes[1]->global_done(); };
    ex.run_partition({}, leaf, hooks, nullptr);
  });

  victim.join();
  thief.join();
  killer.join();
  nodes[0]->register_exporter(nullptr);
  transport.close();
  for (auto& node : nodes) node->join();

  EXPECT_EQ(executed.load(), total);
  ASSERT_EQ(counts.size(), total);
  for (const auto& [pair, count] : counts) {
    EXPECT_EQ(count, 1) << "pair (" << pair.first << "," << pair.second
                        << ") executed " << count << " times";
  }
}

// --- chaos acceptance matrix ----------------------------------------------

ResultMap single_node_reference(const runtime::Application& app,
                                storage::ObjectStore& store) {
  runtime::NodeRuntime::Config cfg;
  cfg.devices = {gpu::titanx_maxwell()};
  cfg.host_cache_capacity = 64_MiB;
  cfg.cpu_threads = 2;
  runtime::NodeRuntime rt(cfg);
  ResultMap results;
  std::mutex mutex;
  rt.run(app, store, [&](const PairResult& r) {
    std::scoped_lock lock(mutex);
    results[{r.left, r.right}] = r.score;
  });
  return results;
}

struct ChaosOutcome {
  ResultMap results;
  LiveClusterReport report;
};

/// A 4-node cluster with an aggressive failover clock (millisecond leases
/// and fetch deadlines) and the given kill schedule.
ChaosOutcome run_chaos(const runtime::Application& app,
                       storage::ObjectStore& store, FaultSchedule faults) {
  LiveClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.node.devices = {gpu::titanx_maxwell()};
  cfg.node.host_cache_capacity = 64_MiB;
  cfg.node.cpu_threads = 2;
  cfg.node.cache_shards = 2;
  cfg.hop_limit = 2;
  cfg.max_chain_hops = 1;  // exercise the chain-walk cap under churn
  cfg.heartbeat_interval_s = 0.005;
  cfg.lease_timeout_s = 0.05;
  cfg.fetch_timeout_s = 0.02;
  cfg.max_fetch_retries = 2;
  cfg.faults = std::move(faults);
  LiveCluster cluster(cfg);

  ChaosOutcome outcome;
  outcome.report = cluster.run_all_pairs(
      app, store, [&](const PairResult& r) {
        outcome.results[{r.left, r.right}] = r.score;
      });
  return outcome;
}

void expect_survived_exactly(const ChaosOutcome& outcome,
                             const ResultMap& expected,
                             std::uint64_t min_deaths) {
  // The tentpole guarantee: the exact single-node result multiset, with
  // every re-executed duplicate dropped at the master — never
  // double-counted, never lost.
  EXPECT_EQ(outcome.results, expected);
  EXPECT_EQ(outcome.report.pairs, expected.size());
  EXPECT_GE(outcome.report.node_deaths, min_deaths);
  EXPECT_GT(outcome.report.regions_reexecuted, 0u)
      << "a mid-run death must orphan work";
  EXPECT_EQ(outcome.report.failover.results_received,
            outcome.report.pairs + outcome.report.duplicate_results_dropped)
      << "every received result is either delivered once or dropped";
}

TEST(ChaosMatrix, SingleKillsPreserveExactResults) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 5;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 17;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);
  ASSERT_EQ(expected.size(), 20ull * 19 / 2);

  // Kill each non-master node at an early, mid and late point of the
  // message stream. Message triggers make the schedules replayable
  // independent of wall-clock speed.
  for (const NodeId victim : {1u, 2u, 3u}) {
    for (const std::uint64_t after : {5ull, 35ull, 90ull}) {
      SCOPED_TRACE("kill node " + std::to_string(victim) + " after " +
                   std::to_string(after) + " messages");
      FaultSchedule schedule;
      schedule.faults.push_back(Fault{victim, after, 0.0});
      const auto outcome = run_chaos(app, store, std::move(schedule));
      expect_survived_exactly(outcome, expected, 1);
    }
  }
}

TEST(ChaosMatrix, TwoNodeDeathsSurvived) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 5;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 29;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);

  // Two of the three workers die at different points; the master and one
  // survivor absorb the whole pair space.
  FaultSchedule schedule;
  schedule.faults.push_back(Fault{1, 20, 0.0});
  schedule.faults.push_back(Fault{2, 70, 0.0});
  const auto outcome = run_chaos(app, store, std::move(schedule));
  expect_survived_exactly(outcome, expected, 2);
}

TEST(ChaosMatrix, SeededSingleKillScheduleReplays) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 5;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 31;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);

  // The randomized-sweep entry point: a seed fully determines the kill.
  const auto schedule = FaultSchedule::single_kill(99, 4, 120);
  ASSERT_EQ(schedule.faults.size(), 1u);
  const auto outcome = run_chaos(app, store, schedule);
  expect_survived_exactly(outcome, expected, 1);
}

TEST(ChaosMatrix, GreyFailureStragglerFlakyStoreAndKillSurvived) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 16;  // enough work that the verdict lands mid-run
  fc.width = 48;
  fc.height = 40;
  fc.seed = 41;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);

  // All three failure modes at once (DESIGN.md §15): node 1 is a grey
  // straggler (50x slower kernels, half a millisecond of extra store
  // latency per read), every node's store reads are flaky, and node 3
  // dies outright mid-run. The consecutive-failure cap keeps every
  // transient streak inside the default per-load retry allowance, so the
  // result multiset must still be exact.
  storage::FlakyStore::Config flaky_cfg;
  flaky_cfg.error_rate = 0.2;
  flaky_cfg.spike_rate = 0.1;
  flaky_cfg.spike_us = 100;
  flaky_cfg.max_consecutive_failures = 2;
  flaky_cfg.seed = 41;
  storage::FlakyStore flaky(store, flaky_cfg);

  LiveClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.node.devices = {gpu::titanx_maxwell()};
  cfg.node.host_cache_capacity = 64_MiB;
  cfg.node.cpu_threads = 2;
  cfg.node.cache_shards = 2;
  cfg.hop_limit = 2;
  cfg.max_chain_hops = 1;
  cfg.heartbeat_interval_s = 0.005;
  cfg.lease_timeout_s = 0.05;
  cfg.fetch_timeout_s = 0.02;
  cfg.max_fetch_retries = 2;
  cfg.snapshot_interval_s = 0.005;
  cfg.degraded_rate_fraction = 0.35;
  cfg.suspect_intervals = 2;
  cfg.speculation_regions_per_interval = 8;
  cfg.slow_node = 1;
  cfg.slow_factor = 50.0;
  cfg.slow_store_latency_us = 500;
  cfg.faults.faults.push_back(Fault{3, 40, 0.0});
  LiveCluster cluster(cfg);

  ChaosOutcome outcome;
  outcome.report = cluster.run_all_pairs(
      app, flaky, [&](const PairResult& r) {
        outcome.results[{r.left, r.right}] = r.score;
      });

  expect_survived_exactly(outcome, expected, 1);
  EXPECT_EQ(outcome.report.node_deaths, 1u)
      << "the straggler is slow, not dead: its heartbeats still flow and "
         "its lease must never expire";
  EXPECT_GT(outcome.report.nodes_degraded, 0u)
      << "the health machine must notice the straggler";
  EXPECT_GT(outcome.report.regions_speculated, 0u)
      << "a slice of the straggler's backlog must migrate";
  EXPECT_GT(outcome.report.load_retries, 0u)
      << "the flaky store must have fired";
  EXPECT_EQ(outcome.report.failed_loads, 0u)
      << "bounded streaks must never exhaust a load's retries";
}

// --- durability primitives: CRC32 and shared backoff (DESIGN.md §14) -------

TEST(Crc32, MatchesKnownAnswerAndChains) {
  // The IEEE/zlib check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);

  // Incremental updates compose to the one-shot answer.
  std::uint32_t crc = crc32_update(0, "1234", 4);
  crc = crc32_update(crc, "56789", 5);
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(BackoffPolicy, DoublesCapsAndJittersDeterministically) {
  const BackoffPolicy policy{1e-4, 1e-3, 0.25, 10};
  EXPECT_DOUBLE_EQ(policy.raw_delay_seconds(0), 1e-4);
  EXPECT_DOUBLE_EQ(policy.raw_delay_seconds(1), 2e-4);
  EXPECT_DOUBLE_EQ(policy.raw_delay_seconds(2), 4e-4);
  EXPECT_DOUBLE_EQ(policy.raw_delay_seconds(3), 8e-4);
  EXPECT_DOUBLE_EQ(policy.raw_delay_seconds(4), 1e-3) << "cap binds";
  EXPECT_DOUBLE_EQ(policy.raw_delay_seconds(1000), 1e-3)
      << "huge attempts must not overflow the shift";

  for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
    for (std::uint64_t salt = 0; salt < 4; ++salt) {
      const double raw = policy.raw_delay_seconds(attempt);
      const double jittered = policy.delay_seconds(attempt, salt);
      EXPECT_GE(jittered, raw * 0.75);
      EXPECT_LT(jittered, raw * 1.25);
      // The deterministic-for-test hook: same (attempt, salt), same delay.
      EXPECT_DOUBLE_EQ(jittered, policy.delay_seconds(attempt, salt));
    }
  }
  // Distinct salts decorrelate concurrent retriers.
  EXPECT_NE(policy.delay_seconds(3, 1), policy.delay_seconds(3, 2));

  const BackoffPolicy no_jitter{1e-4, 1e-3, 0.0, 10};
  EXPECT_DOUBLE_EQ(no_jitter.delay_seconds(2, 99),
                   no_jitter.raw_delay_seconds(2));
}

// --- transport frame CRC and the corrupt-frame injector --------------------

TEST(InProcessTransport, CorruptInjectorDeliversMangledThenCleanFrame) {
  InProcessTransport::Config tc;
  tc.corrupt_rate = 1.0;  // every frame gets a mangled twin
  InProcessTransport transport(2, tc);
  ASSERT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{7, 0}));

  // The mangled copy is delivered first and fails CRC verification...
  const auto mangled = transport.recv(1);
  ASSERT_TRUE(mangled.has_value());
  EXPECT_NE(frame_crc(mangled->body), mangled->crc);

  // ...and the clean retransmit always follows, intact.
  const auto clean = transport.recv(1);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(frame_crc(clean->body), clean->crc);
  ASSERT_TRUE(std::holds_alternative<CacheRequest>(clean->body));
  EXPECT_EQ(std::get<CacheRequest>(clean->body).item, 7u);

  EXPECT_EQ(transport.corrupted_frames(), 1u);
  transport.close();
}

TEST(InProcessTransport, FrameCrcCoversEveryBodyAlternative) {
  // Two bodies of the same alternative but different content must hash
  // differently; the same content under a different alternative too.
  const MessageBody a = CacheRequest{1, 0};
  const MessageBody b = CacheRequest{2, 0};
  EXPECT_NE(frame_crc(a), frame_crc(b));
  EXPECT_EQ(frame_crc(a), frame_crc(MessageBody{CacheRequest{1, 0}}));
  EXPECT_NE(frame_crc(MessageBody{Heartbeat{1, 0}}),
            frame_crc(MessageBody{NodeDown{1, 0}}));
}

// --- checkpoint journal: round trip and torn-tail fuzz ---------------------

TEST(Checkpoint, JournalRoundTripsThroughReplay) {
  storage::MemoryStore store;
  checkpoint::Manifest manifest;
  manifest.items = 10;
  manifest.num_nodes = 2;
  manifest.granularity = 2;
  manifest.seed = 7;
  manifest.expected_pairs = 45;
  manifest.fingerprint = checkpoint::Journal::fingerprint(10, 2, 2, 7);

  checkpoint::Journal journal(store, "run.journal");
  journal.start_fresh(manifest);
  journal.append_results({{0, 1, 0.5}, {0, 2, 1.5}, {1, 2, -3.0}});
  journal.append_results({{2, 3, 0.25}});
  journal.append_region_complete(dnc::Region{0, 1, 1, 10, 0});
  EXPECT_EQ(journal.records_appended(), 4u);

  const auto replay = checkpoint::Journal::replay(store, "run.journal");
  ASSERT_TRUE(replay.found);
  ASSERT_TRUE(replay.has_manifest);
  EXPECT_EQ(replay.manifest, manifest);
  EXPECT_FALSE(replay.torn);
  EXPECT_EQ(replay.records, 4u);
  ASSERT_EQ(replay.results.size(), 4u);
  EXPECT_EQ(replay.results[0].left, 0u);
  EXPECT_EQ(replay.results[0].right, 1u);
  EXPECT_DOUBLE_EQ(replay.results[0].score, 0.5);
  EXPECT_DOUBLE_EQ(replay.results[3].score, 0.25);
  ASSERT_EQ(replay.completed_regions.size(), 1u);
  EXPECT_EQ(replay.completed_regions[0], (dnc::Region{0, 1, 1, 10, 0}));

  // A journal for a different run shape is a different fingerprint.
  EXPECT_NE(checkpoint::Journal::fingerprint(10, 2, 2, 7),
            checkpoint::Journal::fingerprint(10, 3, 2, 7));
  EXPECT_NE(checkpoint::Journal::fingerprint(10, 2, 2, 7),
            checkpoint::Journal::fingerprint(11, 2, 2, 7));

  // Replay of a missing object reports found=false, nothing recovered.
  const auto missing = checkpoint::Journal::replay(store, "nope");
  EXPECT_FALSE(missing.found);
  EXPECT_FALSE(missing.has_manifest);
  EXPECT_TRUE(missing.results.empty());
}

/// `candidate` recovered no more than `full` did, and everything it did
/// recover is an exact prefix — corruption may cost the tail, never
/// invent or reorder results.
void expect_replay_prefix(const checkpoint::Replay& candidate,
                          const checkpoint::Replay& full) {
  ASSERT_LE(candidate.results.size(), full.results.size());
  for (std::size_t i = 0; i < candidate.results.size(); ++i) {
    EXPECT_EQ(candidate.results[i].left, full.results[i].left);
    EXPECT_EQ(candidate.results[i].right, full.results[i].right);
    EXPECT_EQ(candidate.results[i].score, full.results[i].score);
  }
  ASSERT_LE(candidate.completed_regions.size(),
            full.completed_regions.size());
  for (std::size_t i = 0; i < candidate.completed_regions.size(); ++i) {
    EXPECT_EQ(candidate.completed_regions[i], full.completed_regions[i]);
  }
}

TEST(Checkpoint, TornJournalFuzzDetectsEveryCorruption) {
  storage::MemoryStore store;
  checkpoint::Manifest manifest;
  manifest.items = 8;
  manifest.num_nodes = 2;
  manifest.granularity = 2;
  manifest.seed = 3;
  manifest.expected_pairs = 28;
  manifest.fingerprint = checkpoint::Journal::fingerprint(8, 2, 2, 3);

  checkpoint::Journal journal(store, "j");
  journal.start_fresh(manifest);
  journal.append_results({{0, 1, 0.5}, {0, 2, 1.5}, {1, 2, -3.0}});
  journal.append_region_complete(dnc::Region{0, 1, 1, 8, 0});
  journal.append_results({{2, 3, 0.25}});
  const auto full = checkpoint::Journal::replay(store, "j");
  ASSERT_TRUE(full.found && full.has_manifest && !full.torn);
  ASSERT_EQ(full.records, 4u);
  const ByteBuffer bytes = store.read("j");
  ASSERT_EQ(full.valid_bytes, bytes.size());

  // Truncate at EVERY byte offset: the crash-mid-append shapes. Replay
  // must keep the valid prefix, flag the tear iff the cut is mid-record,
  // and truncate_to_valid must leave a clean journal behind.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len) + " bytes");
    storage::MemoryStore cut;
    cut.put("j", ByteBuffer(bytes.begin(),
                            bytes.begin() + static_cast<std::ptrdiff_t>(len)));
    const auto replay = checkpoint::Journal::replay(cut, "j");
    ASSERT_TRUE(replay.found);
    expect_replay_prefix(replay, full);
    EXPECT_LE(replay.valid_bytes, len);
    EXPECT_EQ(replay.torn, replay.valid_bytes != len)
        << "every mid-record cut must be detected as a tear";

    checkpoint::Journal::truncate_to_valid(cut, "j", replay);
    const auto again = checkpoint::Journal::replay(cut, "j");
    EXPECT_FALSE(again.torn);
    EXPECT_EQ(again.records, replay.records);
    EXPECT_EQ(again.valid_bytes, replay.valid_bytes);
  }

  // Flip EVERY byte (one at a time): bit rot anywhere in a record must be
  // caught by the frame CRC (or framing bounds) — 100% detection, and the
  // records before the flipped one survive untouched.
  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    SCOPED_TRACE("flipped byte " + std::to_string(offset));
    ByteBuffer mangled = bytes;
    mangled[offset] ^= 0xFF;
    storage::MemoryStore bad;
    bad.put("j", mangled);
    const auto replay = checkpoint::Journal::replay(bad, "j");
    ASSERT_TRUE(replay.found);
    EXPECT_TRUE(replay.torn);
    EXPECT_LT(replay.records, full.records);
    expect_replay_prefix(replay, full);
  }
}

// --- bounded kFailed retry: the terminal paths -----------------------------

TEST(NodeRuntime, ExhaustedAcquireRetriesFailPairsAndTerminate) {
  // A missing input makes every fill of that item abort, so queued
  // waiters see kFailed grants. With a zero retry budget each kFailed
  // goes straight to its terminal path (host-level load bypass, NaN
  // pair, failed tile item) — the run must still terminate with every
  // other pair exact, in both execution modes.
  storage::MemoryStore store;
  apps::MicroscopyConfig mc;
  mc.particles = 5;
  mc.binding_sites = 8;
  mc.localizations_per_site_min = 3;
  mc.localizations_per_site_max = 5;
  apps::MicroscopyDataset dataset(mc, store);
  apps::MicroscopyApplication app(dataset);

  const ResultMap expected = single_node_reference(app, store);

  storage::MemoryStore broken;
  for (ItemId i = 0; i < 5; ++i) {
    if (i == 2) continue;
    broken.put(app.file_name(i), store.read(app.file_name(i)));
  }

  for (const bool tile_batching : {true, false}) {
    SCOPED_TRACE(tile_batching ? "tile-batched" : "per-pair");
    runtime::NodeRuntime::Config rt;
    rt.cpu_threads = 2;
    rt.host_cache_capacity = 1_MiB;
    rt.tile_batching = tile_batching;
    rt.max_acquire_retries = 0;  // first kFailed is terminal
    runtime::NodeRuntime runtime(rt);
    ResultMap actual;
    std::mutex mutex;
    const auto report =
        runtime.run(app, broken, [&](const PairResult& r) {
          std::scoped_lock lock(mutex);
          actual[{r.left, r.right}] = r.score;
        });

    ASSERT_EQ(actual.size(), expected.size());
    for (const auto& [pair, score] : actual) {
      if (pair.first == 2 || pair.second == 2) {
        EXPECT_TRUE(std::isnan(score));
      } else {
        EXPECT_NEAR(score, expected.at(pair), 1e-9);
      }
    }
    EXPECT_EQ(report.pairs, expected.size());
  }
}

// --- master failover and checkpoint/resume chaos (DESIGN.md §14) -----------

struct DurableOutcome {
  ResultMap results;
  std::map<std::pair<ItemId, ItemId>, int> counts;  // delivery multiplicity
  LiveClusterReport report;
};

/// The run_chaos cluster with the durability layer fully engaged: small
/// flush batches (so crashes land between flushes), an optional journal,
/// and a callback safe against the master role moving across service
/// threads mid-run.
DurableOutcome run_durable(const runtime::Application& app,
                           storage::ObjectStore& store, FaultSchedule faults,
                           storage::ObjectStore* checkpoint = nullptr,
                           bool resume = false) {
  LiveClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.node.devices = {gpu::titanx_maxwell()};
  cfg.node.host_cache_capacity = 64_MiB;
  cfg.node.cpu_threads = 2;
  cfg.node.cache_shards = 2;
  cfg.hop_limit = 2;
  cfg.max_chain_hops = 1;
  cfg.heartbeat_interval_s = 0.005;
  cfg.lease_timeout_s = 0.05;
  cfg.fetch_timeout_s = 0.02;
  cfg.max_fetch_retries = 2;
  cfg.journal_batch_pairs = 8;
  cfg.checkpoint_store = checkpoint;
  cfg.resume = resume;
  cfg.faults = std::move(faults);
  LiveCluster cluster(cfg);

  DurableOutcome outcome;
  std::mutex mutex;
  outcome.report =
      cluster.run_all_pairs(app, store, [&](const PairResult& r) {
        std::scoped_lock lock(mutex);
        outcome.results[{r.left, r.right}] = r.score;
        ++outcome.counts[{r.left, r.right}];
      });
  return outcome;
}

TEST(MasterFailover, KillMasterMatrixPreservesExactResults) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 5;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 41;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);
  ASSERT_EQ(expected.size(), 20ull * 19 / 2);

  // Kill node 0 — the initial master — early, mid and late in the message
  // stream. The lowest live node must adopt the role, dedup against its
  // mirrored ledger, and complete the aggregation: the exact single-node
  // multiset, every pair delivered exactly once across both masters.
  for (const std::uint64_t after : {5ull, 60ull, 150ull}) {
    SCOPED_TRACE("kill master after " + std::to_string(after) + " messages");
    FaultSchedule schedule;
    schedule.faults.push_back(Fault{0, after, 0.0});
    const auto outcome = run_durable(app, store, std::move(schedule));

    EXPECT_EQ(outcome.results, expected);
    EXPECT_EQ(outcome.report.pairs, expected.size());
    for (const auto& [pair, count] : outcome.counts) {
      EXPECT_EQ(count, 1) << "pair (" << pair.first << "," << pair.second
                          << ") delivered " << count << " times";
    }
    EXPECT_GE(outcome.report.master_failovers, 1u)
        << "somebody must have adopted the master role";
    EXPECT_GE(outcome.report.node_deaths, 1u);
    // A batch in flight at the old master when it died was received and
    // ledger-recorded but never delivered, so received may exceed
    // delivered + duplicates — but never the other way around.
    EXPECT_GE(outcome.report.failover.results_received,
              outcome.report.pairs +
                  outcome.report.duplicate_results_dropped);
  }
}

TEST(MasterFailover, MasterAndWorkerDeathsSurvivedTogether) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 5;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 43;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);

  // A worker dies, then the master: the adopter inherits a cluster that
  // already lost a node and still finishes exactly.
  FaultSchedule schedule;
  schedule.faults.push_back(Fault{2, 30, 0.0});
  schedule.faults.push_back(Fault{0, 90, 0.0});
  const auto outcome = run_durable(app, store, std::move(schedule));
  EXPECT_EQ(outcome.results, expected);
  EXPECT_EQ(outcome.report.pairs, expected.size());
  for (const auto& [pair, count] : outcome.counts) EXPECT_EQ(count, 1);
  EXPECT_GE(outcome.report.master_failovers, 1u);
  // At least the master's death draws a verdict; the worker's may be
  // absorbed silently if the master dies before its lease detector fires
  // (the adopter's conservative full re-grant covers the worker anyway).
  EXPECT_GE(outcome.report.node_deaths, 1u);
}

TEST(Checkpoint, KillAllThenResumeRoundTrip) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 5;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 47;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);

  // Run 1: every node dies, the master last (so some result batches have
  // been journalled). The watchdog ends the run; the journal survives.
  storage::MemoryStore checkpoint_store;
  FaultSchedule schedule;
  schedule.faults.push_back(Fault{1, 30, 0.0});
  schedule.faults.push_back(Fault{2, 60, 0.0});
  schedule.faults.push_back(Fault{3, 90, 0.0});
  schedule.faults.push_back(Fault{0, 220, 0.0});
  const auto first =
      run_durable(app, store, std::move(schedule), &checkpoint_store);
  EXPECT_TRUE(first.report.checkpoint.enabled);
  EXPECT_FALSE(first.report.checkpoint.resumed);
  EXPECT_LT(first.results.size(), expected.size())
      << "the whole cluster died mid-run";
  for (const auto& [pair, count] : first.counts) EXPECT_EQ(count, 1);

  // Run 2: resume from the journal, no faults. Already-journalled pairs
  // are recovered (not re-delivered); only the remaining frontier runs.
  const auto second =
      run_durable(app, store, {}, &checkpoint_store, /*resume=*/true);
  EXPECT_TRUE(second.report.checkpoint.enabled);
  EXPECT_TRUE(second.report.checkpoint.resumed);
  EXPECT_EQ(second.report.checkpoint.pairs_recovered, first.results.size())
      << "the journal holds exactly what run 1 delivered (flush ordering)";
  EXPECT_EQ(second.report.pairs, expected.size())
      << "recovered + newly delivered covers the whole pair space";
  for (const auto& [pair, count] : second.counts) EXPECT_EQ(count, 1);

  // The union of the two runs' deliveries is the exact single-node
  // multiset: no pair lost, no pair delivered in both runs.
  ResultMap combined = first.results;
  for (const auto& [pair, score] : second.results) {
    EXPECT_TRUE(combined.emplace(pair, score).second)
        << "pair (" << pair.first << "," << pair.second
        << ") delivered by both runs";
  }
  EXPECT_EQ(combined, expected);
}

TEST(Checkpoint, MismatchedFingerprintStartsFresh) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 2;
  fc.images_per_camera = 4;
  fc.width = 32;
  fc.height = 32;
  fc.seed = 53;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);

  // Plant a journal for a DIFFERENT run shape: resume must reject it by
  // fingerprint and run everything from scratch.
  storage::MemoryStore checkpoint_store;
  checkpoint::Manifest foreign;
  foreign.items = 999;
  foreign.num_nodes = 2;
  foreign.granularity = 4;
  foreign.seed = 1;
  foreign.fingerprint = checkpoint::Journal::fingerprint(999, 2, 4, 1);
  checkpoint::Journal planted(checkpoint_store, "rocket.journal");
  planted.start_fresh(foreign);
  planted.append_results({{0, 1, 123.0}});

  const auto outcome =
      run_durable(app, store, {}, &checkpoint_store, /*resume=*/true);
  EXPECT_FALSE(outcome.report.checkpoint.resumed);
  EXPECT_EQ(outcome.report.checkpoint.pairs_recovered, 0u);
  EXPECT_EQ(outcome.results, expected);
  EXPECT_EQ(outcome.report.pairs, expected.size());
}

TEST(ChaosMatrix, FrameCorruptionIsDetectedAndHarmless) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 5;
  fc.width = 48;
  fc.height = 40;
  fc.seed = 59;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const ResultMap expected = single_node_reference(app, store);

  LiveClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.node.devices = {gpu::titanx_maxwell()};
  cfg.node.host_cache_capacity = 64_MiB;
  cfg.node.cpu_threads = 2;
  cfg.node.cache_shards = 2;
  cfg.hop_limit = 2;
  cfg.frame_corrupt_rate = 0.05;
  cfg.frame_corrupt_seed = 61;
  LiveCluster cluster(cfg);

  ResultMap results;
  std::map<std::pair<ItemId, ItemId>, int> counts;
  std::mutex mutex;
  const auto report =
      cluster.run_all_pairs(app, store, [&](const PairResult& r) {
        std::scoped_lock lock(mutex);
        results[{r.left, r.right}] = r.score;
        ++counts[{r.left, r.right}];
      });

  // Corrupted frames were injected, detected at the receiver, and dropped
  // — the clean retransmits carried the run to the exact multiset.
  EXPECT_GT(report.corrupted_frames, 0u);
  EXPECT_EQ(results, expected);
  EXPECT_EQ(report.pairs, expected.size());
  for (const auto& [pair, count] : counts) EXPECT_EQ(count, 1);

  // Injected frames surface in the receiver-side drop counter. A mangled
  // frame still queued when the run completes is never drained, so the
  // drop count can trail the injection count — never exceed it.
  std::uint64_t dropped = 0;
  for (const auto& [name, value] : report.metrics.counters) {
    if (name == "net.frame_corrupt") dropped = value;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_LE(dropped, report.corrupted_frames);
}

}  // namespace
}  // namespace rocket::mesh

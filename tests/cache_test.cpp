#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "cache/distributed_directory.hpp"
#include "cache/slot_cache.hpp"

namespace rocket::cache {
namespace {

using Outcome = SlotCache::Outcome;
using Grant = SlotCache::Grant;

SlotCache make_cache(std::uint32_t slots) {
  return SlotCache(SlotCache::Config{slots, megabytes(1), "test"});
}

TEST(SlotCache, MissThenFillThenHit) {
  auto cache = make_cache(2);
  const Grant g1 = cache.acquire(7, nullptr);
  ASSERT_EQ(g1.outcome, Outcome::kFill);
  EXPECT_FALSE(cache.readable(7));
  cache.publish(g1.slot);
  EXPECT_TRUE(cache.readable(7));
  cache.release(g1.slot);  // writer's pin

  const Grant g2 = cache.acquire(7, nullptr);
  EXPECT_EQ(g2.outcome, Outcome::kHit);
  EXPECT_EQ(g2.slot, g1.slot);
  cache.release(g2.slot);
  EXPECT_EQ(cache.stats().fills, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.check_invariants();
}

TEST(SlotCache, WaitersQueueBehindWriterAndGetPins) {
  auto cache = make_cache(2);
  const Grant writer = cache.acquire(1, nullptr);
  ASSERT_EQ(writer.outcome, Outcome::kFill);

  std::vector<Grant> grants;
  const Grant w1 = cache.acquire(1, [&](Grant g) { grants.push_back(g); });
  const Grant w2 = cache.acquire(1, [&](Grant g) { grants.push_back(g); });
  EXPECT_EQ(w1.outcome, Outcome::kQueued);
  EXPECT_EQ(w2.outcome, Outcome::kQueued);
  EXPECT_TRUE(grants.empty());
  EXPECT_EQ(cache.stats().write_waits, 2u);

  cache.publish(writer.slot);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].outcome, Outcome::kHit);
  EXPECT_EQ(grants[1].outcome, Outcome::kHit);
  // Writer + two waiters hold pins.
  EXPECT_EQ(cache.readers_of(writer.slot), 3u);
  cache.release(writer.slot);
  cache.release(writer.slot);
  cache.release(writer.slot);
  EXPECT_EQ(cache.readers_of(writer.slot), 0u);
  cache.check_invariants();
}

TEST(SlotCache, AbortPropagatesFailureToWaiters) {
  auto cache = make_cache(1);
  const Grant writer = cache.acquire(5, nullptr);
  ASSERT_EQ(writer.outcome, Outcome::kFill);
  std::optional<Grant> waited;
  cache.acquire(5, [&](Grant g) { waited = g; });
  cache.abort(writer.slot);
  ASSERT_TRUE(waited.has_value());
  EXPECT_EQ(waited->outcome, Outcome::kFailed);
  EXPECT_FALSE(cache.contains(5));
  EXPECT_GE(cache.stats().failures, 2u);
  // The slot is immediately reusable.
  const Grant retry = cache.acquire(5, nullptr);
  EXPECT_EQ(retry.outcome, Outcome::kFill);
  cache.check_invariants();
}

TEST(SlotCache, LruEvictionOrder) {
  auto cache = make_cache(2);
  for (const ItemId item : {10u, 11u}) {
    const Grant g = cache.acquire(item, nullptr);
    ASSERT_EQ(g.outcome, Outcome::kFill);
    cache.publish(g.slot);
    cache.release(g.slot);
  }
  // Touch item 10 so 11 becomes LRU.
  const Grant touch = cache.acquire(10, nullptr);
  ASSERT_EQ(touch.outcome, Outcome::kHit);
  cache.release(touch.slot);

  const Grant fresh = cache.acquire(12, nullptr);
  ASSERT_EQ(fresh.outcome, Outcome::kFill);
  cache.publish(fresh.slot);
  cache.release(fresh.slot);

  EXPECT_TRUE(cache.contains(10));
  EXPECT_FALSE(cache.contains(11));  // evicted as least recently used
  EXPECT_TRUE(cache.contains(12));
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.check_invariants();
}

TEST(SlotCache, PinnedSlotsAreNotEvictable) {
  auto cache = make_cache(1);
  const Grant g = cache.acquire(1, nullptr);
  cache.publish(g.slot);  // pin held by writer

  std::optional<Grant> deferred;
  const Grant blocked = cache.acquire(2, [&](Grant gr) { deferred = gr; });
  EXPECT_EQ(blocked.outcome, Outcome::kQueued);
  EXPECT_EQ(cache.stats().alloc_stalls, 1u);
  EXPECT_FALSE(deferred.has_value());

  cache.release(g.slot);  // unpin → allocation can proceed
  ASSERT_TRUE(deferred.has_value());
  EXPECT_EQ(deferred->outcome, Outcome::kFill);
  EXPECT_FALSE(cache.contains(1));  // evicted
  cache.check_invariants();
}

TEST(SlotCache, QueuedAllocationPiggybacksOnLaterFill) {
  auto cache = make_cache(1);
  const Grant g = cache.acquire(1, nullptr);
  cache.publish(g.slot);  // slot pinned by writer's read pin

  // Two queued allocations for the SAME item 2: when the pin drops, the
  // first becomes the writer and the second must wait on that writer (not
  // allocate a second slot for the same item).
  std::optional<Grant> first, second;
  cache.acquire(2, [&](Grant gr) { first = gr; });
  cache.acquire(2, [&](Grant gr) { second = gr; });
  cache.release(g.slot);

  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->outcome, Outcome::kFill);
  EXPECT_FALSE(second.has_value());  // waiting on the writer
  cache.publish(first->slot);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->outcome, Outcome::kHit);
  cache.check_invariants();
}

TEST(SlotCache, DemandAllocationsOutrankPrefetch) {
  // The look-ahead pipeline's priority invariant: when allocations stall,
  // a compute (demand) request is served before a prefetch request even
  // if the prefetch request queued first. Two slots, both pinned.
  auto cache = make_cache(2);
  const Grant a = cache.acquire(1, nullptr);
  const Grant b = cache.acquire(2, nullptr);
  cache.publish(a.slot);
  cache.publish(b.slot);  // both writers keep their pins: nothing evictable

  std::vector<std::pair<char, Grant>> served;
  const Grant prefetch =
      cache.acquire(10, [&](Grant g) { served.emplace_back('p', g); },
                    SlotCache::AllocPriority::kPrefetch);
  ASSERT_EQ(prefetch.outcome, Outcome::kQueued);
  const Grant demand =
      cache.acquire(11, [&](Grant g) { served.emplace_back('d', g); },
                    SlotCache::AllocPriority::kDemand);
  ASSERT_EQ(demand.outcome, Outcome::kQueued);
  EXPECT_EQ(cache.stats().alloc_stalls, 2u);

  cache.release(a.slot);  // one slot frees: the demand request must win
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].first, 'd');
  ASSERT_EQ(served[0].second.outcome, Outcome::kFill);
  cache.publish(served[0].second.slot);

  cache.release(b.slot);  // second slot frees: now the prefetch request
  ASSERT_EQ(served.size(), 2u);
  EXPECT_EQ(served[1].first, 'p');
  ASSERT_EQ(served[1].second.outcome, Outcome::kFill);
  cache.publish(served[1].second.slot);
  cache.release(served[0].second.slot);
  cache.release(served[1].second.slot);
  cache.check_invariants();
}

TEST(SlotCache, SamePriorityAllocationsStayFifo) {
  // With a single priority class the pending queue must remain the
  // historical FIFO — the exactness guarantee behind prefetch_tiles=0.
  auto cache = make_cache(2);
  const Grant a = cache.acquire(1, nullptr);
  const Grant b = cache.acquire(2, nullptr);
  cache.publish(a.slot);
  cache.publish(b.slot);

  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    const Grant g = cache.acquire(static_cast<ItemId>(10 + i), [&, i](Grant q) {
      order.push_back(i);
      if (q.outcome == Outcome::kFill) cache.abort(q.slot);
    });
    ASSERT_EQ(g.outcome, Outcome::kQueued);
  }
  cache.release(a.slot);
  cache.release(b.slot);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  cache.check_invariants();
}

TEST(SlotCache, StatsCountLoadsForReuseFactor) {
  auto cache = make_cache(4);
  // 8 distinct items through a 4-slot cache, twice: second pass re-loads
  // everything (LRU with sequential scan = worst case).
  for (int pass = 0; pass < 2; ++pass) {
    for (ItemId item = 0; item < 8; ++item) {
      const Grant g = cache.acquire(item, nullptr);
      ASSERT_EQ(g.outcome, Outcome::kFill);
      cache.publish(g.slot);
      cache.release(g.slot);
    }
  }
  EXPECT_EQ(cache.stats().fills, 16u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().evictions, 12u);
  cache.check_invariants();
}

TEST(SlotCache, ResidentCountTracksLiveItems) {
  auto cache = make_cache(3);
  EXPECT_EQ(cache.resident_items(), 0u);
  const Grant a = cache.acquire(1, nullptr);
  cache.publish(a.slot);
  EXPECT_EQ(cache.resident_items(), 1u);
  cache.release(a.slot);
  EXPECT_EQ(cache.resident_items(), 1u);  // still cached, just unpinned
  cache.check_invariants();
}

TEST(SlotCacheDeath, ReleaseWithoutPinAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto cache = make_cache(1);
  const Grant g = cache.acquire(1, nullptr);
  cache.publish(g.slot);
  cache.release(g.slot);
  EXPECT_DEATH(cache.release(g.slot), "release");
}

TEST(SlotsForCapacity, ClampsToItemCount) {
  EXPECT_EQ(slots_for_capacity(gigabytes(11.1), megabytes(38.1), 4980), 291u);
  EXPECT_EQ(slots_for_capacity(gigabytes(40.0), megabytes(145.8), 2500), 274u);
  // Microscopy: far more capacity than items → clamp to n.
  EXPECT_EQ(slots_for_capacity(gigabytes(40.0), kilobytes(6.0), 256), 256u);
}

// --- Batched multi-acquire (the tile-batched execution path) ----------

TEST(SlotCacheBatch, HitFillMix) {
  auto cache = make_cache(4);
  // Pre-fill items 0 and 1.
  for (ItemId item : {0u, 1u}) {
    const Grant g = cache.acquire(item, nullptr);
    cache.publish(g.slot);
    cache.release(g.slot);
  }

  const std::vector<ItemId> items{0, 2, 1, 3};
  const auto grants = cache.acquire_batch(items, nullptr);
  ASSERT_EQ(grants.size(), 4u);
  EXPECT_EQ(grants[0].outcome, Outcome::kHit);
  EXPECT_EQ(grants[1].outcome, Outcome::kFill);
  EXPECT_EQ(grants[2].outcome, Outcome::kHit);
  EXPECT_EQ(grants[3].outcome, Outcome::kFill);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().fills, 4u);  // 2 pre-fills + 2 batch fills

  cache.publish(grants[1].slot);
  cache.publish(grants[3].slot);
  for (const auto& g : grants) cache.release(g.slot);
  cache.check_invariants();
}

TEST(SlotCacheBatch, QueuedBehindWriterResolvesWithIndex) {
  auto cache = make_cache(4);
  const Grant writer = cache.acquire(7, nullptr);
  ASSERT_EQ(writer.outcome, Outcome::kFill);

  std::vector<std::pair<std::size_t, Grant>> fired;
  const std::vector<ItemId> items{5, 7, 6};
  const auto grants = cache.acquire_batch(
      items, [&](std::size_t k, Grant g) { fired.emplace_back(k, g); });
  EXPECT_EQ(grants[0].outcome, Outcome::kFill);
  EXPECT_EQ(grants[1].outcome, Outcome::kQueued);  // behind the writer
  EXPECT_EQ(grants[2].outcome, Outcome::kFill);
  EXPECT_TRUE(fired.empty());

  cache.publish(writer.slot);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, 1u);  // index into the batch
  EXPECT_EQ(fired[0].second.outcome, Outcome::kHit);
  EXPECT_EQ(fired[0].second.slot, writer.slot);

  cache.release(writer.slot);
  cache.release(fired[0].second.slot);
  cache.publish(grants[0].slot);
  cache.release(grants[0].slot);
  cache.publish(grants[2].slot);
  cache.release(grants[2].slot);
  cache.check_invariants();
}

TEST(SlotCacheBatch, WriterAbortPropagatesFailedToBatchWaiters) {
  auto cache = make_cache(4);
  const Grant writer = cache.acquire(3, nullptr);
  ASSERT_EQ(writer.outcome, Outcome::kFill);

  std::vector<std::pair<std::size_t, Grant>> fired;
  const std::vector<ItemId> items{3, 9};
  const auto grants = cache.acquire_batch(
      items, [&](std::size_t k, Grant g) { fired.emplace_back(k, g); });
  EXPECT_EQ(grants[0].outcome, Outcome::kQueued);
  EXPECT_EQ(grants[1].outcome, Outcome::kFill);

  cache.abort(writer.slot);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, 0u);
  EXPECT_EQ(fired[0].second.outcome, Outcome::kFailed);

  cache.publish(grants[1].slot);
  cache.release(grants[1].slot);
  cache.check_invariants();
}

TEST(SlotCacheBatch, AllocStallServedAsPinsDrop) {
  auto cache = make_cache(2);
  // Pin both slots so the batch cannot allocate.
  const Grant a = cache.acquire(0, nullptr);
  const Grant b = cache.acquire(1, nullptr);
  cache.publish(a.slot);
  cache.publish(b.slot);

  std::vector<std::pair<std::size_t, Grant>> fired;
  const std::vector<ItemId> items{2, 3};
  const auto grants = cache.acquire_batch(
      items, [&](std::size_t k, Grant g) { fired.emplace_back(k, g); });
  EXPECT_EQ(grants[0].outcome, Outcome::kQueued);
  EXPECT_EQ(grants[1].outcome, Outcome::kQueued);
  EXPECT_EQ(cache.stats().alloc_stalls, 2u);

  cache.release(a.slot);  // one slot becomes evictable → first waiter fills
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, 0u);
  EXPECT_EQ(fired[0].second.outcome, Outcome::kFill);
  cache.release(b.slot);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1].first, 1u);
  EXPECT_EQ(fired[1].second.outcome, Outcome::kFill);

  cache.publish(fired[0].second.slot);
  cache.release(fired[0].second.slot);
  cache.publish(fired[1].second.slot);
  cache.release(fired[1].second.slot);
  cache.check_invariants();
}

// Multi-threaded stress: tile-shaped overlapping working sets pinned via
// acquire_batch through a mutex (exactly how the live runtime drives the
// policy object), with invariants audited throughout. Per-thread batch
// budgets are sized so concurrent demand can never exceed the slot supply
// (the runtime's deadlock-freedom invariant, DESIGN.md §6).
TEST(SlotCacheBatch, OverlappingTileStress) {
  constexpr std::uint32_t kSlots = 16;
  constexpr int kThreads = 4;
  constexpr std::uint32_t kBatch = kSlots / kThreads;  // 4 items per tile
  constexpr ItemId kUniverse = 64;
  constexpr int kRounds = 300;

  SlotCache cache(SlotCache::Config{kSlots, megabytes(1), "stress"});
  std::mutex mutex;

  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> pins_granted{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(17 * t + 1);
      for (int round = 0; round < kRounds; ++round) {
        // A "tile": kBatch consecutive items from a random offset, so
        // ranges overlap across threads.
        const ItemId base =
            static_cast<ItemId>(rng() % (kUniverse - kBatch));
        std::vector<ItemId> items;
        for (std::uint32_t k = 0; k < kBatch; ++k) items.push_back(base + k);

        struct Pending {
          std::mutex m;
          std::condition_variable cv;
          std::vector<std::pair<std::size_t, Grant>> fired;
        } pending;

        std::vector<Grant> grants;
        {
          std::scoped_lock lock(mutex);
          grants = cache.acquire_batch(items, [&pending](std::size_t k,
                                                         Grant g) {
            std::scoped_lock plock(pending.m);
            pending.fired.emplace_back(k, g);
            pending.cv.notify_one();
          });
        }

        std::vector<SlotId> held;
        std::size_t queued = 0;
        auto resolve = [&](std::size_t k, Grant g) {
          // Failed grants retry as a fresh single acquire.
          while (g.outcome == Outcome::kFailed) {
            std::scoped_lock lock(mutex);
            g = cache.acquire(items[k], [&pending, k](Grant g2) {
              std::scoped_lock plock(pending.m);
              pending.fired.emplace_back(k, g2);
              pending.cv.notify_one();
            });
            if (g.outcome == Outcome::kQueued) return false;
          }
          if (g.outcome == Outcome::kFill) {
            std::scoped_lock lock(mutex);
            cache.publish(g.slot);
          }
          held.push_back(g.slot);
          return true;
        };

        for (std::size_t k = 0; k < grants.size(); ++k) {
          if (grants[k].outcome == Outcome::kQueued || !resolve(k, grants[k])) {
            ++queued;
          }
        }
        while (queued > 0) {
          std::pair<std::size_t, Grant> next;
          {
            std::unique_lock plock(pending.m);
            pending.cv.wait(plock, [&] { return !pending.fired.empty(); });
            next = pending.fired.back();
            pending.fired.pop_back();
          }
          if (resolve(next.first, next.second)) --queued;
        }

        pins_granted.fetch_add(held.size());
        {
          std::scoped_lock lock(mutex);
          if (round % 16 == 0) cache.check_invariants();
          for (const SlotId slot : held) cache.release(slot);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  cache.check_invariants();
  EXPECT_EQ(pins_granted.load(),
            static_cast<std::uint64_t>(kThreads) * kRounds * kBatch);
  EXPECT_GT(cache.stats().hits + cache.stats().fills, 0u);
}

// --- Distributed directory (the paper's §4.1.3 candidates protocol) ---

TEST(DistributedDirectory, FirstRequestHasNoCandidates) {
  DistributedDirectory dir(3);
  const auto chain = dir.on_request(/*item=*/9, /*requester=*/2);
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(dir.stats().empty_responses, 1u);
  EXPECT_EQ(dir.candidates(9), (std::vector<NodeId>{2}));
}

TEST(DistributedDirectory, ChainIsMostRecentFirst) {
  DistributedDirectory dir(3);
  dir.on_request(9, 0);
  dir.on_request(9, 1);
  dir.on_request(9, 2);
  const auto chain = dir.on_request(9, 5);
  EXPECT_EQ(chain, (std::vector<NodeId>{2, 1, 0}));
  EXPECT_EQ(dir.candidates(9), (std::vector<NodeId>{5, 2, 1}));  // trimmed to h=3
}

TEST(DistributedDirectory, RequesterExcludedFromOwnChain) {
  DistributedDirectory dir(3);
  dir.on_request(4, 7);
  const auto chain = dir.on_request(4, 7);  // same node asks again
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(dir.candidates(4), (std::vector<NodeId>{7}));  // deduplicated
}

TEST(DistributedDirectory, RepeatRequesterMovesToFront) {
  DistributedDirectory dir(3);
  dir.on_request(1, 0);
  dir.on_request(1, 1);
  dir.on_request(1, 0);  // node 0 again
  EXPECT_EQ(dir.candidates(1), (std::vector<NodeId>{0, 1}));
}

TEST(DistributedDirectory, BoundedCandidateList) {
  DistributedDirectory dir(2);
  for (NodeId node = 0; node < 10; ++node) dir.on_request(3, node);
  const auto list = dir.candidates(3);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], 9u);
  EXPECT_EQ(list[1], 8u);
}

TEST(DistributedDirectory, MediatorAssignment) {
  EXPECT_EQ(DistributedDirectory::mediator_of(0, 16), 0u);
  EXPECT_EQ(DistributedDirectory::mediator_of(17, 16), 1u);
  EXPECT_EQ(DistributedDirectory::mediator_of(4979, 16), 4979u % 16);
}

TEST(DistributedDirectory, ChainOutcomeCounters) {
  DistributedDirectory dir(3);
  dir.on_request(9, 0);
  dir.on_request(9, 1);
  EXPECT_EQ(dir.stats().requests, 2u);
  EXPECT_EQ(dir.stats().empty_responses, 1u);

  // Requester-side chain outcomes accumulate independently of lookups.
  dir.record_chain_outcome(/*hit=*/false, /*hops_walked=*/0);
  dir.record_chain_outcome(/*hit=*/true, /*hops_walked=*/1);
  dir.record_chain_outcome(/*hit=*/true, /*hops_walked=*/3);
  EXPECT_EQ(dir.stats().chain_hits, 2u);
  EXPECT_EQ(dir.stats().chain_misses, 1u);
  EXPECT_EQ(dir.stats().hops, 4u);

  // Aggregation across nodes sums every counter.
  DirectoryStats total;
  total += dir.stats();
  total += dir.stats();
  EXPECT_EQ(total.requests, 4u);
  EXPECT_EQ(total.chain_hits, 4u);
  EXPECT_EQ(total.chain_misses, 2u);
  EXPECT_EQ(total.hops, 8u);
}

class DirectoryDepthSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DirectoryDepthSweep, ListNeverExceedsH) {
  const std::uint32_t h = GetParam();
  DistributedDirectory dir(h);
  for (int round = 0; round < 50; ++round) {
    for (ItemId item = 0; item < 5; ++item) {
      dir.on_request(item, static_cast<NodeId>((round * 3 + item) % 13));
      EXPECT_LE(dir.candidates(item).size(), h);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, DirectoryDepthSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace rocket::cache

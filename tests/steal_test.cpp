#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "steal/deque.hpp"
#include "steal/executor.hpp"
#include "steal/scheduler.hpp"

namespace rocket::steal {
namespace {

// --- Chase–Lev deque ---

TEST(ChaseLevDeque, OwnerLifoOrder) {
  ChaseLevDeque<int> deque;
  int a = 1, b = 2, c = 3;
  deque.push(&a);
  deque.push(&b);
  deque.push(&c);
  EXPECT_EQ(deque.pop(), &c);
  EXPECT_EQ(deque.pop(), &b);
  EXPECT_EQ(deque.pop(), &a);
  EXPECT_EQ(deque.pop(), nullptr);
}

TEST(ChaseLevDeque, ThiefTakesOldest) {
  ChaseLevDeque<int> deque;
  int a = 1, b = 2;
  deque.push(&a);
  deque.push(&b);
  EXPECT_EQ(deque.steal(), &a);  // FIFO from the top
  EXPECT_EQ(deque.pop(), &b);
  EXPECT_EQ(deque.steal(), nullptr);
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> deque(64);
  std::vector<std::unique_ptr<int>> items;
  for (int i = 0; i < 1000; ++i) {
    items.push_back(std::make_unique<int>(i));
    deque.push(items.back().get());
  }
  EXPECT_EQ(deque.size_hint(), 1000u);
  for (int i = 999; i >= 0; --i) {
    int* got = deque.pop();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, i);
  }
}

TEST(ChaseLevDeque, ConcurrentOwnershipIsExclusive) {
  // Property: every pushed item is claimed exactly once across the owner
  // and several thieves.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> deque;
  std::vector<std::unique_ptr<int>> storage;
  storage.reserve(kItems);
  for (int i = 0; i < kItems; ++i) storage.push_back(std::make_unique<int>(i));

  std::atomic<bool> done{false};
  std::atomic<long long> sum{0};
  std::atomic<int> claimed{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* item = deque.steal()) {
          sum += *item;
          claimed++;
        }
      }
      while (int* item = deque.steal()) {
        sum += *item;
        claimed++;
      }
    });
  }

  // Owner interleaves pushes and pops.
  for (int i = 0; i < kItems; ++i) {
    deque.push(storage[static_cast<std::size_t>(i)].get());
    if (i % 3 == 0) {
      if (int* item = deque.pop()) {
        sum += *item;
        claimed++;
      }
    }
  }
  while (int* item = deque.pop()) {
    sum += *item;
    claimed++;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(claimed.load(), kItems);
  EXPECT_EQ(sum.load(), static_cast<long long>(kItems) * (kItems - 1) / 2);
}

// --- RegionScheduler (policy) ---

RegionScheduler::Config single_node(std::uint32_t workers,
                                    std::uint64_t leaf_pairs = 1) {
  RegionScheduler::Config cfg;
  cfg.workers_per_node = {workers};
  cfg.max_leaf_pairs = leaf_pairs;
  cfg.seed = 7;
  return cfg;
}

TEST(RegionScheduler, SingleWorkerEnumeratesAllPairsOnce) {
  RegionScheduler sched(single_node(1));
  sched.seed_root(16);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  while (auto grant = sched.next_leaf(0)) {
    dnc::for_each_pair(grant->region, [&](dnc::Pair p) {
      EXPECT_TRUE(seen.insert({p.left, p.right}).second);
    });
    EXPECT_EQ(grant->origin, Origin::kLocal);
  }
  EXPECT_EQ(seen.size(), 16u * 15 / 2);
  EXPECT_TRUE(sched.all_empty());
}

TEST(RegionScheduler, WorkSpreadsAcrossWorkersViaStealing) {
  RegionScheduler sched(single_node(4));
  sched.seed_root(64);
  std::vector<std::uint64_t> processed(4, 0);
  bool any_left = true;
  // Round-robin polling: workers 1..3 can only obtain work by stealing.
  while (any_left) {
    any_left = false;
    for (WorkerId w = 0; w < 4; ++w) {
      if (auto grant = sched.next_leaf(w)) {
        processed[w] += dnc::count_pairs(grant->region);
        any_left = true;
      }
    }
  }
  std::uint64_t total = 0;
  for (const auto p : processed) {
    EXPECT_GT(p, 0u) << "every worker should obtain some work";
    total += p;
  }
  EXPECT_EQ(total, 64u * 63 / 2);
  EXPECT_GT(sched.stats().intra_node_steals, 0u);
  EXPECT_EQ(sched.stats().remote_steals, 0u);
}

TEST(RegionScheduler, HierarchicalStealingPrefersSameNode) {
  RegionScheduler::Config cfg;
  cfg.workers_per_node = {2, 2};
  cfg.seed = 3;
  RegionScheduler sched(cfg);
  sched.seed_root(64);

  // Worker 0 splits a few levels to populate its deque.
  auto first = sched.next_leaf(0);
  ASSERT_TRUE(first.has_value());

  // Worker 1 (same node) steals: must be intra-node.
  auto intra = sched.next_leaf(1);
  ASSERT_TRUE(intra.has_value());
  EXPECT_EQ(intra->origin, Origin::kIntraNode);
  EXPECT_EQ(sched.node_of(intra->victim), 0u);

  // Worker 2 (other node) steals: must be remote since its node is empty.
  auto remote = sched.next_leaf(2);
  ASSERT_TRUE(remote.has_value());
  EXPECT_EQ(remote->origin, Origin::kRemote);
}

TEST(RegionScheduler, LeafBudgetControlsGranularity) {
  RegionScheduler sched(single_node(1, 8));
  sched.seed_root(32);
  std::uint64_t total = 0;
  while (auto grant = sched.next_leaf(0)) {
    const auto pairs = dnc::count_pairs(grant->region);
    EXPECT_LE(pairs, 8u);
    EXPECT_GE(pairs, 1u);
    total += pairs;
  }
  EXPECT_EQ(total, 32u * 31 / 2);
}

TEST(RegionScheduler, StolenRegionIsLargest) {
  RegionScheduler sched(single_node(2));
  sched.seed_root(256);
  // Let worker 0 descend once: its deque now holds shallow siblings at the
  // front and deep ones at the back.
  auto local = sched.next_leaf(0);
  ASSERT_TRUE(local.has_value());
  ASSERT_GT(sched.deque_size(0), 0u);
  // The thief's grant originates from the shallowest stolen region; its
  // leaf is just the descent result, but stealing must have taken depth-1
  // work (the largest). We verify via the stats and remaining deque sizes.
  auto stolen = sched.next_leaf(1);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->origin, Origin::kIntraNode);
  // After descending, the thief pushed siblings onto its own deque.
  EXPECT_GT(sched.deque_size(1), 0u);
}

TEST(RegionScheduler, DeterministicGivenSeed) {
  auto run = [] {
    RegionScheduler sched(single_node(3));
    sched.seed_root(48);
    std::vector<std::uint64_t> counts(3, 0);
    bool any = true;
    while (any) {
      any = false;
      for (WorkerId w = 0; w < 3; ++w) {
        if (auto grant = sched.next_leaf(w)) {
          counts[w] += dnc::count_pairs(grant->region);
          any = true;
        }
      }
    }
    return counts;
  };
  EXPECT_EQ(run(), run());
}

// --- Live executor ---

TEST(StealExecutor, AllPairsProcessedExactlyOnce) {
  StealExecutor::Config cfg;
  cfg.num_workers = 4;
  cfg.max_leaf_pairs = 1;
  StealExecutor exec(cfg);

  std::mutex mutex;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  std::atomic<std::uint64_t> count{0};
  const auto stats = exec.run(40, [&](const dnc::Region& region, std::uint32_t) {
    std::scoped_lock lock(mutex);
    dnc::for_each_pair(region, [&](dnc::Pair p) {
      EXPECT_TRUE(seen.insert({p.left, p.right}).second)
          << "pair processed twice";
      count++;
    });
  });
  EXPECT_EQ(count.load(), 40u * 39 / 2);
  EXPECT_EQ(stats.leaves, 40u * 39 / 2);
}

TEST(StealExecutor, MaterialisedOrdersCoverAllPairsAcrossWorkers) {
  // Non-default leaf orders pre-materialise the leaf list and seed every
  // worker's deque with a contiguous chunk; the union executed across
  // all workers must still be exactly the root pair set, for every
  // order and a multi-worker pool.
  for (const auto order : {dnc::Traversal::kHilbert, dnc::Traversal::kMorton,
                           dnc::Traversal::kRowMajor}) {
    StealExecutor::Config cfg;
    cfg.num_workers = 3;
    cfg.max_leaf_pairs = 8;
    cfg.leaf_order = order;
    StealExecutor exec(cfg);
    std::mutex mutex;
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    exec.run(60, [&](const dnc::Region& region, std::uint32_t) {
      std::scoped_lock lock(mutex);
      dnc::for_each_pair(region, [&](dnc::Pair p) {
        EXPECT_TRUE(seen.insert({p.left, p.right}).second)
            << "pair processed twice";
      });
    });
    EXPECT_EQ(seen.size(), 60u * 59 / 2);
  }
}

TEST(StealExecutor, CoarseLeavesConserveWork) {
  StealExecutor::Config cfg;
  cfg.num_workers = 3;
  cfg.max_leaf_pairs = 16;
  StealExecutor exec(cfg);
  std::atomic<std::uint64_t> pairs{0};
  exec.run(128, [&](const dnc::Region& region, std::uint32_t) {
    pairs += dnc::count_pairs(region);
  });
  EXPECT_EQ(pairs.load(), 128u * 127 / 2);
}

TEST(StealExecutor, MultipleWorkersParticipate) {
  StealExecutor::Config cfg;
  cfg.num_workers = 4;
  cfg.max_leaf_pairs = 4;
  StealExecutor exec(cfg);
  std::array<std::atomic<std::uint64_t>, 4> per_worker{};
  exec.run(200, [&](const dnc::Region& region, std::uint32_t worker) {
    per_worker[worker] += dnc::count_pairs(region);
    // Block long enough for the OS to schedule the other workers even on a
    // single-core machine (a pure spin lets worker 0 drain everything
    // before anyone else runs, which made this test flaky in small CI
    // containers).
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  });
  int active = 0;
  for (const auto& p : per_worker) {
    if (p.load() > 0) ++active;
  }
  EXPECT_GE(active, 2) << "work stealing should engage more than one worker";
}

TEST(StealExecutor, EmptyAndTrivialProblems) {
  StealExecutor::Config cfg;
  cfg.num_workers = 2;
  StealExecutor exec(cfg);
  std::atomic<int> leaves{0};
  exec.run(0, [&](const dnc::Region&, std::uint32_t) { leaves++; });
  EXPECT_EQ(leaves.load(), 0);
  exec.run(1, [&](const dnc::Region&, std::uint32_t) { leaves++; });
  EXPECT_EQ(leaves.load(), 0);
  exec.run(2, [&](const dnc::Region&, std::uint32_t) { leaves++; });
  EXPECT_EQ(leaves.load(), 1);
}

TEST(StealExecutor, PartitionModeIntegratesRemoteWork) {
  // One node of a two-node mesh: it seeds its own half of the partition
  // and pulls the other half region-by-region through the remote-steal
  // hook; the run ends only on the (externally computed) global-done
  // signal, and every pair is executed exactly once.
  const dnc::ItemIndex n = 40;
  const auto total = dnc::count_pairs(dnc::root_region(n));
  auto partition = dnc::partition_root(n, 2);

  std::mutex remote_mutex;
  std::vector<dnc::Region> remote(partition[1]);
  std::atomic<std::uint64_t> executed{0};
  std::mutex seen_mutex;
  std::set<std::pair<dnc::ItemIndex, dnc::ItemIndex>> seen;

  StealExecutor::Config cfg;
  cfg.num_workers = 2;
  cfg.max_leaf_pairs = 8;
  StealExecutor exec(cfg);

  StealExecutor::RemoteHooks hooks;
  std::atomic<std::uint64_t> remote_served{0};
  hooks.steal = [&](std::uint32_t) -> std::optional<dnc::Region> {
    std::scoped_lock lock(remote_mutex);
    if (remote.empty()) return std::nullopt;
    const dnc::Region region = remote.back();
    remote.pop_back();
    remote_served.fetch_add(1);
    return region;
  };
  hooks.done = [&] { return executed.load() == total; };

  const auto stats = exec.run_partition(
      partition[0],
      [&](const dnc::Region& region, std::uint32_t) {
        {
          std::scoped_lock lock(seen_mutex);
          dnc::for_each_pair(region, [&](dnc::Pair p) {
            EXPECT_TRUE(seen.insert({p.left, p.right}).second);
          });
        }
        executed.fetch_add(dnc::count_pairs(region));
      },
      hooks, nullptr);

  EXPECT_EQ(executed.load(), total);
  EXPECT_EQ(seen.size(), total);
  EXPECT_EQ(stats.remote_steals, remote_served.load());
  EXPECT_GT(stats.remote_steals, 0u);
}

TEST(StealExporter, EmptyOutsideInstallWindow) {
  StealExporter exporter;
  EXPECT_FALSE(exporter.try_steal().has_value());
}

}  // namespace
}  // namespace rocket::steal

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/compress.hpp"
#include "common/options.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace rocket {
namespace {

TEST(Units, LiteralsAndConversions) {
  EXPECT_EQ(1_KB, 1000u);
  EXPECT_EQ(1_MB, 1000u * 1000u);
  EXPECT_EQ(1_GiB, 1073741824u);
  EXPECT_EQ(megabytes(38.1), Bytes{38100000});
  EXPECT_DOUBLE_EQ(as_mb(38100000), 38.1);
  EXPECT_DOUBLE_EQ(gbit_per_sec(56.0), 7e9);
  EXPECT_DOUBLE_EQ(milliseconds(130.8), 0.1308);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(19400000000ULL), "19.4 GB");
  EXPECT_EQ(format_seconds(0.0011), "1.10 ms");
  EXPECT_EQ(format_seconds(90.0), "90.00 s");
}

TEST(Rng, DeterministicStreams) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto idx = rng.uniform_index(17);
    EXPECT_LT(idx, 17u);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMoments) {
  Rng rng(123);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMatchesTargetMoments) {
  Rng rng(99);
  OnlineStats stats;
  for (int i = 0; i < 300000; ++i) {
    const double x = rng.lognormal_from_moments(564.3, 348.0);
    EXPECT_GT(x, 0.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 564.3, 5.0);
  EXPECT_NEAR(stats.stddev(), 348.0, 10.0);
}

TEST(Rng, DurationSamplerDegenerateCases) {
  Rng rng(5);
  DurationSampler zero;
  EXPECT_DOUBLE_EQ(zero.sample(rng), 0.0);
  DurationSampler constant(2.5, 0.0);
  EXPECT_DOUBLE_EQ(constant.sample(rng), 2.5);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineStats stats;
  for (const double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
  // Sample variance of {1,2,4,8,16}.
  double m2 = 0;
  for (const double x : xs) m2 += (x - 6.2) * (x - 6.2);
  EXPECT_NEAR(stats.variance(), m2 / 4.0, 1e-12);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(3);
  OnlineStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0, 1);
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
}

TEST(RollingThroughput, WindowedRate) {
  RollingThroughput tp(60.0);
  for (int i = 0; i < 600; ++i) tp.record(i * 0.1);  // 10 events/s for 60 s
  EXPECT_NEAR(tp.rate_at(30.0), 10.0, 0.2);
  EXPECT_NEAR(tp.rate_at(60.0), 10.0, 0.2);
  // Long after the burst the rate decays to zero.
  EXPECT_NEAR(tp.rate_at(200.0), 0.0, 1e-9);
}

TEST(MpmcQueue, OrderedSingleThread) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_EQ(q.try_pop(), 2);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(MpmcQueue, CloseWakesConsumers) {
  MpmcQueue<int> q;
  std::thread t([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  t.join();
}

TEST(MpmcQueue, MultiThreadedConservation) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        popped++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(),
            static_cast<long long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(MpmcQueue, BulkOpsPreserveOrder) {
  MpmcQueue<int> q;
  std::vector<int> in{1, 2, 3};
  q.push_bulk(in);
  EXPECT_TRUE(in.empty());  // consumed
  q.push(4);
  const auto first = q.pop_bulk(3);
  EXPECT_EQ(first, (std::vector<int>{1, 2, 3}));
  const auto rest = q.pop_bulk(16);  // drains what is there
  EXPECT_EQ(rest, (std::vector<int>{4}));
}

TEST(MpmcQueue, PopBulkReturnsEmptyOnlyWhenClosed) {
  MpmcQueue<int> q;
  std::thread t([&] {
    const auto batch = q.pop_bulk(8);
    EXPECT_TRUE(batch.empty());
  });
  q.close();
  t.join();
}

TEST(MpmcQueue, BulkMultiThreadedConservation) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 4000;
  constexpr int kBatch = 32;
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      std::vector<int> batch;
      for (int i = 1; i <= kPerProducer; ++i) {
        batch.push_back(i);
        if (static_cast<int>(batch.size()) == kBatch) q.push_bulk(batch);
      }
      q.push_bulk(batch);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const auto batch = q.pop_bulk(kBatch);
        if (batch.empty()) return;
        for (const int v : batch) sum += v;
        popped += static_cast<int>(batch.size());
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(), static_cast<long long>(kProducers) * kPerProducer *
                            (kPerProducer + 1) / 2);
}

TEST(Semaphore, LimitsConcurrency) {
  Semaphore sem(2);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
  sem.release();
  sem.release();
  EXPECT_EQ(sem.available(), 2u);
}

TEST(Semaphore, BlockedAcquirersWakeUnderContention) {
  // Stress the atomic fast path + wakeup-token slow path: no acquire may
  // be lost and the concurrency cap must hold throughout.
  constexpr std::size_t kPermits = 3;
  constexpr int kThreads = 6;
  constexpr int kIters = 2000;
  Semaphore sem(kPermits);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        sem.acquire();
        const int now = ++inside;
        int seen = max_inside.load();
        while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
        }
        --inside;
        sem.release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_inside.load(), static_cast<int>(kPermits));
  EXPECT_EQ(sem.available(), kPermits);
}

TEST(CountdownLatch, ReleasesAtZero) {
  CountdownLatch latch(2);
  std::thread t([&] { latch.wait(); });
  latch.count_down();
  EXPECT_EQ(latch.remaining(), 1u);
  latch.count_down();
  t.join();
  EXPECT_EQ(latch.remaining(), 0u);
}

TEST(CountdownLatch, BatchCountDownReleases) {
  // Tile-batched mode counts down a whole tile's pairs in one call.
  CountdownLatch latch(64);
  std::thread t([&] { latch.wait(); });
  latch.count_down(60);
  EXPECT_EQ(latch.remaining(), 4u);
  latch.count_down(4);
  t.join();
  EXPECT_EQ(latch.remaining(), 0u);
}

TEST(TableWriter, RendersAlignedAndCsv) {
  TableWriter table("demo");
  table.set_header({"app", "n", "eff"});
  table.add_row({"forensics", "4980", TableWriter::percent(0.946)});
  table.add_row({"microscopy", "256", TableWriter::percent(0.992)});
  const std::string text = table.render();
  EXPECT_NE(text.find("forensics"), std::string::npos);
  EXPECT_NE(text.find("94.6%"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  table.write_csv(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

TEST(Options, ParsesForms) {
  // Note: a bare `--flag` followed by a non-option token would bind the
  // token as the flag's value; flags therefore go last or use `=`.
  const char* argv[] = {"prog", "--nodes", "16", "--cache=disabled",
                        "positional", "--verbose"};
  Options opt(6, argv);
  EXPECT_EQ(opt.get_int("nodes", 0), 16);
  EXPECT_EQ(opt.get("cache", ""), "disabled");
  EXPECT_TRUE(opt.get_bool("verbose", false));
  EXPECT_FALSE(opt.get_bool("quiet", false));
  ASSERT_EQ(opt.positional().size(), 1u);
  EXPECT_EQ(opt.positional()[0], "positional");
}

class CompressRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressRoundTrip, Identity) {
  Rng rng(GetParam() * 7919 + 1);
  ByteBuffer data(GetParam());
  // Mix of compressible (repeated motifs) and incompressible bytes.
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = (i % 3 == 0) ? static_cast<std::uint8_t>(rng.uniform_index(256))
                           : static_cast<std::uint8_t>('A' + (i / 7) % 20);
  }
  const ByteBuffer packed = lz_compress(data);
  const ByteBuffer restored = lz_decompress(packed);
  EXPECT_EQ(restored, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressRoundTrip,
                         ::testing::Values(0, 1, 3, 4, 5, 64, 1000, 65536,
                                           100000));

TEST(Compress, CompressesRepetitiveData) {
  ByteBuffer data(100000, static_cast<std::uint8_t>('x'));
  const ByteBuffer packed = lz_compress(data);
  EXPECT_LT(packed.size(), data.size() / 10);
  EXPECT_EQ(lz_decompress(packed), data);
}

TEST(Compress, RejectsCorruptInput) {
  ByteBuffer garbage{1, 2, 3};
  EXPECT_THROW(lz_decompress(garbage), std::runtime_error);
  ByteBuffer data(1000, 7);
  ByteBuffer packed = lz_compress(data);
  packed.resize(packed.size() / 2);  // truncate
  EXPECT_THROW(lz_decompress(packed), std::runtime_error);
}

}  // namespace
}  // namespace rocket

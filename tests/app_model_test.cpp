#include <gtest/gtest.h>

#include "apps/app_model.hpp"
#include "common/stats.hpp"

namespace rocket::apps {
namespace {

TEST(AppModel, Table1Constants) {
  const AppModel f = forensics_model();
  EXPECT_EQ(f.default_n, 4980u);
  EXPECT_EQ(f.slot_size, megabytes(38.1));
  EXPECT_NEAR(f.parse.mean(), 0.1308, 1e-9);
  EXPECT_NEAR(f.comparison.mean(), 0.0011, 1e-9);
  EXPECT_TRUE(f.has_preprocess());

  const AppModel b = bioinformatics_model();
  EXPECT_EQ(b.default_n, 2500u);
  EXPECT_EQ(b.slot_size, megabytes(145.8));
  EXPECT_NEAR(b.preprocess.mean(), 0.027, 1e-9);

  const AppModel m = microscopy_model();
  EXPECT_EQ(m.default_n, 256u);
  EXPECT_EQ(m.slot_size, kilobytes(6.0));
  EXPECT_FALSE(m.has_preprocess());
  EXPECT_NEAR(m.comparison.mean(), 0.5643, 1e-9);
}

TEST(AppModel, AverageFileSizesMatchPaper) {
  // 19.4 GB / 4980 ≈ 3.9 MB; 1.8 GB / 2500 = 0.72 MB; 150 MB / 256 ≈ 586 KB.
  EXPECT_NEAR(as_mb(forensics_model().avg_file_size()), 3.9, 0.1);
  EXPECT_NEAR(as_mb(bioinformatics_model().avg_file_size()), 0.72, 0.01);
  EXPECT_NEAR(as_mb(microscopy_model().avg_file_size()), 0.586, 0.01);
}

TEST(AppModel, SamplingIsDeterministicPerEntity) {
  const AppModel f = forensics_model();
  EXPECT_DOUBLE_EQ(f.comparison_seconds(3, 7, 99), f.comparison_seconds(3, 7, 99));
  EXPECT_NE(f.comparison_seconds(3, 7, 99), f.comparison_seconds(3, 8, 99));
  EXPECT_NE(f.comparison_seconds(3, 7, 99), f.comparison_seconds(3, 7, 100));
  EXPECT_DOUBLE_EQ(f.parse_seconds(11, 5), f.parse_seconds(11, 5));
  EXPECT_EQ(f.file_size_of(4, 1), f.file_size_of(4, 1));
}

TEST(AppModel, SampledMomentsMatchTable1) {
  const AppModel m = microscopy_model();
  OnlineStats stats;
  std::uint32_t k = 0;
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (std::uint32_t j = i + 1; j < 256; ++j) {
      stats.add(m.comparison_seconds(i, j, 1));
      ++k;
    }
  }
  EXPECT_EQ(k, 32640u);
  EXPECT_NEAR(stats.mean(), 0.5643, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.348, 0.03);
  EXPECT_GT(stats.max(), 1.5) << "heavy tail expected (Fig 7 right)";
}

TEST(AppModel, RegularVsIrregularSpread) {
  const AppModel f = forensics_model();
  const AppModel b = bioinformatics_model();
  OnlineStats sf, sb;
  for (std::uint32_t i = 0; i < 200; ++i) {
    for (std::uint32_t j = i + 1; j < 200; ++j) {
      sf.add(f.comparison_seconds(i, j, 1));
      sb.add(b.comparison_seconds(i, j, 1));
    }
  }
  // Coefficient of variation: forensics is regular (<2%), bioinformatics
  // irregular (>25%), mirroring Fig 7.
  EXPECT_LT(sf.stddev() / sf.mean(), 0.02);
  EXPECT_GT(sb.stddev() / sb.mean(), 0.25);
}

TEST(AppModel, ProfileFeedsPerformanceModel) {
  const auto profile = forensics_model().profile();
  EXPECT_DOUBLE_EQ(profile.t_comparison, 0.0011);
  EXPECT_EQ(profile.slot_size, megabytes(38.1));
  const model::PerformanceModel pm(profile, 4980);
  EXPECT_NEAR(pm.t_min() / 3600.0, 3.82, 0.05);  // ≈ Fig 8 dotted line
}

TEST(AppModel, FileSizesSpreadAroundMean) {
  const AppModel b = bioinformatics_model();
  OnlineStats sizes;
  for (std::uint32_t i = 0; i < 2500; ++i) {
    sizes.add(static_cast<double>(b.file_size_of(i, 1)));
  }
  EXPECT_NEAR(sizes.mean(), static_cast<double>(b.avg_file_size()), 0.02 * sizes.mean());
  EXPECT_GT(sizes.stddev(), 0.0);
}

TEST(AppModel, LookupAndScaling) {
  EXPECT_EQ(model_by_name("forensics").id, AppId::kForensics);
  EXPECT_EQ(model_by_name("microscopy").id, AppId::kMicroscopy);
  EXPECT_THROW(model_by_name("nope"), std::invalid_argument);

  const AppModel big = bioinformatics_model(6818);
  EXPECT_EQ(big.default_n, 6818u);
  // Per-file mean stays the same as the 2500-file dataset.
  EXPECT_NEAR(as_mb(big.avg_file_size()), 0.72, 0.01);

  const AppModel small = scaled(forensics_model(), 100);
  EXPECT_EQ(small.default_n, 100u);
  EXPECT_NEAR(as_mb(small.avg_file_size()), 3.9, 0.1);
}

}  // namespace
}  // namespace rocket::apps

// Live multi-node mesh tests: transport delivery and accounting, the
// §4.1.3 peer-fetch protocol (including dead and evicted candidate
// chains), and full LiveCluster runs checked for exact result-multiset
// equality with a single-node run over the same store.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>

#include "apps/forensics.hpp"
#include "common/compress.hpp"
#include "mesh/live_cluster.hpp"
#include "mesh/mesh_node.hpp"
#include "mesh/transport.hpp"
#include "runtime/node_runtime.hpp"

namespace rocket::mesh {
namespace {

using runtime::ItemId;
using runtime::PairResult;
using ResultMap = std::map<std::pair<ItemId, ItemId>, double>;

// --- transport ------------------------------------------------------------

TEST(InProcessTransport, DeliversTypedMessagesAndCounts) {
  InProcessTransport transport(2, {128});
  ASSERT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{7, 0}));
  runtime::HostBuffer payload(1000, 0xAB);
  ASSERT_TRUE(transport.send(0, 1, net::Tag::kCacheData,
                             CacheData{7, 1, false, payload},
                             payload.size()));

  auto first = transport.recv(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->from, 0u);
  EXPECT_EQ(first->tag, net::Tag::kCacheRequest);
  EXPECT_EQ(std::get<CacheRequest>(first->body).item, 7u);

  auto second = transport.recv(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(std::get<CacheData>(second->body).bytes, payload);

  const auto counters = transport.counters();
  const auto& req =
      counters.per_tag[static_cast<std::size_t>(net::Tag::kCacheRequest)];
  const auto& data =
      counters.per_tag[static_cast<std::size_t>(net::Tag::kCacheData)];
  EXPECT_EQ(req.messages, 1u);
  EXPECT_EQ(req.bytes, 128u);  // control envelope only
  EXPECT_EQ(data.messages, 1u);
  EXPECT_EQ(data.bytes, 1000u + 128u);  // payload + envelope

  transport.close();
  EXPECT_FALSE(transport.recv(0).has_value());
}

TEST(InProcessTransport, CompressesLargePeerPayloadsOnTheWire) {
  InProcessTransport::Config tc;
  tc.control_message_size = 128;
  tc.compress_threshold = 1_KiB;
  InProcessTransport transport(2, tc);

  // Highly compressible payload above the threshold: must arrive
  // compressed, with the traffic table charging the compressed bytes.
  runtime::HostBuffer big(32 * 1024, 0x5A);
  ASSERT_TRUE(transport.send(0, 1, net::Tag::kCacheData,
                             CacheData{3, 1, false, big}, big.size()));
  auto msg = transport.recv(1);
  ASSERT_TRUE(msg.has_value());
  auto& data = std::get<CacheData>(msg->body);
  EXPECT_TRUE(data.compressed);
  EXPECT_LT(data.bytes.size(), big.size());
  EXPECT_EQ(lz_decompress(data.bytes), big);

  const auto& tag =
      transport.counters().per_tag[static_cast<std::size_t>(
          net::Tag::kCacheData)];
  EXPECT_EQ(tag.bytes, data.bytes.size() + tc.control_message_size);

  // Below the threshold: delivered verbatim.
  runtime::HostBuffer small(64, 0x5A);
  ASSERT_TRUE(transport.send(0, 1, net::Tag::kCacheData,
                             CacheData{4, 1, false, small}, small.size()));
  msg = transport.recv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_FALSE(std::get<CacheData>(msg->body).compressed);
  EXPECT_EQ(std::get<CacheData>(msg->body).bytes, small);
  transport.close();
}

TEST(InProcessTransport, DownNodeRejectsSends) {
  InProcessTransport transport(3);
  transport.set_down(2);
  EXPECT_FALSE(transport.send(0, 2, net::Tag::kCacheRequest,
                              CacheRequest{1, 0}));
  EXPECT_TRUE(transport.send(0, 1, net::Tag::kCacheRequest,
                             CacheRequest{1, 0}));
  // Rejected sends are not recorded.
  EXPECT_EQ(transport.counters().total_messages(), 1u);
  transport.close();
}

// --- peer-fetch protocol harness ------------------------------------------

/// Stand-in for a live engine's host cache: serves the items it was given.
struct FakeProbe final : runtime::HostCacheProbe {
  std::map<ItemId, runtime::HostBuffer> items;

  bool probe(ItemId item, runtime::HostBuffer& out) override {
    const auto it = items.find(item);
    if (it == items.end()) return false;
    out = it->second;
    return true;
  }
};

/// p MeshNodes over an in-process transport, no runtimes attached.
struct Harness {
  InProcessTransport transport;
  std::shared_ptr<std::atomic<bool>> done =
      std::make_shared<std::atomic<bool>>(false);
  std::vector<std::unique_ptr<MeshNode>> nodes;

  explicit Harness(std::uint32_t p, std::uint32_t hop_limit = 2)
      : transport(p) {
    for (NodeId id = 0; id < p; ++id) {
      MeshNode::Config mc;
      mc.id = id;
      mc.hop_limit = hop_limit;
      nodes.push_back(std::make_unique<MeshNode>(mc, transport, done));
    }
    for (auto& node : nodes) node->start();
  }

  ~Harness() {
    transport.close();
    for (auto& node : nodes) node->join();
  }

  /// Synchronous fetch: empty buffer = distributed-cache miss. Undoes
  /// wire compression like the runtime's peer stage would.
  runtime::HostBuffer fetch(NodeId node, ItemId item) {
    std::promise<runtime::HostBuffer> promise;
    auto future = promise.get_future();
    nodes[node]->fetch(item, [&promise](runtime::PeerPayload payload) {
      promise.set_value(payload.compressed ? lz_decompress(payload.bytes)
                                           : std::move(payload.bytes));
    });
    return future.get();
  }
};

TEST(MeshNode, PeerFetchHitsCandidateChain) {
  Harness mesh(3);
  const ItemId item = 7;  // mediator_of(7, 3) == 1
  ASSERT_EQ(cache::DistributedDirectory::mediator_of(item, 3), 1u);

  FakeProbe probe;
  probe.items[item] = runtime::HostBuffer{1, 2, 3, 4};
  mesh.nodes[1]->register_probe(&probe);

  // Node 1's own fetch misses (nobody was a candidate yet) but registers
  // it as the item's freshest candidate at the mediator.
  EXPECT_TRUE(mesh.fetch(1, item).empty());
  // Node 2 now walks the chain [1] and gets the bytes from node 1.
  EXPECT_EQ(mesh.fetch(2, item), (runtime::HostBuffer{1, 2, 3, 4}));

  const auto requester = mesh.nodes[2]->peer_stats();
  EXPECT_EQ(requester.requests, 1u);
  EXPECT_EQ(requester.chain_hits, 1u);
  ASSERT_GE(requester.hits_at_hop.size(), 1u);
  EXPECT_EQ(requester.hits_at_hop[0], 1u);

  const auto mediator = mesh.nodes[1]->directory_stats();
  EXPECT_EQ(mediator.requests, 2u);        // both fetches
  EXPECT_EQ(mediator.empty_responses, 1u); // node 1's first ask
  // Chain outcomes recorded requester-side: node 1 missed with 0 hops,
  // node 2 hit at hop 1.
  EXPECT_EQ(mesh.nodes[2]->directory_stats().chain_hits, 1u);
  EXPECT_EQ(mesh.nodes[2]->directory_stats().hops, 1u);
  EXPECT_EQ(mesh.nodes[1]->directory_stats().chain_misses, 1u);
}

TEST(MeshNode, EvictedCandidateChainMisses) {
  Harness mesh(3);
  const ItemId item = 7;  // mediator is node 1
  FakeProbe empty_probe;  // candidate no longer holds the item
  mesh.nodes[1]->register_probe(&empty_probe);

  EXPECT_TRUE(mesh.fetch(1, item).empty());  // seeds node 1 as candidate
  EXPECT_TRUE(mesh.fetch(2, item).empty());  // probe misses, chain exhausts

  const auto stats = mesh.nodes[2]->peer_stats();
  EXPECT_EQ(stats.chain_hits, 0u);
  EXPECT_EQ(stats.chain_misses, 1u);
  EXPECT_EQ(mesh.nodes[2]->directory_stats().hops, 1u);  // one hop walked
}

TEST(MeshNode, DeadCandidateDegradesToMiss) {
  Harness mesh(3);
  const ItemId item = 0;  // mediator is node 0; candidate will be node 1
  FakeProbe probe;
  probe.items[item] = runtime::HostBuffer{9};
  mesh.nodes[1]->register_probe(&probe);

  EXPECT_TRUE(mesh.fetch(1, item).empty());  // node 1 becomes the candidate
  mesh.transport.set_down(1);
  // The forward to the dead candidate fails; the mediator reports a miss
  // instead of hanging.
  EXPECT_TRUE(mesh.fetch(2, item).empty());
  EXPECT_EQ(mesh.nodes[2]->peer_stats().chain_misses, 1u);
}

TEST(MeshNode, DeadMediatorDegradesToMiss) {
  Harness mesh(3);
  const ItemId item = 7;  // mediator is node 1
  mesh.transport.set_down(1);
  EXPECT_TRUE(mesh.fetch(0, item).empty());
  EXPECT_EQ(mesh.nodes[0]->peer_stats().chain_misses, 1u);
}

TEST(MeshNode, UnservedCandidateForwardsAlongChain) {
  // A candidate with no live engine (no registered probe) behaves exactly
  // like an evicted one: the probe forwards to the next candidate, which
  // serves the item at hop 2.
  Harness mesh(4, /*hop_limit=*/2);
  const ItemId item = 5;  // mediator_of(5, 4) == 1
  FakeProbe probe;
  probe.items[item] = runtime::HostBuffer{42};
  mesh.nodes[3]->register_probe(&probe);

  EXPECT_TRUE(mesh.fetch(3, item).empty());           // candidates: [3]
  EXPECT_EQ(mesh.fetch(2, item),
            (runtime::HostBuffer{42}));               // hop 1; now [2, 3]
  EXPECT_EQ(mesh.fetch(0, item), (runtime::HostBuffer{42}))
      << "probe must forward past the unserved node 2 to node 3";
  const auto stats = mesh.nodes[0]->peer_stats();
  ASSERT_EQ(stats.hits_at_hop.size(), 2u);
  EXPECT_EQ(stats.hits_at_hop[1], 1u);  // found at the second hop
}

// --- LiveCluster end-to-end ----------------------------------------------

ResultMap single_node_reference(const runtime::Application& app,
                                storage::ObjectStore& store) {
  runtime::NodeRuntime::Config cfg;
  cfg.devices = {gpu::titanx_maxwell()};
  cfg.host_cache_capacity = 64_MiB;
  cfg.cpu_threads = 2;
  runtime::NodeRuntime rt(cfg);
  ResultMap results;
  std::mutex mutex;
  rt.run(app, store, [&](const PairResult& r) {
    std::scoped_lock lock(mutex);
    results[{r.left, r.right}] = r.score;
  });
  return results;
}

TEST(LiveCluster, FourNodeForensicsMatchesSingleNodeExactly) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 4;
  fc.images_per_camera = 8;
  fc.width = 64;
  fc.height = 48;
  fc.seed = 11;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);
  const std::uint64_t pairs = 32ull * 31 / 2;

  const ResultMap expected = single_node_reference(app, store);
  ASSERT_EQ(expected.size(), pairs);

  LiveClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.node.devices = {gpu::titanx_maxwell()};
  cfg.node.host_cache_capacity = 64_MiB;
  cfg.node.cpu_threads = 2;
  // Force multi-shard caches (with their lock-free fast path) regardless
  // of the host's core count: the exact-multiset guarantee must hold with
  // sharding enabled.
  cfg.node.cache_shards = 4;
  LiveCluster cluster(cfg);

  // The master callback is serialised on the mesh service thread — no
  // mutex needed.
  ResultMap actual;
  const auto report = cluster.run_all_pairs(
      app, store, [&](const PairResult& r) { actual[{r.left, r.right}] = r.score; });

  // Exact multiset equality with the single-node run: peer-fetched bytes
  // are bit-identical to locally loaded ones, so scores match exactly.
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(report.pairs, pairs);

  // No faults injected: the failure machinery (heartbeats, leases, the
  // master's ledger) runs but must be invisible — no verdicts, no
  // re-execution, no dropped results.
  EXPECT_EQ(report.node_deaths, 0u);
  EXPECT_EQ(report.regions_reexecuted, 0u);
  EXPECT_EQ(report.duplicate_results_dropped, 0u);
  EXPECT_EQ(report.failover.results_received, pairs);

  // Peer fetches actually replaced storage reads.
  EXPECT_GT(report.directory.chain_hits, 0u);
  EXPECT_GT(report.peer_loads, 0u);
  EXPECT_EQ(report.peer_cache.chain_hits, report.directory.chain_hits);
  EXPECT_EQ(report.peer_cache.total_hits(), report.peer_cache.chain_hits);
  EXPECT_EQ(report.peer_cache.chain_hits + report.peer_cache.chain_misses,
            report.peer_cache.requests);
  EXPECT_EQ(report.peer_loads, report.peer_cache.chain_hits);

  // Traffic accounting: one request message per fetch, one result message
  // per pair, and per-node pair counts sum to the total.
  const auto& traffic = report.traffic.per_tag;
  EXPECT_EQ(traffic[static_cast<std::size_t>(net::Tag::kCacheRequest)].messages,
            report.peer_cache.requests);
  EXPECT_EQ(traffic[static_cast<std::size_t>(net::Tag::kResult)].messages,
            pairs);
  std::uint64_t node_pairs = 0, node_loads = 0;
  for (const auto& node : report.nodes) {
    node_pairs += node.pairs;
    node_loads += node.loads;
  }
  EXPECT_EQ(node_pairs, pairs);
  EXPECT_EQ(node_loads, report.loads);
  // Every node pulled its weight.
  for (const auto& node : report.nodes) EXPECT_GT(node.pairs, 0u);
}

TEST(LiveCluster, FailedPeerChainsFallBackToStoreInBothModes) {
  // Starved caches guarantee evicted candidate chains: fetches walk to
  // peers that have already dropped the item and must fall back to the
  // object store, in both execution modes, with mode-invariant results
  // (the §6.1 no-hang invariant, live).
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 3;
  fc.images_per_camera = 4;
  fc.width = 64;
  fc.height = 48;
  fc.seed = 23;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);

  const ResultMap expected = single_node_reference(app, store);

  for (const bool tile_batching : {true, false}) {
    SCOPED_TRACE(tile_batching ? "tile-batched" : "per-pair");
    LiveClusterConfig cfg;
    cfg.num_nodes = 3;
    cfg.node.devices = {gpu::titanx_maxwell()};
    cfg.node.cpu_threads = 2;
    cfg.node.tile_batching = tile_batching;
    // 3 host slots and 4 device slots per node for 12 items.
    cfg.node.host_cache_capacity = 3 * app.slot_size();
    cfg.node.device_cache_capacity = 4 * app.slot_size();
    LiveCluster cluster(cfg);

    ResultMap actual;
    const auto report = cluster.run_all_pairs(
        app, store,
        [&](const PairResult& r) { actual[{r.left, r.right}] = r.score; });

    EXPECT_EQ(actual, expected);
    // Chains were walked and missed; the store served the fallbacks.
    EXPECT_GT(report.peer_cache.chain_misses, 0u);
    EXPECT_GT(report.loads, 0u);
  }
}

/// Items whose parsed form is highly compressible — exercises the wire
/// compression of peer-fetch payloads end-to-end (compress in transport,
/// decompress in the requester's load pipeline).
class CompressibleApp final : public runtime::Application {
 public:
  CompressibleApp(std::uint32_t n, storage::MemoryStore& store) : n_(n) {
    for (std::uint32_t i = 0; i < n_; ++i) {
      ByteBuffer bytes(kItemBytes, static_cast<std::uint8_t>(i % 5));
      store.put(file_name(i), std::move(bytes));
    }
  }

  std::string name() const override { return "compressible"; }
  std::uint32_t item_count() const override { return n_; }
  std::string file_name(runtime::ItemId item) const override {
    return "cmp_" + std::to_string(item);
  }
  void parse(runtime::ItemId, const ByteBuffer& file,
             runtime::HostBuffer& out) const override {
    out.assign(file.begin(), file.end());
  }
  double compare(runtime::ItemId left, const gpu::DeviceBuffer& left_data,
                 runtime::ItemId right,
                 const gpu::DeviceBuffer& right_data) const override {
    return static_cast<double>(left_data.data()[0]) * 31.0 +
           static_cast<double>(right_data.data()[0]) +
           static_cast<double>(left) * 1e-3 +
           static_cast<double>(right) * 1e-6;
  }
  Bytes slot_size() const override { return kItemBytes; }

 private:
  static constexpr std::size_t kItemBytes = 16 * 1024;
  std::uint32_t n_;
};

TEST(LiveCluster, PeerFetchPayloadsCompressOnTheWire) {
  storage::MemoryStore store;
  CompressibleApp app(12, store);

  runtime::NodeRuntime::Config ncfg;
  ncfg.devices = {gpu::titanx_maxwell()};
  ncfg.host_cache_capacity = 16_MiB;
  ncfg.cpu_threads = 2;
  ncfg.cache_shards = 4;
  runtime::NodeRuntime reference(ncfg);
  ResultMap expected;
  std::mutex mutex;
  reference.run(app, store, [&](const PairResult& r) {
    std::scoped_lock lock(mutex);
    expected[{r.left, r.right}] = r.score;
  });

  LiveClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.node = ncfg;
  cfg.peer_compress_threshold = 1_KiB;  // well below the 16 KiB items
  LiveCluster cluster(cfg);
  ResultMap actual;
  const auto report = cluster.run_all_pairs(
      app, store,
      [&](const PairResult& r) { actual[{r.left, r.right}] = r.score; });

  // Decompression in the loader's peer stage is bit-faithful: scores are
  // exact, and peer fetches actually happened.
  EXPECT_EQ(actual, expected);
  ASSERT_GT(report.peer_loads, 0u);

  // Every delivered payload was compressed: the per-message average of
  // the kCacheData traffic must be far below the raw slot size.
  const auto& data = report.traffic.per_tag[static_cast<std::size_t>(
      net::Tag::kCacheData)];
  ASSERT_GT(data.messages, 0u);
  EXPECT_LT(data.bytes / data.messages, app.slot_size() / 2);
}

TEST(LiveCluster, SingleNodeDegenerates) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 2;
  fc.images_per_camera = 4;
  fc.width = 64;
  fc.height = 48;
  fc.seed = 5;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);

  const ResultMap expected = single_node_reference(app, store);

  LiveClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.node.cpu_threads = 2;
  cfg.node.host_cache_capacity = 16_MiB;
  LiveCluster cluster(cfg);
  ResultMap actual;
  const auto report = cluster.run_all_pairs(
      app, store,
      [&](const PairResult& r) { actual[{r.left, r.right}] = r.score; });

  EXPECT_EQ(actual, expected);
  // No peers: no distributed-cache or steal traffic, only results.
  EXPECT_EQ(report.peer_cache.requests, 0u);
  EXPECT_EQ(report.directory.requests, 0u);
  EXPECT_EQ(report.remote_steals, 0u);
  EXPECT_EQ(report.traffic.per_tag[static_cast<std::size_t>(
                net::Tag::kResult)].messages,
            report.pairs);
}

TEST(LiveCluster, EmptyAndTrivialProblems) {
  storage::MemoryStore store;
  apps::ForensicsConfig fc;
  fc.cameras = 1;
  fc.images_per_camera = 2;
  fc.width = 64;
  fc.height = 48;
  apps::ForensicsDataset dataset(fc, store);
  apps::ForensicsApplication app(dataset);

  LiveClusterConfig cfg;
  cfg.num_nodes = 4;  // more nodes than work
  cfg.node.cpu_threads = 1;
  cfg.node.host_cache_capacity = 16_MiB;
  LiveCluster cluster(cfg);
  std::size_t results = 0;
  const auto report =
      cluster.run_all_pairs(app, store, [&](const PairResult&) { ++results; });
  EXPECT_EQ(results, 1u);
  EXPECT_EQ(report.pairs, 1u);
}

}  // namespace
}  // namespace rocket::mesh

// Property-based tests: randomised stress on the policy core with
// invariants checked at every step, plus analytic cross-checks of the
// simulation primitives (queueing identities the models must satisfy).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/distributed_directory.hpp"
#include "cache/slot_cache.hpp"
#include "common/rng.hpp"
#include "dnc/pair_space.hpp"
#include "sim/primitives.hpp"
#include "sim/process.hpp"
#include "steal/scheduler.hpp"

namespace rocket {
namespace {

// --- SlotCache randomised stress -------------------------------------

struct CacheStressParam {
  std::uint32_t slots;
  std::uint32_t items;
  std::uint64_t seed;
};

class SlotCacheStress : public ::testing::TestWithParam<CacheStressParam> {};

TEST_P(SlotCacheStress, InvariantsHoldUnderRandomOperations) {
  const auto param = GetParam();
  cache::SlotCache cache({param.slots, 1_MB, "stress"});
  Rng rng(param.seed);

  // Outstanding state mirrored by the test (the "abstract model").
  std::multiset<cache::SlotId> read_pins;
  std::map<cache::SlotId, cache::ItemId> writers;  // slot -> item being filled
  std::uint64_t deferred_grants = 0;

  auto on_grant = [&](cache::SlotCache::Grant grant) {
    ++deferred_grants;
    if (grant.outcome == cache::SlotCache::Outcome::kHit) {
      read_pins.insert(grant.slot);
    } else if (grant.outcome == cache::SlotCache::Outcome::kFill) {
      writers[grant.slot] = cache.item_of(grant.slot);
    }
    // kFailed: nothing to track; the abstract client just gives up.
  };

  for (int step = 0; step < 20000; ++step) {
    const auto action = rng.uniform_index(10);
    if (action < 5) {  // acquire a random item
      const auto item = static_cast<cache::ItemId>(rng.uniform_index(param.items));
      const auto grant = cache.acquire(item, on_grant);
      if (grant.outcome == cache::SlotCache::Outcome::kHit) {
        read_pins.insert(grant.slot);
      } else if (grant.outcome == cache::SlotCache::Outcome::kFill) {
        writers[grant.slot] = item;
      }
    } else if (action < 7 && !read_pins.empty()) {  // release a random pin
      auto it = read_pins.begin();
      std::advance(it, static_cast<long>(rng.uniform_index(read_pins.size())));
      cache.release(*it);
      read_pins.erase(it);
    } else if (action < 9 && !writers.empty()) {  // publish a random writer
      auto it = writers.begin();
      std::advance(it, static_cast<long>(rng.uniform_index(writers.size())));
      const auto slot = it->first;
      writers.erase(it);
      cache.publish(slot);
      read_pins.insert(slot);  // the writer's pin
    } else if (!writers.empty()) {  // abort a random writer
      auto it = writers.begin();
      std::advance(it, static_cast<long>(rng.uniform_index(writers.size())));
      const auto slot = it->first;
      writers.erase(it);
      cache.abort(slot);
    }
    if (step % 500 == 0) cache.check_invariants();
  }
  // Drain: release all pins and abort all writers. Releases can fire
  // deferred grants that add *new* pins/writers (queued allocations being
  // served), so loop until the mirrored state is empty.
  while (!read_pins.empty() || !writers.empty()) {
    if (!read_pins.empty()) {
      const auto slot = *read_pins.begin();
      read_pins.erase(read_pins.begin());
      cache.release(slot);
    } else {
      const auto slot = writers.begin()->first;
      writers.erase(writers.begin());
      cache.abort(slot);
    }
  }
  cache.check_invariants();
  // Full reusability: `slots` fresh items can all be filled.
  for (std::uint32_t i = 0; i < param.slots; ++i) {
    const auto g = cache.acquire(1000000 + i, nullptr);
    ASSERT_EQ(g.outcome, cache::SlotCache::Outcome::kFill);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SlotCacheStress,
    ::testing::Values(CacheStressParam{2, 8, 1}, CacheStressParam{4, 4, 2},
                      CacheStressParam{8, 64, 3}, CacheStressParam{64, 16, 4},
                      CacheStressParam{16, 1000, 5}));

// --- Scheduler conservation across shapes ------------------------------

struct SchedParam {
  std::vector<std::uint32_t> workers_per_node;
  std::uint32_t n;
  std::uint64_t leaf;
};

class SchedulerConservation : public ::testing::TestWithParam<SchedParam> {};

TEST_P(SchedulerConservation, EveryPairGrantedExactlyOnce) {
  const auto param = GetParam();
  steal::RegionScheduler::Config cfg;
  cfg.workers_per_node = param.workers_per_node;
  cfg.max_leaf_pairs = param.leaf;
  cfg.seed = 99;
  steal::RegionScheduler sched(cfg);
  sched.seed_root(param.n);

  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  bool progress = true;
  while (progress) {
    progress = false;
    for (steal::WorkerId w = 0; w < sched.num_workers(); ++w) {
      if (auto grant = sched.next_leaf(w)) {
        progress = true;
        EXPECT_LE(dnc::count_pairs(grant->region), param.leaf);
        dnc::for_each_pair(grant->region, [&](dnc::Pair p) {
          EXPECT_TRUE(seen.insert({p.left, p.right}).second)
              << "duplicate pair " << p.left << "," << p.right;
        });
      }
    }
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(param.n) * (param.n - 1) / 2);
  EXPECT_TRUE(sched.all_empty());
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, SchedulerConservation,
    ::testing::Values(SchedParam{{1}, 50, 1}, SchedParam{{4}, 64, 1},
                      SchedParam{{2, 2}, 64, 4}, SchedParam{{1, 2, 1}, 37, 2},
                      SchedParam{{2, 2, 2, 2}, 96, 8},
                      SchedParam{{8}, 128, 16}));

// --- Distributed directory: chain freshness property -------------------

TEST(DirectoryProperty, ChainAlwaysReflectsMostRecentRequesters) {
  // Whatever the request sequence, the chain handed to a requester is the
  // h most recent *other* requesters, most recent first.
  Rng rng(7);
  for (const std::uint32_t h : {1u, 2u, 4u}) {
    cache::DistributedDirectory dir(h);
    std::vector<cache::NodeId> history;
    for (int step = 0; step < 500; ++step) {
      const auto node = static_cast<cache::NodeId>(rng.uniform_index(6));
      const auto chain = dir.on_request(42, node);
      // Build the expected chain from our shadow history.
      std::vector<cache::NodeId> expected;
      std::set<cache::NodeId> used;
      for (auto it = history.rbegin();
           it != history.rend() && expected.size() < h; ++it) {
        if (*it == node || used.count(*it)) continue;
        expected.push_back(*it);
        used.insert(*it);
      }
      EXPECT_EQ(chain, expected) << "step " << step;
      // Shadow update: dedupe + prepend (mirrors the directory).
      history.erase(std::remove(history.begin(), history.end(), node),
                    history.end());
      history.push_back(node);
      if (history.size() > h) history.erase(history.begin());
    }
  }
}

// --- Simulation cross-checks against queueing identities ----------------

sim::Process mm1_like_arrivals(sim::Simulation& /*sim*/, sim::Resource& server,
                               Rng& rng, int jobs, double mean_interarrival,
                               double mean_service, double* busy_check) {
  for (int j = 0; j < jobs; ++j) {
    co_await sim::delay(rng.exponential(mean_interarrival));
    co_await server.acquire();
    const double s = rng.exponential(mean_service);
    *busy_check += s;
    co_await sim::delay(s);
    server.release();
  }
}

TEST(SimulationProperty, ResourceBusyTimeEqualsSumOfServiceTimes) {
  // Work conservation: a single server's busy integral equals the total
  // service demand regardless of queueing.
  sim::Simulation sim;
  sim::Resource server(sim, 1);
  Rng rng(17);
  double demand = 0.0;
  spawn(sim, mm1_like_arrivals(sim, server, rng, 500, 1.0, 0.7, &demand));
  sim.run();
  EXPECT_NEAR(server.busy_time(), demand, 1e-9);
  // Closed-loop client: expected utilisation = s / (a + s) = 0.7/1.7 ≈ 0.41.
  const double utilisation = server.busy_time() / sim.now();
  EXPECT_LT(utilisation, 1.0);
  EXPECT_NEAR(utilisation, 0.7 / 1.7, 0.05);
}

sim::Process ps_flow(sim::SharedBandwidth& link, Bytes size, double* done,
                     sim::Simulation* sim) {
  co_await link.transfer(size);
  *done = sim->now();
}

TEST(SimulationProperty, ProcessorSharingConservesBytes) {
  // N simultaneous equal flows on a PS link must all finish at exactly
  // N * size / capacity, and total bytes served equals the demand.
  for (const int flows : {1, 2, 3, 7, 16}) {
    sim::Simulation sim;
    sim::SharedBandwidth link(sim, 1000.0);
    std::vector<double> done(static_cast<std::size_t>(flows), 0.0);
    for (int f = 0; f < flows; ++f) {
      spawn(sim, ps_flow(link, 500, &done[static_cast<std::size_t>(f)], &sim));
    }
    sim.run();
    for (const double t : done) {
      EXPECT_NEAR(t, flows * 500.0 / 1000.0, 1e-6) << flows << " flows";
    }
    EXPECT_EQ(link.total_transferred(), static_cast<Bytes>(flows) * 500);
  }
}

TEST(SimulationProperty, PairDeterminismAcrossLeafBudgets) {
  // The set of pairs is invariant under the decomposition granularity.
  for (const std::uint64_t leaf : {1ull, 3ull, 10ull, 100ull}) {
    steal::RegionScheduler::Config cfg;
    cfg.workers_per_node = {3};
    cfg.max_leaf_pairs = leaf;
    cfg.seed = 5;
    steal::RegionScheduler sched(cfg);
    sched.seed_root(40);
    std::uint64_t total = 0;
    bool progress = true;
    while (progress) {
      progress = false;
      for (steal::WorkerId w = 0; w < 3; ++w) {
        if (auto grant = sched.next_leaf(w)) {
          total += dnc::count_pairs(grant->region);
          progress = true;
        }
      }
    }
    EXPECT_EQ(total, 40u * 39 / 2) << "leaf=" << leaf;
  }
}

}  // namespace
}  // namespace rocket

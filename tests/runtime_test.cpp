// Integration tests: the live multi-threaded NodeRuntime end-to-end on the
// three real applications, checked against brute-force sequential
// reference results.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>

#include "apps/bioinformatics.hpp"
#include "apps/forensics.hpp"
#include "apps/microscopy.hpp"
#include "runtime/node_runtime.hpp"

namespace rocket::runtime {
namespace {

using ResultMap = std::map<std::pair<ItemId, ItemId>, double>;

/// Sequential reference: run the pipeline naively for each pair.
ResultMap brute_force(const Application& app, storage::ObjectStore& store) {
  gpu::VirtualDevice device(0, gpu::titanx_maxwell());
  std::vector<gpu::DeviceBuffer> items;
  for (ItemId i = 0; i < app.item_count(); ++i) {
    HostBuffer parsed;
    app.parse(i, store.read(app.file_name(i)), parsed);
    auto buffer = device.allocate(app.slot_size());
    std::copy(parsed.begin(), parsed.end(), buffer.data());
    app.preprocess(i, buffer);
    items.push_back(std::move(buffer));
  }
  ResultMap results;
  for (ItemId i = 0; i < app.item_count(); ++i) {
    for (ItemId j = i + 1; j < app.item_count(); ++j) {
      results[{i, j}] =
          app.postprocess(i, j, app.compare(i, items[i], j, items[j]));
    }
  }
  return results;
}

ResultMap collect(NodeRuntime& runtime, const Application& app,
                  storage::ObjectStore& store, NodeRuntime::Report* report) {
  ResultMap results;
  std::mutex mutex;
  auto rep = runtime.run(app, store, [&](const PairResult& r) {
    std::scoped_lock lock(mutex);
    results[{r.left, r.right}] = r.score;
  });
  if (report != nullptr) *report = rep;
  return results;
}

TEST(NodeRuntime, ForensicsMatchesBruteForce) {
  storage::MemoryStore store;
  apps::ForensicsConfig cfg;
  cfg.cameras = 3;
  cfg.images_per_camera = 3;
  cfg.width = 64;
  cfg.height = 48;
  cfg.seed = 4;
  apps::ForensicsDataset dataset(cfg, store);
  apps::ForensicsApplication app(dataset);

  const ResultMap expected = brute_force(app, store);

  NodeRuntime::Config rt;
  rt.devices = {gpu::titanx_maxwell()};
  rt.host_cache_capacity = 8_MiB;
  rt.cpu_threads = 2;
  NodeRuntime runtime(rt);
  NodeRuntime::Report report;
  const ResultMap actual = collect(runtime, app, store, &report);

  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [pair, score] : expected) {
    const auto it = actual.find(pair);
    ASSERT_NE(it, actual.end());
    EXPECT_NEAR(it->second, score, 1e-9)
        << "pair (" << pair.first << "," << pair.second << ")";
  }
  EXPECT_EQ(report.pairs, expected.size());
  EXPECT_GE(report.loads, app.item_count());
  EXPECT_GE(report.reuse_factor, 1.0);
}

TEST(NodeRuntime, MicroscopyMatchesBruteForce) {
  storage::MemoryStore store;
  apps::MicroscopyConfig cfg;
  cfg.particles = 6;
  cfg.binding_sites = 12;
  cfg.localizations_per_site_min = 4;
  cfg.localizations_per_site_max = 8;
  cfg.seed = 2;
  apps::MicroscopyDataset dataset(cfg, store);
  apps::MicroscopyApplication app(dataset);

  const ResultMap expected = brute_force(app, store);
  NodeRuntime::Config rt;
  rt.cpu_threads = 2;
  rt.host_cache_capacity = 4_MiB;
  NodeRuntime runtime(rt);
  const ResultMap actual = collect(runtime, app, store, nullptr);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [pair, score] : expected) {
    EXPECT_NEAR(actual.at(pair), score, 1e-9);
  }
}

TEST(NodeRuntime, BioinformaticsMatchesBruteForce) {
  storage::MemoryStore store;
  apps::BioinformaticsConfig cfg;
  cfg.species = 8;
  cfg.proteins = 10;
  cfg.protein_len_min = 60;
  cfg.protein_len_max = 120;
  cfg.seed = 3;
  apps::BioinformaticsDataset dataset(cfg, store);
  apps::BioinformaticsApplication app(dataset);

  const ResultMap expected = brute_force(app, store);
  NodeRuntime::Config rt;
  rt.cpu_threads = 2;
  rt.host_cache_capacity = 64_MiB;
  NodeRuntime runtime(rt);
  const ResultMap actual = collect(runtime, app, store, nullptr);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [pair, score] : expected) {
    EXPECT_NEAR(actual.at(pair), score, 1e-9);
  }
}

TEST(NodeRuntime, TileBatchingMatchesPerPairPath) {
  // The tile-batched path and the per-pair path must be observationally
  // identical: same result map, and with an ample cache the same number of
  // load-pipeline executions (one per item).
  storage::MemoryStore store;
  apps::ForensicsConfig cfg;
  cfg.cameras = 3;
  cfg.images_per_camera = 4;
  cfg.width = 64;
  cfg.height = 48;
  cfg.seed = 9;
  apps::ForensicsDataset dataset(cfg, store);
  apps::ForensicsApplication app(dataset);

  NodeRuntime::Config base;
  base.devices = {gpu::titanx_maxwell()};
  base.host_cache_capacity = 16_MiB;
  base.cpu_threads = 2;

  NodeRuntime::Config tile_cfg = base;
  tile_cfg.tile_batching = true;
  NodeRuntime tile_rt(tile_cfg);
  NodeRuntime::Report tile_report;
  const ResultMap tile_results = collect(tile_rt, app, store, &tile_report);

  NodeRuntime::Config pair_cfg = base;
  pair_cfg.tile_batching = false;
  NodeRuntime pair_rt(pair_cfg);
  NodeRuntime::Report pair_report;
  const ResultMap pair_results = collect(pair_rt, app, store, &pair_report);

  ASSERT_EQ(tile_results.size(), pair_results.size());
  for (const auto& [pair, score] : pair_results) {
    const auto it = tile_results.find(pair);
    ASSERT_NE(it, tile_results.end());
    EXPECT_NEAR(it->second, score, 1e-12)
        << "pair (" << pair.first << "," << pair.second << ")";
  }
  // Cache fits all 12 items: both modes load each item exactly once.
  EXPECT_EQ(tile_report.loads, app.item_count());
  EXPECT_EQ(pair_report.loads, app.item_count());
  EXPECT_GT(tile_report.tiles, 0u);
  EXPECT_EQ(pair_report.tiles, 0u);
  EXPECT_EQ(tile_report.pairs, pair_report.pairs);
}

TEST(NodeRuntime, ShardedCacheMatchesSingleLockPolicy) {
  // shards=1 is the historical single-lock policy; shards=8 runs the
  // sharded caches with their lock-free fast path. Result maps must be
  // identical, and with an ample cache both load each item exactly once.
  storage::MemoryStore store;
  apps::ForensicsConfig cfg;
  cfg.cameras = 3;
  cfg.images_per_camera = 4;
  cfg.width = 64;
  cfg.height = 48;
  cfg.seed = 17;
  apps::ForensicsDataset dataset(cfg, store);
  apps::ForensicsApplication app(dataset);

  NodeRuntime::Config base;
  base.devices = {gpu::titanx_maxwell()};
  base.host_cache_capacity = 16_MiB;
  base.cpu_threads = 4;
  // 12 device slots at 2 jobs in flight shard the device cache 3 ways
  // (the deadlock-freedom clamp allows slots / (2*jobs) shards); in-flight
  // jobs overlap on shared items, which is what drives the fast path.
  base.job_limit_per_worker = 2;

  for (const bool tile_batching : {true, false}) {
    SCOPED_TRACE(tile_batching ? "tile-batched" : "per-pair");
    base.tile_batching = tile_batching;

    NodeRuntime::Config single_cfg = base;
    single_cfg.cache_shards = 1;
    NodeRuntime single_rt(single_cfg);
    NodeRuntime::Report single_report;
    const ResultMap single_results =
        collect(single_rt, app, store, &single_report);

    NodeRuntime::Config sharded_cfg = base;
    sharded_cfg.cache_shards = 8;
    NodeRuntime sharded_rt(sharded_cfg);
    NodeRuntime::Report sharded_report;
    const ResultMap sharded_results =
        collect(sharded_rt, app, store, &sharded_report);

    ASSERT_EQ(single_results.size(), sharded_results.size());
    for (const auto& [pair, score] : single_results) {
      const auto it = sharded_results.find(pair);
      ASSERT_NE(it, sharded_results.end());
      EXPECT_EQ(it->second, score)
          << "pair (" << pair.first << "," << pair.second << ")";
    }
    EXPECT_EQ(single_report.loads, app.item_count());
    EXPECT_EQ(sharded_report.loads, app.item_count());
    EXPECT_EQ(single_report.cache_fast_hits, 0u);
    // Every item stays resident and repeatedly re-pinned: the sharded run
    // must actually exercise the lock-free path.
    EXPECT_GT(sharded_report.cache_fast_hits, 0u);
  }
}

TEST(NodeRuntime, ModeEquivalenceAcrossPrefetchTilingAndSharding) {
  // The full execution-mode matrix must be observationally identical:
  // prefetch {0, 4} x tile_batching {on, off} x cache_shards {1, 8} all
  // produce the exact same result multiset. (Prefetch rides the tile
  // pipeline — on the per-pair path the axis verifies it is inert.)
  storage::MemoryStore store;
  apps::ForensicsConfig cfg;
  cfg.cameras = 3;
  cfg.images_per_camera = 4;
  cfg.width = 64;
  cfg.height = 48;
  cfg.seed = 23;
  apps::ForensicsDataset dataset(cfg, store);
  apps::ForensicsApplication app(dataset);

  NodeRuntime::Config base;
  base.devices = {gpu::titanx_maxwell()};
  base.host_cache_capacity = 16_MiB;
  base.cpu_threads = 4;
  base.job_limit_per_worker = 2;

  ResultMap reference;
  bool have_reference = false;
  for (const std::uint32_t prefetch : {0u, 4u}) {
    for (const bool tile_batching : {true, false}) {
      for (const std::uint32_t shards : {1u, 8u}) {
        SCOPED_TRACE("prefetch=" + std::to_string(prefetch) +
                     " tile=" + std::to_string(tile_batching) +
                     " shards=" + std::to_string(shards));
        NodeRuntime::Config rt_cfg = base;
        rt_cfg.prefetch_tiles = prefetch;
        rt_cfg.tile_batching = tile_batching;
        rt_cfg.cache_shards = shards;
        NodeRuntime runtime(rt_cfg);
        NodeRuntime::Report report;
        const ResultMap results = collect(runtime, app, store, &report);
        if (!have_reference) {
          reference = results;
          have_reference = true;
          continue;
        }
        ASSERT_EQ(results.size(), reference.size());
        for (const auto& [pair, score] : reference) {
          const auto it = results.find(pair);
          ASSERT_NE(it, results.end());
          EXPECT_EQ(it->second, score)
              << "pair (" << pair.first << "," << pair.second << ")";
        }
        // Ample cache: every mode loads each item exactly once, prefetch
        // or not — the window changes *when* loads start, never how many.
        EXPECT_EQ(report.loads, app.item_count());
        if (prefetch == 0 || !tile_batching) {
          EXPECT_EQ(report.prefetch_hits, 0u);
        }
      }
    }
  }
}

TEST(NodeRuntime, PrefetchCorrectUnderEvictionPressure) {
  // A small sharded device cache under an active look-ahead window: the
  // clamped combined budget must keep batched pinning deadlock-free and
  // the results exact. job_limit 1 + window 6 means every resolved tile
  // beyond the single compute slot waited on the gate at least while a
  // predecessor computed.
  storage::MemoryStore store;
  apps::ForensicsConfig cfg;
  cfg.cameras = 4;
  cfg.images_per_camera = 5;
  cfg.width = 64;
  cfg.height = 48;
  cfg.seed = 31;
  apps::ForensicsDataset dataset(cfg, store);
  apps::ForensicsApplication app(dataset);

  const ResultMap expected = brute_force(app, store);

  NodeRuntime::Config rt;
  rt.cpu_threads = 2;
  rt.host_cache_capacity = 0;
  rt.device_cache_capacity = 16 * app.slot_size();
  rt.job_limit_per_worker = 1;
  rt.prefetch_tiles = 6;
  rt.max_leaf_pairs = 16;
  NodeRuntime runtime(rt);
  NodeRuntime::Report report;
  const ResultMap actual = collect(runtime, app, store, &report);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [pair, score] : expected) {
    EXPECT_NEAR(actual.at(pair), score, 1e-9);
  }
  // The window was active: some tiles resolved while the one compute
  // slot was occupied.
  EXPECT_GT(report.prefetch_hits, 0u);
  ASSERT_EQ(report.device_stall_seconds.size(), 1u);
  ASSERT_EQ(report.device_busy_seconds.size(), 1u);
  EXPECT_GE(report.device_busy_seconds[0], 0.0);
}

/// Degenerate application: no items at all (or one item, zero pairs) —
/// the Report must come back with finite, zeroed rates, not NaN.
class EmptyApp final : public runtime::Application {
 public:
  explicit EmptyApp(std::uint32_t n) : n_(n) {}
  std::string name() const override { return "empty"; }
  std::uint32_t item_count() const override { return n_; }
  std::string file_name(ItemId item) const override {
    return "none_" + std::to_string(item);
  }
  void parse(ItemId, const ByteBuffer&, HostBuffer&) const override {}
  double compare(ItemId, const gpu::DeviceBuffer&, ItemId,
                 const gpu::DeviceBuffer&) const override {
    return 0.0;
  }
  Bytes slot_size() const override { return 64; }

 private:
  std::uint32_t n_;
};

TEST(NodeRuntime, ReuseFactorFiniteOnDegenerateRuns) {
  // Regression: zero loads / zero items must never surface NaN or inf in
  // reuse_factor (or leave stall accounting unsized). Exercise both
  // execution modes for n = 0 (nothing exists) and n = 1 (an item but no
  // pair — the store is empty, and no load may even start).
  for (const bool tile_batching : {true, false}) {
    for (const std::uint32_t n : {0u, 1u}) {
      SCOPED_TRACE("tile=" + std::to_string(tile_batching) +
                   " n=" + std::to_string(n));
      EmptyApp app(n);
      storage::MemoryStore store;  // deliberately empty
      NodeRuntime::Config rt;
      rt.cpu_threads = 1;
      rt.tile_batching = tile_batching;
      NodeRuntime runtime(rt);
      NodeRuntime::Report report;
      const ResultMap results = collect(runtime, app, store, &report);
      EXPECT_TRUE(results.empty());
      EXPECT_EQ(report.pairs, 0u);
      EXPECT_EQ(report.loads, 0u);
      EXPECT_TRUE(std::isfinite(report.reuse_factor));
      EXPECT_EQ(report.reuse_factor, 0.0);
      ASSERT_EQ(report.device_stall_seconds.size(), 1u);
      EXPECT_TRUE(std::isfinite(report.device_stall_seconds[0]));
    }
  }
}

TEST(NodeRuntime, MultiDeviceSharesWork) {
  storage::MemoryStore store;
  apps::ForensicsConfig cfg;
  cfg.cameras = 4;
  cfg.images_per_camera = 4;
  cfg.width = 64;
  cfg.height = 48;
  apps::ForensicsDataset dataset(cfg, store);
  apps::ForensicsApplication app(dataset);

  NodeRuntime::Config rt;
  rt.devices = {gpu::rtx2080ti(), gpu::rtx2080ti()};
  rt.cpu_threads = 2;
  rt.host_cache_capacity = 16_MiB;
  rt.emulate_heterogeneity = false;
  NodeRuntime runtime(rt);
  NodeRuntime::Report report;
  const ResultMap results = collect(runtime, app, store, &report);
  EXPECT_EQ(results.size(), 16u * 15 / 2);
  ASSERT_EQ(report.pairs_per_device.size(), 2u);
  EXPECT_EQ(report.pairs_per_device[0] + report.pairs_per_device[1],
            results.size());
  EXPECT_GT(report.pairs_per_device[0], 0u);
  EXPECT_GT(report.pairs_per_device[1], 0u);
}

TEST(NodeRuntime, TinyCacheStillCorrect) {
  // Device cache squeezed to the minimum (2 slots = 1 job in flight):
  // maximal eviction pressure, every pair still completes correctly.
  storage::MemoryStore store;
  apps::ForensicsConfig cfg;
  cfg.cameras = 2;
  cfg.images_per_camera = 4;
  cfg.width = 64;
  cfg.height = 48;
  apps::ForensicsDataset dataset(cfg, store);
  apps::ForensicsApplication app(dataset);

  const ResultMap expected = brute_force(app, store);

  NodeRuntime::Config rt;
  rt.cpu_threads = 1;
  rt.host_cache_capacity = 0;  // host cache disabled
  rt.device_cache_capacity = 2 * app.slot_size();
  NodeRuntime runtime(rt);
  NodeRuntime::Report report;
  const ResultMap actual = collect(runtime, app, store, &report);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [pair, score] : expected) {
    EXPECT_NEAR(actual.at(pair), score, 1e-9);
  }
  // With no host cache and a 2-slot device cache, nearly every job reloads.
  EXPECT_GT(report.reuse_factor, 2.0);
}

TEST(NodeRuntime, MissingFileFailsPairsNotRun) {
  // Failure injection: drop one input file. Pairs touching it complete
  // with NaN; everything else is still correct, and the run terminates.
  // Both execution modes must handle the failure identically (TileJob's
  // load_failed marking and Job::fail_pair are independent code paths).
  storage::MemoryStore store;
  apps::MicroscopyConfig cfg;
  cfg.particles = 5;
  cfg.binding_sites = 8;
  cfg.localizations_per_site_min = 3;
  cfg.localizations_per_site_max = 5;
  apps::MicroscopyDataset dataset(cfg, store);
  apps::MicroscopyApplication app(dataset);

  const ResultMap expected = brute_force(app, store);

  // Rebuild the store without particle 2.
  storage::MemoryStore broken;
  for (ItemId i = 0; i < 5; ++i) {
    if (i == 2) continue;
    broken.put(app.file_name(i), store.read(app.file_name(i)));
  }

  for (const bool tile_batching : {true, false}) {
    SCOPED_TRACE(tile_batching ? "tile-batched" : "per-pair");
    NodeRuntime::Config rt;
    rt.cpu_threads = 2;
    rt.host_cache_capacity = 1_MiB;
    rt.tile_batching = tile_batching;
    NodeRuntime runtime(rt);
    NodeRuntime::Report report;
    const ResultMap actual = collect(runtime, app, broken, &report);
    ASSERT_EQ(actual.size(), expected.size());
    for (const auto& [pair, score] : actual) {
      if (pair.first == 2 || pair.second == 2) {
        EXPECT_TRUE(std::isnan(score)) << "pairs on the missing item fail";
      } else {
        EXPECT_NEAR(score, expected.at(pair), 1e-9);
      }
    }
    // Failed pairs still count as processed: per-device accounting sums
    // to the full pair count in both modes.
    std::uint64_t device_sum = 0;
    for (const auto p : report.pairs_per_device) device_sum += p;
    EXPECT_EQ(device_sum, report.pairs);
  }
}

TEST(NodeRuntime, ProfilerTraceWhenEnabled) {
  storage::MemoryStore store;
  apps::MicroscopyConfig cfg;
  cfg.particles = 4;
  cfg.binding_sites = 6;
  cfg.localizations_per_site_min = 3;
  cfg.localizations_per_site_max = 4;
  apps::MicroscopyDataset dataset(cfg, store);
  apps::MicroscopyApplication app(dataset);

  NodeRuntime::Config rt;
  rt.cpu_threads = 1;
  rt.host_cache_capacity = 1_MiB;
  rt.trace = true;
  NodeRuntime runtime(rt);
  NodeRuntime::Report report;
  collect(runtime, app, store, &report);
  EXPECT_FALSE(report.timeline.empty());
  EXPECT_NE(report.timeline.find("legend"), std::string::npos);
  // Busy time must have been recorded on the GPU lane.
  double gpu_busy = 0;
  for (const auto& [name, busy] : report.lane_busy) {
    if (name.rfind("gpu", 0) == 0) gpu_busy += busy;
  }
  EXPECT_GT(gpu_busy, 0.0);
}

}  // namespace
}  // namespace rocket::runtime

#pragma once

// Virtual-time model of the shared storage server (MinIO in the paper).
//
// All nodes read input files from one central server; its aggregate NIC
// bandwidth is processor-shared among concurrent requests, plus a fixed
// per-request overhead (request round-trip + object lookup). This is the
// component that makes the paper's I/O-pressure results (Fig 12, bottom
// row) emerge: with more nodes and no distributed cache, load replication
// multiplies read traffic and the server saturates.

#include <cstdint>

#include "common/units.hpp"
#include "sim/primitives.hpp"
#include "sim/process.hpp"

namespace rocket::storage {

struct SimulatedStoreConfig {
  Bandwidth bandwidth = gbit_per_sec(56);  // server NIC, shared by all reads
  double request_overhead = 2e-4;          // per-read fixed latency (200 us)
};

class SimulatedStore {
 public:
  SimulatedStore(sim::Simulation& sim, SimulatedStoreConfig config)
      : sim_(&sim), config_(config), link_(sim, config.bandwidth) {}

  /// Awaitable read of `bytes` from the shared server.
  sim::Process read(Bytes bytes) {
    ++reads_;
    bytes_read_ += bytes;
    co_await sim::delay(config_.request_overhead);
    co_await link_.transfer(bytes);
  }

  std::uint64_t reads() const { return reads_; }
  Bytes bytes_read() const { return bytes_read_; }
  std::size_t active_reads() const { return link_.active_transfers(); }

  /// Time during which at least one read was streaming.
  double busy_time() const { return link_.busy_time(); }

  /// Average consumed bandwidth over `elapsed` seconds.
  Bandwidth average_usage(double elapsed) const {
    return elapsed > 0 ? static_cast<double>(bytes_read_) / elapsed : 0.0;
  }

  const SimulatedStoreConfig& config() const { return config_; }

 private:
  sim::Simulation* sim_;
  SimulatedStoreConfig config_;
  sim::SharedBandwidth link_;
  std::uint64_t reads_ = 0;
  Bytes bytes_read_ = 0;
};

}  // namespace rocket::storage

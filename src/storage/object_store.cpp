#include "storage/object_store.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"

namespace rocket::storage {

namespace fs = std::filesystem;

void ObjectStore::put(const std::string&, const ByteBuffer&) {
  throw std::runtime_error("ObjectStore: write path not supported");
}

void ObjectStore::append(const std::string&, const ByteBuffer&) {
  throw std::runtime_error("ObjectStore: append path not supported");
}

void MemoryStore::put(const std::string& name, const ByteBuffer& data) {
  objects_[name] = data;
}

void MemoryStore::append(const std::string& name, const ByteBuffer& data) {
  ByteBuffer& object = objects_[name];
  object.insert(object.end(), data.begin(), data.end());
}

ByteBuffer MemoryStore::read(const std::string& name) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw std::runtime_error("MemoryStore: no such object: " + name);
  }
  ++stats_.reads;
  stats_.bytes_read += it->second.size();
  return it->second;
}

bool MemoryStore::exists(const std::string& name) const {
  return objects_.count(name) != 0;
}

Bytes MemoryStore::size_of(const std::string& name) const {
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw std::runtime_error("MemoryStore: no such object: " + name);
  }
  return it->second.size();
}

std::vector<std::string> MemoryStore::list() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, data] : objects_) names.push_back(name);
  return names;
}

Bytes MemoryStore::total_bytes() const {
  Bytes total = 0;
  for (const auto& [name, data] : objects_) total += data.size();
  return total;
}

ByteBuffer SynchronizedStore::read(const std::string& name) {
  std::scoped_lock lock(mutex_);
  return inner_->read(name);
}

bool SynchronizedStore::exists(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  return inner_->exists(name);
}

Bytes SynchronizedStore::size_of(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  return inner_->size_of(name);
}

std::vector<std::string> SynchronizedStore::list() const {
  std::scoped_lock lock(mutex_);
  return inner_->list();
}

void SynchronizedStore::put(const std::string& name, const ByteBuffer& data) {
  std::scoped_lock lock(mutex_);
  inner_->put(name, data);
}

void SynchronizedStore::append(const std::string& name,
                               const ByteBuffer& data) {
  std::scoped_lock lock(mutex_);
  inner_->append(name, data);
}

ByteBuffer ThrottledStore::read(const std::string& name) {
  if (read_latency_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(read_latency_us_));
  }
  return inner_->read(name);
}

bool ThrottledStore::exists(const std::string& name) const {
  return inner_->exists(name);
}

Bytes ThrottledStore::size_of(const std::string& name) const {
  return inner_->size_of(name);
}

std::vector<std::string> ThrottledStore::list() const {
  return inner_->list();
}

void ThrottledStore::put(const std::string& name, const ByteBuffer& data) {
  inner_->put(name, data);
}

void ThrottledStore::append(const std::string& name, const ByteBuffer& data) {
  inner_->append(name, data);
}

FlakyStore::FlakyStore(ObjectStore& inner, Config config)
    : inner_(&inner), cfg_(config) {}

bool FlakyStore::roll(double rate) {
  if (rate <= 0.0) return false;
  const std::uint64_t n = draws_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = mix64(cfg_.seed * 0x9E3779B97F4A7C15ULL + n + 1);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return u < rate;
}

ByteBuffer FlakyStore::read(const std::string& name) {
  if (cfg_.spike_us > 0 && roll(cfg_.spike_rate)) {
    spikes_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(cfg_.spike_us));
  }
  if (roll(cfg_.error_rate)) {
    std::scoped_lock lock(mutex_);
    std::uint32_t& run = consecutive_[name];
    if (run < cfg_.max_consecutive_failures) {
      ++run;
      errors_.fetch_add(1, std::memory_order_relaxed);
      throw TransientStoreError("FlakyStore: injected transient error on " +
                                name);
    }
  }
  {
    std::scoped_lock lock(mutex_);
    consecutive_.erase(name);
  }
  return inner_->read(name);
}

bool FlakyStore::exists(const std::string& name) const {
  return inner_->exists(name);
}

Bytes FlakyStore::size_of(const std::string& name) const {
  return inner_->size_of(name);
}

std::vector<std::string> FlakyStore::list() const { return inner_->list(); }

void FlakyStore::put(const std::string& name, const ByteBuffer& data) {
  inner_->put(name, data);
}

void FlakyStore::append(const std::string& name, const ByteBuffer& data) {
  inner_->append(name, data);
}

DirectoryStore::DirectoryStore(std::string root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

std::string DirectoryStore::path_of(const std::string& name) const {
  return (fs::path(root_) / name).string();
}

ByteBuffer DirectoryStore::read(const std::string& name) {
  std::ifstream file(path_of(name), std::ios::binary);
  if (!file) {
    throw std::runtime_error("DirectoryStore: cannot open " + path_of(name));
  }
  file.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(file.tellg());
  file.seekg(0, std::ios::beg);
  ByteBuffer data(size);
  file.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(size));
  if (!file) {
    throw std::runtime_error("DirectoryStore: short read on " + name);
  }
  ++stats_.reads;
  stats_.bytes_read += size;
  return data;
}

bool DirectoryStore::exists(const std::string& name) const {
  return fs::exists(path_of(name));
}

Bytes DirectoryStore::size_of(const std::string& name) const {
  std::error_code ec;
  const auto size = fs::file_size(path_of(name), ec);
  if (ec) {
    throw std::runtime_error("DirectoryStore: no such object: " + name);
  }
  return size;
}

std::vector<std::string> DirectoryStore::list() const {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

void DirectoryStore::put(const std::string& name, const ByteBuffer& data) {
  std::ofstream file(path_of(name), std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("DirectoryStore: cannot create " + path_of(name));
  }
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  file.flush();
  if (!file) {
    throw std::runtime_error("DirectoryStore: short write on " + name);
  }
}

void DirectoryStore::append(const std::string& name, const ByteBuffer& data) {
  std::ofstream file(path_of(name), std::ios::binary | std::ios::app);
  if (!file) {
    throw std::runtime_error("DirectoryStore: cannot append " + path_of(name));
  }
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  file.flush();
  if (!file) {
    throw std::runtime_error("DirectoryStore: short append on " + name);
  }
}

}  // namespace rocket::storage

#pragma once

// Input-file storage abstractions.
//
// The paper serves input files from a central MinIO server over InfiniBand
// (§6.2), accessed via the Xenon library. Rocket abstracts this as an
// ObjectStore:
//   * MemoryStore    — in-memory blobs (unit tests, generated datasets)
//   * DirectoryStore — real files on the local filesystem (live runtime)
//   * SimulatedStore — virtual-time model of a shared storage server whose
//                      aggregate bandwidth is processor-shared among the
//                      cluster's concurrent reads (sim_store.hpp)

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/compress.hpp"
#include "common/units.hpp"

namespace rocket::storage {

struct StoreStats {
  std::uint64_t reads = 0;
  Bytes bytes_read = 0;
};

/// Blocking object store used by the live runtime's I/O thread.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Read the named object. Throws std::runtime_error if missing.
  virtual ByteBuffer read(const std::string& name) = 0;

  virtual bool exists(const std::string& name) const = 0;
  virtual Bytes size_of(const std::string& name) const = 0;
  virtual std::vector<std::string> list() const = 0;

  // --- write path (DESIGN.md §14: the checkpoint journal's append log) ---
  // Read-only deployments (a store that fronts someone else's bucket) may
  // leave these unimplemented; the defaults throw. `append` creates the
  // object when missing, so a journal needs no separate create step.

  virtual bool supports_write() const { return false; }
  virtual void put(const std::string& name, const ByteBuffer& data);
  virtual void append(const std::string& name, const ByteBuffer& data);

  const StoreStats& stats() const { return stats_; }

 protected:
  StoreStats stats_;
};

/// In-memory store; also the backing catalogue for generated datasets.
class MemoryStore final : public ObjectStore {
 public:
  ByteBuffer read(const std::string& name) override;
  bool exists(const std::string& name) const override;
  Bytes size_of(const std::string& name) const override;
  std::vector<std::string> list() const override;

  bool supports_write() const override { return true; }
  void put(const std::string& name, const ByteBuffer& data) override;
  void append(const std::string& name, const ByteBuffer& data) override;

  Bytes total_bytes() const;

 private:
  std::map<std::string, ByteBuffer> objects_;
};

/// Thread-safe adapter sharing one ObjectStore among several live nodes —
/// the mesh's stand-in for the paper's central MinIO server (§6.2). Every
/// node's I/O thread reads through the same mutex, which serialises the
/// wrapped store's bookkeeping; stats accumulate on the wrapped store.
class SynchronizedStore final : public ObjectStore {
 public:
  explicit SynchronizedStore(ObjectStore& inner) : inner_(&inner) {}

  ByteBuffer read(const std::string& name) override;
  bool exists(const std::string& name) const override;
  Bytes size_of(const std::string& name) const override;
  std::vector<std::string> list() const override;

  bool supports_write() const override { return inner_->supports_write(); }
  void put(const std::string& name, const ByteBuffer& data) override;
  void append(const std::string& name, const ByteBuffer& data) override;

 private:
  ObjectStore* inner_;
  mutable std::mutex mutex_;
};

/// Latency-injecting decorator: every read sleeps for a fixed wall-clock
/// delay before delegating. The live counterpart of SimulatedStore for
/// load-bound experiments — with it, a runtime configuration is I/O-bound
/// by construction, which is what the prefetch-pipeline head-to-head in
/// bench_micro needs. Thread-safe iff the wrapped store is.
class ThrottledStore final : public ObjectStore {
 public:
  ThrottledStore(ObjectStore& inner, std::uint64_t read_latency_us)
      : inner_(&inner), read_latency_us_(read_latency_us) {}

  ByteBuffer read(const std::string& name) override;
  bool exists(const std::string& name) const override;
  Bytes size_of(const std::string& name) const override;
  std::vector<std::string> list() const override;

  bool supports_write() const override { return inner_->supports_write(); }
  void put(const std::string& name, const ByteBuffer& data) override;
  void append(const std::string& name, const ByteBuffer& data) override;

 private:
  ObjectStore* inner_;
  std::uint64_t read_latency_us_;
};

/// Transient object-store failure: the retryable error class absorbed by
/// the load pipeline's backoff budget (DESIGN.md §15). Permanent errors
/// (missing object, short read) stay plain runtime_errors and fail the
/// item immediately.
class TransientStoreError : public std::runtime_error {
 public:
  explicit TransientStoreError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Grey-failure chaos decorator: injects seeded transient read errors and
/// latency spikes — the storage half of the grey-failure model, a store
/// that times out intermittently but eventually serves every object.
/// Consecutive injected failures per object are capped, so a bounded
/// retry budget always wins; exists/size_of/list are never perturbed
/// (membership queries are assumed cached/cheap). Thread-safe.
class FlakyStore final : public ObjectStore {
 public:
  struct Config {
    double error_rate = 0.0;    // P(read throws TransientStoreError)
    double spike_rate = 0.0;    // P(read sleeps spike_us first)
    std::uint64_t spike_us = 0;
    std::uint64_t seed = 1;
    /// Cap on consecutive injected failures per object; the next read of
    /// that object is then forced through, keeping every load winnable
    /// within a small retry budget.
    std::uint32_t max_consecutive_failures = 2;
  };

  FlakyStore(ObjectStore& inner, Config config);

  ByteBuffer read(const std::string& name) override;
  bool exists(const std::string& name) const override;
  Bytes size_of(const std::string& name) const override;
  std::vector<std::string> list() const override;

  bool supports_write() const override { return inner_->supports_write(); }
  void put(const std::string& name, const ByteBuffer& data) override;
  void append(const std::string& name, const ByteBuffer& data) override;

  std::uint64_t injected_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_spikes() const {
    return spikes_.load(std::memory_order_relaxed);
  }

 private:
  /// Deterministic Bernoulli draw: hashes a per-store sequence number, so
  /// the fault pattern depends only on (seed, call order), not wall time.
  bool roll(double rate);

  ObjectStore* inner_;
  Config cfg_;
  std::atomic<std::uint64_t> draws_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> spikes_{0};
  mutable std::mutex mutex_;
  std::map<std::string, std::uint32_t> consecutive_;  // guarded by mutex_
};

/// Real files rooted at a directory.
class DirectoryStore final : public ObjectStore {
 public:
  explicit DirectoryStore(std::string root);

  ByteBuffer read(const std::string& name) override;
  bool exists(const std::string& name) const override;
  Bytes size_of(const std::string& name) const override;
  std::vector<std::string> list() const override;

  bool supports_write() const override { return true; }
  /// Write an object (used by dataset generators and journal recovery).
  void put(const std::string& name, const ByteBuffer& data) override;
  void append(const std::string& name, const ByteBuffer& data) override;

  const std::string& root() const { return root_; }

 private:
  std::string path_of(const std::string& name) const;
  std::string root_;
};

}  // namespace rocket::storage

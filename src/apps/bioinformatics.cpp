#include "apps/bioinformatics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/compress.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace rocket::apps {

namespace {

constexpr char kAlphabet[] = "ACDEFGHIKLMNPQRSTVWY";
constexpr std::uint32_t kAlphabetSize = 20;

std::uint32_t residue_code(char c) {
  const char* pos = std::strchr(kAlphabet, c);
  if (pos == nullptr) throw std::runtime_error("bad residue in FASTA");
  return static_cast<std::uint32_t>(pos - kAlphabet);
}

/// Mutate a proteome in place: per-site substitution at `rate`.
void mutate(std::vector<std::string>& proteins, double rate, Rng& rng) {
  for (auto& protein : proteins) {
    for (auto& residue : protein) {
      if (rng.uniform() < rate) {
        residue = kAlphabet[rng.uniform_index(kAlphabetSize)];
      }
    }
  }
}

std::string to_fasta(const std::vector<std::string>& proteins,
                     std::uint32_t species) {
  std::string out;
  for (std::size_t p = 0; p < proteins.size(); ++p) {
    out += ">sp" + std::to_string(species) + "_protein" + std::to_string(p) +
           " synthetic\n";
    const std::string& seq = proteins[p];
    for (std::size_t i = 0; i < seq.size(); i += 60) {
      out.append(seq, i, std::min<std::size_t>(60, seq.size() - i));
      out += '\n';
    }
  }
  return out;
}

/// Packed CV buffer layout: [u32 count][count × u32 idx][count × f32 val].
void pack_cv(const CompositionVector& cv, gpu::DeviceBuffer& data) {
  const auto count = static_cast<std::uint32_t>(cv.size());
  const std::size_t needed = sizeof(count) + count * (sizeof(std::uint32_t) +
                                                      sizeof(float));
  ROCKET_CHECK(data.size() >= needed, "CV exceeds slot size");
  std::uint8_t* p = data.data();
  std::memcpy(p, &count, sizeof(count));
  p += sizeof(count);
  std::memcpy(p, cv.indices.data(), count * sizeof(std::uint32_t));
  p += count * sizeof(std::uint32_t);
  std::memcpy(p, cv.values.data(), count * sizeof(float));
}

CompositionVector unpack_cv(const gpu::DeviceBuffer& data) {
  std::uint32_t count = 0;
  ROCKET_CHECK(data.size() >= sizeof(count), "corrupt CV buffer");
  std::memcpy(&count, data.data(), sizeof(count));
  CompositionVector cv;
  cv.indices.resize(count);
  cv.values.resize(count);
  const std::uint8_t* p = data.data() + sizeof(count);
  std::memcpy(cv.indices.data(), p, count * sizeof(std::uint32_t));
  p += count * sizeof(std::uint32_t);
  std::memcpy(cv.values.data(), p, count * sizeof(float));
  return cv;
}

}  // namespace

BioinformaticsDataset::BioinformaticsDataset(BioinformaticsConfig config,
                                             storage::MemoryStore& store)
    : config_(config) {
  // Ancestral proteome.
  Rng root_rng(mix64(config_.seed * 104729 + 1));
  std::vector<std::string> ancestor(config_.proteins);
  for (auto& protein : ancestor) {
    const auto len = static_cast<std::size_t>(root_rng.uniform_int(
        config_.protein_len_min, config_.protein_len_max));
    protein.resize(len);
    for (auto& residue : protein) {
      residue = kAlphabet[root_rng.uniform_index(kAlphabetSize)];
    }
  }

  // Mutate down a balanced binary clade tree: the proteome of species i is
  // the ancestor mutated once per tree level, with the clade (= index
  // range) sharing the mutations of the levels above the split.
  std::vector<std::vector<std::string>> current{ancestor};
  std::uint32_t levels = 0;
  while ((1u << levels) < config_.species) ++levels;
  for (std::uint32_t level = 0; level < levels; ++level) {
    std::vector<std::vector<std::string>> next;
    next.reserve(current.size() * 2);
    for (std::size_t clade = 0; clade < current.size(); ++clade) {
      for (int child = 0; child < 2; ++child) {
        std::vector<std::string> genome = current[clade];
        Rng rng(mix64(config_.seed ^ (level * 2654435761u + clade * 97 +
                                      static_cast<std::uint64_t>(child) + 3)));
        mutate(genome, config_.mutation_rate, rng);
        next.push_back(std::move(genome));
      }
    }
    current = std::move(next);
  }

  for (std::uint32_t species = 0; species < config_.species; ++species) {
    const std::string fasta = to_fasta(current[species], species);
    store.put(file_name(species),
              lz_compress(ByteBuffer(fasta.begin(), fasta.end())));
  }
}

std::string BioinformaticsDataset::file_name(runtime::ItemId item) const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "proteome_%05u.fasta.lz", item);
  return buf;
}

std::uint32_t BioinformaticsDataset::clade_depth(runtime::ItemId a,
                                                 runtime::ItemId b) const {
  if (a == b) return 32;
  std::uint32_t levels = 0;
  while ((1u << levels) < config_.species) ++levels;
  // Species index bits (MSB-first over the tree levels) identify the path;
  // the common prefix length is the depth of the deepest common clade.
  std::uint32_t depth = 0;
  for (std::uint32_t level = 0; level < levels; ++level) {
    const std::uint32_t shift = levels - 1 - level;
    if (((a >> shift) & 1u) != ((b >> shift) & 1u)) break;
    ++depth;
  }
  return depth;
}

CompositionVector build_composition_vector(const std::string& residues,
                                           std::uint32_t k) {
  ROCKET_CHECK(k >= 2, "composition vectors require k >= 2");
  const std::size_t n = residues.size();
  CompositionVector cv;
  if (n < k) return cv;

  // Count k, k-1 and k-2 strings in one pass each, as packed base-20 codes.
  std::unordered_map<std::uint32_t, std::uint32_t> count_k, count_k1, count_k2;
  auto scan = [&](std::uint32_t len,
                  std::unordered_map<std::uint32_t, std::uint32_t>& counts) {
    if (n < len) return;
    std::uint32_t code = 0;
    std::uint32_t modulus = 1;
    for (std::uint32_t i = 0; i + 1 < len; ++i) modulus *= kAlphabetSize;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = residue_code(residues[i]);
      code = (code % modulus) * kAlphabetSize + c;
      if (i + 1 >= len) ++counts[code];
    }
  };
  scan(k, count_k);
  scan(k - 1, count_k1);
  scan(k - 2, count_k2);

  const auto total_k = static_cast<double>(n - k + 1);
  const auto total_k1 = static_cast<double>(n - (k - 1) + 1);
  const auto total_k2 = static_cast<double>(n - (k - 2) + 1);

  std::uint32_t suffix_modulus = 1;  // 20^(k-1)
  for (std::uint32_t i = 0; i + 1 < k; ++i) suffix_modulus *= kAlphabetSize;
  std::uint32_t mid_modulus = suffix_modulus / kAlphabetSize;  // 20^(k-2)

  cv.indices.reserve(count_k.size());
  cv.values.reserve(count_k.size());
  for (const auto& [code, count] : count_k) {
    // code = a1..ak packed base-20. Prefix = a1..a_{k-1}, suffix = a2..ak,
    // middle = a2..a_{k-1}.
    const std::uint32_t prefix = code / kAlphabetSize;
    const std::uint32_t suffix = code % suffix_modulus;
    const std::uint32_t middle = prefix % mid_modulus;

    const double p = count / total_k;
    const auto it_prefix = count_k1.find(prefix);
    const auto it_suffix = count_k1.find(suffix);
    const auto it_middle = count_k2.find(middle);
    if (it_prefix == count_k1.end() || it_suffix == count_k1.end() ||
        it_middle == count_k2.end() || it_middle->second == 0) {
      continue;
    }
    const double p_prefix = it_prefix->second / total_k1;
    const double p_suffix = it_suffix->second / total_k1;
    const double p_middle = it_middle->second / total_k2;
    const double p0 = p_prefix * p_suffix / p_middle;
    if (p0 <= 0.0) continue;
    cv.indices.push_back(code);
    cv.values.push_back(static_cast<float>((p - p0) / p0));
  }

  // Sort by index for the merge-style dot product.
  std::vector<std::size_t> order(cv.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cv.indices[a] < cv.indices[b];
  });
  CompositionVector sorted;
  sorted.indices.reserve(cv.size());
  sorted.values.reserve(cv.size());
  for (const auto idx : order) {
    sorted.indices.push_back(cv.indices[idx]);
    sorted.values.push_back(cv.values[idx]);
  }
  return sorted;
}

double cv_correlation(const CompositionVector& a, const CompositionVector& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto v : a.values) na += static_cast<double>(v) * v;
  for (const auto v : b.values) nb += static_cast<double>(v) * v;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.indices[i] < b.indices[j]) {
      ++i;
    } else if (a.indices[i] > b.indices[j]) {
      ++j;
    } else {
      dot += static_cast<double>(a.values[i]) * b.values[j];
      ++i;
      ++j;
    }
  }
  const double denom = std::sqrt(na * nb);
  return denom > 0.0 ? dot / denom : 0.0;
}

double cv_distance(const CompositionVector& a, const CompositionVector& b) {
  return (1.0 - cv_correlation(a, b)) / 2.0;
}

void BioinformaticsApplication::parse(runtime::ItemId, const ByteBuffer& file,
                                      runtime::HostBuffer& out) const {
  const ByteBuffer fasta = lz_decompress(file);
  // Strip headers and newlines; keep the concatenated residues.
  out.clear();
  out.reserve(fasta.size());
  bool in_header = false;
  for (const std::uint8_t byte : fasta) {
    const char c = static_cast<char>(byte);
    if (c == '>') {
      in_header = true;
    } else if (c == '\n') {
      in_header = false;
    } else if (!in_header && c != '\r') {
      out.push_back(byte);
    }
  }
}

void BioinformaticsApplication::preprocess(runtime::ItemId,
                                           gpu::DeviceBuffer& data) const {
  // The buffer currently holds the residue string (parse output); replace
  // it with the packed CV.
  const std::string residues(reinterpret_cast<const char*>(data.data()),
                             data.size());
  // Residue data is padded up to the slot; trim trailing NULs.
  const auto end = residues.find_last_not_of('\0');
  const std::string trimmed =
      end == std::string::npos ? std::string() : residues.substr(0, end + 1);
  const CompositionVector cv =
      build_composition_vector(trimmed, dataset_->config().k);
  pack_cv(cv, data);
}

double BioinformaticsApplication::compare(
    runtime::ItemId, const gpu::DeviceBuffer& left_data, runtime::ItemId,
    const gpu::DeviceBuffer& right_data) const {
  return cv_distance(unpack_cv(left_data), unpack_cv(right_data));
}

Bytes BioinformaticsApplication::slot_size() const {
  const auto& cfg = dataset_->config();
  // The slot must hold (a) the parse output: the concatenated residues, and
  // (b) the packed CV that replaces it; CV entries ≤ distinct k-strings ≤
  // residue count.
  const std::uint64_t max_residues =
      static_cast<std::uint64_t>(cfg.proteins) * cfg.protein_len_max;
  const std::uint64_t cv_bytes =
      sizeof(std::uint32_t) +
      max_residues * (sizeof(std::uint32_t) + sizeof(float));
  return std::max<std::uint64_t>(max_residues, cv_bytes);
}

}  // namespace rocket::apps

#pragma once

// Calibrated workload models for the three applications (paper Table 1).
//
// The simulator executes kernels as virtual-time costs drawn from
// distributions fitted to Table 1's "avg ± std" stage times (measured on a
// TitanX Maxwell). Regular stages (tiny σ, e.g. the forensics comparison at
// 1.1 ± 0.01 ms) become near-constant; irregular stages (microscopy at
// 564.3 ± 348 ms) become heavy-tailed lognormals, matching the Fig 7
// histograms. Sampling is *per-pair deterministic*: the duration of
// comparing (i, j) is a pure function of (seed, i, j), so the total work is
// identical across cluster sizes and cache configurations — exactly what a
// real deterministic kernel would give — making speedup and efficiency
// comparisons sound.
//
// The same constants feed the performance model (model::StageProfile), so
// the Tmin baselines in the benches are consistent with the simulation.

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "model/performance_model.hpp"

namespace rocket::apps {

enum class AppId { kForensics, kBioinformatics, kMicroscopy };

struct AppModel {
  AppId id = AppId::kForensics;
  std::string name;

  /// Dataset scale as evaluated in the paper.
  std::uint32_t default_n = 0;
  Bytes total_raw_bytes = 0;        // "Size of raw data on disk"
  Bytes slot_size = 0;              // "Cache Slot Size" (pre-processed item)
  /// Average pre-processed item size in memory. The slot is sized for the
  /// *largest* item; variable-sized items (composition vectors,
  /// localisation sets) average well below it. Drives Table 1's
  /// "size of preprocessed data in memory" and "total data processed".
  Bytes avg_item_memory = 0;

  /// Stage time distributions (baseline TitanX Maxwell), seconds.
  DurationSampler parse;        // CPU
  DurationSampler preprocess;   // GPU (zero mean = no pre-processing)
  DurationSampler comparison;   // GPU
  DurationSampler postprocess;  // CPU

  /// Per-item file-size spread around the dataset mean (fraction, e.g. 0.2
  /// = ±20% deterministic variation by item id).
  double file_size_spread = 0.2;

  Bytes avg_file_size() const {
    return default_n ? total_raw_bytes / default_n : 0;
  }

  /// Deterministic per-item compressed file size.
  Bytes file_size_of(std::uint32_t item, std::uint64_t seed = 1) const;

  /// Deterministic per-load stage samples. Parse/preprocess vary per item;
  /// comparison varies per pair. All are pure functions of (seed, ids).
  double parse_seconds(std::uint32_t item, std::uint64_t seed) const;
  double preprocess_seconds(std::uint32_t item, std::uint64_t seed) const;
  double comparison_seconds(std::uint32_t left, std::uint32_t right,
                            std::uint64_t seed) const;
  double postprocess_seconds(std::uint32_t left, std::uint32_t right,
                             std::uint64_t seed) const;

  /// Mean-value profile for the analytic performance model.
  model::StageProfile profile() const;

  bool has_preprocess() const { return preprocess.mean() > 0.0; }
};

/// Common-source identification (PRNU), §5.1 / Table 1 column 1.
AppModel forensics_model();

/// Phylogeny tree construction (composition vectors), §5.2 / column 2.
/// `n` defaults to the DAS-5 dataset (2500); the Cartesius experiment
/// (§6.6) uses 6818.
AppModel bioinformatics_model(std::uint32_t n = 2500);

/// Localization-microscopy particle fusion, §5.3 / column 3.
AppModel microscopy_model();

AppModel model_by_name(const std::string& name);

/// Scale a model to a smaller n (for fast CI runs): item count shrinks,
/// per-item sizes and stage times stay identical so all intensive
/// quantities (R, efficiency, hit ratios) keep their meaning.
AppModel scaled(AppModel model, std::uint32_t n);

}  // namespace rocket::apps

#include "apps/app_model.hpp"

#include <stdexcept>

namespace rocket::apps {

namespace {

/// Deterministic per-entity sampler: a tiny RNG seeded from (seed, a, b).
Rng entity_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = seed;
  state = splitmix64(state) ^ (a * 0x9E3779B97F4A7C15ULL);
  state = splitmix64(state) ^ (b * 0xC2B2AE3D27D4EB4FULL);
  return Rng(splitmix64(state));
}

}  // namespace

Bytes AppModel::file_size_of(std::uint32_t item, std::uint64_t seed) const {
  const Bytes mean = avg_file_size();
  if (file_size_spread <= 0.0) return mean;
  Rng rng = entity_rng(seed ^ 0xF11E5, item, 0);
  const double factor = 1.0 + file_size_spread * (2.0 * rng.uniform() - 1.0);
  return static_cast<Bytes>(static_cast<double>(mean) * factor);
}

double AppModel::parse_seconds(std::uint32_t item, std::uint64_t seed) const {
  Rng rng = entity_rng(seed ^ 0x9A25E, item, 1);
  return parse.sample(rng);
}

double AppModel::preprocess_seconds(std::uint32_t item,
                                    std::uint64_t seed) const {
  Rng rng = entity_rng(seed ^ 0x94E9, item, 2);
  return preprocess.sample(rng);
}

double AppModel::comparison_seconds(std::uint32_t left, std::uint32_t right,
                                    std::uint64_t seed) const {
  Rng rng = entity_rng(seed ^ 0xC09A4E, left, right);
  return comparison.sample(rng);
}

double AppModel::postprocess_seconds(std::uint32_t left, std::uint32_t right,
                                     std::uint64_t seed) const {
  if (postprocess.mean() <= 0.0) return 0.0;
  Rng rng = entity_rng(seed ^ 0x90057, left, right);
  return postprocess.sample(rng);
}

model::StageProfile AppModel::profile() const {
  model::StageProfile p;
  p.t_parse = parse.mean();
  p.t_preprocess = preprocess.mean();
  p.t_comparison = comparison.mean();
  p.t_postprocess = postprocess.mean();
  p.file_size = avg_file_size();
  p.slot_size = slot_size;
  return p;
}

AppModel forensics_model() {
  AppModel m;
  m.id = AppId::kForensics;
  m.name = "forensics";
  m.default_n = 4980;
  m.total_raw_bytes = gigabytes(19.4);
  m.slot_size = megabytes(38.1);
  m.avg_item_memory = megabytes(38.1);  // PRNU patterns are uniform-sized
  m.parse = DurationSampler(milliseconds(130.8), milliseconds(14.11));
  m.preprocess = DurationSampler(milliseconds(20.5), milliseconds(0.02));
  m.comparison = DurationSampler(milliseconds(1.1), milliseconds(0.01));
  m.postprocess = DurationSampler(0.0, 0.0);
  m.file_size_spread = 0.15;  // Dresden images are near-uniform JPEG sizes
  return m;
}

AppModel bioinformatics_model(std::uint32_t n) {
  AppModel m;
  m.id = AppId::kBioinformatics;
  m.name = "bioinformatics";
  m.default_n = n;
  // 1.8 GB for the 2500-proteome DAS-5 dataset; the Cartesius set keeps the
  // same per-file mean (§6.6 uses all 6818 reference proteomes).
  m.total_raw_bytes = static_cast<Bytes>(
      static_cast<double>(gigabytes(1.8)) * n / 2500.0);
  m.slot_size = megabytes(145.8);
  m.avg_item_memory = megabytes(44.0);  // 110 GB / 2500 CVs (Table 1)
  m.parse = DurationSampler(milliseconds(36.9), milliseconds(14.79));
  m.preprocess = DurationSampler(milliseconds(27.0), milliseconds(4.90));
  m.comparison = DurationSampler(milliseconds(2.1), milliseconds(0.79));
  m.postprocess = DurationSampler(0.0, 0.0);
  m.file_size_spread = 0.6;  // proteome sizes vary widely
  return m;
}

AppModel microscopy_model() {
  AppModel m;
  m.id = AppId::kMicroscopy;
  m.name = "microscopy";
  m.default_n = 256;
  m.total_raw_bytes = megabytes(150.0);
  m.slot_size = kilobytes(6.0);
  m.avg_item_memory = kilobytes(2.74);  // 0.7 MB / 256 particles (Table 1)
  m.parse = DurationSampler(milliseconds(27.4), milliseconds(1.56));
  m.preprocess = DurationSampler(0.0, 0.0);  // N/A in Table 1
  m.comparison = DurationSampler(milliseconds(564.3), milliseconds(348.0));
  m.postprocess = DurationSampler(0.0, 0.0);
  m.file_size_spread = 0.3;  // 1000–2000 localisations per particle
  return m;
}

AppModel model_by_name(const std::string& name) {
  if (name == "forensics") return forensics_model();
  if (name == "bioinformatics") return bioinformatics_model();
  if (name == "microscopy") return microscopy_model();
  throw std::invalid_argument("unknown application model: " + name);
}

AppModel scaled(AppModel model, std::uint32_t n) {
  if (n == 0 || n == model.default_n) return model;
  const Bytes per_file = model.avg_file_size();
  model.total_raw_bytes = per_file * n;
  model.default_n = n;
  return model;
}

}  // namespace rocket::apps

#include "apps/image.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"

namespace rocket::apps {

namespace {

constexpr std::uint32_t kMagic = 0x524B4931;  // "RKI1"
constexpr int kBlock = 8;

/// 8-point DCT-II basis, precomputed.
struct DctBasis {
  std::array<std::array<double, kBlock>, kBlock> c{};
  DctBasis() {
    for (int k = 0; k < kBlock; ++k) {
      const double scale = k == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock);
      for (int x = 0; x < kBlock; ++x) {
        c[k][x] = scale * std::cos((2.0 * x + 1.0) * k * 3.14159265358979323846 /
                                   (2.0 * kBlock));
      }
    }
  }
};

const DctBasis& basis() {
  static const DctBasis b;
  return b;
}

void dct2d(const double in[kBlock][kBlock], double out[kBlock][kBlock]) {
  const auto& c = basis().c;
  double tmp[kBlock][kBlock];
  for (int u = 0; u < kBlock; ++u) {  // rows
    for (int x = 0; x < kBlock; ++x) {
      double acc = 0;
      for (int y = 0; y < kBlock; ++y) acc += in[x][y] * c[u][y];
      tmp[x][u] = acc;
    }
  }
  for (int v = 0; v < kBlock; ++v) {  // columns
    for (int u = 0; u < kBlock; ++u) {
      double acc = 0;
      for (int x = 0; x < kBlock; ++x) acc += tmp[x][u] * c[v][x];
      out[v][u] = acc;
    }
  }
}

void idct2d(const double in[kBlock][kBlock], double out[kBlock][kBlock]) {
  const auto& c = basis().c;
  double tmp[kBlock][kBlock];
  for (int x = 0; x < kBlock; ++x) {
    for (int u = 0; u < kBlock; ++u) {
      double acc = 0;
      for (int v = 0; v < kBlock; ++v) acc += in[v][u] * c[v][x];
      tmp[x][u] = acc;
    }
  }
  for (int y = 0; y < kBlock; ++y) {
    for (int x = 0; x < kBlock; ++x) {
      double acc = 0;
      for (int u = 0; u < kBlock; ++u) acc += tmp[x][u] * c[u][y];
      out[x][y] = acc;
    }
  }
}

/// JPEG-flavoured frequency-weighted quantisation step for coefficient
/// (u, v) at the given quality.
double quant_step(int u, int v, double quality) {
  const double base = 1.0 + 1.2 * (u + v);
  return base / std::max(0.05, quality);
}

const std::array<std::pair<int, int>, 64>& zigzag() {
  static const auto order = [] {
    std::array<std::pair<int, int>, 64> z{};
    int idx = 0;
    for (int s = 0; s < 2 * kBlock - 1; ++s) {
      if (s % 2 == 0) {
        for (int u = std::min(s, kBlock - 1); u >= 0 && s - u < kBlock; --u) {
          z[idx++] = {u, s - u};
        }
      } else {
        for (int v = std::min(s, kBlock - 1); v >= 0 && s - v < kBlock; --v) {
          z[idx++] = {s - v, v};
        }
      }
    }
    return z;
  }();
  return order;
}

void put_u32(ByteBuffer& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t*& p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p++) << (8 * i);
  return v;
}

void put_varint_signed(ByteBuffer& out, std::int64_t v) {
  // ZigZag encode.
  std::uint64_t u = (static_cast<std::uint64_t>(v) << 1) ^
                    static_cast<std::uint64_t>(v >> 63);
  while (u >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(u) | 0x80);
    u >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(u));
}

std::int64_t get_varint_signed(const std::uint8_t*& p, const std::uint8_t* end) {
  std::uint64_t u = 0;
  int shift = 0;
  while (p < end) {
    const std::uint8_t byte = *p++;
    u |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) {
      return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
    }
    shift += 7;
  }
  throw std::runtime_error("decode_image: truncated varint");
}

}  // namespace

Image make_image(std::uint32_t width, std::uint32_t height, float fill) {
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.assign(static_cast<std::size_t>(width) * height, fill);
  return img;
}

ByteBuffer encode_image(const Image& image, double quality) {
  ROCKET_CHECK(image.width % kBlock == 0 && image.height % kBlock == 0,
               "image dimensions must be multiples of 8");
  ByteBuffer body;
  put_u32(body, kMagic);
  put_u32(body, image.width);
  put_u32(body, image.height);
  put_u32(body, static_cast<std::uint32_t>(quality * 1000));

  double block[kBlock][kBlock];
  double coeffs[kBlock][kBlock];
  for (std::uint32_t by = 0; by < image.height; by += kBlock) {
    for (std::uint32_t bx = 0; bx < image.width; bx += kBlock) {
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          block[y][x] = image.at(bx + x, by + y) - 128.0;
        }
      }
      dct2d(block, coeffs);
      for (const auto& [u, v] : zigzag()) {
        const double q = quant_step(u, v, quality);
        put_varint_signed(body, std::llround(coeffs[u][v] / q));
      }
    }
  }
  return lz_compress(body);
}

Image decode_image(const ByteBuffer& bytes) {
  const ByteBuffer body = lz_decompress(bytes);
  if (body.size() < 16) throw std::runtime_error("decode_image: short input");
  const std::uint8_t* p = body.data();
  const std::uint8_t* end = body.data() + body.size();
  if (get_u32(p) != kMagic) throw std::runtime_error("decode_image: bad magic");
  const std::uint32_t width = get_u32(p);
  const std::uint32_t height = get_u32(p);
  const double quality = get_u32(p) / 1000.0;
  if (width == 0 || height == 0 || width % kBlock || height % kBlock ||
      width > 1 << 16 || height > 1 << 16) {
    throw std::runtime_error("decode_image: bad dimensions");
  }

  Image img = make_image(width, height);
  double coeffs[kBlock][kBlock];
  double block[kBlock][kBlock];
  for (std::uint32_t by = 0; by < height; by += kBlock) {
    for (std::uint32_t bx = 0; bx < width; bx += kBlock) {
      for (const auto& [u, v] : zigzag()) {
        const double q = quant_step(u, v, quality);
        coeffs[u][v] = static_cast<double>(get_varint_signed(p, end)) * q;
      }
      idct2d(coeffs, block);
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          img.at(bx + x, by + y) = static_cast<float>(block[y][x] + 128.0);
        }
      }
    }
  }
  return img;
}

Image box_blur(const Image& image, int radius) {
  // Separable two-pass blur with edge clamping; O(pixels · radius).
  const int w = static_cast<int>(image.width);
  const int h = static_cast<int>(image.height);
  Image horizontal = make_image(image.width, image.height);
  const float inv = 1.0f / static_cast<float>(2 * radius + 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0;
      for (int dx = -radius; dx <= radius; ++dx) {
        const int cx = std::clamp(x + dx, 0, w - 1);
        acc += image.at(static_cast<std::uint32_t>(cx),
                        static_cast<std::uint32_t>(y));
      }
      horizontal.at(static_cast<std::uint32_t>(x),
                    static_cast<std::uint32_t>(y)) = acc * inv;
    }
  }
  Image out = make_image(image.width, image.height);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        const int cy = std::clamp(y + dy, 0, h - 1);
        acc += horizontal.at(static_cast<std::uint32_t>(x),
                             static_cast<std::uint32_t>(cy));
      }
      out.at(static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y)) =
          acc * inv;
    }
  }
  return out;
}

std::vector<float> noise_residual(const Image& image, int blur_radius) {
  const Image denoised = box_blur(image, blur_radius);
  std::vector<float> residual(image.size());
  double mean = 0.0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    residual[i] = image.pixels[i] - denoised.pixels[i];
    mean += residual[i];
  }
  mean /= static_cast<double>(residual.size());
  double norm2 = 0.0;
  for (auto& r : residual) {
    r -= static_cast<float>(mean);
    norm2 += static_cast<double>(r) * r;
  }
  const auto norm = static_cast<float>(std::sqrt(std::max(norm2, 1e-20)));
  for (auto& r : residual) r /= norm;
  return residual;
}

double normalized_cross_correlation(const std::vector<float>& a,
                                    const std::vector<float>& b) {
  ROCKET_CHECK(a.size() == b.size(), "NCC requires equal-sized inputs");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(na * nb);
  return denom > 0.0 ? dot / denom : 0.0;
}

}  // namespace rocket::apps

#pragma once

// Grayscale float images and Rocket's own lossy block-transform codec.
//
// The forensics application ingests JPEG photographs; this offline
// reproduction cannot ship libjpeg, so Rocket carries a self-contained
// codec with the same computational anatomy: 8×8 block DCT-II, uniform
// quantisation with a zigzag scan, and entropy coding (varint + LZ). The
// parse stage therefore performs real, image-sized transform work, and —
// crucially for PRNU — encoding is *lossy in the same way JPEG is*: block
// transforms preserve the multiplicative sensor-noise signal that
// common-source identification relies on.

#include <cstdint>
#include <vector>

#include "common/compress.hpp"
#include "common/rng.hpp"

namespace rocket::apps {

struct Image {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<float> pixels;  // row-major, nominal range [0, 255]

  float& at(std::uint32_t x, std::uint32_t y) { return pixels[y * width + x]; }
  float at(std::uint32_t x, std::uint32_t y) const {
    return pixels[y * width + x];
  }
  std::size_t size() const { return pixels.size(); }
};

Image make_image(std::uint32_t width, std::uint32_t height, float fill = 0.0f);

/// Encode with the given quality in (0, 1]; higher = larger & more exact.
ByteBuffer encode_image(const Image& image, double quality = 0.9);

/// Decode; throws std::runtime_error on malformed input.
Image decode_image(const ByteBuffer& bytes);

/// Separable box blur with the given radius (edge-clamped). The forensics
/// pipeline uses it as the denoising filter for PRNU extraction.
Image box_blur(const Image& image, int radius);

/// Zero-mean, unit-norm version of (image - blur(image)): the PRNU-style
/// noise residual of one photo.
std::vector<float> noise_residual(const Image& image, int blur_radius = 2);

/// Normalised cross-correlation of two equal-length vectors.
double normalized_cross_correlation(const std::vector<float>& a,
                                    const std::vector<float>& b);

}  // namespace rocket::apps

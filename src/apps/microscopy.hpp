#pragma once

// Localization-microscopy particle fusion (paper §5.3).
//
// Particles are point clouds of fluorophore localisations. All-to-all
// registration scores every particle pair: an optimiser searches over
// rotation + translation maximising the overlap of the two localisation
// sets modelled as isotropic Gaussian mixtures (the L2 GMM distance of
// Jian & Vemuri, plus a Bhattacharyya-style variant). The optimiser's
// iteration count is data-dependent, making comparisons highly irregular —
// the defining characteristic of this workload (paper Fig 7, right).
//
// The dataset is synthesised the way Heydarian et al.'s simulator does:
// a ground-truth structure template (ring of binding sites), per-particle
// random under-labelling, localisation noise, and a random rigid motion;
// serialised as JSON ({"points": [[x, y], ...]}).

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/application.hpp"
#include "storage/object_store.hpp"

namespace rocket::apps {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

struct MicroscopyConfig {
  std::uint32_t particles = 16;
  std::uint32_t binding_sites = 24;       // template ring sites
  double ring_radius = 50.0;              // nm
  double labelling_efficiency = 0.7;      // fraction of sites observed
  std::uint32_t localizations_per_site_min = 20;
  std::uint32_t localizations_per_site_max = 45;
  double localization_noise = 4.0;        // nm (sigma)
  std::uint64_t seed = 1;
};

class MicroscopyDataset {
 public:
  MicroscopyDataset(MicroscopyConfig config, storage::MemoryStore& store);

  std::uint32_t item_count() const { return config_.particles; }
  std::string file_name(runtime::ItemId item) const;
  const MicroscopyConfig& config() const { return config_; }

 private:
  MicroscopyConfig config_;
};

/// Registration scores for one pair of particles.
struct RegistrationResult {
  double score = 0.0;        // best GMM overlap (higher = better aligned)
  double rotation = 0.0;     // radians
  int iterations = 0;        // optimiser work (irregularity witness)
};

/// GMM overlap of two point sets under a rigid transform of `a`:
/// sum_ij exp(-||R a_i + t - b_j||^2 / (4 sigma^2)), normalised.
double gmm_overlap(const std::vector<Point2>& a, const std::vector<Point2>& b,
                   double rotation, Point2 translation, double sigma);

/// Full registration: multi-start rotation search with local refinement.
RegistrationResult register_particles(const std::vector<Point2>& a,
                                      const std::vector<Point2>& b,
                                      double sigma);

class MicroscopyApplication final : public runtime::Application {
 public:
  explicit MicroscopyApplication(const MicroscopyDataset& dataset)
      : dataset_(&dataset) {}

  std::string name() const override { return "microscopy"; }
  std::uint32_t item_count() const override { return dataset_->item_count(); }
  std::string file_name(runtime::ItemId item) const override {
    return dataset_->file_name(item);
  }

  /// CPU: JSON → packed localisation array. No GPU pre-processing (§5.3).
  void parse(runtime::ItemId item, const ByteBuffer& file,
             runtime::HostBuffer& out) const override;

  /// GPU: all-to-all registration of the two localisation sets.
  double compare(runtime::ItemId left, const gpu::DeviceBuffer& left_data,
                 runtime::ItemId right,
                 const gpu::DeviceBuffer& right_data) const override;

  Bytes slot_size() const override;

 private:
  const MicroscopyDataset* dataset_;
};

}  // namespace rocket::apps

#include "apps/microscopy.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "apps/json.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace rocket::apps {

namespace {

constexpr double kTwoPi = 6.283185307179586;

std::vector<Point2> unpack(const gpu::DeviceBuffer& data) {
  std::uint32_t count = 0;
  ROCKET_CHECK(data.size() >= sizeof(count), "corrupt particle buffer");
  std::memcpy(&count, data.data(), sizeof(count));
  std::vector<Point2> points(count);
  ROCKET_CHECK(data.size() >= sizeof(count) + count * sizeof(Point2),
               "short particle buffer");
  std::memcpy(points.data(), data.data() + sizeof(count),
              count * sizeof(Point2));
  return points;
}

Point2 centroid(const std::vector<Point2>& pts) {
  Point2 c;
  for (const auto& p : pts) {
    c.x += p.x;
    c.y += p.y;
  }
  const double inv = pts.empty() ? 0.0 : 1.0 / static_cast<double>(pts.size());
  return Point2{c.x * inv, c.y * inv};
}

}  // namespace

MicroscopyDataset::MicroscopyDataset(MicroscopyConfig config,
                                     storage::MemoryStore& store)
    : config_(config) {
  // Ground-truth template: binding sites on a ring.
  std::vector<Point2> sites;
  for (std::uint32_t s = 0; s < config_.binding_sites; ++s) {
    const double angle = kTwoPi * s / config_.binding_sites;
    sites.push_back(Point2{config_.ring_radius * std::cos(angle),
                           config_.ring_radius * std::sin(angle)});
  }

  for (std::uint32_t particle = 0; particle < config_.particles; ++particle) {
    Rng rng(mix64(config_.seed * 40487 + particle));
    const double rotation = rng.uniform(0.0, kTwoPi);
    const Point2 shift{rng.normal(0.0, 10.0), rng.normal(0.0, 10.0)};
    const double cos_r = std::cos(rotation);
    const double sin_r = std::sin(rotation);

    JsonArray points;
    for (const auto& site : sites) {
      if (rng.uniform() > config_.labelling_efficiency) continue;  // unlabelled
      const auto bursts = static_cast<std::uint32_t>(rng.uniform_int(
          config_.localizations_per_site_min,
          config_.localizations_per_site_max));
      for (std::uint32_t b = 0; b < bursts; ++b) {
        const double x = site.x + rng.normal(0.0, config_.localization_noise);
        const double y = site.y + rng.normal(0.0, config_.localization_noise);
        JsonArray coords;
        coords.emplace_back(cos_r * x - sin_r * y + shift.x);
        coords.emplace_back(sin_r * x + cos_r * y + shift.y);
        points.emplace_back(std::move(coords));
      }
    }
    JsonObject doc;
    doc["particle"] = JsonValue(static_cast<double>(particle));
    doc["sigma"] = JsonValue(config_.localization_noise);
    doc["points"] = JsonValue(std::move(points));
    const std::string text = JsonValue(std::move(doc)).dump();
    store.put(file_name(particle), ByteBuffer(text.begin(), text.end()));
  }
}

std::string MicroscopyDataset::file_name(runtime::ItemId item) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "particle_%04u.json", item);
  return buf;
}

double gmm_overlap(const std::vector<Point2>& a, const std::vector<Point2>& b,
                   double rotation, Point2 translation, double sigma) {
  const double cos_r = std::cos(rotation);
  const double sin_r = std::sin(rotation);
  const double inv = 1.0 / (4.0 * sigma * sigma);
  double total = 0.0;
  for (const auto& pa : a) {
    const double ax = cos_r * pa.x - sin_r * pa.y + translation.x;
    const double ay = sin_r * pa.x + cos_r * pa.y + translation.y;
    for (const auto& pb : b) {
      const double dx = ax - pb.x;
      const double dy = ay - pb.y;
      total += std::exp(-(dx * dx + dy * dy) * inv);
    }
  }
  // Normalise by the smaller cloud: a perfect alignment of equal clouds
  // scores ~1 regardless of localisation counts.
  return total / static_cast<double>(std::min(a.size(), b.size()));
}

RegistrationResult register_particles(const std::vector<Point2>& a,
                                      const std::vector<Point2>& b,
                                      double sigma) {
  RegistrationResult best;
  if (a.empty() || b.empty()) return best;

  // Centre both clouds; the translation search then only refines the
  // residual offset.
  const Point2 ca = centroid(a);
  const Point2 cb = centroid(b);
  std::vector<Point2> a0(a), b0(b);
  for (auto& p : a0) {
    p.x -= ca.x;
    p.y -= ca.y;
  }
  for (auto& p : b0) {
    p.x -= cb.x;
    p.y -= cb.y;
  }

  int iterations = 0;
  // Multi-start over rotation (the GMM score is multi-modal), then local
  // coordinate refinement with a shrinking step. Convergence is
  // data-dependent — this is what makes comparison times irregular.
  for (int start = 0; start < 12; ++start) {
    double rot = kTwoPi * start / 12.0;
    Point2 shift{0.0, 0.0};
    double step_rot = kTwoPi / 24.0;
    double step_shift = 4.0 * sigma;
    double score = gmm_overlap(a0, b0, rot, shift, sigma);
    ++iterations;
    while (step_rot > 1e-3 || step_shift > 0.05 * sigma) {
      bool improved = false;
      const double rot_candidates[2] = {rot + step_rot, rot - step_rot};
      for (const double candidate : rot_candidates) {
        const double s = gmm_overlap(a0, b0, candidate, shift, sigma);
        ++iterations;
        if (s > score) {
          score = s;
          rot = candidate;
          improved = true;
        }
      }
      const Point2 shift_candidates[4] = {
          {shift.x + step_shift, shift.y}, {shift.x - step_shift, shift.y},
          {shift.x, shift.y + step_shift}, {shift.x, shift.y - step_shift}};
      for (const auto& candidate : shift_candidates) {
        const double s = gmm_overlap(a0, b0, rot, candidate, sigma);
        ++iterations;
        if (s > score) {
          score = s;
          shift = candidate;
          improved = true;
        }
      }
      if (!improved) {
        step_rot *= 0.5;
        step_shift *= 0.5;
      }
    }
    if (score > best.score) {
      best.score = score;
      best.rotation = rot;
    }
  }
  best.iterations = iterations;
  return best;
}

void MicroscopyApplication::parse(runtime::ItemId, const ByteBuffer& file,
                                  runtime::HostBuffer& out) const {
  const JsonValue doc = json_parse(file);
  const JsonArray& array = doc.at("points").as_array();
  std::vector<Point2> points;
  points.reserve(array.size());
  for (const auto& entry : array) {
    const JsonArray& coords = entry.as_array();
    if (coords.size() != 2) {
      throw std::runtime_error("particle: malformed localisation");
    }
    points.push_back(Point2{coords[0].as_number(), coords[1].as_number()});
  }
  const auto count = static_cast<std::uint32_t>(points.size());
  out.resize(sizeof(count) + points.size() * sizeof(Point2));
  std::memcpy(out.data(), &count, sizeof(count));
  std::memcpy(out.data() + sizeof(count), points.data(),
              points.size() * sizeof(Point2));
}

double MicroscopyApplication::compare(
    runtime::ItemId, const gpu::DeviceBuffer& left_data, runtime::ItemId,
    const gpu::DeviceBuffer& right_data) const {
  const std::vector<Point2> left = unpack(left_data);
  const std::vector<Point2> right = unpack(right_data);
  return register_particles(left, right,
                            dataset_->config().localization_noise)
      .score;
}

Bytes MicroscopyApplication::slot_size() const {
  const auto& cfg = dataset_->config();
  const std::uint64_t max_locs =
      static_cast<std::uint64_t>(cfg.binding_sites) *
      cfg.localizations_per_site_max;
  return sizeof(std::uint32_t) + max_locs * sizeof(Point2);
}

}  // namespace rocket::apps

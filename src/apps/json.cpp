#include "apps/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rocket::apps {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': return parse_literal("true", JsonValue(true));
      case 'f': return parse_literal("false", JsonValue(false));
      case 'n': return parse_literal("null", JsonValue(nullptr));
      default: return parse_number();
    }
  }

  JsonValue parse_literal(const char* word, JsonValue value) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) fail("bad literal");
    pos_ += len;
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_ ||
        pos_ == start) {
      fail("bad number");
    }
    return JsonValue(value);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(items));
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_value(const JsonValue& value, std::string& out);

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

void dump_value(const JsonValue& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    char buf[32];
    const double d = value.as_number();
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%.0f", d);
    } else {
      std::snprintf(buf, sizeof(buf), "%.9g", d);
    }
    out += buf;
  } else if (value.is_string()) {
    dump_string(value.as_string(), out);
  } else if (value.is_array()) {
    out += '[';
    bool first = true;
    for (const auto& item : value.as_array()) {
      if (!first) out += ',';
      first = false;
      dump_value(item, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, member] : value.as_object()) {
      if (!first) out += ',';
      first = false;
      dump_string(key, out);
      out += ':';
      dump_value(member, out);
    }
    out += '}';
  }
}

}  // namespace

double JsonValue::as_number() const {
  if (!is_number()) throw std::runtime_error("json: not a number");
  return std::get<double>(value_);
}

bool JsonValue::as_bool() const {
  if (!is_bool()) throw std::runtime_error("json: not a boolean");
  return std::get<bool>(value_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw std::runtime_error("json: not a string");
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<JsonObject>(value_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("json: missing key: " + key);
  return it->second;
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

JsonValue json_parse(const std::vector<std::uint8_t>& bytes) {
  return json_parse(std::string(bytes.begin(), bytes.end()));
}

}  // namespace rocket::apps

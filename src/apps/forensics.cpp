#include "apps/forensics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/log.hpp"

namespace rocket::apps {

namespace {

/// Smooth random "scene": a sum of low-frequency sinusoidal gradients.
Image random_scene(std::uint32_t width, std::uint32_t height, Rng& rng) {
  Image scene = make_image(width, height, 128.0f);
  for (int wave = 0; wave < 4; ++wave) {
    const double fx = rng.uniform(0.2, 2.0) * 6.2831853 / width;
    const double fy = rng.uniform(0.2, 2.0) * 6.2831853 / height;
    const double phase = rng.uniform(0.0, 6.2831853);
    const double amp = rng.uniform(10.0, 35.0);
    for (std::uint32_t y = 0; y < height; ++y) {
      for (std::uint32_t x = 0; x < width; ++x) {
        scene.at(x, y) += static_cast<float>(
            amp * std::sin(fx * x + fy * y + phase));
      }
    }
  }
  return scene;
}

/// Per-camera PRNU fingerprint: i.i.d. gaussian sensitivity deviations.
std::vector<float> camera_fingerprint(std::uint32_t width,
                                      std::uint32_t height,
                                      std::uint64_t camera_seed) {
  Rng rng(camera_seed);
  std::vector<float> k(static_cast<std::size_t>(width) * height);
  for (auto& v : k) v = static_cast<float>(rng.normal());
  return k;
}

/// Header prepended to the parsed pixel plane so the device-side stages
/// know the geometry without re-parsing the container.
struct ParsedHeader {
  std::uint32_t width;
  std::uint32_t height;
};

}  // namespace

ForensicsDataset::ForensicsDataset(ForensicsConfig config,
                                   storage::MemoryStore& store)
    : config_(config) {
  ROCKET_CHECK(config_.width % 8 == 0 && config_.height % 8 == 0,
               "image dimensions must be multiples of 8");
  for (std::uint32_t cam = 0; cam < config_.cameras; ++cam) {
    const auto fingerprint = camera_fingerprint(
        config_.width, config_.height, mix64(config_.seed * 7919 + cam));
    for (std::uint32_t shot = 0; shot < config_.images_per_camera; ++shot) {
      const runtime::ItemId item = cam * config_.images_per_camera + shot;
      Rng rng(mix64(config_.seed ^ (item * 0x9E3779B97F4A7C15ULL + 13)));
      Image photo = random_scene(config_.width, config_.height, rng);
      for (std::size_t i = 0; i < photo.size(); ++i) {
        // Multiplicative PRNU + additive shot noise, clamped to 8-bit range.
        const double value =
            photo.pixels[i] *
                (1.0 + config_.fingerprint_strength * fingerprint[i]) +
            config_.shot_noise * rng.normal();
        photo.pixels[i] = static_cast<float>(std::clamp(value, 0.0, 255.0));
      }
      store.put(file_name(item), encode_image(photo, config_.codec_quality));
    }
  }
}

std::string ForensicsDataset::file_name(runtime::ItemId item) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "img_%05u.rki", item);
  return buf;
}

void ForensicsApplication::parse(runtime::ItemId, const ByteBuffer& file,
                                 runtime::HostBuffer& out) const {
  const Image image = decode_image(file);
  const ParsedHeader header{image.width, image.height};
  out.resize(sizeof(header) + image.size() * sizeof(float));
  std::memcpy(out.data(), &header, sizeof(header));
  std::memcpy(out.data() + sizeof(header), image.pixels.data(),
              image.size() * sizeof(float));
}

void ForensicsApplication::preprocess(runtime::ItemId,
                                      gpu::DeviceBuffer& data) const {
  ParsedHeader header{};
  ROCKET_CHECK(data.size() >= sizeof(header), "corrupt parsed image");
  std::memcpy(&header, data.data(), sizeof(header));
  Image image = make_image(header.width, header.height);
  std::memcpy(image.pixels.data(), data.data() + sizeof(header),
              image.size() * sizeof(float));
  const std::vector<float> residual = noise_residual(image);
  std::memcpy(data.data() + sizeof(header), residual.data(),
              residual.size() * sizeof(float));
}

double ForensicsApplication::compare(runtime::ItemId,
                                     const gpu::DeviceBuffer& left_data,
                                     runtime::ItemId,
                                     const gpu::DeviceBuffer& right_data) const {
  ParsedHeader header{};
  std::memcpy(&header, left_data.data(), sizeof(header));
  const std::size_t count =
      static_cast<std::size_t>(header.width) * header.height;
  std::vector<float> left(count), right(count);
  std::memcpy(left.data(), left_data.data() + sizeof(header),
              count * sizeof(float));
  std::memcpy(right.data(), right_data.data() + sizeof(header),
              count * sizeof(float));
  return normalized_cross_correlation(left, right);
}

Bytes ForensicsApplication::slot_size() const {
  const auto& cfg = dataset_->config();
  return sizeof(ParsedHeader) +
         static_cast<Bytes>(cfg.width) * cfg.height * sizeof(float);
}

}  // namespace rocket::apps

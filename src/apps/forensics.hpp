#pragma once

// Common-source identification (digital forensics, paper §5.1).
//
// Photos taken with the same camera share a Photo Response Non-Uniformity
// (PRNU) pattern: per-pixel sensitivity deviations that multiply into every
// exposure. The pipeline: decode the image (CPU parse), extract the noise
// residual W = I - denoise(I) and normalise it (GPU pre-process), then
// score pairs by normalised cross-correlation (GPU compare). Pairs from
// the same camera correlate far above pairs from different cameras.
//
// The Dresden image database is proprietary-by-size for this offline
// reproduction, so ForensicsDataset synthesises it: each camera gets a
// random PRNU fingerprint; each photo is a random smooth scene modulated
// by its camera's fingerprint plus shot noise, stored in Rocket's own
// lossy image codec (apps/image.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "apps/image.hpp"
#include "runtime/application.hpp"
#include "storage/object_store.hpp"

namespace rocket::apps {

struct ForensicsConfig {
  std::uint32_t cameras = 4;
  std::uint32_t images_per_camera = 8;
  std::uint32_t width = 128;   // multiples of 8
  std::uint32_t height = 96;
  double fingerprint_strength = 0.03;  // PRNU amplitude (fraction of signal)
  double shot_noise = 2.0;             // additive sensor noise, grey levels
  double codec_quality = 0.9;
  std::uint64_t seed = 1;
};

/// Generates the synthetic photo collection into `store` and serves as the
/// ground-truth oracle for tests/examples.
class ForensicsDataset {
 public:
  ForensicsDataset(ForensicsConfig config, storage::MemoryStore& store);

  std::uint32_t item_count() const {
    return config_.cameras * config_.images_per_camera;
  }
  std::uint32_t camera_of(runtime::ItemId item) const {
    return item / config_.images_per_camera;
  }
  std::string file_name(runtime::ItemId item) const;
  const ForensicsConfig& config() const { return config_; }

 private:
  ForensicsConfig config_;
};

/// The Rocket application (paper Fig 3 shape).
class ForensicsApplication final : public runtime::Application {
 public:
  explicit ForensicsApplication(const ForensicsDataset& dataset)
      : dataset_(&dataset) {}

  std::string name() const override { return "forensics"; }
  std::uint32_t item_count() const override { return dataset_->item_count(); }
  std::string file_name(runtime::ItemId item) const override {
    return dataset_->file_name(item);
  }

  /// CPU: decode the codec bytes into a float image (raw pixel plane).
  void parse(runtime::ItemId item, const ByteBuffer& file,
             runtime::HostBuffer& out) const override;

  /// GPU: extract the normalised PRNU noise residual in place.
  void preprocess(runtime::ItemId item, gpu::DeviceBuffer& data) const override;

  /// GPU: normalised cross-correlation of two residuals.
  double compare(runtime::ItemId left, const gpu::DeviceBuffer& left_data,
                 runtime::ItemId right,
                 const gpu::DeviceBuffer& right_data) const override;

  Bytes slot_size() const override;

 private:
  const ForensicsDataset* dataset_;
};

}  // namespace rocket::apps

#pragma once

// Phylogeny tree construction (bioinformatics, paper §5.2).
//
// The alignment-free method of Qi, Wang & Hao: each species is summarised
// by a *composition vector* (CV) — for every length-k amino-acid string,
// the relative deviation of its observed frequency from the frequency a
// (k-2)-order Markov model predicts from the (k-1)-string statistics:
//     a(s) = (p(s) - p0(s)) / p0(s),
//     p0(a1..ak) = p(a1..a_{k-1}) · p(a2..ak) / p(a2..a_{k-1}).
// The distance between two species is D = (1 - C) / 2 with C the cosine
// correlation of their (sparse) CVs. Building a CV scans the entire
// proteome (expensive, on the GPU in the original); comparing two CVs is a
// sparse dot product (cheap, irregular).
//
// The Uniprot reference proteomes are substituted by a synthetic phylogeny:
// an ancestral proteome is mutated down a binary clade tree, so sequence
// divergence — and therefore CV distance — follows the tree. Files are
// FASTA compressed with Rocket's LZ codec ("compressed FASTA", §5.2).

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/application.hpp"
#include "storage/object_store.hpp"

namespace rocket::apps {

struct BioinformaticsConfig {
  std::uint32_t species = 16;        // number of proteomes (power of two
                                     // gives a balanced clade tree)
  std::uint32_t proteins = 60;       // proteins per proteome
  std::uint32_t protein_len_min = 120;
  std::uint32_t protein_len_max = 360;
  double mutation_rate = 0.02;       // substitutions per site per branch
  std::uint32_t k = 3;               // k-string length
  std::uint64_t seed = 1;
};

class BioinformaticsDataset {
 public:
  BioinformaticsDataset(BioinformaticsConfig config,
                        storage::MemoryStore& store);

  std::uint32_t item_count() const { return config_.species; }
  std::string file_name(runtime::ItemId item) const;
  const BioinformaticsConfig& config() const { return config_; }

  /// Depth of the deepest common clade of two species in the generation
  /// tree (higher = more closely related); the oracle for tests.
  std::uint32_t clade_depth(runtime::ItemId a, runtime::ItemId b) const;

 private:
  BioinformaticsConfig config_;
};

/// Sparse composition vector: parallel arrays sorted by index.
struct CompositionVector {
  std::vector<std::uint32_t> indices;
  std::vector<float> values;
  std::size_t size() const { return indices.size(); }
};

/// Build the k-string CV of a residue sequence (Qi et al. formulas).
CompositionVector build_composition_vector(const std::string& residues,
                                           std::uint32_t k);

/// Cosine correlation C of two sparse CVs; distance is (1 - C) / 2.
double cv_correlation(const CompositionVector& a, const CompositionVector& b);
double cv_distance(const CompositionVector& a, const CompositionVector& b);

class BioinformaticsApplication final : public runtime::Application {
 public:
  explicit BioinformaticsApplication(const BioinformaticsDataset& dataset)
      : dataset_(&dataset) {}

  std::string name() const override { return "bioinformatics"; }
  std::uint32_t item_count() const override { return dataset_->item_count(); }
  std::string file_name(runtime::ItemId item) const override {
    return dataset_->file_name(item);
  }

  /// CPU: decompress + FASTA-parse into the concatenated residue string.
  void parse(runtime::ItemId item, const ByteBuffer& file,
             runtime::HostBuffer& out) const override;

  /// GPU: scan the residues and build the sparse CV in place.
  void preprocess(runtime::ItemId item, gpu::DeviceBuffer& data) const override;

  /// GPU: CV distance D = (1 - C) / 2 (lower = more related).
  double compare(runtime::ItemId left, const gpu::DeviceBuffer& left_data,
                 runtime::ItemId right,
                 const gpu::DeviceBuffer& right_data) const override;

  Bytes slot_size() const override;

 private:
  const BioinformaticsDataset* dataset_;
};

}  // namespace rocket::apps

#pragma once

// Minimal JSON reader/writer — just enough for the microscopy particle
// files (paper §5.3 stores particles as JSON localisation lists). Supports
// objects, arrays, numbers, strings, booleans and null; parse errors throw
// std::runtime_error with position information.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace rocket::apps {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, double, std::string,
                               JsonArray, JsonObject>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }

  double as_number() const;
  bool as_bool() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member access; throws if not an object or key missing.
  const JsonValue& at(const std::string& key) const;

  /// Serialise (compact).
  std::string dump() const;

 private:
  Storage value_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
JsonValue json_parse(const std::string& text);
JsonValue json_parse(const std::vector<std::uint8_t>& bytes);

}  // namespace rocket::apps

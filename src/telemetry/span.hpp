#pragma once

// Causal distributed tracing (DESIGN.md §16): Dapper-style span contexts
// propagated through every cross-node message in a tile's life, a per-node
// span log recording the tile lifecycle as a DAG, and a lock-free black-box
// flight recorder whose last-K ring survives to the checkpoint store when a
// node dies.
//
// Sampling is deterministic: whether a tile (or item, or steal) is traced
// is a pure function of its identity and the run seed, so a replayed run
// samples exactly the same population and traces line up byte-for-byte.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rocket::telemetry {

/// The context that rides on cross-node messages. trace_id == 0 means
/// "not sampled" — every propagation site checks sampled() and pays
/// nothing for the common case.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;

  bool sampled() const { return trace_id != 0; }
};

/// splitmix64 finalizer: the repo-wide cheap stateless mixer (the
/// transport's corruption draw uses the same construction).
std::uint64_t span_mix(std::uint64_t x);

/// Deterministic sampling decision + root context for a traced entity
/// (a tile keyed by its region, an item keyed by its id, a steal keyed by
/// its sequence). Every sample_n-th key (by hash) gets a trace; sample_n
/// == 0 disables tracing, sample_n == 1 traces everything. The returned
/// root context has parent_id == 0.
SpanContext make_trace(std::uint64_t seed, std::uint64_t key,
                       std::uint32_t sample_n);

/// Child span id derivation without coordination: a pure hash of the
/// parent context and a salt, so both ends of a message hop derive
/// identical ids from the propagated context.
SpanContext child_of(const SpanContext& parent, std::uint64_t salt);

/// Span vocabulary of the tile DAG (DESIGN.md §16). kTile is the root;
/// the rest are children, some recorded on a remote node (kPeerServe,
/// kStealServe, kGrant cross the wire via the propagated context).
enum class SpanPhase : std::uint8_t {
  kTile = 0,       // grant/submit -> results delivered
  kLoadWait,       // submit -> working set resident
  kPeerFetch,      // requester side of a distributed-cache fetch
  kPeerServe,      // candidate side: probe hit served to a peer
  kGatePark,       // loaded but parked waiting for a compute token
  kCompute,        // the kernel pass
  kDeliver,        // results handed to the delivery path / master
  kSteal,          // thief side of a cross-node steal round trip
  kStealServe,     // victim side: region exported to the thief
  kGrant,          // master re-grant / recipient adoption
  kCount
};

const char* span_phase_name(SpanPhase phase);

/// One closed span on the shared cluster timeline (seconds since
/// telemetry::process_epoch(), same clock as TraceEvent).
struct SpanRecord {
  SpanContext ctx;
  SpanPhase phase = SpanPhase::kTile;
  std::uint32_t node = 0;
  double start = 0.0;
  double end = 0.0;
  bool aborted = false;  // closed forcibly (node death, shutdown)
};

class FlightRecorder;

/// Per-node log of sampled spans. Closed spans append under a mutex (the
/// sampled population is small by construction); open() / close() track
/// in-flight spans so chaos tests can assert nothing leaks — abort_open()
/// closes every straggler with the aborted flag at teardown.
class SpanLog {
 public:
  explicit SpanLog(std::uint32_t node, std::size_t capacity = 1 << 14,
                   FlightRecorder* flight = nullptr);

  /// Append a closed span. Drops (and counts) past capacity.
  void record(SpanRecord span);
  void record(const SpanContext& ctx, SpanPhase phase, double start,
              double end, bool aborted = false);

  /// Track an in-flight span; close() completes it by span id. close()
  /// on an unknown id is a no-op returning false (the opener died and
  /// abort_open already swept it, or it was never sampled).
  void open(const SpanContext& ctx, SpanPhase phase, double start);
  bool close(std::uint64_t span_id, double end, bool aborted = false);

  /// Close every still-open span as aborted at time t. Returns how many.
  std::size_t abort_open(double t);

  std::vector<SpanRecord> records() const;
  std::size_t open_count() const;
  std::uint64_t dropped() const;
  std::uint64_t aborted_count() const;
  std::uint32_t node() const { return node_; }

 private:
  struct OpenSpan {
    SpanContext ctx;
    SpanPhase phase;
    double start;
  };

  void append_locked(const SpanRecord& span);

  const std::uint32_t node_;
  const std::size_t capacity_;
  FlightRecorder* const flight_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::unordered_map<std::uint64_t, OpenSpan> open_;
  std::uint64_t dropped_ = 0;
  std::uint64_t aborted_ = 0;
};

/// One black-box entry. kind < SpanPhase::kCount is a span close (a/b
/// carry start/end as microseconds); kind >= kFlightMessageBase is a
/// received transport message (kind - base == the MessageBody variant
/// index, a == sender).
struct FlightRecord {
  double t = 0.0;  // seconds since process_epoch()
  std::uint32_t node = 0;
  std::uint16_t kind = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

constexpr std::uint16_t kFlightMessageBase = 100;

/// Lock-free last-K ring of span/transport events (DESIGN.md §16): every
/// writer claims a slot with one relaxed fetch_add and stores fields with
/// relaxed atomics, so recording is wait-free and TSAN-clean from any
/// thread. A reader racing a wrap may observe one mixed record — the
/// black box is best-effort by design; it is only read post-mortem.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024);

  void record(std::uint16_t kind, std::uint32_t node, std::uint64_t trace_id,
              std::uint64_t span_id, std::uint64_t a,
              std::uint64_t b) noexcept;

  /// Snapshot of the ring, oldest first. Safe to call while writers run.
  std::vector<FlightRecord> dump() const;

  /// JSON-lines rendering of dump() — the checkpoint-store format.
  std::string dump_json_lines() const;

  std::uint64_t total_recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // claim index + 1; 0 == empty
    std::atomic<std::uint64_t> t_bits{0};
    std::atomic<std::uint64_t> kind_node{0};  // kind << 32 | node
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> cursor_{0};
};

}  // namespace rocket::telemetry

#pragma once

// Cluster-wide metrics layer (DESIGN.md §13): named counters, gauges and
// log-bucketed latency histograms with lock-free accumulation on the hot
// paths and on-demand merge into a MetricsSnapshot.
//
// Accumulation never takes a lock: counters and histograms stripe their
// state across cache-line-padded atomic cells indexed by a per-thread
// stripe id, so two runtime threads recording the same metric touch
// different cache lines (the same trick the sharded caches use for their
// fast path). A snapshot sums the stripes; since every cell is a monotone
// relaxed atomic, a snapshot taken mid-run is a consistent-enough view for
// live streaming (exact totals are read after the run has quiesced).
//
// Histograms bucket by powers of two of nanoseconds: bucket 0 holds the
// value 0 and bucket b holds [2^(b-1), 2^b) ns — one bit_width per
// record, no search, and merge is element-wise addition (associative and
// commutative by construction, which the telemetry tests assert). 64
// buckets cover every duration a run can produce.
//
// The registry owns every instrument: registration returns a stable
// reference (instruments live in deques and are neither movable nor
// copyable), and a registry-wide enabled flag lets the whole layer
// cheap-exit before any clock arithmetic when telemetry is off.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rocket::telemetry {

inline constexpr std::size_t kHistogramBuckets = 64;
inline constexpr std::size_t kMetricStripes = 8;

/// Stripe index of the calling thread: threads are numbered on first use
/// and folded onto the stripe set, so a thread's stripe is stable (no
/// rehashing mid-run) and the first kMetricStripes threads never collide.
std::size_t thread_stripe();

namespace detail {

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) PaddedI64 {
  std::atomic<std::int64_t> v{0};
};

}  // namespace detail

/// Monotone counter. add() is one relaxed fetch_add on a private stripe.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) {
    if (enabled_ != nullptr &&
        !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    stripes_[thread_stripe()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  friend class MetricsRegistry;
  const std::atomic<bool>* enabled_ = nullptr;
  std::array<detail::PaddedU64, kMetricStripes> stripes_{};
};

/// Signed level gauge (queue depths, in-flight work). Deltas stripe like a
/// counter; value() sums, so transient negative partials are fine.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t delta) {
    if (enabled_ != nullptr &&
        !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    stripes_[thread_stripe()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta) { add(-delta); }

  std::int64_t value() const {
    std::int64_t sum = 0;
    for (const auto& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  friend class MetricsRegistry;
  const std::atomic<bool>* enabled_ = nullptr;
  std::array<detail::PaddedI64, kMetricStripes> stripes_{};
};

/// Mergeable point-in-time view of one histogram (the wire/report form).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t min_ns = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ns = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Inclusive lower bound of bucket `b` in nanoseconds.
  static std::uint64_t bucket_floor_ns(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  double mean_seconds() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) * 1e-9 /
                            static_cast<double>(count);
  }

  /// Approximate quantile (q in [0,1]) from the log buckets: walks the
  /// cumulative distribution and returns the geometric midpoint of the
  /// bucket holding the q-th sample. Good to a factor of sqrt(2), which is
  /// what a latency taxonomy needs (is p99 1ms or 30ms, not 1.0 vs 1.1).
  double quantile_seconds(double q) const;

  HistogramSnapshot& operator+=(const HistogramSnapshot& other);
};

/// Log-bucketed latency histogram; record() is a shift plus five relaxed
/// atomic ops on a private stripe (min/max CAS loops that almost always
/// exit on the first read once the envelope is established).
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  static std::size_t bucket_of(std::uint64_t ns) {
    return std::min<std::size_t>(std::bit_width(ns), kHistogramBuckets - 1);
  }

  void record_ns(std::uint64_t ns);
  void record_seconds(double seconds) {
    if (seconds < 0.0) seconds = 0.0;
    record_ns(static_cast<std::uint64_t>(seconds * 1e9));
  }

  bool enabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;  // name left empty (registry fills it)

 private:
  friend class MetricsRegistry;

  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
    std::atomic<std::uint64_t> min_ns{
        std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max_ns{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };

  const std::atomic<bool>* enabled_ = nullptr;
  std::array<Stripe, kMetricStripes> stripes_{};
};

/// Everything a registry (or a whole cluster) measured, mergeable by
/// metric name. The report/wire form of the metrics layer.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  std::uint64_t counter_value(const std::string& name) const;
  std::int64_t gauge_value(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  /// Merge by name: same-name instruments add, new names append.
  MetricsSnapshot& operator+=(const MetricsSnapshot& other);

  /// Prometheus text exposition format (version 0.0.4): every counter and
  /// gauge as a sample, every latency histogram as a cumulative-bucket
  /// histogram family in seconds. Names are prefixed "rocket_" and
  /// sanitised ('.' and other non-[a-zA-Z0-9_] become '_'). Empty
  /// buckets are elided except the mandatory {le="+Inf"}.
  std::string expose_text() const;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name; the returned reference is stable for the
  /// registry's lifetime. Registration locks; recording never does.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  MetricsSnapshot snapshot() const;

  /// snapshot() rendered in the Prometheus text exposition format.
  std::string expose_text() const { return snapshot().expose_text(); }

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mutex_;  // registration + snapshot iteration
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, LatencyHistogram>> histograms_;
};

}  // namespace rocket::telemetry

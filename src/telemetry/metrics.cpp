#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rocket::telemetry {

std::size_t thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

// --- LatencyHistogram -----------------------------------------------------

void LatencyHistogram::record_ns(std::uint64_t ns) {
  if (!enabled()) return;
  Stripe& s = stripes_[thread_stripe()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  s.buckets[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = s.min_ns.load(std::memory_order_relaxed);
  while (ns < seen &&
         !s.min_ns.compare_exchange_weak(seen, ns,
                                         std::memory_order_relaxed)) {
  }
  seen = s.max_ns.load(std::memory_order_relaxed);
  while (ns > seen &&
         !s.max_ns.compare_exchange_weak(seen, ns,
                                         std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot out;
  for (const Stripe& s : stripes_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum_ns += s.sum_ns.load(std::memory_order_relaxed);
    out.min_ns = std::min(out.min_ns, s.min_ns.load(std::memory_order_relaxed));
    out.max_ns = std::max(out.max_ns, s.max_ns.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

// --- HistogramSnapshot ----------------------------------------------------

double HistogramSnapshot::quantile_seconds(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      const double lo = static_cast<double>(bucket_floor_ns(b));
      const double hi =
          b + 1 < kHistogramBuckets
              ? static_cast<double>(bucket_floor_ns(b + 1))
              : lo * 2.0;
      // Geometric midpoint of the bucket (log-scale buckets), clamped into
      // the observed envelope so tiny histograms stay sane.
      const double mid = lo > 0.0 ? std::sqrt(lo * hi) : hi / 2.0;
      const double clamped =
          std::clamp(mid, static_cast<double>(min_ns),
                     static_cast<double>(std::max(min_ns, max_ns)));
      return clamped * 1e-9;
    }
  }
  return static_cast<double>(max_ns) * 1e-9;
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& other) {
  count += other.count;
  sum_ns += other.sum_ns;
  min_ns = std::min(min_ns, other.min_ns);
  max_ns = std::max(max_ns, other.max_ns);
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
  return *this;
}

// --- MetricsSnapshot ------------------------------------------------------

namespace {

template <typename Vec, typename Value>
void merge_named(Vec& into, const std::string& name, const Value& v) {
  for (auto& [n, existing] : into) {
    if (n == name) {
      existing += v;
      return;
    }
  }
  into.emplace_back(name, v);
}

}  // namespace

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge_value(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

/// Prometheus metric name: "rocket_" prefix, every character outside
/// [a-zA-Z0-9_] replaced by '_' ("peer_fetch.hit" -> rocket_peer_fetch_hit).
std::string prom_name(const std::string& name) {
  std::string out = "rocket_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, double value) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s%s %.17g\n", name.c_str(),
                labels.c_str(), value);
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::expose_text() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    append_sample(out, p, "", static_cast<double>(v));
  }
  for (const auto& [name, v] : gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    append_sample(out, p, "", static_cast<double>(v));
  }
  for (const auto& h : histograms) {
    const std::string p = prom_name(h.name) + "_seconds";
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;  // elide empty buckets
      cumulative += h.buckets[b];
      // Exclusive upper bound of the log bucket, in seconds.
      const double le =
          static_cast<double>(HistogramSnapshot::bucket_floor_ns(b + 1)) *
          1e-9;
      char labels[64];
      std::snprintf(labels, sizeof(labels), "{le=\"%.9g\"}", le);
      append_sample(out, p + "_bucket", labels,
                    static_cast<double>(cumulative));
    }
    append_sample(out, p + "_bucket", "{le=\"+Inf\"}",
                  static_cast<double>(h.count));
    append_sample(out, p + "_sum", "",
                  static_cast<double>(h.sum_ns) * 1e-9);
    append_sample(out, p + "_count", "", static_cast<double>(h.count));
  }
  return out;
}

MetricsSnapshot& MetricsSnapshot::operator+=(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) {
    merge_named(counters, name, v);
  }
  for (const auto& [name, v] : other.gauges) {
    merge_named(gauges, name, v);
  }
  for (const auto& h : other.histograms) {
    bool found = false;
    for (auto& mine : histograms) {
      if (mine.name == h.name) {
        mine += h;
        found = true;
        break;
      }
    }
    if (!found) histograms.push_back(h);
  }
  return *this;
}

// --- MetricsRegistry ------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  for (auto& [n, c] : counters_) {
    if (n == name) return c;
  }
  auto& entry = counters_.emplace_back(std::piecewise_construct,
                                       std::forward_as_tuple(name),
                                       std::forward_as_tuple());
  entry.second.enabled_ = &enabled_;
  return entry.second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  for (auto& [n, g] : gauges_) {
    if (n == name) return g;
  }
  auto& entry = gauges_.emplace_back(std::piecewise_construct,
                                     std::forward_as_tuple(name),
                                     std::forward_as_tuple());
  entry.second.enabled_ = &enabled_;
  return entry.second;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return h;
  }
  auto& entry = histograms_.emplace_back(std::piecewise_construct,
                                         std::forward_as_tuple(name),
                                         std::forward_as_tuple());
  entry.second.enabled_ = &enabled_;
  return entry.second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::scoped_lock lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c.value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g.value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap = h.snapshot();
    snap.name = name;
    out.histograms.push_back(std::move(snap));
  }
  return out;
}

}  // namespace rocket::telemetry

#include "telemetry/run_summary.hpp"

#include <cstddef>
#include <utility>

#include "common/json_writer.hpp"
#include "net/tag.hpp"

namespace rocket::telemetry {

namespace {

void write_cache_stats(JsonWriter& w, const cache::CacheStats& s) {
  w.begin_object()
      .field("hits", s.hits)
      .field("write_waits", s.write_waits)
      .field("fills", s.fills)
      .field("evictions", s.evictions)
      .field("alloc_stalls", s.alloc_stalls)
      .field("failures", s.failures)
      .end_object();
}

void write_traffic(JsonWriter& w, const net::TrafficCounters& traffic) {
  w.begin_object();
  w.field("messages", traffic.total_messages())
      .field("bytes", traffic.total_bytes())
      .field("raw_bytes", traffic.total_raw_bytes());
  w.key("per_tag").begin_array();
  for (std::size_t i = 0; i < static_cast<std::size_t>(net::Tag::kCount);
       ++i) {
    const auto& t = traffic.per_tag[i];
    if (t.messages == 0) continue;
    w.begin_object()
        .field("tag", net::tag_name(static_cast<net::Tag>(i)))
        .field("messages", t.messages)
        .field("bytes", t.bytes)
        .field("raw_bytes", t.raw_bytes)
        .end_object();
  }
  w.end_array();
  w.end_object();
}

void write_metrics(JsonWriter& w, const MetricsSnapshot& m) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : m.counters) w.field(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : m.gauges) w.field(name, value);
  w.end_object();
  w.key("histograms").begin_array();
  for (const auto& h : m.histograms) {
    w.begin_object()
        .field("name", h.name)
        .field("count", h.count)
        .field("mean_s", h.mean_seconds())
        .field("p50_s", h.quantile_seconds(0.50))
        .field("p99_s", h.quantile_seconds(0.99))
        .field("min_s", h.count == 0 ? 0.0 : static_cast<double>(h.min_ns) *
                                                 1e-9)
        .field("max_s", static_cast<double>(h.max_ns) * 1e-9)
        .end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

RunSummary RunSummary::from_node(
    std::string app, const runtime::NodeRuntime::Report& report) {
  RunSummary s;
  s.app = std::move(app);
  s.mode = "single_node";
  s.num_nodes = 1;
  s.report.pairs = report.pairs;
  s.report.wall_seconds = report.wall_seconds;
  s.report.loads = report.loads;
  s.report.peer_loads = report.peer_loads;
  s.report.remote_steals = report.steal.remote_steals;
  s.report.host_cache = report.host_cache;
  s.report.cache_fast_hits = report.cache_fast_hits;
  s.report.prefetch_hits = report.prefetch_hits;
  s.report.stall_seconds = report.stall_seconds;
  s.report.load_retries = report.load_retries;
  s.report.failed_loads = report.failed_loads;
  s.report.metrics = report.metrics;
  s.report.nodes.push_back(report);
  return s;
}

RunSummary RunSummary::from_cluster(std::string app, std::uint32_t num_nodes,
                                    mesh::LiveClusterReport report) {
  RunSummary s;
  s.app = std::move(app);
  s.mode = "live_cluster";
  s.num_nodes = num_nodes;
  s.report = std::move(report);
  return s;
}

std::string RunSummary::to_json() const {
  const auto& r = report;
  JsonWriter w;
  w.begin_object();
  w.field("schema", kSchema)
      .field("app", app)
      .field("mode", mode)
      .field("num_nodes", num_nodes)
      .field("pairs", r.pairs)
      .field("wall_seconds", r.wall_seconds)
      .field("pairs_per_sec",
             r.wall_seconds > 0.0
                 ? static_cast<double>(r.pairs) / r.wall_seconds
                 : 0.0)
      .field("loads", r.loads)
      .field("peer_loads", r.peer_loads)
      .field("remote_steals", r.remote_steals)
      .field("cache_fast_hits", r.cache_fast_hits)
      .field("prefetch_hits", r.prefetch_hits)
      .field("stall_seconds", r.stall_seconds);

  w.key("host_cache");
  write_cache_stats(w, r.host_cache);

  w.key("directory")
      .begin_object()
      .field("requests", r.directory.requests)
      .field("empty_responses", r.directory.empty_responses)
      .field("chain_hits", r.directory.chain_hits)
      .field("chain_misses", r.directory.chain_misses)
      .field("hops", r.directory.hops)
      .field("chain_aborts", r.directory.chain_aborts)
      .end_object();

  w.key("peer_cache")
      .begin_object()
      .field("requests", r.peer_cache.requests)
      .field("chain_hits", r.peer_cache.chain_hits)
      .field("chain_misses", r.peer_cache.chain_misses)
      .field("retries", r.peer_cache.retries)
      .field("timeouts", r.peer_cache.timeouts);
  w.key("hits_at_hop").begin_array();
  for (const auto h : r.peer_cache.hits_at_hop) w.value(h);
  w.end_array();
  w.end_object();

  w.key("failover")
      .begin_object()
      .field("node_deaths", r.failover.node_deaths)
      .field("regions_reexecuted", r.failover.regions_reexecuted)
      .field("duplicate_results_dropped",
             r.failover.duplicate_results_dropped)
      .field("results_received", r.failover.results_received)
      .field("regions_adopted", r.failover.regions_adopted)
      .field("master_failovers", r.failover.master_failovers)
      .field("corrupted_frames", r.corrupted_frames)
      .end_object();

  w.key("health")
      .begin_object()
      .field("nodes_suspected", r.failover.nodes_suspected)
      .field("nodes_degraded", r.nodes_degraded)
      .field("nodes_recovered", r.nodes_recovered)
      .field("steals_avoided_degraded", r.steals_avoided_degraded)
      .field("load_retries", r.load_retries)
      .field("failed_loads", r.failed_loads)
      .end_object();

  w.key("speculation")
      .begin_object()
      .field("regions", r.regions_speculated)
      .field("pairs", r.failover.pairs_speculated)
      .field("duplicate_results_dropped", r.duplicate_results_dropped)
      .end_object();

  w.key("checkpoint")
      .begin_object()
      .field("enabled", r.checkpoint.enabled)
      .field("resumed", r.checkpoint.resumed)
      .field("torn_tail", r.checkpoint.torn_tail)
      .field("pairs_recovered", r.checkpoint.pairs_recovered)
      .field("records_replayed", r.checkpoint.records_replayed)
      .field("records_appended", r.checkpoint.records_appended)
      .end_object();

  w.key("traffic");
  write_traffic(w, r.traffic);

  w.key("node_traffic").begin_array();
  for (const auto& t : r.node_traffic) write_traffic(w, t);
  w.end_array();

  w.key("metrics");
  write_metrics(w, r.metrics);

  // Critical-path attribution (DESIGN.md §16). Always present so the
  // schema check is unconditional; with tracing off the window is 100%
  // idle and slowest_tiles is empty. Percentages sum to 100 by
  // construction (idle is the uncovered remainder).
  w.key("critical_path").begin_object();
  w.field("wall_seconds", r.critical_path.window_seconds)
      .field("spans_analyzed",
             static_cast<std::uint64_t>(r.critical_path.spans_analyzed))
      .field("spans_aborted", r.spans_aborted)
      .field("flight_dumps", r.flight_dumps);
  w.key("phases").begin_array();
  for (std::size_t i = 0; i < kPathPhases; ++i) {
    const auto phase = static_cast<PathPhase>(i);
    w.begin_object()
        .field("phase", path_phase_name(phase))
        .field("seconds", r.critical_path.phases[i].seconds)
        .field("percent", r.critical_path.phases[i].percent)
        .end_object();
  }
  w.end_array();
  w.key("slowest_tiles").begin_array();
  for (const auto& tile : r.critical_path.slowest) {
    w.begin_object()
        .field("trace", tile.trace_id)
        .field("node", tile.node)
        .field("seconds", tile.seconds);
    w.key("chain").begin_array();
    for (const auto& span : tile.chain) {
      w.begin_object()
          .field("phase", span_phase_name(span.phase))
          .field("node", span.node)
          .field("start", span.start)
          .field("end", span.end)
          .field("aborted", span.aborted)
          .end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("nodes").begin_array();
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    const auto& node = r.nodes[i];
    w.begin_object()
        .field("node", static_cast<std::uint64_t>(i))
        .field("pairs", node.pairs)
        .field("tiles", node.tiles)
        .field("loads", node.loads)
        .field("peer_loads", node.peer_loads)
        .field("wall_seconds", node.wall_seconds)
        .field("stall_seconds", node.stall_seconds)
        .field("prefetch_hits", node.prefetch_hits)
        .field("acquire_retries", node.acquire_retries)
        .field("load_retries", node.load_retries)
        .field("failed_loads", node.failed_loads)
        .field("spans_dropped", node.spans_dropped);
    w.key("host_cache");
    write_cache_stats(w, node.host_cache);
    w.key("steal")
        .begin_object()
        .field("leaves", node.steal.leaves)
        .field("steals", node.steal.steals)
        .field("remote_steals", node.steal.remote_steals)
        .field("failed_steal_sweeps", node.steal.failed_steal_sweeps)
        .end_object();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

bool RunSummary::write_file(const std::string& path) const {
  return JsonWriter::write_string_to_file(path, to_json());
}

}  // namespace rocket::telemetry

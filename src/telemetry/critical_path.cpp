#include "telemetry/critical_path.hpp"

#include <algorithm>
#include <unordered_map>

namespace rocket::telemetry {

const char* path_phase_name(PathPhase phase) {
  switch (phase) {
    case PathPhase::kCompute: return "compute";
    case PathPhase::kPeerFetch: return "peer_fetch";
    case PathPhase::kSteal: return "steal";
    case PathPhase::kLoad: return "load";
    case PathPhase::kDeliver: return "deliver";
    case PathPhase::kGatePark: return "gate_park";
    case PathPhase::kIdle: return "idle";
    case PathPhase::kCount: break;
  }
  return "?";
}

PathPhase path_phase_of(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kCompute: return PathPhase::kCompute;
    case SpanPhase::kPeerFetch:
    case SpanPhase::kPeerServe: return PathPhase::kPeerFetch;
    case SpanPhase::kSteal:
    case SpanPhase::kStealServe:
    case SpanPhase::kGrant: return PathPhase::kSteal;
    case SpanPhase::kLoadWait: return PathPhase::kLoad;
    case SpanPhase::kDeliver: return PathPhase::kDeliver;
    case SpanPhase::kGatePark: return PathPhase::kGatePark;
    case SpanPhase::kTile:
    case SpanPhase::kCount: break;
  }
  return PathPhase::kIdle;
}

CriticalPathReport analyze_critical_path(const std::vector<SpanRecord>& spans,
                                         double window_start,
                                         double window_end,
                                         std::size_t top_k) {
  CriticalPathReport report;
  const double window = window_end - window_start;
  report.window_seconds = window > 0.0 ? window : 0.0;
  report.spans_analyzed = spans.size();

  // Sweep: +1/-1 edges per attribution category, clamped to the window.
  // Between consecutive edges the active set is constant; the segment goes
  // to the highest-priority active category (the PathPhase enum order IS
  // the priority order).
  struct Edge {
    double t;
    std::size_t phase;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(spans.size() * 2);
  for (const SpanRecord& span : spans) {
    const PathPhase phase = path_phase_of(span.phase);
    if (phase == PathPhase::kIdle) continue;  // containers don't attribute
    const double start = std::max(span.start, window_start);
    const double end = std::min(span.end, window_end);
    if (end <= start) continue;
    edges.push_back({start, static_cast<std::size_t>(phase), +1});
    edges.push_back({end, static_cast<std::size_t>(phase), -1});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& x, const Edge& y) { return x.t < y.t; });

  std::array<int, kPathPhases> active{};
  std::array<double, kPathPhases> seconds{};
  double prev = window_start;
  std::size_t i = 0;
  while (i < edges.size()) {
    const double t = edges[i].t;
    if (t > prev) {
      std::size_t winner = static_cast<std::size_t>(PathPhase::kIdle);
      for (std::size_t p = 0; p < kPathPhases; ++p) {
        if (active[p] > 0) {
          winner = p;
          break;
        }
      }
      seconds[winner] += t - prev;
      prev = t;
    }
    // Apply every edge at this instant before attributing further.
    while (i < edges.size() && edges[i].t == t) {
      active[edges[i].phase] += edges[i].delta;
      ++i;
    }
  }
  if (report.window_seconds > 0.0 && window_end > prev) {
    std::size_t winner = static_cast<std::size_t>(PathPhase::kIdle);
    for (std::size_t p = 0; p < kPathPhases; ++p) {
      if (active[p] > 0) {
        winner = p;
        break;
      }
    }
    seconds[winner] += window_end - prev;
  }

  for (std::size_t p = 0; p < kPathPhases; ++p) {
    report.phases[p].seconds = seconds[p];
    report.phases[p].percent = report.window_seconds > 0.0
                                   ? 100.0 * seconds[p] / report.window_seconds
                                   : (p + 1 == kPathPhases ? 100.0 : 0.0);
  }
  if (report.window_seconds <= 0.0) {
    // Degenerate window: call it all idle so the block still sums to 100.
    report.phases[static_cast<std::size_t>(PathPhase::kIdle)].percent = 100.0;
  }

  // Top-k slowest sampled tiles with their causal chains.
  std::unordered_map<std::uint64_t, SlowTile> tiles;
  for (const SpanRecord& span : spans) {
    if (span.phase != SpanPhase::kTile) continue;
    SlowTile& tile = tiles[span.ctx.trace_id];
    tile.trace_id = span.ctx.trace_id;
    tile.node = span.node;
    tile.seconds = std::max(tile.seconds, span.end - span.start);
  }
  if (!tiles.empty()) {
    for (const SpanRecord& span : spans) {
      const auto it = tiles.find(span.ctx.trace_id);
      if (it != tiles.end()) it->second.chain.push_back(span);
    }
    std::vector<SlowTile> ranked;
    ranked.reserve(tiles.size());
    for (auto& [id, tile] : tiles) ranked.push_back(std::move(tile));
    std::sort(ranked.begin(), ranked.end(),
              [](const SlowTile& x, const SlowTile& y) {
                return x.seconds > y.seconds;
              });
    if (ranked.size() > top_k) ranked.resize(top_k);
    for (SlowTile& tile : ranked) {
      std::sort(tile.chain.begin(), tile.chain.end(),
                [](const SpanRecord& x, const SpanRecord& y) {
                  return x.start < y.start;
                });
    }
    report.slowest = std::move(ranked);
  }
  return report;
}

}  // namespace rocket::telemetry

#pragma once

// Live cluster snapshot protocol (DESIGN.md §13): every node samples its
// runtime into a NodeStats each snapshot interval and ships it to the
// master on the heartbeat ticker (net::Tag::kTelemetry). The master folds
// the per-node streams into a ClusterSnapshot — rates from consecutive
// sample deltas, staleness from sample age — which LiveCluster exposes for
// polling and as a callback, driving `live_mesh_demo --live-stats`.

#include <cstdint>
#include <functional>
#include <vector>

namespace rocket::telemetry {

/// One node's cumulative-since-start counters plus instantaneous gauges.
/// Cheap to sample (atomic reads, no locks) and cheap to ship; rates are
/// the master's job, from deltas between consecutive snapshots.
struct NodeStats {
  std::uint64_t pairs = 0;
  std::uint64_t tiles = 0;
  std::uint64_t loads = 0;
  std::uint64_t peer_loads = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_fills = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_fast_hits = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t remote_steals = 0;
  std::int64_t in_flight_tiles = 0;
  std::int64_t result_queue_depth = 0;
  std::uint32_t lanes = 0;      // profiler lanes contributing to busy time
  double busy_seconds = 0.0;    // summed across profiler lanes
  double uptime_seconds = 0.0;  // since the node's runtime started
};

/// Sampler a node's runtime registers with its mesh layer; called on the
/// ticker thread each snapshot interval. Empty function = no publisher.
using NodeStatsFn = std::function<NodeStats()>;

/// Grey-failure health states (DESIGN.md §15). The master's detector
/// drives alive → suspected → degraded on EWMA progress rates and back on
/// recovery (hysteresis); lease expiry still means dead, from any state.
enum class NodeHealth : std::uint8_t {
  kAlive = 0,
  kSuspected = 1,  // below the rate threshold for < suspect_intervals
  kDegraded = 2,   // confirmed straggler: excluded from grants/steals,
                   // backlog speculated away, lease intact
  kDead = 3,       // lease expired (the PR-6 verdict, unchanged)
};

/// One-letter tag for dashboards and the demo's --live-stats table.
inline char health_letter(NodeHealth health) {
  switch (health) {
    case NodeHealth::kAlive: return 'A';
    case NodeHealth::kSuspected: return 'S';
    case NodeHealth::kDegraded: return 'D';
    case NodeHealth::kDead: return 'X';
  }
  return '?';
}

/// Master-side digest of one node's latest sample.
struct NodeSnapshot {
  std::uint32_t node = 0;
  bool alive = true;
  NodeHealth health = NodeHealth::kAlive;
  double age_seconds = 0.0;  // since the sample was taken (staleness)
  double pairs_per_sec = 0.0;   // from the last two samples' delta
  double busy_fraction = 0.0;   // busy_seconds delta over lane-time delta
  double cache_hit_rate = 0.0;  // hits / (hits + fills), cumulative
  NodeStats stats;
};

struct ClusterSnapshot {
  std::uint64_t seq = 0;
  double uptime_seconds = 0.0;
  std::uint64_t total_pairs = 0;
  double cluster_pairs_per_sec = 0.0;
  std::vector<NodeSnapshot> nodes;
};

}  // namespace rocket::telemetry

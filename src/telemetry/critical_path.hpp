#pragma once

// Offline critical-path attribution over sampled span DAGs (DESIGN.md
// §16). Input: the cluster-merged SpanRecord set on the shared process
// timeline. Output: for the run window, the share of wall time each phase
// occupies on the cluster's critical path — at every instant the highest-
// priority phase active on ANY node wins (compute > peer-fetch > steal >
// load > deliver > gate-park), uncovered time is idle — plus the top-k
// slowest sampled tiles with their full causal chains. Idle is defined as
// the remainder, so the percentages sum to 100 by construction.

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "telemetry/span.hpp"

namespace rocket::telemetry {

/// Attribution categories of the run summary's critical_path block.
enum class PathPhase : std::uint8_t {
  kCompute = 0,
  kPeerFetch,
  kSteal,
  kLoad,
  kDeliver,
  kGatePark,
  kIdle,
  kCount
};

constexpr std::size_t kPathPhases =
    static_cast<std::size_t>(PathPhase::kCount);

const char* path_phase_name(PathPhase phase);

/// Category of a span phase. kTile spans are containers, not work — they
/// map to kIdle and are excluded from attribution.
PathPhase path_phase_of(SpanPhase phase);

struct PhaseShare {
  double seconds = 0.0;
  double percent = 0.0;
};

struct SlowTile {
  std::uint64_t trace_id = 0;
  std::uint32_t node = 0;  // node that ran the tile span
  double seconds = 0.0;    // tile span duration
  std::vector<SpanRecord> chain;  // all spans of the trace, by start time
};

struct CriticalPathReport {
  double window_seconds = 0.0;    // analyzed [start, end] width
  std::size_t spans_analyzed = 0;
  std::array<PhaseShare, kPathPhases> phases{};  // indexed by PathPhase
  std::vector<SlowTile> slowest;  // top-k sampled tiles by duration

  double percent(PathPhase phase) const {
    return phases[static_cast<std::size_t>(phase)].percent;
  }
};

/// Walk the merged span set over [window_start, window_end] (seconds on
/// the process timeline). Spans outside the window are clamped; an empty
/// window or span set yields a report that is 100% idle.
CriticalPathReport analyze_critical_path(
    const std::vector<SpanRecord>& spans, double window_start,
    double window_end, std::size_t top_k = 5);

}  // namespace rocket::telemetry

#pragma once

// Machine-readable run summary (DESIGN.md §13): one JSON document,
// schema "rocket.run_summary/1", folding a run's report structs —
// throughput, cache/directory/failover counters, the per-tag traffic
// table with its compressed-vs-raw byte split, and the metrics layer's
// counters/gauges/histograms — into a stable shape that demos and
// benches emit and CI validates (scripts/check_telemetry.py).

#include <cstdint>
#include <string>

#include "mesh/live_cluster.hpp"
#include "runtime/node_runtime.hpp"

namespace rocket::telemetry {

struct RunSummary {
  /// Current value of the "schema" field; bump on breaking shape changes.
  static constexpr const char* kSchema = "rocket.run_summary/1";

  std::string app;          // application name (caller-provided)
  std::string mode;         // "single_node" | "live_cluster"
  std::uint32_t num_nodes = 1;
  mesh::LiveClusterReport report;

  /// Wrap a single-node report (cluster-only sections serialise empty).
  static RunSummary from_node(std::string app,
                              const runtime::NodeRuntime::Report& report);

  /// Wrap a live-cluster report.
  static RunSummary from_cluster(std::string app, std::uint32_t num_nodes,
                                 mesh::LiveClusterReport report);

  std::string to_json() const;
  bool write_file(const std::string& path) const;
};

}  // namespace rocket::telemetry

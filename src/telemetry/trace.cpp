#include "telemetry/trace.hpp"

#include <algorithm>

#include "common/json_writer.hpp"

namespace rocket::telemetry {

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRemoteSteal: return "remote_steal";
    case EventKind::kNodeDeath: return "node_death";
    case EventKind::kRegionRegrant: return "region_regrant";
    case EventKind::kRegionAdopt: return "region_adopt";
    case EventKind::kPrefetchPark: return "prefetch_park";
    case EventKind::kFetchRetry: return "fetch_retry";
    case EventKind::kMasterFailover: return "master_failover";
    case EventKind::kNodeSuspected: return "node_suspected";
    case EventKind::kNodeDegraded: return "node_degraded";
    case EventKind::kNodeRecovered: return "node_recovered";
    case EventKind::kRegionSpeculated: return "region_speculated";
  }
  return "unknown";
}

void EventLog::record(EventKind kind, std::uint32_t a, std::uint32_t b) {
  const double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - process_epoch())
                       .count();
  std::scoped_lock lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(TraceEvent{kind, t, a, b});
}

std::vector<TraceEvent> EventLog::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

void TraceExporter::add_node(std::uint32_t node, NodeTrace trace) {
  nodes_.emplace_back(node, std::move(trace));
}

std::string TraceExporter::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const auto& [node, trace] : nodes_) {
    const std::string process = "node " + std::to_string(node);
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", node);
    w.key("args");
    w.begin_object();
    w.field("name", process);
    w.end_object();
    w.end_object();

    for (std::size_t lane = 0; lane < trace.lanes.size(); ++lane) {
      w.begin_object();
      w.field("name", "thread_name");
      w.field("ph", "M");
      w.field("pid", node);
      w.field("tid", static_cast<std::uint64_t>(lane));
      w.key("args");
      w.begin_object();
      w.field("name", trace.lanes[lane].name);
      w.end_object();
      w.end_object();
    }

    for (std::size_t lane = 0; lane < trace.lanes.size(); ++lane) {
      for (const auto& span : trace.lanes[lane].spans) {
        const double ts_us = (trace.epoch_offset_s + span.start) * 1e6;
        const double dur_us = std::max(span.end - span.start, 0.0) * 1e6;
        w.begin_object();
        w.field("name", runtime::task_kind_name(span.kind));
        w.field("ph", "X");
        w.field("pid", node);
        w.field("tid", static_cast<std::uint64_t>(lane));
        w.field("ts", ts_us);
        w.field("dur", dur_us);
        w.end_object();
      }
    }

    // Events already carry process-epoch time; park them on a tid past the
    // lane range so they render as their own row.
    const auto event_tid = static_cast<std::uint64_t>(trace.lanes.size());
    for (const auto& ev : trace.events) {
      w.begin_object();
      w.field("name", event_kind_name(ev.kind));
      w.field("ph", "i");
      w.field("s", "p");
      w.field("pid", node);
      w.field("tid", event_tid);
      w.field("ts", ev.t * 1e6);
      w.key("args");
      w.begin_object();
      w.field("a", ev.a);
      w.field("b", ev.b);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool TraceExporter::write_file(const std::string& path) const {
  return JsonWriter::write_string_to_file(path, to_json());
}

}  // namespace rocket::telemetry

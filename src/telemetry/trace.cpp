#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "common/json_writer.hpp"

namespace rocket::telemetry {

namespace {

std::string hex_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRemoteSteal: return "remote_steal";
    case EventKind::kNodeDeath: return "node_death";
    case EventKind::kRegionRegrant: return "region_regrant";
    case EventKind::kRegionAdopt: return "region_adopt";
    case EventKind::kPrefetchPark: return "prefetch_park";
    case EventKind::kFetchRetry: return "fetch_retry";
    case EventKind::kMasterFailover: return "master_failover";
    case EventKind::kNodeSuspected: return "node_suspected";
    case EventKind::kNodeDegraded: return "node_degraded";
    case EventKind::kNodeRecovered: return "node_recovered";
    case EventKind::kRegionSpeculated: return "region_speculated";
  }
  return "unknown";
}

void EventLog::record(EventKind kind, std::uint32_t a, std::uint32_t b) {
  const double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - process_epoch())
                       .count();
  std::scoped_lock lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(TraceEvent{kind, t, a, b});
}

std::vector<TraceEvent> EventLog::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

void TraceExporter::add_node(std::uint32_t node, NodeTrace trace) {
  nodes_.emplace_back(node, std::move(trace));
}

std::string TraceExporter::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const auto& [node, trace] : nodes_) {
    const std::string process = "node " + std::to_string(node);
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", node);
    w.key("args");
    w.begin_object();
    w.field("name", process);
    w.end_object();
    w.end_object();

    for (std::size_t lane = 0; lane < trace.lanes.size(); ++lane) {
      w.begin_object();
      w.field("name", "thread_name");
      w.field("ph", "M");
      w.field("pid", node);
      w.field("tid", static_cast<std::uint64_t>(lane));
      w.key("args");
      w.begin_object();
      w.field("name", trace.lanes[lane].name);
      w.end_object();
      w.end_object();
    }

    for (std::size_t lane = 0; lane < trace.lanes.size(); ++lane) {
      for (const auto& span : trace.lanes[lane].spans) {
        const double ts_us = (trace.epoch_offset_s + span.start) * 1e6;
        const double dur_us = std::max(span.end - span.start, 0.0) * 1e6;
        w.begin_object();
        w.field("name", runtime::task_kind_name(span.kind));
        w.field("ph", "X");
        w.field("pid", node);
        w.field("tid", static_cast<std::uint64_t>(lane));
        w.field("ts", ts_us);
        w.field("dur", dur_us);
        w.end_object();
      }
    }

    // Events already carry process-epoch time; park them on a tid past the
    // lane range so they render as their own row.
    const auto event_tid = static_cast<std::uint64_t>(trace.lanes.size());
    for (const auto& ev : trace.events) {
      w.begin_object();
      w.field("name", event_kind_name(ev.kind));
      w.field("ph", "i");
      w.field("s", "p");
      w.field("pid", node);
      w.field("tid", event_tid);
      w.field("ts", ev.t * 1e6);
      w.key("args");
      w.begin_object();
      w.field("a", ev.a);
      w.field("b", ev.b);
      w.end_object();
      w.end_object();
    }

    // Sampled causal spans (§16) on their own lane past the events row.
    // Times are already process-epoch relative; zero-width spans get a
    // 1 us floor so Perfetto keeps them clickable as flow endpoints.
    if (!trace.causal_spans.empty()) {
      const auto causal_tid = event_tid + 1;
      w.begin_object();
      w.field("name", "thread_name");
      w.field("ph", "M");
      w.field("pid", node);
      w.field("tid", causal_tid);
      w.key("args");
      w.begin_object();
      w.field("name", "causal");
      w.end_object();
      w.end_object();
      for (const auto& span : trace.causal_spans) {
        w.begin_object();
        w.field("name", span_phase_name(span.phase));
        w.field("cat", "causal");
        w.field("ph", "X");
        w.field("pid", node);
        w.field("tid", causal_tid);
        w.field("ts", span.start * 1e6);
        w.field("dur", std::max((span.end - span.start) * 1e6, 1.0));
        w.key("args");
        w.begin_object();
        w.field("trace", hex_id(span.ctx.trace_id));
        w.field("span", hex_id(span.ctx.span_id));
        w.field("parent", hex_id(span.ctx.parent_id));
        w.field("aborted", span.aborted);
        w.end_object();
        w.end_object();
      }
    }
  }

  // Flow arrows: a span whose parent closed on a DIFFERENT node is a
  // causal edge across the wire. The "s" step attaches inside the parent
  // slice, the "f" step (bp:"e") inside the child slice; Perfetto matches
  // them by (cat, id).
  struct FlowEnd {
    std::uint32_t node;
    std::uint64_t tid;
    double start;
    double end;
  };
  std::unordered_map<std::uint64_t, FlowEnd> by_span;
  for (const auto& [node, trace] : nodes_) {
    const auto causal_tid = static_cast<std::uint64_t>(trace.lanes.size()) + 1;
    for (const auto& span : trace.causal_spans) {
      by_span[span.ctx.span_id] =
          FlowEnd{node, causal_tid, span.start, span.end};
    }
  }
  for (const auto& [node, trace] : nodes_) {
    const auto causal_tid = static_cast<std::uint64_t>(trace.lanes.size()) + 1;
    for (const auto& span : trace.causal_spans) {
      if (span.ctx.parent_id == 0) continue;
      const auto parent = by_span.find(span.ctx.parent_id);
      if (parent == by_span.end() || parent->second.node == node) continue;
      const double step_ts =
          std::clamp(span.start, parent->second.start, parent->second.end);
      w.begin_object();
      w.field("name", "causal");
      w.field("cat", "causal");
      w.field("ph", "s");
      w.field("id", hex_id(span.ctx.span_id));
      w.field("pid", parent->second.node);
      w.field("tid", parent->second.tid);
      w.field("ts", step_ts * 1e6);
      w.end_object();
      w.begin_object();
      w.field("name", "causal");
      w.field("cat", "causal");
      w.field("ph", "f");
      w.field("bp", "e");
      w.field("id", hex_id(span.ctx.span_id));
      w.field("pid", node);
      w.field("tid", causal_tid);
      w.field("ts", span.start * 1e6);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool TraceExporter::write_file(const std::string& path) const {
  return JsonWriter::write_string_to_file(path, to_json());
}

}  // namespace rocket::telemetry

#include "telemetry/span.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <utility>

#include "telemetry/trace.hpp"

namespace rocket::telemetry {

std::uint64_t span_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

SpanContext make_trace(std::uint64_t seed, std::uint64_t key,
                       std::uint32_t sample_n) {
  if (sample_n == 0) return {};
  const std::uint64_t draw = span_mix(seed ^ span_mix(key));
  if (draw % sample_n != 0) return {};
  SpanContext ctx;
  // The ids must be nonzero: 0 is the "unsampled" sentinel. Folding in
  // distinct constants keeps trace and root span ids independent.
  ctx.trace_id = span_mix(draw ^ 0x7261636b65740aULL) | 1ULL;
  ctx.span_id = span_mix(draw ^ 0x73706e726f6f74ULL) | 1ULL;
  ctx.parent_id = 0;
  return ctx;
}

SpanContext child_of(const SpanContext& parent, std::uint64_t salt) {
  if (!parent.sampled()) return {};
  SpanContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id =
      span_mix(parent.trace_id ^ span_mix(parent.span_id) ^ salt) | 1ULL;
  ctx.parent_id = parent.span_id;
  return ctx;
}

const char* span_phase_name(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kTile: return "tile";
    case SpanPhase::kLoadWait: return "load.wait";
    case SpanPhase::kPeerFetch: return "peer.fetch";
    case SpanPhase::kPeerServe: return "peer.serve";
    case SpanPhase::kGatePark: return "compute.gate.park";
    case SpanPhase::kCompute: return "compute";
    case SpanPhase::kDeliver: return "result.deliver";
    case SpanPhase::kSteal: return "steal";
    case SpanPhase::kStealServe: return "steal.serve";
    case SpanPhase::kGrant: return "region.grant";
    case SpanPhase::kCount: break;
  }
  return "?";
}

// --- SpanLog ---------------------------------------------------------------

SpanLog::SpanLog(std::uint32_t node, std::size_t capacity,
                 FlightRecorder* flight)
    : node_(node), capacity_(capacity), flight_(flight) {}

void SpanLog::append_locked(const SpanRecord& span) {
  if (span.aborted) ++aborted_;
  if (records_.size() >= capacity_) {
    ++dropped_;
  } else {
    records_.push_back(span);
  }
  if (flight_ != nullptr) {
    flight_->record(static_cast<std::uint16_t>(span.phase), node_,
                    span.ctx.trace_id, span.ctx.span_id,
                    static_cast<std::uint64_t>(span.start * 1e6),
                    static_cast<std::uint64_t>(span.end * 1e6));
  }
}

void SpanLog::record(SpanRecord span) {
  if (!span.ctx.sampled()) return;
  span.node = node_;
  std::scoped_lock lock(mutex_);
  append_locked(span);
}

void SpanLog::record(const SpanContext& ctx, SpanPhase phase, double start,
                     double end, bool aborted) {
  SpanRecord span;
  span.ctx = ctx;
  span.phase = phase;
  span.start = start;
  span.end = end;
  span.aborted = aborted;
  record(span);
}

void SpanLog::open(const SpanContext& ctx, SpanPhase phase, double start) {
  if (!ctx.sampled()) return;
  std::scoped_lock lock(mutex_);
  open_[ctx.span_id] = OpenSpan{ctx, phase, start};
}

bool SpanLog::close(std::uint64_t span_id, double end, bool aborted) {
  if (span_id == 0) return false;
  std::scoped_lock lock(mutex_);
  const auto it = open_.find(span_id);
  if (it == open_.end()) return false;
  SpanRecord span;
  span.ctx = it->second.ctx;
  span.phase = it->second.phase;
  span.node = node_;
  span.start = it->second.start;
  span.end = end;
  span.aborted = aborted;
  open_.erase(it);
  append_locked(span);
  return true;
}

std::size_t SpanLog::abort_open(double t) {
  std::scoped_lock lock(mutex_);
  const std::size_t n = open_.size();
  for (const auto& [id, o] : open_) {
    SpanRecord span;
    span.ctx = o.ctx;
    span.phase = o.phase;
    span.node = node_;
    span.start = o.start;
    span.end = t < o.start ? o.start : t;
    span.aborted = true;
    append_locked(span);
  }
  open_.clear();
  return n;
}

std::vector<SpanRecord> SpanLog::records() const {
  std::scoped_lock lock(mutex_);
  return records_;
}

std::size_t SpanLog::open_count() const {
  std::scoped_lock lock(mutex_);
  return open_.size();
}

std::uint64_t SpanLog::dropped() const {
  std::scoped_lock lock(mutex_);
  return dropped_;
}

std::uint64_t SpanLog::aborted_count() const {
  std::scoped_lock lock(mutex_);
  return aborted_;
}

// --- FlightRecorder --------------------------------------------------------

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(round_up_pow2(capacity < 2 ? 2 : capacity)) {}

void FlightRecorder::record(std::uint16_t kind, std::uint32_t node,
                            std::uint64_t trace_id, std::uint64_t span_id,
                            std::uint64_t a, std::uint64_t b) noexcept {
  const auto now = std::chrono::steady_clock::now();
  const double t =
      std::chrono::duration<double>(now - process_epoch()).count();
  const std::uint64_t index =
      cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index & (slots_.size() - 1)];
  slot.t_bits.store(std::bit_cast<std::uint64_t>(t),
                    std::memory_order_relaxed);
  slot.kind_node.store((static_cast<std::uint64_t>(kind) << 32) | node,
                       std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  // Publish last: a slot is only dumped once its claim index lands.
  slot.seq.store(index + 1, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::dump() const {
  // Collect every populated slot with its claim index, then order by it —
  // oldest surviving record first. Racing writers may leave one slot
  // mid-overwrite; its fields then mix two records, which is acceptable
  // for a post-mortem black box.
  std::vector<std::pair<std::uint64_t, FlightRecord>> found;
  found.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == 0) continue;
    FlightRecord r;
    r.t = std::bit_cast<double>(slot.t_bits.load(std::memory_order_relaxed));
    const std::uint64_t kn = slot.kind_node.load(std::memory_order_relaxed);
    r.kind = static_cast<std::uint16_t>(kn >> 32);
    r.node = static_cast<std::uint32_t>(kn & 0xffffffffULL);
    r.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    r.span_id = slot.span_id.load(std::memory_order_relaxed);
    r.a = slot.a.load(std::memory_order_relaxed);
    r.b = slot.b.load(std::memory_order_relaxed);
    found.emplace_back(seq, r);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<FlightRecord> out;
  out.reserve(found.size());
  for (const auto& [seq, r] : found) out.push_back(r);
  return out;
}

std::string FlightRecorder::dump_json_lines() const {
  std::string out;
  char line[256];
  for (const FlightRecord& r : dump()) {
    const char* kind_name =
        r.kind < static_cast<std::uint16_t>(SpanPhase::kCount)
            ? span_phase_name(static_cast<SpanPhase>(r.kind))
            : "msg";
    std::snprintf(
        line, sizeof(line),
        "{\"t\":%.6f,\"node\":%u,\"kind\":%u,\"kind_name\":\"%s\","
        "\"trace\":\"%016llx\",\"span\":\"%016llx\",\"a\":%llu,"
        "\"b\":%llu}\n",
        r.t, r.node, r.kind, kind_name,
        static_cast<unsigned long long>(r.trace_id),
        static_cast<unsigned long long>(r.span_id),
        static_cast<unsigned long long>(r.a),
        static_cast<unsigned long long>(r.b));
    out += line;
  }
  return out;
}

}  // namespace rocket::telemetry

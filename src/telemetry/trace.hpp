#pragma once

// Cluster-wide trace export (DESIGN.md §13): every node's Profiler lanes
// plus the discrete scheduling/failover events of a run, serialised into
// one Chrome trace_event JSON that Perfetto / chrome://tracing loads
// directly — the live, multi-node rendering of the paper's Fig 6.
//
// Alignment: each Profiler stamps spans relative to its own construction
// epoch, and every node of an in-process cluster shares one steady clock.
// process_epoch() pins a single process-wide origin (first call wins;
// LiveCluster pins it before any node starts), NodeTrace carries the
// node's profiler-epoch offset from that origin, and the exporter emits
// ts = (offset + span.start) so all nodes land on one timeline.
//
// Mapping: trace pid = node id (one "process" per node), tid = lane index
// within the node; lanes become "X" complete events, EventLog entries
// become "i" instant events on a dedicated events lane.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "runtime/profiler.hpp"
#include "telemetry/span.hpp"

namespace rocket::telemetry {

/// Process-wide trace origin (steady clock). The first caller pins it.
std::chrono::steady_clock::time_point process_epoch();

/// Discrete events worth seeing on a timeline: scheduling decisions and
/// failover verdicts that have no duration of their own.
enum class EventKind : std::uint8_t {
  kRemoteSteal,   // a: worker, b: 1 = got a region
  kNodeDeath,     // a: dead node (recorded by the master's detector)
  kRegionRegrant, // a: survivor granted to, b: pair count (saturated)
  kRegionAdopt,   // a: adopting node
  kPrefetchPark,  // a: device ordinal (tile resolved before a token freed)
  kFetchRetry,    // a: item id (peer fetch retransmitted)
  kMasterFailover,  // a: adopting node, b: failover epoch (DESIGN.md §14)
  kNodeSuspected,   // a: node below the health rate threshold (§15)
  kNodeDegraded,    // a: node confirmed as a straggler
  kNodeRecovered,   // a: node back above the recovery threshold
  kRegionSpeculated,  // a: healthy node granted to, b: pairs (saturated)
};

const char* event_kind_name(EventKind kind);

struct TraceEvent {
  EventKind kind = EventKind::kRemoteSteal;
  double t = 0.0;  // seconds since process_epoch()
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Bounded, thread-safe event sink; one per node. Events are rare (steals,
/// deaths, parks — not per-pair), so a mutex is fine; the cap guards
/// against a pathological run flooding the trace.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1u << 16)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(EventKind kind, std::uint32_t a = 0, std::uint32_t b = 0);

  std::vector<TraceEvent> events() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// One node's contribution to the cluster trace (rides in the node's
/// Report).
struct NodeTrace {
  /// This node's profiler epoch minus process_epoch(), in seconds — what
  /// shifts its spans onto the shared timeline.
  double epoch_offset_s = 0.0;
  std::vector<runtime::Profiler::LaneView> lanes;
  std::vector<TraceEvent> events;
  /// Sampled causal spans (DESIGN.md §16). Already on the process
  /// timeline — no epoch offset applies. Rendered on a dedicated
  /// "causal" lane, with "s"/"f" flow arrows between nodes wherever a
  /// span's parent lives on a different node.
  std::vector<SpanRecord> causal_spans;
  std::uint64_t spans_dropped = 0;
};

/// Folds NodeTraces into one Chrome trace_event JSON document.
class TraceExporter {
 public:
  void add_node(std::uint32_t node, NodeTrace trace);

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — ts/dur in
  /// microseconds since process_epoch(), pid = node, tid = lane.
  std::string to_json() const;

  bool write_file(const std::string& path) const;

 private:
  std::vector<std::pair<std::uint32_t, NodeTrace>> nodes_;
};

}  // namespace rocket::telemetry

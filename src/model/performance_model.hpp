#pragma once

// The paper's performance model (§6.1, equations 1–5).
//
// Given n items, the comparison pipeline runs C(n,2) times and the load
// pipeline R·n times, where R >= 1 measures data reuse (R = loads / n).
//
//   TGPU = R·n·t_pre  + C(n,2)·t_cmp                       (1)
//   TCPU = R·n·t_parse + C(n,2)·t_post                     (2)
//   TIO  ≈ R·n·file_size / io_bandwidth                    (3)
//   Tmin = n·t_pre + C(n,2)·t_cmp        (R = 1, TIO = 0)  (4)
//   system efficiency = (Tmin / p) / T_measured            (5)

#include <cstdint>

#include "common/units.hpp"

namespace rocket::model {

/// Average stage durations (seconds) and data sizes for one application,
/// i.e. one column of the paper's Table 1.
struct StageProfile {
  double t_parse = 0.0;        // CPU, per load
  double t_preprocess = 0.0;   // GPU, per load
  double t_comparison = 0.0;   // GPU, per pair
  double t_postprocess = 0.0;  // CPU, per pair
  Bytes file_size = 0;         // average compressed input file
  Bytes slot_size = 0;         // pre-processed item (cache slot) size
};

constexpr std::uint64_t pair_count(std::uint64_t n) {
  return n * (n - 1) / 2;
}

class PerformanceModel {
 public:
  PerformanceModel(StageProfile profile, std::uint64_t n)
      : profile_(profile), n_(n) {}

  std::uint64_t n() const { return n_; }
  std::uint64_t pairs() const { return pair_count(n_); }
  const StageProfile& profile() const { return profile_; }

  /// Equation (1): total GPU seconds given data reuse factor R.
  double t_gpu(double R) const;

  /// Equation (2): total CPU seconds.
  double t_cpu(double R) const;

  /// Equation (3): total I/O seconds at the given aggregate bandwidth.
  double t_io(double R, Bandwidth io_bandwidth) const;

  /// Equation (4): lower bound on the single-GPU run time.
  double t_min() const;

  /// Equation (5): efficiency of a measured run on p GPUs. Values > 1 are
  /// possible (super-linear speedup) exactly as in the paper's Fig 12/15.
  double efficiency(double measured_seconds, std::uint64_t p) const;

  /// R from an observed number of load-pipeline executions.
  double reuse_factor(std::uint64_t total_loads) const;

  /// Predicted run time on one GPU for a given R and I/O bandwidth: the
  /// max of the three overlapped resource times (perfect overlap).
  double predicted_runtime(double R, Bandwidth io_bandwidth) const;

 private:
  StageProfile profile_;
  std::uint64_t n_;
};

}  // namespace rocket::model

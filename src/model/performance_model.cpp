#include "model/performance_model.hpp"

#include <algorithm>

namespace rocket::model {

double PerformanceModel::t_gpu(double R) const {
  return R * static_cast<double>(n_) * profile_.t_preprocess +
         static_cast<double>(pairs()) * profile_.t_comparison;
}

double PerformanceModel::t_cpu(double R) const {
  return R * static_cast<double>(n_) * profile_.t_parse +
         static_cast<double>(pairs()) * profile_.t_postprocess;
}

double PerformanceModel::t_io(double R, Bandwidth io_bandwidth) const {
  if (io_bandwidth <= 0.0) return 0.0;
  return R * static_cast<double>(n_) *
         static_cast<double>(profile_.file_size) / io_bandwidth;
}

double PerformanceModel::t_min() const { return t_gpu(1.0); }

double PerformanceModel::efficiency(double measured_seconds,
                                    std::uint64_t p) const {
  if (measured_seconds <= 0.0 || p == 0) return 0.0;
  return (t_min() / static_cast<double>(p)) / measured_seconds;
}

double PerformanceModel::reuse_factor(std::uint64_t total_loads) const {
  return n_ == 0 ? 0.0
                 : static_cast<double>(total_loads) / static_cast<double>(n_);
}

double PerformanceModel::predicted_runtime(double R,
                                           Bandwidth io_bandwidth) const {
  return std::max({t_gpu(R), t_cpu(R), t_io(R, io_bandwidth)});
}

}  // namespace rocket::model

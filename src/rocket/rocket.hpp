#pragma once

// Rocket — efficient and scalable all-pairs computations.
//
// Public umbrella header. A downstream user implements
// rocket::Application (the four functions of the paper's Fig 3) and calls
// rocket::Rocket::run_all_pairs; the runtime handles I/O, multi-level
// caching, transfers, scheduling, load balancing and overlap.
//
//   class MyApp final : public rocket::Application { ... };
//
//   rocket::Rocket engine;                      // default: one virtual GPU
//   engine.run_all_pairs(app, store, [](const rocket::PairResult& r) {
//     std::printf("(%u,%u) -> %f\n", r.left, r.right, r.score);
//   });
//
// Cluster-scale behaviour (multi-node runs, the distributed cache, the
// paper's figures) is exposed through rocket::cluster::SimCluster — a
// deterministic virtual-time backend driving the same cache and scheduling
// policies (see DESIGN.md).

#include "apps/app_model.hpp"
#include "cache/slot_cache.hpp"
#include "cluster/experiments.hpp"
#include "cluster/sim_cluster.hpp"
#include "common/units.hpp"
#include "dnc/pair_space.hpp"
#include "gpu/device_spec.hpp"
#include "model/performance_model.hpp"
#include "runtime/application.hpp"
#include "runtime/node_runtime.hpp"
#include "steal/executor.hpp"
#include "storage/object_store.hpp"

namespace rocket {

using runtime::Application;
using runtime::ItemId;
using runtime::PairResult;

/// The live engine: all-pairs execution on this machine's resources.
class Rocket {
 public:
  using Config = runtime::NodeRuntime::Config;
  using Report = runtime::NodeRuntime::Report;

  explicit Rocket(Config config = {}) : runtime_(std::move(config)) {}

  /// Evaluate every pair (i, j), i < j, of `app`'s items. Blocks until all
  /// results have been delivered to `on_result`.
  Report run_all_pairs(const Application& app, storage::ObjectStore& store,
                       const runtime::NodeRuntime::ResultFn& on_result) {
    return runtime_.run(app, store, on_result);
  }

  const Config& config() const { return runtime_.config(); }

 private:
  runtime::NodeRuntime runtime_;
};

}  // namespace rocket

#pragma once

// Rocket — efficient and scalable all-pairs computations.
//
// Public umbrella header. A downstream user implements
// rocket::Application (the four functions of the paper's Fig 3) and calls
// rocket::Rocket::run_all_pairs; the runtime handles I/O, multi-level
// caching, transfers, scheduling, load balancing and overlap.
//
//   class MyApp final : public rocket::Application { ... };
//
//   rocket::Rocket engine;                      // default: one virtual GPU
//   engine.run_all_pairs(app, store, [](const rocket::PairResult& r) {
//     std::printf("(%u,%u) -> %f\n", r.left, r.right, r.score);
//   });
//
// Cluster-scale behaviour is available through two backends running the
// same cache, directory and scheduling policies (see DESIGN.md):
//
//   * rocket::LiveCluster — a live multi-node mesh: N node runtimes on
//     real threads in one process, with the §4.1.3 distributed cache
//     (mediator directory + peer fetches), cross-node work stealing and
//     master-side result aggregation. Mirrors the single-node API:
//
//       rocket::LiveCluster::Config mesh_cfg;
//       mesh_cfg.num_nodes = 4;
//       rocket::LiveCluster mesh(mesh_cfg);
//       mesh.run_all_pairs(app, store, on_result);   // same result multiset
//
//   * rocket::cluster::SimCluster — a deterministic virtual-time backend
//     for protocol studies and regenerating the paper's figures; its
//     traffic reports use the same net::Tag taxonomy as the live mesh.

#include "apps/app_model.hpp"
#include "cache/sharded_slot_cache.hpp"
#include "cache/slot_cache.hpp"
#include "cluster/experiments.hpp"
#include "cluster/sim_cluster.hpp"
#include "common/units.hpp"
#include "dnc/pair_space.hpp"
#include "gpu/device_spec.hpp"
#include "mesh/live_cluster.hpp"
#include "model/performance_model.hpp"
#include "runtime/application.hpp"
#include "runtime/node_runtime.hpp"
#include "steal/executor.hpp"
#include "storage/object_store.hpp"

namespace rocket {

using runtime::Application;
using runtime::ItemId;
using runtime::PairResult;

/// The live multi-node engine (see mesh/live_cluster.hpp).
using mesh::LiveCluster;

/// The live engine: all-pairs execution on this machine's resources.
class Rocket {
 public:
  using Config = runtime::NodeRuntime::Config;
  using Report = runtime::NodeRuntime::Report;

  explicit Rocket(Config config = {}) : runtime_(std::move(config)) {}

  /// Evaluate every pair (i, j), i < j, of `app`'s items. Blocks until all
  /// results have been delivered to `on_result`.
  Report run_all_pairs(const Application& app, storage::ObjectStore& store,
                       const runtime::NodeRuntime::ResultFn& on_result) {
    return runtime_.run(app, store, on_result);
  }

  const Config& config() const { return runtime_.config(); }

 private:
  runtime::NodeRuntime runtime_;
};

}  // namespace rocket

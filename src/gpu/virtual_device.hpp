#pragma once

// Live-backend "GPU": a software device with real buffers.
//
// The live runtime runs application kernels as real CPU code, but the
// memory discipline of a GPU is preserved: buffers are allocated from a
// fixed device budget (allocation beyond capacity throws, exactly the
// failure the device cache exists to avoid), and transfers between host
// and device buffers are explicit copies performed by the runtime's
// dedicated H2D/D2H threads. The device's relative speed is exposed so the
// runtime can emulate heterogeneity (a Kepler-class virtual device can be
// throttled relative to a Turing-class one).

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/units.hpp"
#include "gpu/device_spec.hpp"

namespace rocket::gpu {

class VirtualDevice;

/// A buffer resident in (virtual) device memory. Movable, not copyable;
/// returns its bytes to the device budget on destruction.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;
  ~DeviceBuffer();

  std::uint8_t* data() { return bytes_.data(); }
  const std::uint8_t* data() const { return bytes_.data(); }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  std::vector<std::uint8_t>& bytes() { return bytes_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  friend class VirtualDevice;
  DeviceBuffer(VirtualDevice* owner, std::size_t size);
  void release();

  VirtualDevice* owner_ = nullptr;
  std::vector<std::uint8_t> bytes_;
};

/// Thrown when a device allocation exceeds the memory budget.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  explicit DeviceOutOfMemory(const std::string& what)
      : std::runtime_error(what) {}
};

class VirtualDevice {
 public:
  VirtualDevice(int ordinal, DeviceSpec spec)
      : ordinal_(ordinal), spec_(std::move(spec)) {}

  int ordinal() const { return ordinal_; }
  const DeviceSpec& spec() const { return spec_; }

  /// Allocate a device buffer; throws DeviceOutOfMemory if over budget.
  DeviceBuffer allocate(std::size_t size);

  Bytes allocated() const { return allocated_.load(std::memory_order_relaxed); }
  Bytes free_memory() const { return spec_.memory - allocated(); }

 private:
  friend class DeviceBuffer;
  void deallocate(std::size_t size) {
    allocated_.fetch_sub(size, std::memory_order_relaxed);
  }

  int ordinal_;
  DeviceSpec spec_;
  std::atomic<Bytes> allocated_{0};
};

}  // namespace rocket::gpu

#include "gpu/virtual_device.hpp"

#include <utility>

#include "common/log.hpp"

namespace rocket::gpu {

DeviceBuffer::DeviceBuffer(VirtualDevice* owner, std::size_t size)
    : owner_(owner), bytes_(size) {}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& other) noexcept
    : owner_(std::exchange(other.owner_, nullptr)),
      bytes_(std::move(other.bytes_)) {
  other.bytes_.clear();
}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    release();
    owner_ = std::exchange(other.owner_, nullptr);
    bytes_ = std::move(other.bytes_);
    other.bytes_.clear();
  }
  return *this;
}

DeviceBuffer::~DeviceBuffer() { release(); }

void DeviceBuffer::release() {
  if (owner_ != nullptr && !bytes_.empty()) {
    owner_->deallocate(bytes_.size());
  }
  owner_ = nullptr;
  bytes_.clear();
  bytes_.shrink_to_fit();
}

DeviceBuffer VirtualDevice::allocate(std::size_t size) {
  const Bytes before = allocated_.fetch_add(size, std::memory_order_relaxed);
  if (before + size > spec_.memory) {
    allocated_.fetch_sub(size, std::memory_order_relaxed);
    throw DeviceOutOfMemory(spec_.name + ": allocation of " +
                            format_bytes(size) + " exceeds budget (" +
                            format_bytes(spec_.memory - before) + " free)");
  }
  return DeviceBuffer(this, size);
}

}  // namespace rocket::gpu

#include "gpu/device_spec.hpp"

#include <stdexcept>

namespace rocket::gpu {

DeviceSpec k20m() {
  return DeviceSpec{"K20m", Generation::kKepler, gigabytes(5.0), 0.45,
                    gb_per_sec(10)};
}

DeviceSpec gtx980() {
  return DeviceSpec{"GTX980", Generation::kMaxwell, gigabytes(4.0), 0.80,
                    gb_per_sec(12)};
}

DeviceSpec gtx_titan() {
  return DeviceSpec{"GTX Titan", Generation::kKepler, gigabytes(6.0), 0.55,
                    gb_per_sec(10)};
}

DeviceSpec titanx_maxwell() {
  return DeviceSpec{"TitanX Maxwell", Generation::kMaxwell, gigabytes(12.0),
                    1.00, gb_per_sec(12)};
}

DeviceSpec titanx_pascal() {
  return DeviceSpec{"TitanX Pascal", Generation::kPascal, gigabytes(12.0),
                    1.80, gb_per_sec(12)};
}

DeviceSpec k40m() {
  return DeviceSpec{"K40m", Generation::kKepler, gigabytes(12.0), 0.55,
                    gb_per_sec(10)};
}

DeviceSpec rtx2080ti() {
  return DeviceSpec{"RTX2080Ti", Generation::kTuring, gigabytes(11.0), 2.40,
                    gb_per_sec(13)};
}

std::vector<DeviceSpec> known_devices() {
  return {k20m(),           gtx980(),        gtx_titan(), titanx_maxwell(),
          titanx_pascal(),  k40m(),          rtx2080ti()};
}

DeviceSpec device_by_name(const std::string& name) {
  for (const auto& spec : known_devices()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("unknown GPU: " + name);
}

const char* generation_name(Generation generation) {
  switch (generation) {
    case Generation::kKepler: return "Kepler";
    case Generation::kMaxwell: return "Maxwell";
    case Generation::kPascal: return "Pascal";
    case Generation::kTuring: return "Turing";
  }
  return "unknown";
}

}  // namespace rocket::gpu

#pragma once

// GPU device catalogue.
//
// The paper's platforms span four GPU generations (§6.5): Kepler (K20m,
// GTX Titan, K40m), Maxwell (GTX980, TitanX Maxwell), Pascal (TitanX
// Pascal) and Turing (RTX2080Ti). Rocket treats application kernels as
// black boxes, so for reproduction purposes a device is characterised by
// (a) its memory capacity, which bounds the device-level cache, and
// (b) a relative compute throughput used to scale kernel durations.
//
// Throughput ratios are calibration constants relative to the TitanX
// Maxwell (the paper's Table 1 baseline card), estimated from the cards'
// single-precision peak FLOPS and memory bandwidth; DESIGN.md documents
// this substitution. Absolute correctness is not required — the evaluation
// shapes depend only on the *relative ordering* (RTX2080Ti fastest, Kepler
// slowest), which these preserve.

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace rocket::gpu {

enum class Generation { kKepler, kMaxwell, kPascal, kTuring };

struct DeviceSpec {
  std::string name;
  Generation generation = Generation::kMaxwell;
  Bytes memory = 0;
  /// Kernel throughput relative to TitanX Maxwell (1.0). A comparison that
  /// takes t seconds on the baseline takes t / relative_speed here.
  double relative_speed = 1.0;
  /// Host<->device transfer bandwidth (PCIe gen3 x16 unless noted).
  Bandwidth pcie_bandwidth = gb_per_sec(12);

  /// Fraction of device memory usable for the slot cache (the rest is
  /// reserved for kernels, buffers and the CUDA context). 291 slots of
  /// 38.1 MB on a 12 GB TitanX Maxwell (Table 1) implies ~0.92.
  static constexpr double kCacheFraction = 0.925;
  Bytes cache_capacity() const {
    return static_cast<Bytes>(static_cast<double>(memory) * kCacheFraction);
  }

  /// Scale a baseline-kernel duration to this device.
  double scale_kernel_time(double baseline_seconds) const {
    return baseline_seconds / relative_speed;
  }
};

/// Catalogue of the cards used in the paper's evaluation.
DeviceSpec k20m();            // node I (Kepler, 5 GB)
DeviceSpec gtx980();          // node II (Maxwell, 4 GB)
DeviceSpec gtx_titan();       // node IV (Kepler, 6 GB)
DeviceSpec titanx_maxwell();  // DAS-5 baseline (Maxwell, 12 GB)
DeviceSpec titanx_pascal();   // nodes II & IV (Pascal, 12 GB)
DeviceSpec k40m();            // Cartesius (Kepler, 12 GB)
DeviceSpec rtx2080ti();       // node III (Turing, 11 GB)

/// Lookup by name; throws std::invalid_argument for unknown cards.
DeviceSpec device_by_name(const std::string& name);

/// All known specs (testing / documentation).
std::vector<DeviceSpec> known_devices();

const char* generation_name(Generation generation);

}  // namespace rocket::gpu

#pragma once

// Deterministic random number generation for Rocket.
//
// All stochastic behaviour in the simulator and the synthetic data
// generators flows through these generators so that every experiment is
// exactly reproducible from a seed. We use xoshiro256** (public-domain
// algorithm by Blackman & Vigna) seeded through splitmix64, which has far
// better statistical behaviour than std::minstd and, unlike the standard
// distributions, produces identical streams across standard libraries.

#include <array>
#include <cmath>
#include <cstdint>

namespace rocket {

/// splitmix64 — used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix, handy for hashing ids into independent seeds.
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (no cached spare: deterministic stream).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  double exponential(double mean) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -mean * std::log(u);
  }

  /// Lognormal parameterised by the *target* mean and standard deviation of
  /// the resulting distribution (not of the underlying normal). This is the
  /// fit used to turn the paper's "avg ± std" stage times into sampling
  /// distributions.
  double lognormal_from_moments(double mean, double stddev) {
    if (stddev <= 0.0 || mean <= 0.0) return mean;
    const double cv2 = (stddev / mean) * (stddev / mean);
    const double sigma2 = std::log1p(cv2);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * normal());
  }

  /// Fisher–Yates shuffle of an indexable container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// A positive duration sampler fitted to mean ± stddev. Regular stages
/// (tiny stddev) become near-constant; irregular stages heavy-tailed.
class DurationSampler {
 public:
  DurationSampler() = default;
  DurationSampler(double mean, double stddev) : mean_(mean), stddev_(stddev) {}

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

  double sample(Rng& rng) const {
    if (mean_ <= 0.0) return 0.0;
    if (stddev_ <= 0.0) return mean_;
    return rng.lognormal_from_moments(mean_, stddev_);
  }

 private:
  double mean_ = 0.0;
  double stddev_ = 0.0;
};

}  // namespace rocket

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rocket {

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    std::snprintf(line, sizeof(line), "%12.4g | %-*s %zu\n", bin_center(b),
                  static_cast<int>(width),
                  std::string(bar, '#').c_str(), counts_[b]);
    out += line;
  }
  return out;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double RollingThroughput::rate_at(double t) const {
  if (window_ <= 0.0) return 0.0;
  // stamps_ is sorted; count entries in (t - window_, t].
  const auto hi = std::upper_bound(stamps_.begin(), stamps_.end(), t);
  const auto lo = std::upper_bound(stamps_.begin(), stamps_.end(), t - window_);
  const auto n = static_cast<double>(hi - lo);
  // For early times the window is partially filled; normalise by the
  // covered span so the ramp-up is not understated.
  const double span = std::min(window_, t);
  return span > 0.0 ? n / span : 0.0;
}

std::vector<std::pair<double, double>> RollingThroughput::series(
    double horizon, double step) const {
  std::vector<std::pair<double, double>> out;
  if (step <= 0.0) return out;
  out.reserve(static_cast<std::size_t>(horizon / step) + 1);
  for (double t = step; t <= horizon + 1e-12; t += step) {
    out.emplace_back(t, rate_at(t));
  }
  return out;
}

}  // namespace rocket

#pragma once

// Minimal levelled logger. Rocket is a library: logging defaults to WARN so
// that embedding applications stay quiet; benches flip it to INFO. The
// ROCKET_LOG_LEVEL environment variable (debug|info|warn|error|off, or the
// numeric level) overrides the default at first use — the observability
// escape hatch when you cannot recompile the embedding application.

#include <cstdio>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace rocket {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parse a ROCKET_LOG_LEVEL value: case-insensitive level names
/// ("debug", "info", "warn"/"warning", "error", "off"/"none") or a bare
/// digit 0-4. nullopt on anything else (the caller keeps its default).
std::optional<LogLevel> parse_log_level(std::string_view text);

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void log(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

/// Hook fired once, immediately before ROCKET_CHECK aborts the process —
/// the black-box flight recorder's last chance to reach stable storage
/// (DESIGN.md §16). Replaces any previous hook; nullptr clears it. The
/// hook must be async-signal-tolerant in spirit: it runs on the failing
/// thread with arbitrary locks held elsewhere, so it should only touch
/// lock-free state (the flight ring qualifies) and simple I/O.
void set_check_failure_hook(std::function<void()> hook);

namespace detail {
std::string log_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Invoke (and swallow exceptions from) the registered hook, at most once
/// even if multiple threads fail checks concurrently.
void run_check_failure_hook() noexcept;
}  // namespace detail

#define ROCKET_LOG(lvl, ...)                                                \
  do {                                                                      \
    if (static_cast<int>(lvl) >=                                            \
        static_cast<int>(::rocket::Logger::instance().level())) {           \
      ::rocket::Logger::instance().log(lvl,                                 \
                                       ::rocket::detail::log_format(__VA_ARGS__)); \
    }                                                                       \
  } while (0)

#define ROCKET_DEBUG(...) ROCKET_LOG(::rocket::LogLevel::kDebug, __VA_ARGS__)
#define ROCKET_INFO(...) ROCKET_LOG(::rocket::LogLevel::kInfo, __VA_ARGS__)
#define ROCKET_WARN(...) ROCKET_LOG(::rocket::LogLevel::kWarn, __VA_ARGS__)
#define ROCKET_ERROR(...) ROCKET_LOG(::rocket::LogLevel::kError, __VA_ARGS__)

/// Invariant check that stays on in release builds: Rocket is a runtime
/// system, silent corruption is worse than an abort.
#define ROCKET_CHECK(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::rocket::Logger::instance().log(::rocket::LogLevel::kError,       \
                                       std::string("CHECK failed: ") +   \
                                           #cond + " — " + (msg));       \
      ::rocket::detail::run_check_failure_hook();                        \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

}  // namespace rocket

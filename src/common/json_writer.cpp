#include "common/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace rocket {

void JsonWriter::pre_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the separator
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::append_escaped(std::string_view text) {
  out_ += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  append_escaped(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  pre_value();
  append_escaped(text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  pre_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  pre_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  pre_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  pre_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  return write_string_to_file(path, out_);
}

bool JsonWriter::write_string_to_file(const std::string& path,
                                      const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (written != content.size()) std::fclose(f);
  return ok;
}

}  // namespace rocket

#pragma once

// A small self-contained LZSS-style byte compressor.
//
// The bioinformatics application stores proteome files "in compressed FASTA
// format" (paper §5.2); decompression is part of its CPU parse stage. We
// cannot ship zlib in this offline reproduction, so Rocket carries its own
// codec: LZ77 matching with a hash-chain searcher and a token stream of
// literal runs and (length, distance) copies, varint-encoded. It is not
// meant to rival zlib's ratio — it is meant to make the parse stage do real,
// data-dependent decompression work, like the original application's.

#include <cstdint>
#include <vector>

namespace rocket {

using ByteBuffer = std::vector<std::uint8_t>;

/// Compress `input`. Output begins with an 8-byte little-endian header
/// holding the uncompressed size.
ByteBuffer lz_compress(const ByteBuffer& input);

/// Decompress a buffer produced by lz_compress. Throws std::runtime_error
/// on malformed input.
ByteBuffer lz_decompress(const ByteBuffer& input);

}  // namespace rocket

#pragma once

// Lock-free Treiber-stack freelist for pooled objects.
//
// The live runtime recycles LoadOp pipeline-state blocks at a high rate
// from many threads; a mutex-guarded vector made every pooled allocation a
// serialization point. This stack is a single 64-bit CAS per push/pop.
//
// ABA is defeated by packing a 16-bit generation tag into the upper bits
// of the head word (user-space pointers occupy 48 bits on every platform
// we target; checked at runtime). The classic hazard — pop reads head A
// and A->next, another thread pops A and B and re-pushes A, the first
// thread's CAS would install the stale next — cannot happen because every
// successful push/pop bumps the tag.
//
// Contract: nodes must stay allocated while any thread may be inside
// try_pop (they are only deleted at shutdown, via drain()); the intrusive
// `free_next` field is owned by the freelist while a node is on it.

#include <atomic>
#include <cstdint>

#include "common/log.hpp"

namespace rocket {

/// T must expose a `std::atomic<T*> free_next` member. The field must be
/// atomic: a losing try_pop reads the next pointer of a node another
/// thread may have just popped and handed to its new owner — the tag
/// check discards the stale value, but the read itself must not be a
/// data race.
template <typename T>
class TreiberFreelist {
 public:
  TreiberFreelist() = default;
  TreiberFreelist(const TreiberFreelist&) = delete;
  TreiberFreelist& operator=(const TreiberFreelist&) = delete;

  void push(T* node) {
    std::uint64_t cur = head_.load(std::memory_order_relaxed);
    for (;;) {
      node->free_next.store(unpack(cur), std::memory_order_relaxed);
      const std::uint64_t next = pack(node, tag(cur) + 1);
      if (head_.compare_exchange_weak(cur, next, std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  T* try_pop() {
    std::uint64_t cur = head_.load(std::memory_order_acquire);
    while (unpack(cur) != nullptr) {
      T* node = unpack(cur);
      const std::uint64_t next =
          pack(node->free_next.load(std::memory_order_relaxed), tag(cur) + 1);
      if (head_.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        node->free_next.store(nullptr, std::memory_order_relaxed);
        return node;
      }
    }
    return nullptr;
  }

  /// Pop every node and hand each to `fn` (shutdown cleanup). Not
  /// concurrency-safe against push/pop.
  template <typename Fn>
  void drain(Fn&& fn) {
    while (T* node = try_pop()) fn(node);
  }

 private:
  static constexpr std::uint64_t kPtrMask = (1ULL << 48) - 1;

  static std::uint64_t pack(T* ptr, std::uint64_t tag) {
    const auto bits = reinterpret_cast<std::uintptr_t>(ptr);
    ROCKET_CHECK((bits & ~kPtrMask) == 0,
                 "pointer does not fit the 48-bit packed word");
    return static_cast<std::uint64_t>(bits) | (tag << 48);
  }
  static T* unpack(std::uint64_t word) {
    return reinterpret_cast<T*>(static_cast<std::uintptr_t>(word & kPtrMask));
  }
  static std::uint64_t tag(std::uint64_t word) { return word >> 48; }

  std::atomic<std::uint64_t> head_{0};
};

}  // namespace rocket

#include "common/log.hpp"

#include <cstdarg>
#include <cstdlib>

namespace rocket {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const auto idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "[rocket %-5s] %s\n", kNames[idx], msg.c_str());
}

namespace detail {
std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}
}  // namespace detail

}  // namespace rocket

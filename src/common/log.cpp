#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <mutex>

namespace rocket {

namespace {
std::mutex g_check_hook_mutex;
std::function<void()> g_check_hook;      // guarded by g_check_hook_mutex
std::atomic<bool> g_check_hook_fired{false};
}  // namespace

void set_check_failure_hook(std::function<void()> hook) {
  std::scoped_lock lock(g_check_hook_mutex);
  g_check_hook = std::move(hook);
  g_check_hook_fired.store(false, std::memory_order_relaxed);
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(static_cast<char>(
        c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") {
    return LogLevel::kOff;
  }
  return std::nullopt;
}

Logger& Logger::instance() {
  static Logger logger;
  // Applied once, on first use (thread-safe by static-init rules); an
  // unparsable value keeps the library default.
  static const bool env_applied = [] {
    if (const char* env = std::getenv("ROCKET_LOG_LEVEL")) {
      if (const auto level = parse_log_level(env)) logger.set_level(*level);
    }
    return true;
  }();
  (void)env_applied;
  return logger;
}

void Logger::log(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const auto idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "[rocket %-5s] %s\n", kNames[idx], msg.c_str());
}

namespace detail {
std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

void run_check_failure_hook() noexcept {
  // First failing thread wins; a second concurrent CHECK failure proceeds
  // straight to abort rather than racing the dump.
  if (g_check_hook_fired.exchange(true, std::memory_order_acq_rel)) return;
  std::function<void()> hook;
  {
    std::scoped_lock lock(g_check_hook_mutex);
    hook = g_check_hook;
  }
  if (!hook) return;
  try {
    hook();
  } catch (...) {
    // The process is already dying; the dump is best-effort.
  }
}
}  // namespace detail

}  // namespace rocket

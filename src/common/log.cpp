#include "common/log.hpp"

#include <cstdarg>
#include <cstdlib>

namespace rocket {

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(static_cast<char>(
        c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") {
    return LogLevel::kOff;
  }
  return std::nullopt;
}

Logger& Logger::instance() {
  static Logger logger;
  // Applied once, on first use (thread-safe by static-init rules); an
  // unparsable value keeps the library default.
  static const bool env_applied = [] {
    if (const char* env = std::getenv("ROCKET_LOG_LEVEL")) {
      if (const auto level = parse_log_level(env)) logger.set_level(*level);
    }
    return true;
  }();
  (void)env_applied;
  return logger;
}

void Logger::log(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const auto idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "[rocket %-5s] %s\n", kNames[idx], msg.c_str());
}

namespace detail {
std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}
}  // namespace detail

}  // namespace rocket

#include "common/compress.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace rocket {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 255 + kMinMatch;
constexpr std::size_t kWindow = 1 << 16;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1 << kHashBits;
constexpr std::size_t kMaxChain = 32;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_varint(ByteBuffer& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::uint8_t*& p, const std::uint8_t* end) {
  std::uint64_t v = 0;
  int shift = 0;
  while (p < end) {
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
    if (shift > 63) break;
  }
  throw std::runtime_error("lz_decompress: truncated varint");
}

// Token stream grammar:
//   literal run : varint(count<<1 | 0), then `count` raw bytes
//   match       : varint(((len-kMinMatch)<<1) | 1), varint(distance)
void flush_literals(ByteBuffer& out, const std::uint8_t* data,
                    std::size_t begin, std::size_t end) {
  while (begin < end) {
    const std::size_t chunk = end - begin;
    put_varint(out, static_cast<std::uint64_t>(chunk) << 1);
    out.insert(out.end(), data + begin, data + begin + chunk);
    begin += chunk;
  }
}

}  // namespace

ByteBuffer lz_compress(const ByteBuffer& input) {
  ByteBuffer out;
  out.reserve(input.size() / 2 + 16);
  // Header: uncompressed size, little-endian.
  std::uint64_t size = input.size();
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
  if (input.empty()) return out;

  const std::uint8_t* data = input.data();
  const std::size_t n = input.size();

  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(n, -1);

  std::size_t pos = 0;
  std::size_t literal_start = 0;
  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= n) {
      const std::uint32_t h = hash4(data + pos);
      std::int64_t cand = head[h];
      std::size_t chain = 0;
      while (cand >= 0 && chain < kMaxChain &&
             pos - static_cast<std::size_t>(cand) <= kWindow) {
        const auto c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        const std::size_t limit = std::min(kMaxMatch, n - pos);
        while (len < limit && data[c + len] == data[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - c;
          if (len == kMaxMatch) break;
        }
        cand = prev[c];
        ++chain;
      }
      head[h] = static_cast<std::int64_t>(pos);
      prev[pos] = cand >= 0 ? cand : prev[pos];
    }

    if (best_len >= kMinMatch) {
      flush_literals(out, data, literal_start, pos);
      put_varint(out, (static_cast<std::uint64_t>(best_len - kMinMatch) << 1) | 1);
      put_varint(out, best_dist);
      // Insert hash entries for the skipped positions so later matches can
      // reference inside this match.
      const std::size_t stop = std::min(pos + best_len, n >= kMinMatch ? n - kMinMatch + 1 : 0);
      for (std::size_t i = pos + 1; i < stop; ++i) {
        const std::uint32_t h = hash4(data + i);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      pos += best_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  flush_literals(out, data, literal_start, n);
  return out;
}

ByteBuffer lz_decompress(const ByteBuffer& input) {
  if (input.size() < 8) throw std::runtime_error("lz_decompress: short input");
  std::uint64_t size = 0;
  for (int i = 0; i < 8; ++i) size |= static_cast<std::uint64_t>(input[static_cast<std::size_t>(i)]) << (8 * i);

  ByteBuffer out;
  out.reserve(size);
  const std::uint8_t* p = input.data() + 8;
  const std::uint8_t* end = input.data() + input.size();
  while (p < end) {
    const std::uint64_t tok = get_varint(p, end);
    if (tok & 1) {
      const std::size_t len = static_cast<std::size_t>(tok >> 1) + kMinMatch;
      const auto dist = static_cast<std::size_t>(get_varint(p, end));
      if (dist == 0 || dist > out.size()) {
        throw std::runtime_error("lz_decompress: bad distance");
      }
      std::size_t from = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[from + i]);
    } else {
      const auto len = static_cast<std::size_t>(tok >> 1);
      if (static_cast<std::size_t>(end - p) < len) {
        throw std::runtime_error("lz_decompress: truncated literals");
      }
      out.insert(out.end(), p, p + len);
      p += len;
    }
  }
  if (out.size() != size) {
    throw std::runtime_error("lz_decompress: size mismatch");
  }
  return out;
}

}  // namespace rocket

#pragma once

// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
// guard on every mesh transport frame and every checkpoint-journal record
// (DESIGN.md §14). zlib-compatible: crc32("123456789") == 0xCBF43926, and
// crc32_update chains across fragments, so a record's checksum can be
// accumulated field by field without materialising a contiguous buffer.

#include <array>
#include <cstddef>
#include <cstdint>

namespace rocket {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Extend `crc` (a previous crc32 result, or 0 to start) over `size` bytes.
inline std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                  std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_update(0, data, size);
}

}  // namespace rocket

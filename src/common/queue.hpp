#pragma once

// Thread-safe queues for the live runtime. Mutex + condition-variable based
// (per C++ Core Guidelines CP.42: never wait without a condition). The hot
// producer/consumer paths in Rocket move pointers or small closures, so a
// lock-based MPMC queue is entirely adequate; lock-free structures are
// reserved for the work-stealing deque where contention patterns demand it.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rocket {

/// Unbounded multi-producer/multi-consumer FIFO. `close()` wakes all
/// blocked consumers; after close, pop() drains remaining items and then
/// returns nullopt.
template <typename T>
class MpmcQueue {
 public:
  void push(T value) {
    {
      std::scoped_lock lock(mutex_);
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Blocking pop; returns nullopt only once the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

  bool empty() const {
    std::scoped_lock lock(mutex_);
    return items_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Counting semaphore with blocking acquire. Used for Rocket's
/// concurrent-job-limit back-pressure (paper §4.2). std::counting_semaphore
/// lacks a portable "wait for k" and introspection, hence this small class.
class Semaphore {
 public:
  explicit Semaphore(std::size_t initial) : count_(initial) {}

  void acquire() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return count_ > 0; });
    --count_;
  }

  bool try_acquire() {
    std::scoped_lock lock(mutex_);
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void release() {
    {
      std::scoped_lock lock(mutex_);
      ++count_;
    }
    cv_.notify_one();
  }

  std::size_t available() const {
    std::scoped_lock lock(mutex_);
    return count_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t count_;
};

/// One-shot completion latch: count_down() until zero releases waiters.
/// (std::latch exists in C++20 but lacks try_wait-with-timeout on all
/// toolchains we target; this also tracks the count for assertions.)
class CountdownLatch {
 public:
  explicit CountdownLatch(std::size_t count) : count_(count) {}

  void count_down() {
    std::size_t remaining;
    {
      std::scoped_lock lock(mutex_);
      if (count_ > 0) --count_;
      remaining = count_;
    }
    if (remaining == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  std::size_t remaining() const {
    std::scoped_lock lock(mutex_);
    return count_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t count_;
};

}  // namespace rocket

#pragma once

// Thread-safe queues for the live runtime. Mutex + condition-variable based
// (per C++ Core Guidelines CP.42: never wait without a condition). The hot
// producer/consumer paths in Rocket move pointers or small closures, so a
// lock-based MPMC queue is entirely adequate; lock-free structures are
// reserved for the work-stealing deque where contention patterns demand it.
// Bulk push/pop amortise the lock + notify cost when the tile-batched
// execution path moves whole groups of tasks at once (see DESIGN.md §6).

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace rocket {

/// Unbounded multi-producer/multi-consumer FIFO. `close()` wakes all
/// blocked consumers; after close, pop() drains remaining items and then
/// returns nullopt.
template <typename T>
class MpmcQueue {
 public:
  void push(T value) {
    {
      std::scoped_lock lock(mutex_);
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Push every element of `values` under one lock acquisition and one
  /// notification sweep; `values` is left empty. One queue hop instead of
  /// values.size() of them.
  void push_bulk(std::vector<T>& values) {
    if (values.empty()) return;
    const std::size_t n = values.size();
    {
      std::scoped_lock lock(mutex_);
      for (auto& value : values) items_.push_back(std::move(value));
    }
    values.clear();
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  /// Blocking pop; returns nullopt only once the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Blocking bulk pop: waits for at least one item, then drains up to
  /// `max_items` under the same lock. Returns an empty vector only once the
  /// queue is closed and empty. Consumers that process items in batches cut
  /// their lock traffic by the batch factor.
  std::vector<T> pop_bulk(std::size_t max_items) {
    std::vector<T> out;
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    const std::size_t n = std::min(max_items, items_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

  bool empty() const {
    std::scoped_lock lock(mutex_);
    return items_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Counting semaphore with blocking acquire. Used for Rocket's
/// concurrent-job-limit back-pressure (paper §4.2). std::counting_semaphore
/// lacks a portable "wait for k" and introspection, hence this small class.
///
/// Benaphore-style: the count lives in an atomic so the uncontended
/// acquire/release (the common case once the pipeline is in steady state)
/// never touches the mutex. A negative count encodes the number of blocked
/// acquirers; each release past zero hands exactly one wakeup token to the
/// mutex/cv slow path, so tokens are never lost.
class Semaphore {
 public:
  explicit Semaphore(std::size_t initial)
      : count_(static_cast<std::int64_t>(initial)) {}

  void acquire() {
    if (count_.fetch_sub(1, std::memory_order_acq_rel) > 0) return;
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return wakeups_ > 0; });
    --wakeups_;
  }

  bool try_acquire() {
    auto count = count_.load(std::memory_order_relaxed);
    while (count > 0) {
      if (count_.compare_exchange_weak(count, count - 1,
                                       std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

  void release() {
    if (count_.fetch_add(1, std::memory_order_acq_rel) >= 0) return;
    {
      std::scoped_lock lock(mutex_);
      ++wakeups_;
    }
    cv_.notify_one();
  }

  std::size_t available() const {
    const auto count = count_.load(std::memory_order_acquire);
    return count > 0 ? static_cast<std::size_t>(count) : 0;
  }

 private:
  std::atomic<std::int64_t> count_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t wakeups_ = 0;
};

/// One-shot completion latch: count_down() until zero releases waiters.
/// (std::latch exists in C++20 but lacks try_wait-with-timeout on all
/// toolchains we target; this also tracks the count for assertions.)
///
/// The count is atomic so the per-task count_down — executed once per pair
/// in per-pair mode and once per *tile* in tile-batched mode — is a single
/// fetch_sub; the mutex is only taken by the final decrement to publish the
/// wakeup, and by waiters.
///
/// Also usable as an in-flight gauge: construct with 0, count_up() on
/// submission, count_down() on completion, and wait() only once all
/// submissions are in (the count then decreases monotonically to zero).
/// The mesh runtime needs this form — a node executing a partition plus
/// stolen-in work cannot know its total up front.
class CountdownLatch {
 public:
  explicit CountdownLatch(std::size_t count)
      : count_(static_cast<std::int64_t>(count)) {}

  /// Raise the expected count (gauge use; see class comment).
  void count_up(std::size_t n = 1) {
    if (n == 0) return;
    count_.fetch_add(static_cast<std::int64_t>(n), std::memory_order_acq_rel);
  }

  /// Decrement by `n` (a tile counts down its whole pair block at once).
  void count_down(std::size_t n = 1) {
    if (n == 0) return;
    const auto delta = static_cast<std::int64_t>(n);
    if (count_.fetch_sub(delta, std::memory_order_acq_rel) - delta <= 0) {
      // Synchronise with wait()'s predicate re-check before notifying.
      std::scoped_lock lock(mutex_);
      cv_.notify_all();
    }
  }

  void wait() {
    if (count_.load(std::memory_order_acquire) <= 0) return;
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return count_.load(std::memory_order_acquire) <= 0; });
  }

  std::size_t remaining() const {
    const auto count = count_.load(std::memory_order_acquire);
    return count > 0 ? static_cast<std::size_t>(count) : 0;
  }

 private:
  std::atomic<std::int64_t> count_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace rocket

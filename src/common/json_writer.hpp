#pragma once

// Minimal streaming JSON writer for Rocket's machine-readable outputs
// (RunSummary, the Chrome trace exporter, bench emissions). No DOM, no
// allocation beyond the output string: callers drive begin/end and
// key/value in document order and the writer handles commas, string
// escaping and non-finite number sanitisation (NaN/Inf are not JSON —
// they are emitted as null so downstream `json.load` never chokes on a
// failed pair's sentinel score).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rocket {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value (or a
  /// begin_object/begin_array).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(bool flag);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint32_t number) {
    return value(static_cast<std::uint64_t>(number));
  }
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& null();

  /// key + value in one call, for the common object-member case.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }

  /// Write `str()` to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

  /// Write an already-serialised document to `path`; false on I/O failure.
  static bool write_string_to_file(const std::string& path,
                                   const std::string& content);

 private:
  void pre_value();
  void append_escaped(std::string_view text);

  std::string out_;
  /// One frame per open container: true once the first element landed
  /// (so the next one needs a comma separator).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace rocket

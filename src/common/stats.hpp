#pragma once

// Online statistics and histograms used by the profiler, the simulator's
// metric collection, and the benchmark harness.

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace rocket {

/// Welford's online mean/variance accumulator. Numerically stable; O(1)
/// per observation, no sample storage.
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  void merge(const OnlineStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ = (mean_ * static_cast<double>(count_) +
             other.mean_ * static_cast<double>(other.count_)) /
            total;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-range linear-bin histogram (values outside the range clamp to the
/// first/last bin). Used to regenerate the paper's Fig 7.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  double bin_center(std::size_t bin) const;
  double bin_width() const { return width_; }

  /// ASCII rendering: one row per bin, bar scaled to `width` chars.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact quantile over stored samples. Only for modest sample counts.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// q in [0,1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Rolling-average throughput tracker: record event timestamps, then query
/// events/second over a trailing window (the paper's Fig 14 uses a one
/// minute rolling average).
class RollingThroughput {
 public:
  explicit RollingThroughput(double window_seconds)
      : window_(window_seconds) {}

  void record(double t) { stamps_.push_back(t); }
  std::size_t total() const { return stamps_.size(); }

  /// Events per second in (t - window, t]. Timestamps must have been
  /// recorded in nondecreasing order.
  double rate_at(double t) const;

  /// Sample the rolling rate on a regular grid [0, horizon] with `step`.
  std::vector<std::pair<double, double>> series(double horizon,
                                                double step) const;

 private:
  double window_;
  std::vector<double> stamps_;
};

}  // namespace rocket

#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace rocket {

std::string format_bytes(Bytes b) {
  static constexpr std::array<const char*, 5> kSuffix{"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(b);
  std::size_t idx = 0;
  while (v >= 1000.0 && idx + 1 < kSuffix.size()) {
    v /= 1000.0;
    ++idx;
  }
  char buf[32];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, kSuffix[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kSuffix[idx]);
  }
  return buf;
}

std::string format_seconds(double s) {
  char buf[32];
  if (s < 0) {
    std::snprintf(buf, sizeof(buf), "-%s", format_seconds(-s).c_str());
  } else if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else if (s < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", s / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f h", s / 3600.0);
  }
  return buf;
}

}  // namespace rocket

#pragma once

// Aligned-text table writer used by the benchmark harness to print the
// paper's tables/figure series, with a CSV sidecar for plotting.

#include <string>
#include <vector>

namespace rocket {

class TableWriter {
 public:
  explicit TableWriter(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);
  static std::string percent(double fraction, int precision = 1);

  /// Render to an aligned monospace table.
  std::string render() const;

  /// Write CSV (header + rows) to `path`. Throws std::runtime_error on
  /// failure.
  void write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rocket

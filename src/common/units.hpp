#pragma once

// Strongly-typed byte-size helpers and time units used across Rocket.
//
// Simulated time is represented as double seconds (sim::Time); wall-clock
// time uses std::chrono. These helpers keep the unit conversions in one
// place so magnitudes in configs stay readable (e.g. `40_GB`, `56_Gbps`).

#include <cstdint>
#include <string>

namespace rocket {

/// Number of bytes; an explicit alias used for all capacities and sizes.
using Bytes = std::uint64_t;

constexpr Bytes operator""_B(unsigned long long v) { return static_cast<Bytes>(v); }
constexpr Bytes operator""_KB(unsigned long long v) { return static_cast<Bytes>(v) * 1000ULL; }
constexpr Bytes operator""_MB(unsigned long long v) { return static_cast<Bytes>(v) * 1000ULL * 1000ULL; }
constexpr Bytes operator""_GB(unsigned long long v) { return static_cast<Bytes>(v) * 1000ULL * 1000ULL * 1000ULL; }
constexpr Bytes operator""_KiB(unsigned long long v) { return static_cast<Bytes>(v) << 10; }
constexpr Bytes operator""_MiB(unsigned long long v) { return static_cast<Bytes>(v) << 20; }
constexpr Bytes operator""_GiB(unsigned long long v) { return static_cast<Bytes>(v) << 30; }

/// Fractional megabytes/gigabytes for configuration values taken from the
/// paper (e.g. a 38.1 MB cache slot).
constexpr Bytes megabytes(double v) { return static_cast<Bytes>(v * 1e6); }
constexpr Bytes gigabytes(double v) { return static_cast<Bytes>(v * 1e9); }
constexpr Bytes kilobytes(double v) { return static_cast<Bytes>(v * 1e3); }

constexpr double as_mb(Bytes b) { return static_cast<double>(b) / 1e6; }
constexpr double as_gb(Bytes b) { return static_cast<double>(b) / 1e9; }

/// Bandwidths are bytes per (virtual) second.
using Bandwidth = double;

constexpr Bandwidth gbit_per_sec(double gbits) { return gbits * 1e9 / 8.0; }
constexpr Bandwidth mb_per_sec(double mb) { return mb * 1e6; }
constexpr Bandwidth gb_per_sec(double gb) { return gb * 1e9; }

/// Virtual-time durations in seconds.
constexpr double milliseconds(double ms) { return ms * 1e-3; }
constexpr double microseconds(double us) { return us * 1e-6; }
constexpr double minutes(double m) { return m * 60.0; }
constexpr double hours(double h) { return h * 3600.0; }

/// Render a byte count with a human-friendly suffix ("38.1 MB").
std::string format_bytes(Bytes b);

/// Render a duration in seconds as "1.23 ms" / "4.5 s" / "2.1 h".
std::string format_seconds(double s);

}  // namespace rocket

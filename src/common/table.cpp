#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace rocket {

void TableWriter::set_header(std::vector<std::string> columns) {
  header_ = std::move(columns);
}

void TableWriter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TableWriter::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TableWriter::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TableWriter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::string out;
  if (!title_.empty()) {
    out += "== " + title_ + " ==\n";
  }
  emit_row(header_, out);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TableWriter::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("TableWriter: cannot open " + path);
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) file << ',';
      file << csv_escape(row[c]);
    }
    file << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace rocket

#pragma once

// Jittered exponential backoff, shared by every retry loop in the runtime
// and the mesh (DESIGN.md §14). Before this helper existed the codebase
// grew two ad-hoc copies — the cache kFailed grant re-drive (microsecond
// sleeps) and the peer-fetch retransmit deadline (fractional-second
// deadlines) — with slightly different capping rules and no jitter, so
// colliding retriers re-collided in lockstep.
//
// The jitter is a pure function of (attempt, salt): no hidden RNG state,
// so a given call site's delay sequence is exactly reproducible in tests
// (the deterministic-for-test hook) while distinct salts — an item id, a
// worker index — decorrelate concurrent retriers.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/rng.hpp"

namespace rocket {

struct BackoffPolicy {
  /// Delay before the first retry (attempt 1 doubles once; see below).
  double base_s = 8e-6;
  /// Ceiling applied to the un-jittered delay; jitter can stretch a capped
  /// delay by at most `jitter` fractionally.
  double cap_s = 1e-3;
  /// Symmetric jitter fraction: the delay is scaled by a deterministic
  /// factor in [1 - jitter, 1 + jitter). 0 disables jitter entirely.
  double jitter = 0.25;
  /// Exponent clamp: attempts beyond this stop doubling (the cap usually
  /// binds first; this bounds the shift arithmetic).
  std::uint32_t max_doublings = 10;

  /// Un-jittered delay for the attempt'th retry: min(cap, base * 2^k)
  /// with k = min(attempt, max_doublings).
  constexpr double raw_delay_seconds(std::uint32_t attempt) const {
    const std::uint32_t k = std::min(attempt, std::min(max_doublings, 62u));
    const double d = base_s * static_cast<double>(1ull << k);
    return std::min(d, cap_s);
  }

  /// Jittered delay: deterministic in (attempt, salt), so tests replay the
  /// exact sequence and concurrent retriers with different salts spread.
  double delay_seconds(std::uint32_t attempt, std::uint64_t salt = 0) const {
    double d = raw_delay_seconds(attempt);
    if (jitter > 0.0) {
      const std::uint64_t h =
          mix64(salt * 0x9E3779B97F4A7C15ULL + attempt + 1);
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
      d *= 1.0 + jitter * (2.0 * u - 1.0);
    }
    return d;
  }

  void sleep_for(std::uint32_t attempt, std::uint64_t salt = 0) const {
    const auto us = static_cast<std::int64_t>(
        delay_seconds(attempt, salt) * 1e6);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
};

}  // namespace rocket

#pragma once

// Chase–Lev work-stealing deque (Chase & Lev, SPAA'05; memory orderings per
// Lê, Pop, Cocchini, Guatto, PPoPP'13).
//
// Single owner pushes/pops at the *bottom* (LIFO → the owner always works
// on the deepest, most recently split region: best locality); thieves
// steal from the *top* (FIFO → a thief takes the shallowest = largest
// available task, "the most work per steal request" exactly as §4.2
// prescribes).
//
// The deque stores pointers. Growth allocates a larger ring and retires
// the old one until destruction (safe reclamation without hazard pointers,
// standard for this structure).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace rocket::steal {

template <typename T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 1024)
      : buffer_(new Ring(round_up(initial_capacity))) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Ring* ring : retired_) delete ring;
  }

  /// Owner only: push an item at the bottom.
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(ring->capacity) - 1) {
      ring = grow(ring, t, b);
    }
    ring->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: pop the most recently pushed item (deepest task).
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = ring->get(b);
    if (t != b) return item;  // more than one element: uncontended
    // Last element: race with thieves via CAS on top.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      item = nullptr;  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return item;
  }

  /// Any thread: steal the oldest item (shallowest / largest task).
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;  // empty
    Ring* ring = buffer_.load(std::memory_order_consume);
    T* item = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race; caller may retry elsewhere
    }
    return item;
  }

  /// Approximate size (racy; for victim selection heuristics only).
  std::size_t size_hint() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_hint() const { return size_hint() == 0; }

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : capacity(cap), mask(cap - 1),
                                     slots(new std::atomic<T*>[cap]) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;

    // Lê et al. allow relaxed slot accesses (the fences around top_ /
    // bottom_ already order the payload), but release/acquire here makes
    // the pointed-to object's handoff a direct synchronizes-with edge —
    // visible to ThreadSanitizer, and free on x86.
    T* get(std::int64_t index) const {
      return slots[static_cast<std::size_t>(index) & mask].load(
          std::memory_order_acquire);
    }
    void put(std::int64_t index, T* item) {
      slots[static_cast<std::size_t>(index) & mask].store(
          item, std::memory_order_release);
    }
  };

  static std::size_t round_up(std::size_t v) {
    std::size_t cap = 64;
    while (cap < v) cap <<= 1;
    return cap;
  }

  Ring* grow(Ring* old, std::int64_t top, std::int64_t bottom) {
    auto* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = top; i < bottom; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // reclaimed at destruction
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> buffer_;
  std::vector<Ring*> retired_;  // owner-only
};

}  // namespace rocket::steal

#include "steal/executor.hpp"

#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace rocket::steal {

ExecutorStats StealExecutor::run(dnc::ItemIndex n, const LeafFn& leaf) {
  const auto total = static_cast<std::int64_t>(
      dnc::count_pairs(dnc::root_region(n)));
  std::atomic<std::int64_t> pairs_remaining{total};
  std::atomic<std::uint64_t> steals{0}, failed_sweeps{0}, leaves{0};

  std::vector<std::unique_ptr<ChaseLevDeque<dnc::Region>>> owned;
  std::vector<ChaseLevDeque<dnc::Region>*> deques;
  for (std::uint32_t w = 0; w < config_.num_workers; ++w) {
    owned.push_back(std::make_unique<ChaseLevDeque<dnc::Region>>());
    deques.push_back(owned.back().get());
  }
  if (total > 0) {
    deques[0]->push(new dnc::Region(dnc::root_region(n)));
  }

  std::vector<std::thread> threads;
  threads.reserve(config_.num_workers);
  for (std::uint32_t w = 0; w < config_.num_workers; ++w) {
    threads.emplace_back([&, w] {
      worker_loop(w, leaf, deques, pairs_remaining, steals, failed_sweeps,
                  leaves);
    });
  }
  for (auto& t : threads) t.join();

  ROCKET_CHECK(pairs_remaining.load() == 0, "executor lost pairs");
  ExecutorStats stats;
  stats.leaves = leaves.load();
  stats.steals = steals.load();
  stats.failed_steal_sweeps = failed_sweeps.load();
  return stats;
}

void StealExecutor::worker_loop(
    std::uint32_t id, const LeafFn& leaf,
    std::vector<ChaseLevDeque<dnc::Region>*>& deques,
    std::atomic<std::int64_t>& pairs_remaining,
    std::atomic<std::uint64_t>& steals,
    std::atomic<std::uint64_t>& failed_sweeps,
    std::atomic<std::uint64_t>& leaves) {
  Rng rng(config_.seed * 0x9E3779B97F4A7C15ULL + id + 1);
  ChaseLevDeque<dnc::Region>& mine = *deques[id];

  std::vector<std::uint32_t> victims;
  for (std::uint32_t w = 0; w < deques.size(); ++w) {
    if (w != id) victims.push_back(w);
  }

  while (pairs_remaining.load(std::memory_order_acquire) > 0) {
    dnc::Region* region = mine.pop();
    if (region == nullptr && !victims.empty()) {
      // Random-order sweep over all victims; steal the largest available.
      rng.shuffle(victims);
      for (const std::uint32_t victim : victims) {
        region = deques[victim]->steal();
        if (region != nullptr) {
          steals.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
    if (region == nullptr) {
      failed_sweeps.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
      continue;
    }

    // Depth-first descent to a leaf; siblings become stealable.
    dnc::Region current = *region;
    delete region;
    while (dnc::count_pairs(current) > config_.max_leaf_pairs) {
      auto children = dnc::split(current);
      current = children.front();
      for (std::size_t i = children.size(); i > 1; --i) {
        mine.push(new dnc::Region(children[i - 1]));
      }
    }
    leaf(current, id);
    leaves.fetch_add(1, std::memory_order_relaxed);
    pairs_remaining.fetch_sub(
        static_cast<std::int64_t>(dnc::count_pairs(current)),
        std::memory_order_acq_rel);
  }
}

}  // namespace rocket::steal

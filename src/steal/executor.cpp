#include "steal/executor.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace rocket::steal {

std::optional<dnc::Region> StealExporter::try_steal() {
  std::scoped_lock lock(mutex_);
  if (deques_ == nullptr) return std::nullopt;
  for (auto* deque : *deques_) {
    if (dnc::Region* region = deque->steal()) {
      const dnc::Region out = *region;
      delete region;
      return out;
    }
  }
  return std::nullopt;
}

void StealExporter::install(std::vector<ChaseLevDeque<dnc::Region>*>* deques) {
  std::scoped_lock lock(mutex_);
  deques_ = deques;
}

void StealExporter::uninstall() {
  std::scoped_lock lock(mutex_);
  deques_ = nullptr;
}

ExecutorStats StealExecutor::run(dnc::ItemIndex n, const LeafFn& leaf) {
  const auto total = static_cast<std::int64_t>(
      dnc::count_pairs(dnc::root_region(n)));
  std::atomic<std::int64_t> pairs_remaining{total};
  std::atomic<std::uint64_t> steals{0}, failed_sweeps{0}, leaves{0};

  std::vector<std::unique_ptr<ChaseLevDeque<dnc::Region>>> owned;
  std::vector<ChaseLevDeque<dnc::Region>*> deques;
  for (std::uint32_t w = 0; w < config_.num_workers; ++w) {
    owned.push_back(std::make_unique<ChaseLevDeque<dnc::Region>>());
    deques.push_back(owned.back().get());
  }
  if (total > 0) {
    if (config_.leaf_order == dnc::Traversal::kDepthFirst) {
      deques[0]->push(new dnc::Region(dnc::root_region(n)));
    } else {
      // Materialised traversal: one contiguous chunk of the ordered leaf
      // list per worker, each pushed in reverse so the owner's LIFO pops
      // walk its chunk front to back. Chunking keeps the curve's
      // adjacency within every worker and starts all workers busy —
      // seeding a single deque would turn the other workers' entire
      // share into per-leaf steals of arbitrary far-end leaves.
      const auto ordered = dnc::leaves(dnc::root_region(n),
                                       std::max<std::uint64_t>(
                                           1, config_.max_leaf_pairs),
                                       config_.leaf_order);
      const std::size_t per_worker =
          (ordered.size() + deques.size() - 1) / deques.size();
      for (std::size_t w = 0; w < deques.size(); ++w) {
        const std::size_t begin = w * per_worker;
        const std::size_t end =
            std::min(ordered.size(), begin + per_worker);
        for (std::size_t i = end; i > begin; --i) {
          deques[w]->push(new dnc::Region(ordered[i - 1]));
        }
      }
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(config_.num_workers);
  for (std::uint32_t w = 0; w < config_.num_workers; ++w) {
    threads.emplace_back([&, w] {
      worker_loop(w, leaf, deques, pairs_remaining, steals, failed_sweeps,
                  leaves);
    });
  }
  for (auto& t : threads) t.join();

  ROCKET_CHECK(pairs_remaining.load() == 0, "executor lost pairs");
  ExecutorStats stats;
  stats.leaves = leaves.load();
  stats.steals = steals.load();
  stats.failed_steal_sweeps = failed_sweeps.load();
  return stats;
}

ExecutorStats StealExecutor::run_partition(
    const std::vector<dnc::Region>& regions, const LeafFn& leaf,
    const RemoteHooks& hooks, StealExporter* exporter) {
  ROCKET_CHECK(static_cast<bool>(hooks.done),
               "run_partition needs a done hook");
  std::atomic<std::uint64_t> steals{0}, remote_steals{0}, failed_sweeps{0},
      leaves{0};

  std::vector<std::unique_ptr<ChaseLevDeque<dnc::Region>>> owned;
  std::vector<ChaseLevDeque<dnc::Region>*> deques;
  for (std::uint32_t w = 0; w < config_.num_workers; ++w) {
    owned.push_back(std::make_unique<ChaseLevDeque<dnc::Region>>());
    deques.push_back(owned.back().get());
  }
  std::size_t next = 0;
  for (const auto& region : regions) {
    if (dnc::count_pairs(region) == 0) continue;
    deques[next % deques.size()]->push(new dnc::Region(region));
    ++next;
  }
  // Scope guard: the deques must come out of the exporter before they are
  // destroyed, even if thread spawning below throws.
  struct Installation {
    StealExporter* exporter;
    ~Installation() {
      if (exporter != nullptr) exporter->uninstall();
    }
  } installation{exporter};
  if (exporter != nullptr) exporter->install(&deques);

  std::vector<std::thread> threads;
  threads.reserve(config_.num_workers);
  for (std::uint32_t w = 0; w < config_.num_workers; ++w) {
    threads.emplace_back([&, w] {
      partition_worker_loop(w, leaf, deques, hooks, steals, remote_steals,
                            failed_sweeps, leaves);
    });
  }
  for (auto& t : threads) t.join();

  // On a clean completion done() implies every pair cluster-wide finished,
  // so the deques drain empty. Leftovers mean the done hook fired early
  // (a peer node aborted and unblocked the cluster): free them and let
  // the caller surface the original failure.
  std::uint64_t leftover = 0;
  for (auto* deque : deques) {
    while (dnc::Region* region = deque->steal()) {
      leftover += dnc::count_pairs(*region);
      delete region;
    }
  }
  if (leftover > 0) {
    ROCKET_ERROR("partition run released %llu unexecuted pairs after an "
                 "aborted cluster run",
                 static_cast<unsigned long long>(leftover));
  }

  ExecutorStats stats;
  stats.leaves = leaves.load();
  stats.steals = steals.load();
  stats.remote_steals = remote_steals.load();
  stats.failed_steal_sweeps = failed_sweeps.load();
  return stats;
}

std::uint64_t StealExecutor::descend(dnc::Region current,
                                     ChaseLevDeque<dnc::Region>& mine,
                                     const LeafFn& leaf, std::uint32_t id,
                                     std::atomic<std::uint64_t>& leaves) {
  // Depth-first descent to a leaf; siblings become stealable.
  while (dnc::count_pairs(current) > config_.max_leaf_pairs) {
    auto children = dnc::split(current);
    current = children.front();
    for (std::size_t i = children.size(); i > 1; --i) {
      mine.push(new dnc::Region(children[i - 1]));
    }
  }
  leaf(current, id);
  leaves.fetch_add(1, std::memory_order_relaxed);
  return dnc::count_pairs(current);
}

void StealExecutor::worker_loop(
    std::uint32_t id, const LeafFn& leaf,
    std::vector<ChaseLevDeque<dnc::Region>*>& deques,
    std::atomic<std::int64_t>& pairs_remaining,
    std::atomic<std::uint64_t>& steals,
    std::atomic<std::uint64_t>& failed_sweeps,
    std::atomic<std::uint64_t>& leaves) {
  Rng rng(config_.seed * 0x9E3779B97F4A7C15ULL + id + 1);
  ChaseLevDeque<dnc::Region>& mine = *deques[id];

  std::vector<std::uint32_t> victims;
  for (std::uint32_t w = 0; w < deques.size(); ++w) {
    if (w != id) victims.push_back(w);
  }

  while (pairs_remaining.load(std::memory_order_acquire) > 0) {
    dnc::Region* region = mine.pop();
    if (region == nullptr && !victims.empty()) {
      // Random-order sweep over all victims; steal the largest available.
      rng.shuffle(victims);
      for (const std::uint32_t victim : victims) {
        region = deques[victim]->steal();
        if (region != nullptr) {
          steals.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
    if (region == nullptr) {
      failed_sweeps.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
      continue;
    }

    const dnc::Region current = *region;
    delete region;
    pairs_remaining.fetch_sub(
        static_cast<std::int64_t>(descend(current, mine, leaf, id, leaves)),
        std::memory_order_acq_rel);
  }
}

void StealExecutor::partition_worker_loop(
    std::uint32_t id, const LeafFn& leaf,
    std::vector<ChaseLevDeque<dnc::Region>*>& deques, const RemoteHooks& hooks,
    std::atomic<std::uint64_t>& steals,
    std::atomic<std::uint64_t>& remote_steals,
    std::atomic<std::uint64_t>& failed_sweeps,
    std::atomic<std::uint64_t>& leaves) {
  Rng rng(config_.seed * 0x9E3779B97F4A7C15ULL + id + 1);
  ChaseLevDeque<dnc::Region>& mine = *deques[id];

  std::vector<std::uint32_t> victims;
  for (std::uint32_t w = 0; w < deques.size(); ++w) {
    if (w != id) victims.push_back(w);
  }

  // Idle backoff mirrors the simulator's worker loop (1→16 ms): it bounds
  // the steal-request traffic an idle node generates while it waits for
  // the cluster-wide done signal.
  auto backoff = std::chrono::milliseconds(1);
  constexpr auto kMaxBackoff = std::chrono::milliseconds(16);

  while (!hooks.done()) {
    dnc::Region* region = mine.pop();
    if (region == nullptr && !victims.empty()) {
      rng.shuffle(victims);
      for (const std::uint32_t victim : victims) {
        region = deques[victim]->steal();
        if (region != nullptr) {
          steals.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
    if (region == nullptr && hooks.steal) {
      if (auto stolen = hooks.steal(id)) {
        remote_steals.fetch_add(1, std::memory_order_relaxed);
        descend(*stolen, mine, leaf, id, leaves);
        backoff = std::chrono::milliseconds(1);
        continue;
      }
    }
    if (region == nullptr) {
      failed_sweeps.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, kMaxBackoff);
      continue;
    }

    const dnc::Region current = *region;
    delete region;
    descend(current, mine, leaf, id, leaves);
    backoff = std::chrono::milliseconds(1);
  }
}

}  // namespace rocket::steal

#include "steal/scheduler.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rocket::steal {

RegionScheduler::RegionScheduler(Config config)
    : config_(std::move(config)), rng_(config_.seed) {
  ROCKET_CHECK(!config_.workers_per_node.empty(),
               "scheduler needs at least one node");
  for (std::uint32_t node = 0; node < config_.workers_per_node.size(); ++node) {
    std::vector<WorkerId> members;
    for (std::uint32_t g = 0; g < config_.workers_per_node[node]; ++g) {
      const auto id = static_cast<WorkerId>(deques_.size());
      deques_.emplace_back();
      worker_node_.push_back(node);
      members.push_back(id);
    }
    node_workers_.push_back(std::move(members));
  }
  ROCKET_CHECK(!deques_.empty(), "scheduler needs at least one worker");
}

void RegionScheduler::seed_root(dnc::ItemIndex n) {
  const dnc::Region root = dnc::root_region(n);
  if (!dnc::is_empty(root)) deques_[0].push_back(root);
}

void RegionScheduler::push(WorkerId worker, const dnc::Region& region) {
  if (!dnc::is_empty(region)) deques_[worker].push_back(region);
}

dnc::Region RegionScheduler::descend(WorkerId worker, dnc::Region region) {
  auto& deque = deques_[worker];
  while (dnc::count_pairs(region) > config_.max_leaf_pairs) {
    auto children = dnc::split(region);
    ++stats_.splits;
    ROCKET_CHECK(!children.empty(), "split produced no children");
    // Descend the first child; siblings become stealable work. Push them
    // in reverse so the deque's *back* (owner side) holds the next sibling
    // in natural order.
    region = children.front();
    for (std::size_t i = children.size(); i > 1; --i) {
      deque.push_back(children[i - 1]);
    }
  }
  return region;
}

std::optional<std::pair<dnc::Region, WorkerId>> RegionScheduler::try_steal(
    WorkerId thief, const std::vector<WorkerId>& victims) {
  // Random victim order, deterministic from the scheduler seed.
  std::vector<WorkerId> order;
  order.reserve(victims.size());
  for (const WorkerId v : victims) {
    if (v != thief) order.push_back(v);
  }
  rng_.shuffle(order);
  for (const WorkerId victim : order) {
    auto& deque = deques_[victim];
    if (deque.empty()) continue;
    if (config_.steal_smallest) {
      // Ablation: take the deepest (smallest) region instead.
      const dnc::Region region = deque.back();
      deque.pop_back();
      return std::pair{region, victim};
    }
    // Steal the *front*: the shallowest (largest) region — most work per
    // steal request.
    const dnc::Region region = deque.front();
    deque.pop_front();
    return std::pair{region, victim};
  }
  return std::nullopt;
}

std::optional<LeafGrant> RegionScheduler::next_leaf(WorkerId worker) {
  auto& deque = deques_[worker];
  if (!deque.empty()) {
    // Owner side: the *back* is the deepest, most local region.
    const dnc::Region region = deque.back();
    deque.pop_back();
    ++stats_.local_pops;
    return LeafGrant{descend(worker, region), Origin::kLocal, worker};
  }

  if (config_.flat_victim_selection) {
    // Ablation: one flat victim pool; every successful steal is charged as
    // remote unless the victim happens to share the node.
    std::vector<WorkerId> all;
    for (WorkerId w = 0; w < deques_.size(); ++w) all.push_back(w);
    if (auto hit = try_steal(worker, all)) {
      const bool same_node = worker_node_[hit->second] == worker_node_[worker];
      if (same_node) {
        ++stats_.intra_node_steals;
      } else {
        ++stats_.remote_steals;
      }
      return LeafGrant{descend(worker, hit->first),
                       same_node ? Origin::kIntraNode : Origin::kRemote,
                       hit->second};
    }
    return std::nullopt;
  }

  // Hierarchical stealing: same-node victims first.
  const std::uint32_t node = worker_node_[worker];
  if (auto hit = try_steal(worker, node_workers_[node])) {
    ++stats_.intra_node_steals;
    return LeafGrant{descend(worker, hit->first), Origin::kIntraNode,
                     hit->second};
  }

  // Remote: visit other nodes in random order, stealing from a random
  // worker on each.
  std::vector<std::uint32_t> nodes;
  nodes.reserve(node_workers_.size());
  for (std::uint32_t other = 0; other < node_workers_.size(); ++other) {
    if (other != node) nodes.push_back(other);
  }
  rng_.shuffle(nodes);
  for (const std::uint32_t victim_node : nodes) {
    if (auto hit = try_steal(worker, node_workers_[victim_node])) {
      ++stats_.remote_steals;
      return LeafGrant{descend(worker, hit->first), Origin::kRemote,
                       hit->second};
    }
  }
  return std::nullopt;
}

bool RegionScheduler::all_empty() const {
  return std::all_of(deques_.begin(), deques_.end(),
                     [](const auto& d) { return d.empty(); });
}

}  // namespace rocket::steal

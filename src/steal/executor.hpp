#pragma once

// Live multithreaded divide-and-conquer executor (the Constellation role).
//
// Spawns one worker thread per configured worker (the runtime launches one
// per GPU, as the paper does). Worker 0 seeds the root region; workers
// descend depth-first over their own Chase–Lev deque and steal the largest
// region from random victims when idle. The leaf callback is invoked on
// the worker's thread — Rocket's runtime uses it to submit comparison
// jobs, and its back-pressure (concurrent job limit) naturally throttles
// the executor, exactly as §4.2 describes.
//
// Two entry points:
//   * run()           — single-node: seed the root region, terminate when
//                       every pair has been handed out.
//   * run_partition() — one node of a live mesh: seed this node's share of
//                       a static partition, pull more work from peers
//                       through RemoteHooks when idle, export work to
//                       peers through a StealExporter, and terminate only
//                       on the cluster-wide done signal (local exhaustion
//                       means nothing — stolen work may still arrive).

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "dnc/pair_space.hpp"
#include "steal/deque.hpp"

namespace rocket::steal {

struct ExecutorStats {
  std::uint64_t leaves = 0;
  std::uint64_t steals = 0;         // intra-node (deque-to-deque)
  std::uint64_t remote_steals = 0;  // regions obtained from a peer node
  std::uint64_t failed_steal_sweeps = 0;
};

/// Thread-safe work-export valve for cross-node stealing: the mesh layer
/// holds one and serves peer steal requests from it while run_partition is
/// live. Outside the install window every try_steal returns nullopt, so a
/// straggling peer request after the run drains is answered empty instead
/// of touching freed deques.
class StealExporter {
 public:
  /// Steal one region from any worker's deque (the steal end holds the
  /// worker's shallowest = largest region, the paper's victim policy).
  std::optional<dnc::Region> try_steal();

 private:
  friend class StealExecutor;
  void install(std::vector<ChaseLevDeque<dnc::Region>*>* deques);
  void uninstall();

  std::mutex mutex_;
  std::vector<ChaseLevDeque<dnc::Region>*>* deques_ = nullptr;  // guarded
};

class StealExecutor {
 public:
  struct Config {
    std::uint32_t num_workers = 1;
    std::uint64_t max_leaf_pairs = 1;
    std::uint64_t seed = 1;

    /// Leaf visitation order for run(). kDepthFirst is the native
    /// work-stealing descent (root seeded, siblings re-derived on the
    /// fly — the historical schedule). Any other order materialises the
    /// leaf list up front (dnc::leaves) and seeds each worker's deque
    /// with one contiguous chunk of it, so every worker pops its chunk
    /// in exactly that order; idle workers still steal from the far
    /// end. run_partition() always uses the native descent — a mesh
    /// node's work arrives as partition fragments and stolen regions,
    /// which have no meaningful global order.
    dnc::Traversal leaf_order = dnc::Traversal::kDepthFirst;
  };

  /// Cross-node hooks for run_partition. `steal` may block briefly (it is
  /// internally bounded by a reply timeout); `done` is the cluster-wide
  /// termination flag — true only once every pair everywhere completed.
  struct RemoteHooks {
    std::function<std::optional<dnc::Region>(std::uint32_t worker)> steal;
    std::function<bool()> done;
  };

  /// leaf(region, worker) is called once for every leaf; the union of all
  /// leaf regions is exactly the root pair set.
  using LeafFn = std::function<void(const dnc::Region&, std::uint32_t)>;

  explicit StealExecutor(Config config) : config_(config) {}

  /// Execute the full n-item all-pairs decomposition. Blocks until every
  /// pair has been handed to `leaf`. Returns aggregate stats.
  ExecutorStats run(dnc::ItemIndex n, const LeafFn& leaf);

  /// Execute one node's share of a mesh run: `regions` seed the local
  /// deques (round-robin), idle workers fall back to hooks.steal after a
  /// failed local sweep, and the loop exits only when hooks.done() — by
  /// which point every locally seeded or stolen-in region has either been
  /// executed here or been exported through `exporter`. `exporter` may be
  /// null (no work export).
  ExecutorStats run_partition(const std::vector<dnc::Region>& regions,
                              const LeafFn& leaf, const RemoteHooks& hooks,
                              StealExporter* exporter);

 private:
  void worker_loop(std::uint32_t id, const LeafFn& leaf,
                   std::vector<ChaseLevDeque<dnc::Region>*>& deques,
                   std::atomic<std::int64_t>& pairs_remaining,
                   std::atomic<std::uint64_t>& steals,
                   std::atomic<std::uint64_t>& failed_sweeps,
                   std::atomic<std::uint64_t>& leaves);

  void partition_worker_loop(std::uint32_t id, const LeafFn& leaf,
                             std::vector<ChaseLevDeque<dnc::Region>*>& deques,
                             const RemoteHooks& hooks,
                             std::atomic<std::uint64_t>& steals,
                             std::atomic<std::uint64_t>& remote_steals,
                             std::atomic<std::uint64_t>& failed_sweeps,
                             std::atomic<std::uint64_t>& leaves);

  /// Depth-first descent: split `region` down to a leaf, pushing siblings
  /// onto `mine`, then invoke leaf. Returns the leaf's pair count.
  std::uint64_t descend(dnc::Region region, ChaseLevDeque<dnc::Region>& mine,
                        const LeafFn& leaf, std::uint32_t id,
                        std::atomic<std::uint64_t>& leaves);

  Config config_;
};

}  // namespace rocket::steal

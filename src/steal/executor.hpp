#pragma once

// Live multithreaded divide-and-conquer executor (the Constellation role).
//
// Spawns one worker thread per configured worker (the runtime launches one
// per GPU, as the paper does). Worker 0 seeds the root region; workers
// descend depth-first over their own Chase–Lev deque and steal the largest
// region from random victims when idle. The leaf callback is invoked on
// the worker's thread — Rocket's runtime uses it to submit comparison
// jobs, and its back-pressure (concurrent job limit) naturally throttles
// the executor, exactly as §4.2 describes.

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "dnc/pair_space.hpp"
#include "steal/deque.hpp"

namespace rocket::steal {

struct ExecutorStats {
  std::uint64_t leaves = 0;
  std::uint64_t steals = 0;
  std::uint64_t failed_steal_sweeps = 0;
};

class StealExecutor {
 public:
  struct Config {
    std::uint32_t num_workers = 1;
    std::uint64_t max_leaf_pairs = 1;
    std::uint64_t seed = 1;
  };

  /// leaf(region, worker) is called once for every leaf; the union of all
  /// leaf regions is exactly the root pair set.
  using LeafFn = std::function<void(const dnc::Region&, std::uint32_t)>;

  explicit StealExecutor(Config config) : config_(config) {}

  /// Execute the full n-item all-pairs decomposition. Blocks until every
  /// pair has been handed to `leaf`. Returns aggregate stats.
  ExecutorStats run(dnc::ItemIndex n, const LeafFn& leaf);

 private:
  void worker_loop(std::uint32_t id, const LeafFn& leaf,
                   std::vector<ChaseLevDeque<dnc::Region>*>& deques,
                   std::atomic<std::int64_t>& pairs_remaining,
                   std::atomic<std::uint64_t>& steals,
                   std::atomic<std::uint64_t>& failed_sweeps,
                   std::atomic<std::uint64_t>& leaves);

  Config config_;
};

}  // namespace rocket::steal

#pragma once

// Deterministic locality-aware work-stealing scheduler (policy object).
//
// Implements §4.2's discipline over the dnc quadrant decomposition:
//   * each worker owns a deque of regions; owners work depth-first (pop the
//     deepest region, split, descend the first child, push the siblings) —
//     "workers always prioritize local tasks at the lowest level";
//   * idle workers steal the *front* (shallowest = largest) region,
//     hierarchically: victims on the same node are tried before random
//     remote nodes ("workers first attempt to steal from a worker on the
//     same node before selecting a remote node");
//   * the master worker seeds the root region ("the master node spawns a
//     single root task representing the entire matrix").
//
// This class is single-threaded and deterministic (seeded victim
// selection); it is the scheduling brain of the DES cluster. The live
// runtime uses the same splitting discipline over Chase–Lev deques
// (steal/executor.hpp), whose concurrent semantics match this policy.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "dnc/pair_space.hpp"

namespace rocket::steal {

using WorkerId = std::uint32_t;

enum class Origin { kLocal, kIntraNode, kRemote };

struct LeafGrant {
  dnc::Region region;
  Origin origin = Origin::kLocal;
  WorkerId victim = 0;  // meaningful for steals
};

struct SchedulerStats {
  std::uint64_t local_pops = 0;
  std::uint64_t intra_node_steals = 0;
  std::uint64_t remote_steals = 0;
  std::uint64_t splits = 0;
};

class RegionScheduler {
 public:
  struct Config {
    /// workers_per_node[i] = number of workers (GPUs) on node i.
    std::vector<std::uint32_t> workers_per_node;
    std::uint64_t max_leaf_pairs = 1;
    std::uint64_t seed = 1;

    /// Ablation knobs (benchmarked in bench_ablation):
    /// steal the *deepest* region instead of the largest — degrades the
    /// work-per-steal ratio the paper's policy optimises for.
    bool steal_smallest = false;
    /// ignore the node hierarchy when choosing victims — degrades
    /// intra-node locality.
    bool flat_victim_selection = false;
  };

  explicit RegionScheduler(Config config);

  /// Seed the root region (whole n×n upper triangle) on worker 0.
  void seed_root(dnc::ItemIndex n);

  /// Push an arbitrary region onto a worker's deque (testing / restarts).
  void push(WorkerId worker, const dnc::Region& region);

  /// Get the next leaf for `worker`: pops locally, splitting down to a
  /// leaf; steals hierarchically when the local deque is empty. Returns
  /// nullopt when no work exists anywhere right now (more may appear if
  /// other workers split later — callers should re-poll).
  std::optional<LeafGrant> next_leaf(WorkerId worker);

  bool all_empty() const;
  std::uint32_t num_workers() const {
    return static_cast<std::uint32_t>(deques_.size());
  }
  std::uint32_t node_of(WorkerId worker) const { return worker_node_[worker]; }
  const SchedulerStats& stats() const { return stats_; }
  std::size_t deque_size(WorkerId worker) const {
    return deques_[worker].size();
  }

 private:
  /// Depth-first descent: split region until it is a leaf, pushing siblings
  /// onto the worker's deque.
  dnc::Region descend(WorkerId worker, dnc::Region region);

  /// Try to steal the largest region from any worker in `victims`
  /// (excluding the thief), in random order. Returns the victim on success.
  std::optional<std::pair<dnc::Region, WorkerId>> try_steal(
      WorkerId thief, const std::vector<WorkerId>& victims);

  Config config_;
  std::vector<std::deque<dnc::Region>> deques_;
  std::vector<std::uint32_t> worker_node_;
  std::vector<std::vector<WorkerId>> node_workers_;
  Rng rng_;
  SchedulerStats stats_;
};

}  // namespace rocket::steal

#pragma once

// Live (wall-clock, multi-threaded) Rocket runtime for one node.
//
// This is the asynchronous engine of §4.3: dedicated threads per resource
// class — a CPU pool, one kernel/H2D/D2H thread per (virtual) GPU and one
// I/O thread — connected by queues. Comparison jobs flow through the same
// SlotCache policy objects as the simulator (Fig 4 semantics): device-level
// cache per GPU, node-level host cache shared by all GPUs. The
// divide-and-conquer work-stealing executor (§4.2) drives submission, one
// worker per GPU, throttled by the concurrent-job limit.
//
// "GPU" kernels execute as real CPU code against device-resident buffers;
// heterogeneity is emulated by stretching kernel wall time on slower
// device models (the RTX-class virtual card runs at full speed, a Kepler
// card sleeps proportionally), which preserves the load-balancing
// behaviour the paper demonstrates in §6.5.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/slot_cache.hpp"
#include "gpu/device_spec.hpp"
#include "runtime/application.hpp"
#include "runtime/profiler.hpp"
#include "steal/executor.hpp"
#include "storage/object_store.hpp"

namespace rocket::runtime {

class NodeRuntime {
 public:
  struct Config {
    std::vector<gpu::DeviceSpec> devices{gpu::titanx_maxwell()};

    /// Host-cache budget in bytes (0 disables the host level).
    Bytes host_cache_capacity = 1_GiB;

    /// Device-cache budget per GPU; 0 = the device's own capacity. Small
    /// values are useful on development machines (the paper's Fig 9 knob).
    Bytes device_cache_capacity = 0;

    std::uint32_t cpu_threads = 2;

    /// Concurrent jobs per worker (§4.2); clamped to half the device
    /// slot count so two pins per job can never wedge allocation. In
    /// tile-batched mode this counts *tiles* in flight, and each tile's
    /// working set is capped at (device slots / tiles in flight) so the
    /// concurrent pin demand can never exceed the slot supply.
    std::uint32_t job_limit_per_worker = 8;

    /// Execute leaf regions as single tile jobs: the whole working set is
    /// pinned through one batched cache acquire, every compare of the tile
    /// runs as one GPU-queue task, and results flush to on_result in one
    /// locked batch. false selects the historical per-pair job pipeline
    /// (kept for head-to-head benchmarking; results are mode-invariant).
    bool tile_batching = true;

    /// Leaf budget of the divide-and-conquer decomposition (§4.2). Leaves
    /// near the device working-set budget amortise pins and queue hops
    /// best; 64 pairs ≈ a 8×8 tile.
    std::uint64_t max_leaf_pairs = 64;
    std::uint64_t seed = 1;

    /// Stretch kernel wall time on slower device models (see file header).
    bool emulate_heterogeneity = true;

    /// Record a full task trace (Fig 6); cheap busy counters are always on.
    bool trace = false;
  };

  struct Report {
    std::uint64_t pairs = 0;
    std::uint64_t tiles = 0;        // tile jobs executed (0 in per-pair mode)
    std::uint64_t loads = 0;        // load-pipeline executions
    double reuse_factor = 0.0;      // loads / n
    double wall_seconds = 0.0;
    cache::CacheStats host_cache;
    std::vector<cache::CacheStats> device_caches;
    std::vector<std::uint64_t> pairs_per_device;
    steal::ExecutorStats steal;
    std::vector<std::pair<std::string, double>> lane_busy;
    std::string timeline;  // rendered trace when Config::trace
  };

  /// Called once per completed pair, serialised by the runtime.
  using ResultFn = std::function<void(const PairResult&)>;

  explicit NodeRuntime(Config config) : config_(std::move(config)) {}

  /// Run the full all-pairs computation for `app`, reading inputs from
  /// `store`. Blocks until every pair has been processed.
  Report run(const Application& app, storage::ObjectStore& store,
             const ResultFn& on_result);

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace rocket::runtime

#pragma once

// Live (wall-clock, multi-threaded) Rocket runtime for one node.
//
// This is the asynchronous engine of §4.3: dedicated threads per resource
// class — a CPU pool, one kernel/H2D/D2H thread per (virtual) GPU and one
// I/O thread — connected by queues. Comparison jobs flow through the same
// SlotCache policy objects as the simulator (Fig 4 semantics): device-level
// cache per GPU, node-level host cache shared by all GPUs. The
// divide-and-conquer work-stealing executor (§4.2) drives submission, one
// worker per GPU, throttled by the concurrent-job limit.
//
// "GPU" kernels execute as real CPU code against device-resident buffers;
// heterogeneity is emulated by stretching kernel wall time on slower
// device models (the RTX-class virtual card runs at full speed, a Kepler
// card sleeps proportionally), which preserves the load-balancing
// behaviour the paper demonstrates in §6.5.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/slot_cache.hpp"
#include "gpu/device_spec.hpp"
#include "runtime/application.hpp"
#include "runtime/peer_fetch.hpp"
#include "runtime/profiler.hpp"
#include "steal/executor.hpp"
#include "storage/object_store.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/trace.hpp"

namespace rocket::runtime {

/// Wiring of one NodeRuntime into a live multi-node mesh (src/mesh/). The
/// runtime never blocks unboundedly on a peer: the steal hook times out
/// internally and peer fetches always complete (falling back to the
/// object store), which is the mesh's deadlock-freedom invariant
/// (DESIGN.md §9).
struct MeshPort {
  /// This node's share of the static pair-space partition; further work
  /// may arrive through remote_steal.
  std::vector<dnc::Region> regions;

  /// Cross-node steal: called on an executor worker thread after a failed
  /// local sweep. May block briefly (bounded by a reply timeout inside the
  /// mesh); returns a region stolen from a peer or nullopt.
  std::function<std::optional<dnc::Region>(std::uint32_t worker)>
      remote_steal;

  /// Cluster-wide termination: true once every pair everywhere completed.
  std::function<bool()> global_done;

  /// Peer-side provider of parsed items, consulted on a host-cache miss
  /// before the object store. May be null; ignored when the host cache
  /// level is disabled (the distributed cache fills host slots, exactly as
  /// in the simulated cluster).
  PeerFetchClient* peer_fetch = nullptr;

  /// Called with the engine's host-cache probe just before execution
  /// starts and with nullptr once the run has drained, so the mesh serves
  /// peer probes only while the engine is live.
  std::function<void(HostCacheProbe*)> register_probe;

  /// Same contract for the executor's work exporter (steal-victim side).
  std::function<void(steal::StealExporter*)> register_exporter;

  /// Telemetry sampler registration: called with the engine's live-stats
  /// provider before execution starts and with an empty function once the
  /// run has drained, so the mesh's snapshot ticker samples only a live
  /// engine (DESIGN.md §13).
  std::function<void(telemetry::NodeStatsFn)> register_stats;
};

class NodeRuntime {
 public:
  struct Config {
    std::vector<gpu::DeviceSpec> devices{gpu::titanx_maxwell()};

    /// Host-cache budget in bytes (0 disables the host level).
    Bytes host_cache_capacity = 1_GiB;

    /// Device-cache budget per GPU; 0 = the device's own capacity. Small
    /// values are useful on development machines (the paper's Fig 9 knob).
    Bytes device_cache_capacity = 0;

    std::uint32_t cpu_threads = 2;

    /// Shard count for the host and device software caches
    /// (cache::ShardedSlotCache). 0 = auto: min(16, hardware threads).
    /// 1 reproduces the historical single-lock policy exactly (the
    /// simulator/paper-replay escape hatch). Device caches may be clamped
    /// further so the batched-pinning deadlock-freedom invariant holds
    /// per shard (see DESIGN.md §10).
    std::uint32_t cache_shards = 0;

    /// Concurrent jobs per worker (§4.2); clamped to half the device
    /// slot count so two pins per job can never wedge allocation. In
    /// tile-batched mode this counts *tiles* in flight, and each tile's
    /// working set is capped at (device slots / tiles in flight) so the
    /// concurrent pin demand can never exceed the slot supply.
    std::uint32_t job_limit_per_worker = 8;

    /// Execute leaf regions as single tile jobs: the whole working set is
    /// pinned through one batched cache acquire, every compare of the tile
    /// runs as one GPU-queue task, and results flush to on_result in one
    /// locked batch. false selects the historical per-pair job pipeline
    /// (kept for head-to-head benchmarking; results are mode-invariant).
    bool tile_batching = true;

    /// Look-ahead prefetch window per device, in tiles (tile-batched mode
    /// only; ignored on the per-pair path). The per-device job budget
    /// splits into a *compute* budget (job_limit_per_worker, clamped as
    /// before) and this many additional in-flight tiles whose missing
    /// items are driven through the load pipeline ahead of need, so the
    /// kernels for tile T overlap the I/O/parse/H2D stages of tiles
    /// T+1..T+W (§4.3's transfer/compute overlap carried into the
    /// scheduler). The deadlock-freedom invariant generalises: compute
    /// demand + prefetch demand ≤ device slots per shard, so tile working
    /// sets clamp against the combined budget (and the window itself is
    /// clamped on slot-starved devices). 0 = off: bit-identical to the
    /// pre-prefetch schedule.
    std::uint32_t prefetch_tiles = 0;

    /// Leaf visitation order (dnc::Traversal). kDepthFirst is the
    /// executor's native descent — the historical schedule; kHilbert
    /// orders tiles along a Hilbert curve so consecutive tiles share rows
    /// or columns (fewer cold items per step, fewer loads under a small
    /// cache); kRowMajor is the locality baseline for head-to-heads.
    dnc::Traversal leaf_order = dnc::Traversal::kDepthFirst;

    /// Leaf budget of the divide-and-conquer decomposition (§4.2). Leaves
    /// near the device working-set budget amortise pins and queue hops
    /// best; 64 pairs ≈ a 8×8 tile.
    std::uint64_t max_leaf_pairs = 64;
    std::uint64_t seed = 1;

    /// Bound on consecutive kFailed cache-grant re-drives per item before
    /// the terminal error path fires (host-level bypass for loads, a NaN
    /// result for a per-pair job, a failed item for a tile). Re-drives
    /// back off exponentially (microsecond scale, capped at 1 ms), so a
    /// persistently aborting writer can neither livelock the runtime nor
    /// spin a core. Counted in Report::acquire_retries.
    std::uint32_t max_acquire_retries = 64;

    /// Stretch kernel wall time on slower device models (see file header).
    bool emulate_heterogeneity = true;

    /// Grey-failure straggler injection (DESIGN.md §15): stretch every
    /// kernel's wall time by this factor on top of the heterogeneity
    /// stretch. 1 = off. Used by chaos tests and the demo's --slow-node.
    double kernel_slowdown = 1.0;

    /// Transient store errors (storage::TransientStoreError) retry in
    /// place on the I/O lane with jittered backoff, up to this many
    /// retries per load; one more failure fails the item through the
    /// NaN-pair path. Permanent errors never retry.
    std::uint32_t max_load_retries = 4;

    /// Run-level cap on tolerated transient store errors, shared by all
    /// loads (0 = unlimited). Once spent, further transient errors become
    /// terminal immediately — a store that is *persistently* flaky fails
    /// fast instead of stretching the run with per-load retry cycles.
    std::uint64_t load_error_budget = 0;

    /// Record a full task trace (Fig 6); cheap busy counters are always on.
    bool trace = false;

    /// Metrics layer on/off (DESIGN.md §13). Off also disarms the
    /// profiler's busy accounting — the "telemetry off" configuration the
    /// overhead bench measures against. Report fields derived from busy
    /// time (device_busy/stall_seconds, lane_busy) read zero when off.
    bool telemetry = true;

    /// Per-lane span retention cap when `trace` is on; overflow counts in
    /// Report::spans_dropped instead of growing without bound. 0 = no cap.
    std::size_t max_spans_per_lane = Profiler::kDefaultSpanCap;

    /// Optional sink for discrete trace events (prefetch parks); shared
    /// with the mesh layer's event stream by LiveCluster. May be null.
    telemetry::EventLog* event_log = nullptr;

    // --- causal tracing (DESIGN.md §16) ---

    /// Sampled causal-span sink (shared with the mesh layer by
    /// LiveCluster; owned by the caller). Null disables tile span DAGs.
    telemetry::SpanLog* span_log = nullptr;

    /// Every Nth tile — deterministically, by region identity under
    /// `seed` — gets a full causal trace rooted at its tile span; item
    /// peer-fetches sample by item identity under the same knob. 0
    /// disables sampling entirely.
    std::uint32_t trace_sample_n = 0;
  };

  struct Report {
    std::uint64_t pairs = 0;
    std::uint64_t tiles = 0;        // tile jobs executed (0 in per-pair mode)
    std::uint64_t loads = 0;        // object-store load-pipeline executions
    std::uint64_t peer_loads = 0;   // loads served from a peer's host cache
    double reuse_factor = 0.0;      // loads / n
    double wall_seconds = 0.0;
    cache::CacheStats host_cache;   // merged over host-cache shards
    std::vector<cache::CacheStats> device_caches;  // merged per device
    /// Read pins granted by the shards' lock-free fast path, host +
    /// devices. Counts both acquire hits (folded into the hit totals
    /// above) and remote probe pins (counted in the probe counters, not
    /// in hits). 0 when cache_shards == 1.
    std::uint64_t cache_fast_hits = 0;
    std::vector<std::uint64_t> pairs_per_device;
    /// Tiles whose working set finished loading while every compute slot
    /// of their device was busy — i.e. loads that the prefetch window
    /// fully overlapped with computation. 0 when prefetch_tiles == 0.
    std::uint64_t prefetch_hits = 0;
    /// kFailed cache-grant re-drives (bounded by max_acquire_retries).
    std::uint64_t acquire_retries = 0;
    /// Transient store-read retries absorbed by the backoff budget
    /// (DESIGN.md §15) and loads that exhausted it (or hit a permanent
    /// error) and fell through to the failed-item path.
    std::uint64_t load_retries = 0;
    std::uint64_t failed_loads = 0;
    /// Per-device GPU-lane busy seconds (compare + preprocess kernels).
    std::vector<double> device_busy_seconds;
    /// Per-device load-stall seconds: wall time minus GPU-lane busy time —
    /// the time the device sat idle waiting for data (plus scheduling
    /// slack). The quantity the prefetch pipeline exists to shrink.
    std::vector<double> device_stall_seconds;
    double stall_seconds = 0.0;  // sum of device_stall_seconds
    steal::ExecutorStats steal;
    std::vector<std::pair<std::string, double>> lane_busy;
    std::string timeline;  // rendered trace when Config::trace
    /// Hot-seam latency histograms + counters/gauges (DESIGN.md §13);
    /// empty instruments when Config::telemetry is off.
    telemetry::MetricsSnapshot metrics;
    /// Chrome-trace input (lanes + epoch offset) when Config::trace.
    telemetry::NodeTrace trace;
    /// Spans discarded at Config::max_spans_per_lane.
    std::uint64_t spans_dropped = 0;
  };

  /// Called once per completed pair, serialised by the runtime.
  using ResultFn = std::function<void(const PairResult&)>;

  explicit NodeRuntime(Config config) : config_(std::move(config)) {}

  /// Run the full all-pairs computation for `app`, reading inputs from
  /// `store`. Blocks until every pair has been processed.
  Report run(const Application& app, storage::ObjectStore& store,
             const ResultFn& on_result);

  /// Run one node's share of a live mesh computation: execute
  /// `port.regions` (plus anything stolen from peers), serving peer cache
  /// probes and steal requests meanwhile. `pairs` in the report counts
  /// pairs this node executed. Blocks until `port.global_done` — i.e.
  /// until the whole cluster finished, not just this node.
  Report run_partition(const Application& app, storage::ObjectStore& store,
                       const ResultFn& on_result, const MeshPort& port);

  const Config& config() const { return config_; }

 private:
  Report run_impl(const Application& app, storage::ObjectStore& store,
                  const ResultFn& on_result, const MeshPort* port);

  Config config_;
};

}  // namespace rocket::runtime

#include "runtime/node_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "cache/sharded_slot_cache.hpp"
#include "common/backoff.hpp"
#include "common/compress.hpp"
#include "common/freelist.hpp"
#include "common/log.hpp"
#include "common/queue.hpp"

namespace rocket::runtime {

namespace {

using Task = std::function<void()>;
using Grant = cache::SlotCache::Grant;
using Outcome = cache::SlotCache::Outcome;
using AllocPriority = cache::SlotCache::AllocPriority;

/// Batch size for worker drains: one lock acquisition hands a worker up to
/// this many tasks (tasks are short; larger batches only add latency).
constexpr std::size_t kDrainBatch = 16;

/// CPU-pool task tagged with the profiler kind it should be recorded as.
/// Parse, postprocess and control continuations share the pool but must not
/// share a lane attribution (control time inflating parse utilisation was
/// a long-standing Fig-14 artefact).
struct CpuTask {
  TaskKind kind = TaskKind::kOther;
  Task fn;
};

/// Capped exponential backoff between kFailed grant re-drives. A kFailed
/// grant means another job's writer aborted under us — re-driving
/// instantly against a persistently failing writer is a livelock (the two
/// parties re-queue against each other forever at full speed); a few
/// microseconds of backoff breaks the cycle and the attempt bound below
/// makes termination unconditional.
void retry_backoff(std::uint32_t attempt) {
  // Shared jittered-exponential policy (common/backoff.hpp): 8 µs base,
  // 1 ms cap — the same envelope the old hand-rolled min(1000, 8 << k)
  // loop had, plus jitter so two writers that abort each other don't
  // re-drive in lockstep. Salting with the attempt keeps the sequence a
  // pure function of the retry count (deterministic for tests).
  constexpr BackoffPolicy kGrantRetry{8e-6, 1e-3, 0.25, 7};
  kGrantRetry.sleep_for(attempt, attempt);
}

/// Causal-trace timestamps live on the shared cluster timeline (seconds
/// since telemetry::process_epoch(), DESIGN.md §16).
double trace_now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       telemetry::process_epoch())
      .count();
}

/// Sampling key of a tile: a hash of its region identity, so the sampled
/// population is a pure function of the pair-space decomposition and the
/// run seed — replays trace the same tiles.
std::uint64_t tile_trace_key(const dnc::Region& r) {
  std::uint64_t key = telemetry::span_mix(0x74696c65 /* 'tile' */);
  key = telemetry::span_mix(key ^ r.row_begin);
  key = telemetry::span_mix(key ^ r.row_end);
  key = telemetry::span_mix(key ^ r.col_begin);
  key = telemetry::span_mix(key ^ r.col_end);
  return key;
}

/// Worker thread body: drain a queue in batches. The queue closes at
/// shutdown.
void drain(MpmcQueue<Task>& queue) {
  for (;;) {
    auto batch = queue.pop_bulk(kDrainBatch);
    if (batch.empty()) return;
    for (auto& task : batch) task();
  }
}

struct Engine;

/// Per-device state: virtual GPU, device-level cache + buffers, and the
/// three dedicated threads' queues (kernel, H2D, D2H). The cache is a
/// sharded concurrent cache — it owns its own (per-shard) locking, so the
/// runtime calls it directly from any thread.
struct TileJob;

struct DeviceState {
  gpu::VirtualDevice vdev;
  std::unique_ptr<cache::ShardedSlotCache> cache;
  std::vector<gpu::DeviceBuffer> slots;
  MpmcQueue<Task> gpu_q, h2d_q, d2h_q;
  std::size_t gpu_lane = 0, h2d_lane = 0, d2h_lane = 0;
  double stretch = 0.0;  // extra sleep per kernel second (heterogeneity)
  /// Max distinct items one tile may pin; sized so that (tiles in flight,
  /// compute + prefetch) × (working set per tile) never exceeds the slot
  /// count — the invariant that makes batched pinning deadlock-free.
  std::uint32_t tile_ws_budget = 2;
  std::atomic<std::uint64_t> pairs{0};

  /// Compute gate of the prefetch pipeline: at most `compute_limit` tiles
  /// may occupy the GPU compare stage; resolved tiles beyond that wait in
  /// `ready_tiles` and are launched by the finishing tile's GPU task — the
  /// handoff never round-trips through the executor. With prefetch off,
  /// tiles in flight never exceed the token supply and the gate is
  /// pass-through (identical schedule). Tokens are released by the GPU
  /// task itself, so they always cycle and the gate cannot wedge.
  std::mutex gate_mutex;
  std::deque<TileJob*> ready_tiles;  // guarded by gate_mutex
  std::uint32_t compute_tokens = 0;  // guarded by gate_mutex
  std::uint32_t compute_limit = 0;
  /// Tiles in flight on this device; admissions beyond compute_limit are
  /// the prefetch lane (their cache allocations yield to compute tiles').
  std::atomic<std::uint32_t> in_flight{0};

  DeviceState(int ordinal, const gpu::DeviceSpec& spec)
      : vdev(ordinal, spec) {}
};

struct LoadOp;
struct LoadClient;

struct Engine {
  const NodeRuntime::Config& cfg;
  const Application& app;
  storage::ObjectStore& store;
  const NodeRuntime::ResultFn& on_result;
  Profiler profiler;

  /// Hot-seam instruments (DESIGN.md §13). Recording is lock-free (striped
  /// atomics) and cheap-exits when Config::telemetry is off; the pointers
  /// are bound once at construction so the hot paths never touch the
  /// registry's name lookup.
  telemetry::MetricsRegistry metrics;
  telemetry::LatencyHistogram* tile_latency = nullptr;    // submit → finish
  telemetry::LatencyHistogram* tile_load_wait = nullptr;  // submit → resolved
  telemetry::LatencyHistogram* cache_wait = nullptr;      // queued grants
  telemetry::Gauge* result_depth = nullptr;   // result_q occupancy
  telemetry::Gauge* loads_inflight = nullptr; // LoadOps out of the pool

  std::vector<std::unique_ptr<DeviceState>> devices;
  std::unique_ptr<cache::ShardedSlotCache> host_cache;  // null if disabled
  std::vector<HostBuffer> host_slots;

  MpmcQueue<Task> io_q;
  MpmcQueue<CpuTask> cpu_q;
  std::size_t io_lane = 0;
  std::vector<std::size_t> cpu_lanes;

  std::vector<std::unique_ptr<Semaphore>> job_limits;  // per worker/device
  /// In-flight pair gauge: count_up at leaf submission, count_down at pair
  /// completion; waited on only after the executor returns (all
  /// submissions in). This form works for both the single-node run (total
  /// known) and a mesh partition run (stolen-in work makes the total
  /// unknowable up front).
  std::unique_ptr<CountdownLatch> done;
  std::atomic<std::uint64_t> loads{0};
  std::atomic<std::uint64_t> peer_loads{0};
  std::atomic<std::uint64_t> tiles{0};
  std::atomic<std::uint64_t> prefetch_hits{0};
  std::atomic<std::uint64_t> acquire_retries{0};
  std::atomic<std::uint64_t> load_retries{0};
  std::atomic<std::uint64_t> failed_loads{0};
  /// Remaining run-level transient-error allowance (DESIGN.md §15);
  /// meaningful only when cfg.load_error_budget > 0.
  std::atomic<std::int64_t> load_error_budget{0};

  /// Spend one unit of the run-level transient-error budget. Returns
  /// false once the budget is exhausted (always true when unlimited).
  bool consume_load_error_budget() {
    if (cfg.load_error_budget == 0) return true;
    return load_error_budget.fetch_sub(1, std::memory_order_acq_rel) > 0;
  }

  /// Completed results flow through this queue to one dedicated consumer
  /// thread, which is the only caller of on_result — compare/postprocess
  /// threads just enqueue (a tile flushes its whole buffer in one bulk
  /// push) and never serialize on the user callback.
  MpmcQueue<PairResult> result_q;

  /// Cluster peer-fetch hook (mesh runs only; null single-node).
  PeerFetchClient* peer_fetch = nullptr;

  /// Cluster-wide completion poll (mesh runs only; null single-node).
  /// Emulation sleeps (device stretch) check it so a straggler's
  /// stretched kernel never pins the cluster join after the run is done.
  std::function<bool()> global_done_poll;

  // Pool of load-pipeline state blocks. Reuse keeps the hot path free of
  // per-load heap churn: the pooled ByteBuffer/HostBuffer keep their
  // capacity across loads, and every pipeline stage captures only the raw
  // LoadOp pointer (small enough for std::function's inline storage).
  // Lock-free Treiber stack: one CAS per make/recycle instead of a shared
  // pool mutex on every load.
  TreiberFreelist<LoadOp> load_pool;

  Engine(const NodeRuntime::Config& config, const Application& application,
         storage::ObjectStore& object_store,
         const NodeRuntime::ResultFn& result_fn)
      : cfg(config), app(application), store(object_store),
        on_result(result_fn),
        profiler(config.trace, config.max_spans_per_lane),
        metrics(config.telemetry) {
    if (!config.telemetry) profiler.set_enabled(false);
    load_error_budget.store(
        static_cast<std::int64_t>(config.load_error_budget),
        std::memory_order_relaxed);
    tile_latency = &metrics.histogram("tile.latency");
    tile_load_wait = &metrics.histogram("tile.load_wait");
    cache_wait = &metrics.histogram("cache.acquire_wait");
    result_depth = &metrics.gauge("result.queue_depth");
    loads_inflight = &metrics.gauge("loads.inflight");
  }

  /// Live sample for the mesh telemetry stream (ticker thread): engine
  /// atomics, cache shard counters and profiler busy atomics only — no
  /// engine lock exists to take.
  telemetry::NodeStats live_stats() const;

  ~Engine();

  /// Defer a continuation out of a cache-callback context (callbacks run
  /// under the cache mutex; continuations must not re-enter it inline).
  void post_control(Task task) {
    cpu_q.push(CpuTask{TaskKind::kControl, std::move(task)});
  }

  LoadOp* make_load(DeviceState& dev, ItemId item, cache::SlotId dslot,
                    LoadClient* client,
                    AllocPriority prio = AllocPriority::kDemand);
  void recycle_load(LoadOp* op);
};

/// Consumer of the shared load pipeline: notified exactly once per started
/// load, on an arbitrary runtime thread.
struct LoadClient {
  virtual void item_ready(ItemId item, cache::SlotId dslot) = 0;
  virtual void item_failed(ItemId item) = 0;

 protected:
  ~LoadClient() = default;
};

/// State of one load-pipeline execution (Fig 2 / Fig 4): store → parse →
/// H2D → pre-process → publish, with the optional host-cache level in
/// front. Pooled by the engine; owned by the pipeline while in flight.
struct LoadOp {
  Engine* eng = nullptr;
  DeviceState* dev = nullptr;
  LoadClient* client = nullptr;
  std::atomic<LoadOp*> free_next{nullptr};  // freelist linkage while pooled
  ItemId item = 0;
  cache::SlotId dslot = cache::kInvalidSlot;  // device WRITE slot (ours)
  cache::SlotId hslot = cache::kInvalidSlot;  // host WRITE slot, if any
  std::uint32_t host_retries = 0;  // kFailed host-grant re-drives
  /// Allocation class inherited from the requesting tile: a prefetch
  /// tile's host-cache allocations also yield to compute tiles'.
  AllocPriority prio = AllocPriority::kDemand;
  ByteBuffer file;
  HostBuffer parsed;
};

Engine::~Engine() {
  load_pool.drain([](LoadOp* op) { delete op; });
}

LoadOp* Engine::make_load(DeviceState& dev, ItemId item, cache::SlotId dslot,
                          LoadClient* client, AllocPriority prio) {
  LoadOp* op = load_pool.try_pop();
  if (op == nullptr) op = new LoadOp();
  op->eng = this;
  op->dev = &dev;
  op->client = client;
  op->item = item;
  op->dslot = dslot;
  op->hslot = cache::kInvalidSlot;
  op->host_retries = 0;
  op->prio = prio;
  op->file.clear();
  op->parsed.clear();
  loads_inflight->add(1);
  return op;
}

void Engine::recycle_load(LoadOp* op) {
  op->client = nullptr;
  loads_inflight->sub(1);
  load_pool.push(op);
}

telemetry::NodeStats Engine::live_stats() const {
  telemetry::NodeStats stats;
  stats.tiles = tiles.load(std::memory_order_relaxed);
  stats.loads = loads.load(std::memory_order_relaxed);
  stats.peer_loads = peer_loads.load(std::memory_order_relaxed);
  stats.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
  std::int64_t in_flight = 0;
  for (const auto& dev : devices) {
    stats.pairs += dev->pairs.load(std::memory_order_relaxed);
    in_flight += dev->in_flight.load(std::memory_order_relaxed);
    const auto dstats = dev->cache->stats();
    stats.cache_hits += dstats.hits;
    stats.cache_fills += dstats.fills;
    stats.cache_evictions += dstats.evictions;
    stats.cache_fast_hits += dev->cache->fast_hits();
  }
  if (host_cache) {
    const auto hstats = host_cache->stats();
    stats.cache_hits += hstats.hits;
    stats.cache_fills += hstats.fills;
    stats.cache_evictions += hstats.evictions;
    stats.cache_fast_hits += host_cache->fast_hits();
  }
  stats.in_flight_tiles = in_flight;
  stats.result_queue_depth = result_depth->value();
  for (const auto& [name, busy] : profiler.busy_per_lane()) {
    (void)name;
    ++stats.lanes;
    stats.busy_seconds += busy;
  }
  stats.uptime_seconds = profiler.seconds_since_epoch(Profiler::Clock::now());
  return stats;
}

// --- shared load pipeline ------------------------------------------------

void begin_fill(LoadOp* op);
void run_load(LoadOp* op);

/// Cache slots are fixed-size (§4.1.1): allocate the full slot so an
/// item may legally grow in place (bioinformatics replaces the residue
/// string with its larger composition vector during pre-processing).
void ensure_device_buffer(Engine& eng, DeviceState& dev, cache::SlotId dslot,
                          std::size_t content_size) {
  auto& buffer = dev.slots[dslot];
  const std::size_t want =
      std::max<std::size_t>({content_size, eng.app.slot_size(), 1});
  if (buffer.size() < want) {
    buffer = dev.vdev.allocate(want);
  }
}

/// Emulate a slower device by stretching kernel wall time. The sleep is
/// sliced so it can bail as soon as the cluster reports done — a
/// degraded node's stretched tile is pure emulation by then, and an
/// unbroken multi-hundred-ms sleep would pin the whole cluster join on
/// the straggler (DESIGN.md §15).
void stretch_kernel(Engine& eng, DeviceState& dev,
                    Profiler::Clock::time_point start) {
  if (dev.stretch <= 0.0) return;
  const auto elapsed = Profiler::Clock::now() - start;
  auto remaining = std::chrono::duration_cast<Profiler::Clock::duration>(
      elapsed * dev.stretch);
  const auto slice = std::chrono::duration_cast<Profiler::Clock::duration>(
      std::chrono::milliseconds(1));
  while (remaining > Profiler::Clock::duration::zero()) {
    if (eng.global_done_poll && eng.global_done_poll()) return;
    const auto step = remaining < slice ? remaining : slice;
    std::this_thread::sleep_for(step);
    remaining -= step;
  }
}

/// Load complete: the client owns the published device slot's read pin.
void finish_load(LoadOp* op) {
  LoadClient* client = op->client;
  const ItemId item = op->item;
  const cache::SlotId dslot = op->dslot;
  op->eng->recycle_load(op);
  client->item_ready(item, dslot);
}

/// A load stage failed while we held WRITE locks: abort them (waiters get
/// kFailed and re-drive their own loads) and notify the client.
void fail_load(LoadOp* op, const char* what) {
  ROCKET_ERROR("load of item %u failed: %s", op->item, what);
  op->eng->failed_loads.fetch_add(1, std::memory_order_relaxed);
  op->dev->cache->abort(op->dslot);
  if (op->hslot != cache::kInvalidSlot && op->eng->host_cache) {
    op->eng->host_cache->abort(op->hslot);
  }
  LoadClient* client = op->client;
  const ItemId item = op->item;
  op->eng->recycle_load(op);
  client->item_failed(item);
}

/// Host hit: copy host slot → device slot, publish device, drop host pin.
void stage_h2d_from_host(LoadOp* op, cache::SlotId host_read_slot) {
  op->dev->h2d_q.push([op, host_read_slot] {
    Engine& eng = *op->eng;
    DeviceState& dev = *op->dev;
    try {
      ScopedTask span(eng.profiler, dev.h2d_lane, TaskKind::kH2D);
      const HostBuffer& src = eng.host_slots[host_read_slot];
      ensure_device_buffer(eng, dev, op->dslot, src.size());
      auto& buffer = dev.slots[op->dslot];
      std::copy(src.begin(), src.end(), buffer.data());
      // Slot-sized transfer: clear the tail so variable-sized items never
      // see a previous occupant's bytes (mirrors the store-load H2D stage).
      std::fill(buffer.data() + src.size(), buffer.data() + buffer.size(),
                std::uint8_t{0});
    } catch (const std::exception& e) {
      eng.host_cache->release(host_read_slot);
      fail_load(op, e.what());
      return;
    }
    dev.cache->publish(op->dslot);
    eng.host_cache->release(host_read_slot);
    finish_load(op);
  });
}

/// Host-cache miss with the WRITE slot held (op->hslot): consult the mesh
/// peer-fetch hook before the object store (§4.1.3 carried to the live
/// path). Any miss or peer failure falls back to run_load — a dead or
/// evicted candidate chain can delay a load but never wedge it (§6.1).
void start_host_fill(LoadOp* op) {
  Engine& eng = *op->eng;
  if (eng.peer_fetch == nullptr) {
    run_load(op);
    return;
  }
  // Item-rooted fetch trace (DESIGN.md §16): batched acquires decouple
  // items from tiles — several tiles can wait on one load — so the peer
  // fetch samples by item identity, not tile identity. The mesh layer
  // opens/closes the peer.fetch span; we only root the context here.
  telemetry::SpanContext ctx;
  if (eng.cfg.span_log != nullptr && eng.cfg.trace_sample_n > 0) {
    ctx = telemetry::make_trace(
        eng.cfg.seed,
        telemetry::span_mix(0x6974656d /* 'item' */) ^ op->item,
        eng.cfg.trace_sample_n);
  }
  // The completion may arrive on a mesh service thread, which outlives
  // this engine. Hold the in-flight gauge across the callback so run_impl
  // cannot tear the engine down while the handoff (the queue push below)
  // is still on the mesh thread's stack.
  eng.done->count_up();
  eng.peer_fetch->fetch(op->item, [op](PeerPayload payload) {
    Engine& engine = *op->eng;
    // Hand off to the control lane so the pipeline continues on runtime
    // threads only (decompression of a wire-compressed payload included —
    // CPU-pool work, not mesh work).
    engine.post_control([op, payload = std::move(payload)]() mutable {
      if (payload.empty()) {
        run_load(op);
        return;
      }
      if (payload.compressed) {
        try {
          payload.bytes = lz_decompress(payload.bytes);
        } catch (const std::exception& e) {
          ROCKET_ERROR("peer payload for item %u corrupt: %s", op->item,
                       e.what());
          run_load(op);  // degrade to the local-load path, never wedge
          return;
        }
      }
      Engine& eng = *op->eng;
      eng.peer_loads.fetch_add(1, std::memory_order_relaxed);
      const cache::SlotId hslot = op->hslot;
      op->hslot = cache::kInvalidSlot;
      eng.host_slots[hslot] = std::move(payload.bytes);
      eng.host_cache->publish(hslot);  // keeps the writer's read pin
      stage_h2d_from_host(op, hslot);
    });
    engine.done->count_down();  // handoff complete: engine may wind down
  }, ctx);
}

void handle_host_grant(LoadOp* op, Grant grant) {
  switch (grant.outcome) {
    case Outcome::kHit:
      stage_h2d_from_host(op, grant.slot);
      return;
    case Outcome::kFill:
      op->hslot = grant.slot;
      start_host_fill(op);
      return;
    case Outcome::kFailed: {
      Engine& eng = *op->eng;
      eng.acquire_retries.fetch_add(1, std::memory_order_relaxed);
      if (++op->host_retries > eng.cfg.max_acquire_retries) {
        // Terminal path: the host level keeps aborting under us. Bypass
        // it — a device-only load is still correct, just uncached at the
        // host level for this item.
        ROCKET_ERROR("host-cache acquire for item %u failed %u times; "
                     "bypassing host level",
                     op->item, op->host_retries);
        run_load(op);
        return;
      }
      retry_backoff(op->host_retries);
      begin_fill(op);  // retry the host level
      return;
    }
    case Outcome::kQueued:
      ROCKET_CHECK(false, "queued grant delivered as queued");
  }
}

/// Entry point: the caller was granted the device WRITE slot in op->dslot.
/// Consult the host cache, then drive the full load only on a host miss.
void begin_fill(LoadOp* op) {
  if (!op->eng->host_cache) {
    run_load(op);
    return;
  }
  // Queued-grant callbacks fire under the owning shard's mutex: defer
  // (the lock-free acquire-wait record is safe to take right there).
  const auto t_acquire = Profiler::Clock::now();
  const Grant grant =
      op->eng->host_cache->acquire(op->item, [op, t_acquire](Grant g) {
        op->eng->cache_wait->record_seconds(
            std::chrono::duration<double>(Profiler::Clock::now() - t_acquire)
                .count());
        op->eng->post_control([op, g] { handle_host_grant(op, g); });
      }, op->prio);
  if (grant.outcome != Outcome::kQueued) handle_host_grant(op, grant);
}

/// Full load: I/O → parse (CPU pool) → H2D → pre-process (GPU) → publish
/// device → (if host enabled) D2H copy-back → publish host. Every stage
/// captures only the LoadOp pointer.
void run_load(LoadOp* op) {
  op->eng->loads.fetch_add(1, std::memory_order_relaxed);
  op->eng->io_q.push([op] {
    Engine& eng = *op->eng;
    try {
      ScopedTask span(eng.profiler, eng.io_lane, TaskKind::kIo);
      // Transient store errors (a flaky store timing out, DESIGN.md §15)
      // retry in place with jittered backoff, bounded per load AND by the
      // run-level error budget, so a flaky store can delay a load but
      // never hang it. Permanent errors fail the item on the first throw.
      constexpr BackoffPolicy kLoadRetry{50e-6, 5e-3, 0.25, 7};
      std::uint32_t attempt = 0;
      for (;;) {
        try {
          op->file = eng.store.read(eng.app.file_name(op->item));
          break;
        } catch (const storage::TransientStoreError& e) {
          ++attempt;
          if (attempt > eng.cfg.max_load_retries ||
              !eng.consume_load_error_budget()) {
            fail_load(op, e.what());
            return;
          }
          eng.load_retries.fetch_add(1, std::memory_order_relaxed);
          kLoadRetry.sleep_for(attempt, op->item);
        }
      }
    } catch (const std::exception& e) {
      fail_load(op, e.what());
      return;
    }
    eng.cpu_q.push(CpuTask{TaskKind::kParse, [op] {
      try {
        // CPU lane busy time is recorded by the pool thread wrapper.
        op->eng->app.parse(op->item, op->file, op->parsed);
      } catch (const std::exception& e) {
        fail_load(op, e.what());
        return;
      }
      op->dev->h2d_q.push([op] {
        try {
          ScopedTask span(op->eng->profiler, op->dev->h2d_lane,
                          TaskKind::kH2D);
          ensure_device_buffer(*op->eng, *op->dev, op->dslot,
                               op->parsed.size());
          auto& buffer = op->dev->slots[op->dslot];
          std::copy(op->parsed.begin(), op->parsed.end(), buffer.data());
          // Slot-sized transfer: clear the tail so variable-sized items
          // never see a previous occupant's bytes.
          std::fill(buffer.data() + op->parsed.size(),
                    buffer.data() + buffer.size(), std::uint8_t{0});
        } catch (const std::exception& e) {
          fail_load(op, e.what());
          return;
        }
        op->dev->gpu_q.push([op] {
          DeviceState& dev = *op->dev;
          try {
            ScopedTask span(op->eng->profiler, dev.gpu_lane,
                            TaskKind::kPreprocess);
            const auto t0 = Profiler::Clock::now();
            op->eng->app.preprocess(op->item, dev.slots[op->dslot]);
            stretch_kernel(*op->eng, dev, t0);
          } catch (const std::exception& e) {
            fail_load(op, e.what());
            return;
          }
          dev.cache->publish(op->dslot);
          if (op->hslot != cache::kInvalidSlot) {
            dev.d2h_q.push([op] {
              Engine& eng = *op->eng;
              {
                ScopedTask span(eng.profiler, op->dev->d2h_lane,
                                TaskKind::kD2H);
                const auto& buf = op->dev->slots[op->dslot];
                eng.host_slots[op->hslot].assign(buf.data(),
                                                 buf.data() + buf.size());
              }
              eng.host_cache->publish(op->hslot);
              eng.host_cache->release(op->hslot);
              finish_load(op);
            });
          } else {
            finish_load(op);
          }
        });
      });
    }});
  });
}

// --- per-pair path (Config::tile_batching == false) ----------------------

/// One in-flight comparison job: pin both items on the device (driving the
/// shared load pipeline on miss), compare on the GPU thread, post-process
/// on the CPU pool, release. Single-owner state machine: exactly one
/// continuation is in flight at any time, and the final one deletes it.
struct Job final : LoadClient {
  Engine& eng;
  DeviceState& dev;
  std::uint32_t worker;
  ItemId items[2];
  cache::SlotId pins[2] = {cache::kInvalidSlot, cache::kInvalidSlot};
  int next_pin = 0;
  std::uint32_t retries = 0;  // kFailed grant re-drives

  Job(Engine& engine, DeviceState& device, std::uint32_t worker_id,
      dnc::Pair pair)
      : eng(engine), dev(device), worker(worker_id),
        items{pair.left, pair.right} {}

  void start() { pin_next(); }

  void pin_next() {
    if (next_pin == 2) {
      compare();
      return;
    }
    // Queued grants fire under the owning shard's mutex: defer.
    const auto t_acquire = Profiler::Clock::now();
    const Grant grant =
        dev.cache->acquire(items[next_pin], [this, t_acquire](Grant g) {
          eng.cache_wait->record_seconds(
              std::chrono::duration<double>(Profiler::Clock::now() -
                                            t_acquire)
                  .count());
          eng.post_control([this, g] { handle_grant(g); });
        });
    if (grant.outcome != Outcome::kQueued) handle_grant(grant);
  }

  void handle_grant(Grant grant) {
    switch (grant.outcome) {
      case Outcome::kHit:
        pins[next_pin++] = grant.slot;
        pin_next();
        return;
      case Outcome::kFill:
        begin_fill(eng.make_load(dev, items[next_pin], grant.slot, this));
        return;
      case Outcome::kFailed:
        eng.acquire_retries.fetch_add(1, std::memory_order_relaxed);
        if (++retries > eng.cfg.max_acquire_retries) {
          // Terminal path: fail the pair loudly (NaN) instead of
          // re-driving against a persistently aborting writer forever.
          ROCKET_ERROR("acquire for item %u failed %u times; failing pair "
                       "(%u,%u)",
                       items[next_pin], retries, items[0], items[1]);
          fail_pair();
          return;
        }
        retry_backoff(retries);
        pin_next();  // writer aborted; retry the acquisition
        return;
      case Outcome::kQueued:
        ROCKET_CHECK(false, "queued grant delivered as queued");
    }
  }

  /// The item is now readable in `slot`; the writer's read pin is ours.
  void item_ready(ItemId, cache::SlotId slot) override {
    pins[next_pin++] = slot;
    pin_next();
  }

  void item_failed(ItemId) override { fail_pair(); }

  void compare() {
    dev.gpu_q.push([this] {
      double score = 0.0;
      try {
        ScopedTask span(eng.profiler, dev.gpu_lane, TaskKind::kCompare);
        const auto t0 = Profiler::Clock::now();
        score = eng.app.compare(items[0], dev.slots[pins[0]], items[1],
                                dev.slots[pins[1]]);
        stretch_kernel(eng, dev, t0);
      } catch (const std::exception& e) {
        ROCKET_ERROR("comparison (%u,%u) failed: %s", items[0], items[1],
                     e.what());
        fail_pair();
        return;
      }
      eng.cpu_q.push(CpuTask{TaskKind::kPostprocess, [this, score] {
        const double final_score =
            eng.app.postprocess(items[0], items[1], score);
        eng.result_depth->add(1);
        eng.result_q.push(PairResult{items[0], items[1], final_score});
        dev.cache->release(pins[0]);
        dev.cache->release(pins[1]);
        dev.pairs.fetch_add(1, std::memory_order_relaxed);
        eng.job_limits[worker]->release();
        eng.done->count_down();
        delete this;
      }});
    });
  }

  /// Complete this pair with a NaN score after an unrecoverable error so
  /// the run always terminates (paper leaves fault tolerance to future
  /// work; we guarantee no hangs and surface the failure in the result).
  void fail_pair() {
    for (int k = 0; k < next_pin; ++k) {
      if (pins[k] != cache::kInvalidSlot) dev.cache->release(pins[k]);
    }
    eng.result_depth->add(1);
    eng.result_q.push(PairResult{items[0], items[1],
                                 std::numeric_limits<double>::quiet_NaN()});
    // Failed pairs still count as processed by this device (the tile path
    // counts every emitted result), so per-device accounting always sums
    // to Report.pairs in both modes.
    dev.pairs.fetch_add(1, std::memory_order_relaxed);
    eng.job_limits[worker]->release();
    eng.done->count_down();
    delete this;
  }
};

// --- tile-batched path (Config::tile_batching == true) -------------------

/// One leaf region executed as a single job: the tile's whole working set
/// is pinned through one batched cache acquire (one mutex acquisition, the
/// load pipeline runs only for the missing items), every compare of the
/// tile runs inside one GPU-queue task, and the tile's results flush to
/// on_result under one lock. This is the paper's locality argument carried
/// through to the execution layer: a leaf's small working set is pinned
/// once and reused across all of its pairs.
struct TileJob final : LoadClient {
  Engine& eng;
  DeviceState& dev;
  std::uint32_t worker;
  /// Admitted beyond the device's compute budget (the look-ahead window):
  /// this tile exists to drive loads early, so its cache allocations
  /// yield to compute-lane tiles' (AllocPriority::kPrefetch).
  bool prefetch_lane = false;
  dnc::Region region;
  std::uint64_t pair_count;
  std::vector<ItemId> items;             // sorted distinct working set
  std::vector<cache::SlotId> slots;      // parallel to items
  std::vector<std::uint8_t> load_failed; // parallel to items
  std::vector<PairResult> results;
  std::vector<std::uint8_t> pair_failed; // parallel to results
  std::atomic<std::uint32_t> remaining{0};
  std::atomic<std::uint32_t> retries{0};  // kFailed grant re-drives
  /// Submission stamp: tile.load_wait measures to working-set-resolved,
  /// tile.latency to results-flushed (DESIGN.md §13).
  Profiler::Clock::time_point t_submit_;
  /// Sampled causal trace of this tile (DESIGN.md §16). Unsampled tiles
  /// carry a zero context and every instrumentation site below exits on
  /// one branch. t_park < 0 means the tile never waited at the gate.
  telemetry::SpanContext trace_ctx;
  double t_trace_submit = 0.0;
  double t_park = -1.0;

  TileJob(Engine& engine, DeviceState& device, std::uint32_t worker_id,
          bool prefetch, const dnc::Region& r)
      : eng(engine), dev(device), worker(worker_id), prefetch_lane(prefetch),
        region(r), pair_count(dnc::count_pairs(r)),
        items(dnc::working_set_items(r)),
        t_submit_(Profiler::Clock::now()) {
    slots.assign(items.size(), cache::kInvalidSlot);
    load_failed.assign(items.size(), 0);
    if (eng.cfg.span_log != nullptr && eng.cfg.trace_sample_n > 0) {
      trace_ctx = telemetry::make_trace(eng.cfg.seed, tile_trace_key(r),
                                        eng.cfg.trace_sample_n);
      if (trace_ctx.sampled()) {
        t_trace_submit = trace_now();
        eng.cfg.span_log->open(trace_ctx, telemetry::SpanPhase::kTile,
                               t_trace_submit);
      }
    }
  }

  double seconds_since_submit() const {
    return std::chrono::duration<double>(Profiler::Clock::now() - t_submit_)
        .count();
  }

  AllocPriority priority() const {
    return prefetch_lane ? AllocPriority::kPrefetch : AllocPriority::kDemand;
  }

  std::size_t index_of(ItemId item) const {
    return static_cast<std::size_t>(
        std::lower_bound(items.begin(), items.end(), item) - items.begin());
  }

  void start() {
    remaining.store(static_cast<std::uint32_t>(items.size()),
                    std::memory_order_relaxed);
    // One grouped pass: lock-free pins first, then one lock acquisition
    // per shard touched. Queued grants fire under a shard mutex: defer
    // (the acquire-wait record is lock-free, so it may run right there).
    const auto t_acquire = Profiler::Clock::now();
    std::vector<Grant> grants =
        dev.cache->acquire_batch(items, [this, t_acquire](std::size_t k,
                                                          Grant g) {
          eng.cache_wait->record_seconds(
              std::chrono::duration<double>(Profiler::Clock::now() -
                                            t_acquire)
                  .count());
          eng.post_control([this, k, g] { handle_grant(k, g); });
        }, priority());
    for (std::size_t k = 0; k < grants.size(); ++k) {
      if (grants[k].outcome != Outcome::kQueued) handle_grant(k, grants[k]);
    }
  }

  void handle_grant(std::size_t k, Grant grant) {
    switch (grant.outcome) {
      case Outcome::kHit:
        slots[k] = grant.slot;
        item_done();
        return;
      case Outcome::kFill:
        begin_fill(eng.make_load(dev, items[k], grant.slot, this,
                                 priority()));
        return;
      case Outcome::kFailed: {
        eng.acquire_retries.fetch_add(1, std::memory_order_relaxed);
        const std::uint32_t attempt =
            retries.fetch_add(1, std::memory_order_relaxed) + 1;
        if (attempt > eng.cfg.max_acquire_retries) {
          // Terminal path: fail the item loudly — its pairs get the NaN
          // sentinel in compare_all — instead of re-driving forever.
          ROCKET_ERROR("tile acquire for item %u failed %u times; failing "
                       "item",
                       items[k], attempt);
          load_failed[k] = 1;
          item_done();
          return;
        }
        retry_backoff(attempt);
        re_acquire(k);
        return;
      }
      case Outcome::kQueued:
        ROCKET_CHECK(false, "queued grant delivered as queued");
    }
  }

  /// Another tile's writer aborted under us: retry this single item.
  void re_acquire(std::size_t k) {
    const auto t_acquire = Profiler::Clock::now();
    const Grant grant =
        dev.cache->acquire(items[k], [this, k, t_acquire](Grant g) {
          eng.cache_wait->record_seconds(
              std::chrono::duration<double>(Profiler::Clock::now() -
                                            t_acquire)
                  .count());
          eng.post_control([this, k, g] { handle_grant(k, g); });
        }, priority());
    if (grant.outcome != Outcome::kQueued) handle_grant(k, grant);
  }

  void item_ready(ItemId item, cache::SlotId slot) override {
    slots[index_of(item)] = slot;
    item_done();
  }

  void item_failed(ItemId item) override {
    load_failed[index_of(item)] = 1;
    item_done();
  }

  /// Writes to slots/load_failed above are published to the comparing
  /// thread by the release/acquire pair on `remaining`.
  void item_done() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      request_compute();
    }
  }

  /// The whole working set is resolved: claim a compute token and launch
  /// the compare batch immediately, or park in the device's ready queue
  /// until a finishing tile hands its token over. A parked tile is the
  /// pipeline working as intended — its loads ran entirely under the
  /// shadow of other tiles' kernels — which is what Report::prefetch_hits
  /// counts. With prefetch off the token supply covers every tile that
  /// can be in flight, so this is pass-through.
  void request_compute() {
    eng.tile_load_wait->record_seconds(seconds_since_submit());
    if (trace_ctx.sampled()) {
      // load.wait child: submit -> whole working set resident. Overlaps
      // any peer.fetch spans of the items it waited on (item-rooted
      // traces; the DAGs join here in wall time, not by parent link).
      eng.cfg.span_log->record(
          telemetry::child_of(trace_ctx, 0x6c6f6164 /* 'load' */),
          telemetry::SpanPhase::kLoadWait, t_trace_submit, trace_now());
    }
    {
      std::scoped_lock lock(dev.gate_mutex);
      if (dev.compute_tokens == 0) {
        if (trace_ctx.sampled()) t_park = trace_now();
        dev.ready_tiles.push_back(this);
        eng.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
        if (eng.cfg.event_log != nullptr) {
          eng.cfg.event_log->record(telemetry::EventKind::kPrefetchPark,
                                    worker);
        }
        return;
      }
      --dev.compute_tokens;
    }
    compare_all();
  }

  /// Run every compare of the tile as one GPU-queue task, buffering
  /// results. Caller holds a compute token; the GPU task passes it to the
  /// next ready tile (or returns it) before handing off to postprocess,
  /// so the compare stage back-to-backs resolved tiles with no executor
  /// round trip.
  void compare_all() {
    dev.gpu_q.push([this] {
      double t_compute = 0.0;
      if (trace_ctx.sampled()) {
        t_compute = trace_now();
        if (t_park >= 0.0) {
          // compute.gate.park child: working set resident but the compute
          // stage was full — the prefetch shadow made visible.
          eng.cfg.span_log->record(
              telemetry::child_of(trace_ctx, 0x7061726b /* 'park' */),
              telemetry::SpanPhase::kGatePark, t_park, t_compute);
        }
      }
      results.clear();
      results.reserve(static_cast<std::size_t>(pair_count));
      pair_failed.clear();
      pair_failed.reserve(static_cast<std::size_t>(pair_count));
      ScopedTask span(eng.profiler, dev.gpu_lane, TaskKind::kCompare);
      const auto t0 = Profiler::Clock::now();
      dnc::for_each_pair(region, [this](dnc::Pair p) {
        const std::size_t a = index_of(p.left);
        const std::size_t b = index_of(p.right);
        double score = std::numeric_limits<double>::quiet_NaN();
        bool failed = true;
        if (!load_failed[a] && !load_failed[b]) {
          try {
            score = eng.app.compare(p.left, dev.slots[slots[a]], p.right,
                                    dev.slots[slots[b]]);
            failed = false;
          } catch (const std::exception& e) {
            ROCKET_ERROR("comparison (%u,%u) failed: %s", p.left, p.right,
                         e.what());
          }
        }
        results.push_back(PairResult{p.left, p.right, score});
        pair_failed.push_back(failed ? 1 : 0);
      });
      stretch_kernel(eng, dev, t0);
      if (trace_ctx.sampled()) {
        eng.cfg.span_log->record(
            telemetry::child_of(trace_ctx, 0x636d7074 /* 'cmpt' */),
            telemetry::SpanPhase::kCompute, t_compute, trace_now());
      }
      TileJob* next = nullptr;
      {
        std::scoped_lock lock(dev.gate_mutex);
        if (!dev.ready_tiles.empty()) {
          next = dev.ready_tiles.front();
          dev.ready_tiles.pop_front();
        } else {
          ++dev.compute_tokens;
        }
      }
      if (next != nullptr) next->compare_all();  // token handed over
      eng.cpu_q.push(CpuTask{TaskKind::kPostprocess, [this] { finish(); }});
    });
  }

  /// Post-process on the CPU pool, hand the tile's buffered results to
  /// the result consumer in one bulk queue push, release every pin in one
  /// batched (per-shard) pass.
  void finish() {
    const double t_deliver = trace_ctx.sampled() ? trace_now() : 0.0;
    // Failed pairs keep their NaN sentinel (matching Job::fail_pair);
    // every successful compare goes through postprocess, even if the
    // application's compare legitimately returned NaN — result streams
    // must be identical across execution modes.
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!pair_failed[i]) {
        auto& r = results[i];
        r.score = eng.app.postprocess(r.left, r.right, r.score);
      }
    }
    const std::size_t flushed = results.size();
    eng.result_depth->add(static_cast<std::int64_t>(flushed));
    eng.result_q.push_bulk(results);
    eng.tile_latency->record_seconds(seconds_since_submit());
    if (trace_ctx.sampled()) {
      // result.deliver child covers postprocess + the bulk flush; the tile
      // root closes with it. The cross-node deliver hop (ResultMsg to the
      // master) is recorded by the mesh layer with its own context.
      const double now = trace_now();
      eng.cfg.span_log->record(
          telemetry::child_of(trace_ctx, 0x646c7672 /* 'dlvr' */),
          telemetry::SpanPhase::kDeliver, t_deliver, now);
      eng.cfg.span_log->close(trace_ctx.span_id, now);
    }
    std::vector<cache::SlotId> pins;
    pins.reserve(items.size());
    for (std::size_t k = 0; k < items.size(); ++k) {
      if (!load_failed[k] && slots[k] != cache::kInvalidSlot) {
        pins.push_back(slots[k]);
      }
    }
    dev.cache->release_batch(pins);
    dev.pairs.fetch_add(flushed, std::memory_order_relaxed);
    eng.tiles.fetch_add(1, std::memory_order_relaxed);
    eng.done->count_down(static_cast<std::size_t>(pair_count));
    dev.in_flight.fetch_sub(1, std::memory_order_relaxed);
    eng.job_limits[worker]->release();
    delete this;
  }
};

/// Submit one leaf region as tile jobs, splitting further while the
/// working set exceeds the device's per-tile budget. Back-pressure (tiles
/// in flight, compute budget + prefetch window) is applied here, on the
/// steal worker's thread, exactly as the per-pair path throttles pair
/// submission (§4.2) — an enlarged admission budget is what lets the
/// worker run ahead and start tiles T+1..T+W loading while tile T
/// computes.
void submit_tile(Engine& eng, const dnc::Region& region,
                 std::uint32_t worker) {
  DeviceState& dev = *eng.devices[worker];
  if (dnc::count_pairs(region) == 0) return;
  if (dnc::working_set_size(region) > dev.tile_ws_budget &&
      dnc::count_pairs(region) > 1) {
    for (const auto& sub : dnc::split(region)) submit_tile(eng, sub, worker);
    return;
  }
  eng.job_limits[worker]->acquire();
  // Admissions beyond the compute budget are the look-ahead window: their
  // allocations must not starve the tiles the device is computing from.
  const bool prefetch =
      dev.in_flight.fetch_add(1, std::memory_order_relaxed) >=
      dev.compute_limit;
  (new TileJob(eng, dev, worker, prefetch, region))->start();
}

/// Non-disruptive host-cache read access served to remote requesters by
/// the mesh layer (§4.1.3 probe semantics). The read pin keeps the buffer
/// stable for the copy; with sharding, a probe of an already-pinned item
/// is two CASes and no mutex at all.
struct HostProbe final : HostCacheProbe {
  Engine& eng;
  explicit HostProbe(Engine& engine) : eng(engine) {}

  bool probe(ItemId item, HostBuffer& out) override {
    if (!eng.host_cache) return false;
    const auto pin = eng.host_cache->try_pin(item);
    if (!pin) return false;
    out = eng.host_slots[*pin];
    eng.host_cache->release(*pin);
    return true;
  }
};

}  // namespace

NodeRuntime::Report NodeRuntime::run(const Application& app,
                                     storage::ObjectStore& store,
                                     const ResultFn& on_result) {
  return run_impl(app, store, on_result, nullptr);
}

NodeRuntime::Report NodeRuntime::run_partition(const Application& app,
                                               storage::ObjectStore& store,
                                               const ResultFn& on_result,
                                               const MeshPort& port) {
  return run_impl(app, store, on_result, &port);
}

NodeRuntime::Report NodeRuntime::run_impl(const Application& app,
                                          storage::ObjectStore& store,
                                          const ResultFn& on_result,
                                          const MeshPort* port) {
  ROCKET_CHECK(!config_.devices.empty(), "runtime needs at least one device");
  const std::uint32_t n = app.item_count();
  const std::uint64_t total_pairs = dnc::count_pairs(dnc::root_region(n));

  Engine eng(config_, app, store, on_result);
  // In-flight gauge (see Engine::done): leaves count up, completions count
  // down, waited on once submission has finished.
  eng.done = std::make_unique<CountdownLatch>(0);

  // Cache sharding degree: explicit, or min(16, hardware threads). Every
  // cache clamps further so each shard keeps at least two slots, and the
  // device caches clamp to preserve the batched-pinning invariant below.
  const std::uint32_t hw_threads =
      std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t shards_requested =
      config_.cache_shards != 0 ? config_.cache_shards
                                : std::min(16u, hw_threads);

  // Host cache.
  const auto host_slots =
      cache::slots_for_capacity(config_.host_cache_capacity, app.slot_size(), n);
  if (host_slots > 0) {
    eng.host_cache = std::make_unique<cache::ShardedSlotCache>(
        cache::ShardedSlotCache::Config{host_slots, app.slot_size(), "host",
                                        shards_requested, n});
    eng.host_slots.resize(host_slots);
  }

  // Look-ahead window (tile-batched mode only; the per-pair path has no
  // tile pipeline to feed). Clamped per device below so compute + prefetch
  // pin demand stays within every shard's slot supply.
  const std::uint32_t prefetch_cfg =
      config_.tile_batching ? config_.prefetch_tiles : 0;

  // Devices: speed-normalise so the fastest runs unstretched.
  double max_speed = 0.0;
  for (const auto& spec : config_.devices) {
    max_speed = std::max(max_speed, spec.relative_speed);
  }
  for (std::size_t d = 0; d < config_.devices.size(); ++d) {
    const auto& spec = config_.devices[d];
    auto dev = std::make_unique<DeviceState>(static_cast<int>(d), spec);
    const Bytes budget = config_.device_cache_capacity != 0
                             ? std::min(config_.device_cache_capacity,
                                        spec.cache_capacity())
                             : spec.cache_capacity();
    const auto slots = std::max(
        2u, cache::slots_for_capacity(budget, app.slot_size(), n));
    // Deadlock-freedom with sharding (DESIGN.md §10): item hashing can in
    // the worst case land every pin of every in-flight job in ONE shard,
    // so the per-shard slot supply must cover the whole concurrent pin
    // demand — now *compute budget + prefetch window* of in-flight tiles
    // (DESIGN.md §11). Clamp the shard count so each shard holds at least
    // two pins per in-flight job, then rederive the job limit, the
    // prefetch window and the tile budget from the smallest shard instead
    // of the whole cache.
    const auto limit0 = std::min(config_.job_limit_per_worker,
                                 std::max<std::uint32_t>(1, slots / 2));
    const std::uint32_t combined0 = limit0 + prefetch_cfg;
    const std::uint32_t dev_shards = std::min(
        shards_requested, std::max(1u, slots / std::max(2u, 2 * combined0)));
    dev->cache = std::make_unique<cache::ShardedSlotCache>(
        cache::ShardedSlotCache::Config{slots, app.slot_size(), "device",
                                        dev_shards, n});
    dev->slots.resize(slots);
    if (config_.emulate_heterogeneity && spec.relative_speed > 0.0) {
      dev->stretch = max_speed / spec.relative_speed - 1.0;
    }
    if (config_.kernel_slowdown > 1.0) {
      // Grey-failure straggler injection (DESIGN.md §15): the node's
      // kernels run kernel_slowdown× slower overall, composing with the
      // heterogeneity stretch above.
      dev->stretch = (1.0 + dev->stretch) * config_.kernel_slowdown - 1.0;
    }
    dev->gpu_lane = eng.profiler.add_lane("gpu" + std::to_string(d) + " (" +
                                          spec.name + ")");
    dev->h2d_lane = eng.profiler.add_lane("h2d" + std::to_string(d));
    dev->d2h_lane = eng.profiler.add_lane("d2h" + std::to_string(d));

    const auto min_shard = dev->cache->min_shard_slots();
    const auto limit =
        std::min(limit0, std::max<std::uint32_t>(1, min_shard / 2));
    // The look-ahead window rides on whatever slot headroom remains past
    // the compute budget; a slot-starved device degrades to window 0
    // (prefetch off) rather than shrinking compute's share.
    const std::uint32_t window = std::min(
        prefetch_cfg, min_shard / 2 > limit ? min_shard / 2 - limit : 0);
    dev->compute_limit = limit;
    dev->compute_tokens = limit;
    if (config_.tile_batching) {
      // `limit + window` tiles in flight, each pinning at most
      // min_shard/(limit+window) items: concurrent pin demand (compute +
      // prefetch) can never exceed the slot supply of any single shard,
      // so batched pinning cannot deadlock even if a whole working set
      // hashes into one shard (DESIGN.md §6, §10, §11).
      dev->tile_ws_budget =
          std::max(2u, min_shard / std::max(1u, limit + window));
    }
    eng.devices.push_back(std::move(dev));
    eng.job_limits.push_back(std::make_unique<Semaphore>(limit + window));
  }
  eng.io_lane = eng.profiler.add_lane("io");
  for (std::uint32_t c = 0; c < config_.cpu_threads; ++c) {
    eng.cpu_lanes.push_back(eng.profiler.add_lane("cpu" + std::to_string(c)));
  }

  // Mesh wiring: the peer-fetch hook needs the host level (peer data fills
  // a host slot, exactly as in the simulated cluster); the probe serves
  // this node's host cache to peers for as long as the engine is live.
  // RAII: the registrations must come off before the probe/engine leave
  // scope even if this function unwinds — the mesh service threads outlive
  // a failed node.
  HostProbe host_probe(eng);
  struct ProbeRegistration {
    const MeshPort* port = nullptr;
    ~ProbeRegistration() {
      if (port != nullptr) port->register_probe(nullptr);
    }
  } probe_registration;
  if (port != nullptr) {
    if (eng.host_cache) eng.peer_fetch = port->peer_fetch;
    eng.global_done_poll = port->global_done;
    if (port->register_probe && eng.host_cache) {
      port->register_probe(&host_probe);
      probe_registration.port = port;
    }
  }

  // Telemetry sampler: the mesh's snapshot ticker reads live engine
  // counters through this hook; same RAII lifetime discipline as the
  // probe so the ticker never samples a dead engine.
  struct StatsRegistration {
    const MeshPort* port = nullptr;
    ~StatsRegistration() {
      if (port != nullptr) port->register_stats({});
    }
  } stats_registration;
  if (port != nullptr && port->register_stats) {
    port->register_stats([&eng] { return eng.live_stats(); });
    stats_registration.port = port;
  }

  // Resource threads (§4.3): I/O, CPU pool, per-device GPU/H2D/D2H, and
  // the single result consumer — the only thread that ever calls the user
  // callback, so result delivery stays serialised without a lock on the
  // compare/postprocess path.
  std::vector<std::thread> threads;
  threads.emplace_back([&eng] { drain(eng.io_q); });
  threads.emplace_back([&eng] {
    for (;;) {
      auto batch = eng.result_q.pop_bulk(64);
      if (batch.empty()) return;
      eng.result_depth->sub(static_cast<std::int64_t>(batch.size()));
      for (const auto& r : batch) eng.on_result(r);
    }
  });
  for (std::uint32_t c = 0; c < config_.cpu_threads; ++c) {
    threads.emplace_back([&eng, c] {
      const std::size_t lane = eng.cpu_lanes[c];
      for (;;) {
        auto batch = eng.cpu_q.pop_bulk(kDrainBatch);
        if (batch.empty()) break;
        for (auto& task : batch) {
          ScopedTask span(eng.profiler, lane, task.kind);
          task.fn();
        }
      }
    });
  }
  for (auto& dev : eng.devices) {
    threads.emplace_back([&dev] { drain(dev->gpu_q); });
    threads.emplace_back([&dev] { drain(dev->h2d_q); });
    threads.emplace_back([&dev] { drain(dev->d2h_q); });
  }

  const auto wall_start = Profiler::Clock::now();

  // The divide-and-conquer work-stealing executor (§4.2): one worker per
  // GPU; leaves become tile jobs (or exploded per-pair jobs), throttled
  // per worker.
  steal::StealExecutor::Config exec_cfg;
  exec_cfg.num_workers = static_cast<std::uint32_t>(eng.devices.size());
  exec_cfg.max_leaf_pairs = config_.max_leaf_pairs;
  exec_cfg.seed = config_.seed;
  exec_cfg.leaf_order = config_.leaf_order;
  steal::StealExecutor executor(exec_cfg);
  const bool tile_mode = config_.tile_batching;
  const auto leaf = [&eng, tile_mode](const dnc::Region& region,
                                      std::uint32_t worker) {
    eng.done->count_up(dnc::count_pairs(region));
    if (tile_mode) {
      submit_tile(eng, region, worker);
      return;
    }
    dnc::for_each_pair(region, [&](dnc::Pair pair) {
      eng.job_limits[worker]->acquire();  // back-pressure (§4.2)
      (new Job(eng, *eng.devices[worker], worker, pair))->start();
    });
  };
  steal::ExecutorStats steal_stats;
  steal::StealExporter exporter;
  struct ExporterRegistration {
    const MeshPort* port = nullptr;
    ~ExporterRegistration() {
      if (port != nullptr) port->register_exporter(nullptr);
    }
  } exporter_registration;
  if (port == nullptr) {
    steal_stats = executor.run(n, leaf);
  } else {
    if (port->register_exporter) {
      port->register_exporter(&exporter);
      exporter_registration.port = port;
    }
    steal::StealExecutor::RemoteHooks hooks;
    hooks.steal = port->remote_steal;
    hooks.done = port->global_done;
    steal_stats = executor.run_partition(port->regions, leaf, hooks,
                                         &exporter);
  }

  eng.done->wait();
  // Stop serving mesh peers before the engine winds down (the scope
  // guards above make this exception-safe as well).
  if (port != nullptr) {
    if (port->register_exporter) port->register_exporter(nullptr);
    if (port->register_probe && eng.host_cache) port->register_probe(nullptr);
    if (port->register_stats) port->register_stats({});
  }
  const double wall =
      std::chrono::duration<double>(Profiler::Clock::now() - wall_start)
          .count();

  eng.io_q.close();
  eng.cpu_q.close();
  eng.result_q.close();  // all producers have counted down: safe to drain
  for (auto& dev : eng.devices) {
    dev->gpu_q.close();
    dev->h2d_q.close();
    dev->d2h_q.close();
  }
  for (auto& t : threads) t.join();

  Report report;
  // Pairs this node executed: the full problem in a single-node run, this
  // node's share (partition ± stolen work) in a mesh run.
  report.pairs = 0;
  for (const auto& dev : eng.devices) report.pairs += dev->pairs.load();
  if (port == nullptr) {
    ROCKET_CHECK(report.pairs == total_pairs, "runtime lost pairs");
  }
  report.tiles = eng.tiles.load();
  report.loads = eng.loads.load();
  report.peer_loads = eng.peer_loads.load();
  report.prefetch_hits = eng.prefetch_hits.load();
  report.acquire_retries = eng.acquire_retries.load();
  report.load_retries = eng.load_retries.load();
  report.failed_loads = eng.failed_loads.load();
  // Guarded both ways: n == 0 (empty problem) must not divide by zero,
  // and a loadless run (everything served from warm caches, or nothing to
  // do) reports a clean 0.0 rather than relying on the division.
  report.reuse_factor =
      (report.loads == 0 || n == 0)
          ? 0.0
          : static_cast<double>(report.loads) / static_cast<double>(n);
  report.wall_seconds = wall;
  if (eng.host_cache) {
    report.host_cache = eng.host_cache->stats();
    report.cache_fast_hits += eng.host_cache->fast_hits();
  }
  for (const auto& dev : eng.devices) {
    report.device_caches.push_back(dev->cache->stats());
    report.pairs_per_device.push_back(dev->pairs.load());
    report.cache_fast_hits += dev->cache->fast_hits();
    // Overlap accounting: a device's GPU lane is busy for its compare +
    // preprocess kernels; the remainder of the wall clock is time the
    // device sat starved of resolved tiles (load stall + scheduling
    // slack) — the quantity the prefetch pipeline shrinks.
    const double busy = eng.profiler.lane_busy_seconds(dev->gpu_lane);
    report.device_busy_seconds.push_back(busy);
    const double stall = wall > busy ? wall - busy : 0.0;
    report.device_stall_seconds.push_back(stall);
    report.stall_seconds += stall;
  }
  report.steal = steal_stats;
  report.lane_busy = eng.profiler.busy_per_lane();
  if (config_.trace) report.timeline = eng.profiler.render_timeline();
  report.metrics = eng.metrics.snapshot();
  report.spans_dropped = eng.profiler.spans_dropped();
  if (config_.trace) {
    // Pin this node's lanes to the shared process epoch so multi-node
    // traces land on one aligned timeline (DESIGN.md §13).
    report.trace.epoch_offset_s =
        std::chrono::duration<double>(eng.profiler.epoch() -
                                      telemetry::process_epoch())
            .count();
    report.trace.lanes = eng.profiler.lanes_view();
    report.trace.spans_dropped = report.spans_dropped;
    if (config_.event_log != nullptr) {
      report.trace.events = config_.event_log->events();
    }
    if (config_.span_log != nullptr) {
      // Mesh-side spans (steal serves, late result hops) may land after
      // this snapshot; LiveCluster re-reads the shared log once every
      // node has joined. This copy keeps the single-node path complete.
      report.trace.causal_spans = config_.span_log->records();
    }
  }
  return report;
}

}  // namespace rocket::runtime

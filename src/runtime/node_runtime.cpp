#include "runtime/node_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/log.hpp"
#include "common/queue.hpp"

namespace rocket::runtime {

namespace {

using Task = std::function<void()>;
using Grant = cache::SlotCache::Grant;
using Outcome = cache::SlotCache::Outcome;

/// Worker thread body: drain a queue, recording each task on a profiler
/// lane. The queue closes at shutdown.
void drain(MpmcQueue<Task>& queue) {
  while (auto task = queue.pop()) {
    (*task)();
  }
}

struct Engine;

/// Per-device state: virtual GPU, device-level cache + buffers, and the
/// three dedicated threads' queues (kernel, H2D, D2H).
struct DeviceState {
  gpu::VirtualDevice vdev;
  std::unique_ptr<cache::SlotCache> cache;
  std::mutex cache_mutex;
  std::vector<gpu::DeviceBuffer> slots;
  MpmcQueue<Task> gpu_q, h2d_q, d2h_q;
  std::size_t gpu_lane = 0, h2d_lane = 0, d2h_lane = 0;
  double stretch = 0.0;  // extra sleep per kernel second (heterogeneity)
  std::atomic<std::uint64_t> pairs{0};

  DeviceState(int ordinal, const gpu::DeviceSpec& spec)
      : vdev(ordinal, spec) {}
};

struct Engine {
  const NodeRuntime::Config& cfg;
  const Application& app;
  storage::ObjectStore& store;
  const NodeRuntime::ResultFn& on_result;
  Profiler profiler;

  std::vector<std::unique_ptr<DeviceState>> devices;
  std::unique_ptr<cache::SlotCache> host_cache;  // null if disabled
  std::mutex host_mutex;
  std::vector<HostBuffer> host_slots;

  MpmcQueue<Task> io_q, cpu_q;
  std::size_t io_lane = 0;
  std::vector<std::size_t> cpu_lanes;

  std::vector<std::unique_ptr<Semaphore>> job_limits;  // per worker/device
  std::unique_ptr<CountdownLatch> done;
  std::atomic<std::uint64_t> loads{0};
  std::mutex result_mutex;

  Engine(const NodeRuntime::Config& config, const Application& application,
         storage::ObjectStore& object_store,
         const NodeRuntime::ResultFn& result_fn)
      : cfg(config), app(application), store(object_store),
        on_result(result_fn), profiler(config.trace) {}

  /// Defer a continuation out of a cache-callback context (callbacks run
  /// under the cache mutex; continuations must not re-enter it inline).
  void post_control(Task task) { cpu_q.push(std::move(task)); }
};

/// One in-flight comparison job: pin both items on the device (driving the
/// load pipeline on miss), compare on the GPU thread, post-process on the
/// CPU pool, release.
struct Job : std::enable_shared_from_this<Job> {
  Engine& eng;
  DeviceState& dev;
  std::uint32_t worker;
  ItemId items[2];
  cache::SlotId pins[2] = {cache::kInvalidSlot, cache::kInvalidSlot};
  int next_pin = 0;

  Job(Engine& engine, DeviceState& device, std::uint32_t worker_id,
      dnc::Pair pair)
      : eng(engine), dev(device), worker(worker_id),
        items{pair.left, pair.right} {}

  void start() { pin_next(); }

  void pin_next() {
    if (next_pin == 2) {
      compare();
      return;
    }
    auto self = shared_from_this();
    Grant grant;
    {
      std::scoped_lock lock(dev.cache_mutex);
      grant = dev.cache->acquire(items[next_pin], [self](Grant g) {
        // Invoked under dev.cache_mutex from publish/release: defer.
        self->eng.post_control([self, g] { self->handle_grant(g); });
      });
    }
    if (grant.outcome != Outcome::kQueued) handle_grant(grant);
  }

  void handle_grant(Grant grant) {
    switch (grant.outcome) {
      case Outcome::kHit:
        pins[next_pin++] = grant.slot;
        pin_next();
        return;
      case Outcome::kFill:
        fill_device(grant.slot);
        return;
      case Outcome::kFailed:
        pin_next();  // writer aborted; retry the acquisition
        return;
      case Outcome::kQueued:
        ROCKET_CHECK(false, "queued grant delivered as queued");
    }
  }

  /// The item is now readable in `slot`; the writer's read pin is ours.
  void device_ready(cache::SlotId slot) {
    pins[next_pin++] = slot;
    pin_next();
  }

  // --- load pipeline (Fig 2 / Fig 4) -----------------------------------

  void fill_device(cache::SlotId dslot) {
    if (!eng.host_cache) {
      load_item(dslot, cache::kInvalidSlot);
      return;
    }
    auto self = shared_from_this();
    Grant grant;
    {
      std::scoped_lock lock(eng.host_mutex);
      grant = eng.host_cache->acquire(items[next_pin], [self, dslot](Grant g) {
        self->eng.post_control([self, g, dslot] { self->handle_host(g, dslot); });
      });
    }
    if (grant.outcome != Outcome::kQueued) handle_host(grant, dslot);
  }

  void handle_host(Grant grant, cache::SlotId dslot) {
    switch (grant.outcome) {
      case Outcome::kHit:
        stage_h2d_from_host(grant.slot, dslot);
        return;
      case Outcome::kFill:
        load_item(dslot, grant.slot);
        return;
      case Outcome::kFailed:
        fill_device(dslot);  // retry host level
        return;
      case Outcome::kQueued:
        ROCKET_CHECK(false, "queued grant delivered as queued");
    }
  }

  /// Host hit: copy host slot → device slot, publish device, drop host pin.
  void stage_h2d_from_host(cache::SlotId hslot, cache::SlotId dslot) {
    auto self = shared_from_this();
    dev.h2d_q.push([self, hslot, dslot] {
      ScopedTask span(self->eng.profiler, self->dev.h2d_lane, TaskKind::kH2D);
      const HostBuffer& src = self->eng.host_slots[hslot];
      self->ensure_device_buffer(dslot, src.size());
      std::copy(src.begin(), src.end(), self->dev.slots[dslot].data());
      {
        std::scoped_lock lock(self->dev.cache_mutex);
        self->dev.cache->publish(dslot);
      }
      {
        std::scoped_lock lock(self->eng.host_mutex);
        self->eng.host_cache->release(hslot);
      }
      self->device_ready(dslot);
    });
  }

  /// Full load: I/O → parse (CPU pool) → H2D → pre-process (GPU) →
  /// publish device → (if host enabled) D2H copy-back → publish host.
  void load_item(cache::SlotId dslot, cache::SlotId hslot) {
    auto self = shared_from_this();
    const ItemId item = items[next_pin];
    eng.loads.fetch_add(1, std::memory_order_relaxed);
    eng.io_q.push([self, item, dslot, hslot] {
      ByteBuffer file;
      try {
        ScopedTask span(self->eng.profiler, self->eng.io_lane, TaskKind::kIo);
        file = self->eng.store.read(self->eng.app.file_name(item));
      } catch (const std::exception& e) {
        self->abort_load(dslot, hslot, e.what());
        return;
      }
      self->eng.cpu_q.push([self, item, dslot, hslot,
                            file = std::move(file)]() mutable {
        auto parsed = std::make_shared<HostBuffer>();
        try {
          // CPU lane busy time is recorded by the pool thread wrapper.
          self->eng.app.parse(item, file, *parsed);
        } catch (const std::exception& e) {
          self->abort_load(dslot, hslot, e.what());
          return;
        }
        self->dev.h2d_q.push([self, item, dslot, hslot, parsed] {
          try {
            ScopedTask span(self->eng.profiler, self->dev.h2d_lane,
                            TaskKind::kH2D);
            self->ensure_device_buffer(dslot, parsed->size());
            auto& buffer = self->dev.slots[dslot];
            std::copy(parsed->begin(), parsed->end(), buffer.data());
            // Slot-sized transfer: clear the tail so variable-sized items
            // never see a previous occupant's bytes.
            std::fill(buffer.data() + parsed->size(),
                      buffer.data() + buffer.size(), std::uint8_t{0});
          } catch (const std::exception& e) {
            self->abort_load(dslot, hslot, e.what());
            return;
          }
          self->dev.gpu_q.push([self, item, dslot, hslot] {
            try {
              ScopedTask span(self->eng.profiler, self->dev.gpu_lane,
                              TaskKind::kPreprocess);
              const auto t0 = Profiler::Clock::now();
              self->eng.app.preprocess(item, self->dev.slots[dslot]);
              self->stretch_kernel(t0);
            } catch (const std::exception& e) {
              self->abort_load(dslot, hslot, e.what());
              return;
            }
            {
              std::scoped_lock lock(self->dev.cache_mutex);
              self->dev.cache->publish(dslot);
            }
            if (hslot != cache::kInvalidSlot) {
              self->dev.d2h_q.push([self, dslot, hslot] {
                {
                  ScopedTask span(self->eng.profiler, self->dev.d2h_lane,
                                  TaskKind::kD2H);
                  const auto& buf = self->dev.slots[dslot];
                  self->eng.host_slots[hslot].assign(
                      buf.data(), buf.data() + buf.size());
                }
                {
                  std::scoped_lock lock(self->eng.host_mutex);
                  self->eng.host_cache->publish(hslot);
                  self->eng.host_cache->release(hslot);
                }
                self->device_ready(dslot);
              });
            } else {
              self->device_ready(dslot);
            }
          });
        });
      });
    });
  }

  // --- comparison pipeline ---------------------------------------------

  void compare() {
    auto self = shared_from_this();
    dev.gpu_q.push([self] {
      double score = 0.0;
      try {
        ScopedTask span(self->eng.profiler, self->dev.gpu_lane,
                        TaskKind::kCompare);
        const auto t0 = Profiler::Clock::now();
        score = self->eng.app.compare(
            self->items[0], self->dev.slots[self->pins[0]], self->items[1],
            self->dev.slots[self->pins[1]]);
        self->stretch_kernel(t0);
      } catch (const std::exception& e) {
        ROCKET_ERROR("comparison (%u,%u) failed: %s", self->items[0],
                     self->items[1], e.what());
        self->next_pin = 2;
        self->fail_pair();
        return;
      }
      self->eng.cpu_q.push([self, score] {
        const double final_score = self->eng.app.postprocess(
            self->items[0], self->items[1], score);
        {
          std::scoped_lock lock(self->eng.result_mutex);
          self->eng.on_result(
              PairResult{self->items[0], self->items[1], final_score});
        }
        {
          std::scoped_lock lock(self->dev.cache_mutex);
          self->dev.cache->release(self->pins[0]);
          self->dev.cache->release(self->pins[1]);
        }
        self->dev.pairs.fetch_add(1, std::memory_order_relaxed);
        self->eng.job_limits[self->worker]->release();
        self->eng.done->count_down();
      });
    });
  }

  // --- failure handling ---------------------------------------------------

  /// A load stage failed while we held WRITE locks: abort them (waiters
  /// get kFailed and re-drive their own loads) and fail this pair.
  void abort_load(cache::SlotId dslot, cache::SlotId hslot,
                  const char* what) {
    ROCKET_ERROR("load of item %u failed: %s", items[next_pin], what);
    {
      std::scoped_lock lock(dev.cache_mutex);
      dev.cache->abort(dslot);
    }
    if (hslot != cache::kInvalidSlot && eng.host_cache) {
      std::scoped_lock lock(eng.host_mutex);
      eng.host_cache->abort(hslot);
    }
    fail_pair();
  }

  /// Complete this pair with a NaN score after an unrecoverable error so
  /// the run always terminates (paper leaves fault tolerance to future
  /// work; we guarantee no hangs and surface the failure in the result).
  void fail_pair() {
    {
      std::scoped_lock lock(dev.cache_mutex);
      for (int k = 0; k < next_pin; ++k) {
        if (pins[k] != cache::kInvalidSlot) dev.cache->release(pins[k]);
      }
    }
    {
      std::scoped_lock lock(eng.result_mutex);
      eng.on_result(PairResult{items[0], items[1],
                               std::numeric_limits<double>::quiet_NaN()});
    }
    eng.job_limits[worker]->release();
    eng.done->count_down();
  }

  // --- helpers -----------------------------------------------------------

  /// Cache slots are fixed-size (§4.1.1): allocate the full slot so an
  /// item may legally grow in place (bioinformatics replaces the residue
  /// string with its larger composition vector during pre-processing).
  void ensure_device_buffer(cache::SlotId dslot, std::size_t content_size) {
    auto& buffer = dev.slots[dslot];
    const std::size_t want =
        std::max<std::size_t>({content_size, eng.app.slot_size(), 1});
    if (buffer.size() < want) {
      buffer = dev.vdev.allocate(want);
    }
  }

  /// Emulate a slower device by stretching kernel wall time.
  void stretch_kernel(Profiler::Clock::time_point start) {
    if (dev.stretch <= 0.0) return;
    const auto elapsed = Profiler::Clock::now() - start;
    std::this_thread::sleep_for(
        std::chrono::duration_cast<Profiler::Clock::duration>(
            elapsed * dev.stretch));
  }
};

}  // namespace

NodeRuntime::Report NodeRuntime::run(const Application& app,
                                     storage::ObjectStore& store,
                                     const ResultFn& on_result) {
  ROCKET_CHECK(!config_.devices.empty(), "runtime needs at least one device");
  const std::uint32_t n = app.item_count();
  const std::uint64_t total_pairs = dnc::count_pairs(dnc::root_region(n));

  Engine eng(config_, app, store, on_result);
  eng.done = std::make_unique<CountdownLatch>(total_pairs);

  // Host cache.
  const auto host_slots =
      cache::slots_for_capacity(config_.host_cache_capacity, app.slot_size(), n);
  if (host_slots > 0) {
    eng.host_cache = std::make_unique<cache::SlotCache>(
        cache::SlotCache::Config{host_slots, app.slot_size(), "host"});
    eng.host_slots.resize(host_slots);
  }

  // Devices: speed-normalise so the fastest runs unstretched.
  double max_speed = 0.0;
  for (const auto& spec : config_.devices) {
    max_speed = std::max(max_speed, spec.relative_speed);
  }
  for (std::size_t d = 0; d < config_.devices.size(); ++d) {
    const auto& spec = config_.devices[d];
    auto dev = std::make_unique<DeviceState>(static_cast<int>(d), spec);
    const Bytes budget = config_.device_cache_capacity != 0
                             ? std::min(config_.device_cache_capacity,
                                        spec.cache_capacity())
                             : spec.cache_capacity();
    const auto slots = std::max(
        2u, cache::slots_for_capacity(budget, app.slot_size(), n));
    dev->cache = std::make_unique<cache::SlotCache>(
        cache::SlotCache::Config{slots, app.slot_size(), "device"});
    dev->slots.resize(slots);
    if (config_.emulate_heterogeneity && spec.relative_speed > 0.0) {
      dev->stretch = max_speed / spec.relative_speed - 1.0;
    }
    dev->gpu_lane = eng.profiler.add_lane("gpu" + std::to_string(d) + " (" +
                                          spec.name + ")");
    dev->h2d_lane = eng.profiler.add_lane("h2d" + std::to_string(d));
    dev->d2h_lane = eng.profiler.add_lane("d2h" + std::to_string(d));
    eng.devices.push_back(std::move(dev));

    const auto max_jobs = std::max<std::uint32_t>(1, slots / 2);
    eng.job_limits.push_back(std::make_unique<Semaphore>(
        std::min(config_.job_limit_per_worker, max_jobs)));
  }
  eng.io_lane = eng.profiler.add_lane("io");
  for (std::uint32_t c = 0; c < config_.cpu_threads; ++c) {
    eng.cpu_lanes.push_back(eng.profiler.add_lane("cpu" + std::to_string(c)));
  }

  // Resource threads (§4.3): I/O, CPU pool, and per-device GPU/H2D/D2H.
  std::vector<std::thread> threads;
  threads.emplace_back([&eng] { drain(eng.io_q); });
  for (std::uint32_t c = 0; c < config_.cpu_threads; ++c) {
    threads.emplace_back([&eng, c] {
      const std::size_t lane = eng.cpu_lanes[c];
      while (auto task = eng.cpu_q.pop()) {
        ScopedTask span(eng.profiler, lane, TaskKind::kParse);
        (*task)();
      }
    });
  }
  for (auto& dev : eng.devices) {
    threads.emplace_back([&dev] { drain(dev->gpu_q); });
    threads.emplace_back([&dev] { drain(dev->h2d_q); });
    threads.emplace_back([&dev] { drain(dev->d2h_q); });
  }

  const auto wall_start = Profiler::Clock::now();

  // The divide-and-conquer work-stealing executor (§4.2): one worker per
  // GPU; leaves become jobs, throttled per worker.
  steal::StealExecutor::Config exec_cfg;
  exec_cfg.num_workers = static_cast<std::uint32_t>(eng.devices.size());
  exec_cfg.max_leaf_pairs = config_.max_leaf_pairs;
  exec_cfg.seed = config_.seed;
  steal::StealExecutor executor(exec_cfg);
  const auto steal_stats =
      executor.run(n, [&eng](const dnc::Region& region, std::uint32_t worker) {
        dnc::for_each_pair(region, [&](dnc::Pair pair) {
          eng.job_limits[worker]->acquire();  // back-pressure (§4.2)
          auto job = std::make_shared<Job>(eng, *eng.devices[worker], worker,
                                           pair);
          job->start();
        });
      });

  eng.done->wait();
  const double wall =
      std::chrono::duration<double>(Profiler::Clock::now() - wall_start)
          .count();

  eng.io_q.close();
  eng.cpu_q.close();
  for (auto& dev : eng.devices) {
    dev->gpu_q.close();
    dev->h2d_q.close();
    dev->d2h_q.close();
  }
  for (auto& t : threads) t.join();

  Report report;
  report.pairs = total_pairs;
  report.loads = eng.loads.load();
  report.reuse_factor =
      n > 0 ? static_cast<double>(report.loads) / static_cast<double>(n) : 0.0;
  report.wall_seconds = wall;
  if (eng.host_cache) report.host_cache = eng.host_cache->stats();
  for (const auto& dev : eng.devices) {
    report.device_caches.push_back(dev->cache->stats());
    report.pairs_per_device.push_back(dev->pairs.load());
  }
  report.steal = steal_stats;
  report.lane_busy = eng.profiler.busy_per_lane();
  if (config_.trace) report.timeline = eng.profiler.render_timeline();
  return report;
}

}  // namespace rocket::runtime

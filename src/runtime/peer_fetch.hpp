#pragma once

// Hooks connecting the live load pipeline to a cluster cache layer
// (src/mesh/). The runtime stays mesh-agnostic: on a host-cache miss it
// consults an optional PeerFetchClient before the object store, and while
// an engine is live it registers a HostCacheProbe so peers can read this
// node's host cache without disturbing it (the §4.1.3 probe semantics —
// a remote miss must not touch LRU order or allocate).

#include <functional>

#include "runtime/application.hpp"
#include "telemetry/span.hpp"

namespace rocket::runtime {

/// Payload of a successful peer fetch. The transport may compress large
/// payloads on the wire (mesh::Transport, above its size threshold); the
/// `compressed` flag survives delivery so the loader's peer stage can run
/// lz_decompress on a runtime thread instead of the mesh service thread.
struct PeerPayload {
  HostBuffer bytes;
  bool compressed = false;

  bool empty() const { return bytes.empty(); }
};

/// Requester side of the distributed cache (§4.1.3): asked for an item on
/// a host-cache miss, before the object-store load pipeline runs.
class PeerFetchClient {
 public:
  virtual ~PeerFetchClient() = default;

  /// Completion callback: the parsed, pre-processed (host-level) bytes of
  /// the item (possibly still wire-compressed, see PeerPayload), or an
  /// empty payload on a distributed-cache miss or any peer failure.
  /// Invoked exactly once, possibly inline, possibly on a mesh service
  /// thread — the runtime re-posts onto its own queues before continuing.
  using DoneFn = std::function<void(PeerPayload)>;

  /// Asynchronously try to obtain `item` from a peer's host cache. Must
  /// never block the caller beyond bounded bookkeeping, and must always
  /// complete (failures included) so the load pipeline cannot hang — a
  /// dead mediator or candidate degrades to the local-load path (§6.1
  /// no-hang invariant). `ctx` is the sampled causal context of the fetch
  /// (DESIGN.md §16); a default-constructed context means unsampled and
  /// must cost nothing.
  virtual void fetch(ItemId item, DoneFn done,
                     telemetry::SpanContext ctx = {}) = 0;
};

/// Candidate side: non-disruptive read access to a live engine's host
/// cache, served to remote requesters by the mesh layer.
class HostCacheProbe {
 public:
  virtual ~HostCacheProbe() = default;

  /// If `item` is readable in the host cache right now, copy its bytes
  /// into `out` and return true. Never allocates, queues, or evicts.
  virtual bool probe(ItemId item, HostBuffer& out) = 0;
};

}  // namespace rocket::runtime

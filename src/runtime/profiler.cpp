#include "runtime/profiler.hpp"

#include <algorithm>
#include <cmath>

namespace rocket::runtime {

const char* task_kind_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kIo: return "io";
    case TaskKind::kParse: return "parse";
    case TaskKind::kH2D: return "h2d";
    case TaskKind::kPreprocess: return "preprocess";
    case TaskKind::kCompare: return "compare";
    case TaskKind::kD2H: return "d2h";
    case TaskKind::kPostprocess: return "postprocess";
    case TaskKind::kControl: return "control";
    case TaskKind::kOther: return "other";
  }
  return "unknown";
}

std::size_t Profiler::add_lane(std::string name) {
  std::scoped_lock lock(mutex_);
  lanes_.push_back(Lane{std::move(name), {}, 0.0});
  return lanes_.size() - 1;
}

void Profiler::record(std::size_t lane, TaskKind kind, Clock::time_point start,
                      Clock::time_point end) {
  const double t0 = seconds_since_epoch(start);
  const double t1 = seconds_since_epoch(end);
  std::scoped_lock lock(mutex_);
  Lane& l = lanes_[lane];
  l.busy += t1 - t0;
  if (enabled_) {
    l.spans.push_back(Span{kind, t0, t1});
  }
}

std::vector<std::pair<std::string, double>> Profiler::busy_per_lane() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(lanes_.size());
  for (const auto& lane : lanes_) out.emplace_back(lane.name, lane.busy);
  return out;
}

double Profiler::lane_busy_seconds(std::size_t lane) const {
  std::scoped_lock lock(mutex_);
  return lane < lanes_.size() ? lanes_[lane].busy : 0.0;
}

double Profiler::busy_for_kind(TaskKind kind) const {
  std::scoped_lock lock(mutex_);
  double total = 0.0;
  for (const auto& lane : lanes_) {
    for (const auto& span : lane.spans) {
      if (span.kind == kind) total += span.end - span.start;
    }
  }
  return total;
}

std::string Profiler::render_timeline(std::size_t width) const {
  std::scoped_lock lock(mutex_);
  double horizon = 0.0;
  for (const auto& lane : lanes_) {
    for (const auto& span : lane.spans) horizon = std::max(horizon, span.end);
  }
  if (horizon <= 0.0 || width == 0) return "(no trace)\n";

  static constexpr char kGlyphs[] = {'I', 'P', '>', 'R', 'C', '<', 'T', '~', '.'};
  std::string out;
  std::size_t name_width = 0;
  for (const auto& lane : lanes_) name_width = std::max(name_width, lane.name.size());
  for (const auto& lane : lanes_) {
    std::string row(width, ' ');
    for (const auto& span : lane.spans) {
      auto lo = static_cast<std::size_t>(span.start / horizon * width);
      auto hi = static_cast<std::size_t>(std::ceil(span.end / horizon * width));
      lo = std::min(lo, width - 1);
      hi = std::clamp<std::size_t>(hi, lo + 1, width);
      for (std::size_t i = lo; i < hi; ++i) {
        row[i] = kGlyphs[static_cast<int>(span.kind)];
      }
    }
    out += lane.name;
    out.append(name_width - lane.name.size() + 2, ' ');
    out += '|';
    out += row;
    out += "|\n";
  }
  out += "legend: I=io P=parse >=h2d R=preprocess C=compare <=d2h "
         "T=postprocess ~=control\n";
  return out;
}

}  // namespace rocket::runtime

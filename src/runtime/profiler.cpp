#include "runtime/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace rocket::runtime {

const char* task_kind_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kIo: return "io";
    case TaskKind::kParse: return "parse";
    case TaskKind::kH2D: return "h2d";
    case TaskKind::kPreprocess: return "preprocess";
    case TaskKind::kCompare: return "compare";
    case TaskKind::kD2H: return "d2h";
    case TaskKind::kPostprocess: return "postprocess";
    case TaskKind::kControl: return "control";
    case TaskKind::kOther: return "other";
  }
  return "unknown";
}

std::size_t Profiler::add_lane(std::string name) {
  std::scoped_lock lock(mutex_);
  const std::size_t id = lane_count_.load(std::memory_order_relaxed);
  ROCKET_CHECK(id < kMaxLanes, "profiler lane slab exhausted");
  lanes_[id].name = std::move(name);
  // Publish after the lane is initialised: recording threads gate their
  // index on this count.
  lane_count_.store(id + 1, std::memory_order_release);
  return id;
}

void Profiler::record(std::size_t lane, TaskKind kind, Clock::time_point start,
                      Clock::time_point end) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (lane >= lane_count_.load(std::memory_order_acquire)) return;
  const double t0 = seconds_since_epoch(start);
  const double t1 = seconds_since_epoch(end);
  Lane& l = lanes_[lane];
  l.busy.fetch_add(t1 - t0, std::memory_order_relaxed);
  if (!trace_) return;
  std::scoped_lock lock(mutex_);
  if (l.spans.size() >= span_cap_) {
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  l.spans.push_back(Span{kind, t0, t1});
}

std::vector<std::pair<std::string, double>> Profiler::busy_per_lane() const {
  const std::size_t n = lane_count_.load(std::memory_order_acquire);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(lanes_[i].name,
                     lanes_[i].busy.load(std::memory_order_relaxed));
  }
  return out;
}

double Profiler::lane_busy_seconds(std::size_t lane) const {
  if (lane >= lane_count_.load(std::memory_order_acquire)) return 0.0;
  return lanes_[lane].busy.load(std::memory_order_relaxed);
}

double Profiler::busy_for_kind(TaskKind kind) const {
  const std::size_t n = lane_count_.load(std::memory_order_acquire);
  std::scoped_lock lock(mutex_);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& span : lanes_[i].spans) {
      if (span.kind == kind) total += span.end - span.start;
    }
  }
  return total;
}

std::string Profiler::render_timeline(std::size_t width) const {
  const std::size_t n = lane_count_.load(std::memory_order_acquire);
  std::scoped_lock lock(mutex_);
  double horizon = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& span : lanes_[i].spans) {
      horizon = std::max(horizon, span.end);
    }
  }
  if (horizon <= 0.0 || width == 0) return "(no trace)\n";

  static constexpr char kGlyphs[] = {'I', 'P', '>', 'R', 'C', '<', 'T', '~', '.'};
  std::string out;
  std::size_t name_width = 0;
  for (std::size_t i = 0; i < n; ++i) {
    name_width = std::max(name_width, lanes_[i].name.size());
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Lane& lane = lanes_[i];
    std::string row(width, ' ');
    for (const auto& span : lane.spans) {
      auto lo = static_cast<std::size_t>(span.start / horizon * width);
      auto hi = static_cast<std::size_t>(std::ceil(span.end / horizon * width));
      lo = std::min(lo, width - 1);
      hi = std::clamp<std::size_t>(hi, lo + 1, width);
      for (std::size_t k = lo; k < hi; ++k) {
        row[k] = kGlyphs[static_cast<int>(span.kind)];
      }
    }
    out += lane.name;
    out.append(name_width - lane.name.size() + 2, ' ');
    out += '|';
    out += row;
    out += "|\n";
  }
  out += "legend: I=io P=parse >=h2d R=preprocess C=compare <=d2h "
         "T=postprocess ~=control\n";
  return out;
}

std::vector<Profiler::LaneView> Profiler::lanes_view() const {
  const std::size_t n = lane_count_.load(std::memory_order_acquire);
  std::scoped_lock lock(mutex_);
  std::vector<LaneView> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    LaneView view;
    view.name = lanes_[i].name;
    view.busy = lanes_[i].busy.load(std::memory_order_relaxed);
    view.spans = lanes_[i].spans;
    out.push_back(std::move(view));
  }
  return out;
}

}  // namespace rocket::runtime

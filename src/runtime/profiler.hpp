#pragma once

// Wall-clock task profiler for the live runtime (the paper's §4.3 trace
// facility, Fig 6). Each runtime thread registers a lane; tasks record
// spans (kind + label + start/end). The profiler renders an ASCII timeline
// and aggregates busy time per lane — the live counterpart of Fig 8's bars.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rocket::runtime {

enum class TaskKind : std::uint8_t {
  kIo,
  kParse,
  kH2D,
  kPreprocess,
  kCompare,
  kD2H,
  kPostprocess,
  kControl,  // scheduler/cache-callback continuations on the CPU pool
  kOther,
};

const char* task_kind_name(TaskKind kind);

class Profiler {
 public:
  using Clock = std::chrono::steady_clock;

  struct Span {
    TaskKind kind;
    double start;  // seconds since profiler epoch
    double end;
  };

  struct Lane {
    std::string name;
    std::vector<Span> spans;
    double busy = 0.0;
  };

  explicit Profiler(bool enabled = true) : enabled_(enabled), epoch_(Clock::now()) {}

  /// Register a lane (thread); returns its id. Thread-safe.
  std::size_t add_lane(std::string name);

  /// Record a completed span on `lane`. Thread-safe per lane contract:
  /// only the owning thread records to its lane.
  void record(std::size_t lane, TaskKind kind, Clock::time_point start,
              Clock::time_point end);

  double seconds_since_epoch(Clock::time_point t) const {
    return std::chrono::duration<double>(t - epoch_).count();
  }

  bool enabled() const { return enabled_; }

  /// Aggregate busy seconds per lane.
  std::vector<std::pair<std::string, double>> busy_per_lane() const;

  /// Busy seconds of one lane — the overlap accounting's input: a
  /// device's load-stall time is its run wall time minus its GPU lane's
  /// busy time.
  double lane_busy_seconds(std::size_t lane) const;

  /// Total busy seconds for a task kind across lanes.
  double busy_for_kind(TaskKind kind) const;

  /// ASCII timeline (Fig 6 style): one row per lane, `width` buckets.
  std::string render_timeline(std::size_t width = 80) const;

  const std::vector<Lane>& lanes() const { return lanes_; }

 private:
  bool enabled_;
  Clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Lane> lanes_;
};

/// RAII span recorder.
class ScopedTask {
 public:
  ScopedTask(Profiler& profiler, std::size_t lane, TaskKind kind)
      : profiler_(&profiler), lane_(lane), kind_(kind),
        start_(Profiler::Clock::now()) {}
  ScopedTask(const ScopedTask&) = delete;
  ScopedTask& operator=(const ScopedTask&) = delete;
  ~ScopedTask() {
    profiler_->record(lane_, kind_, start_, Profiler::Clock::now());
  }

 private:
  Profiler* profiler_;
  std::size_t lane_;
  TaskKind kind_;
  Profiler::Clock::time_point start_;
};

}  // namespace rocket::runtime

#pragma once

// Wall-clock task profiler for the live runtime (the paper's §4.3 trace
// facility, Fig 6). Each runtime thread registers a lane; tasks record
// spans (kind + start/end). The profiler renders an ASCII timeline, feeds
// the telemetry layer's Chrome-trace exporter (DESIGN.md §13), and
// aggregates busy time per lane — the live counterpart of Fig 8's bars.
//
// Memory is bounded: each lane retains at most `max_spans_per_lane` spans
// (overflow is counted in spans_dropped(), never allocated), and busy
// accounting is a per-lane atomic so a trace-off profiler costs two clock
// reads and one relaxed add per task. set_enabled(false) turns even that
// off: ScopedTask arms itself at construction and a disarmed task never
// touches the clock.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rocket::runtime {

enum class TaskKind : std::uint8_t {
  kIo,
  kParse,
  kH2D,
  kPreprocess,
  kCompare,
  kD2H,
  kPostprocess,
  kControl,  // scheduler/cache-callback continuations on the CPU pool
  kOther,
};

const char* task_kind_name(TaskKind kind);

class Profiler {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default per-lane span retention (~6 MiB/lane worst case); the knob
  /// exists because a long mesh soak with trace on must not grow without
  /// bound (NodeRuntime::Config::max_spans_per_lane).
  static constexpr std::size_t kDefaultSpanCap = 1u << 18;

  struct Span {
    TaskKind kind;
    double start;  // seconds since profiler epoch
    double end;
  };

  /// Copy-out form of one lane (snapshot for reports and the trace
  /// exporter; the live lane itself is not copyable — atomic busy).
  struct LaneView {
    std::string name;
    double busy = 0.0;
    std::vector<Span> spans;
  };

  explicit Profiler(bool trace = true,
                    std::size_t max_spans_per_lane = kDefaultSpanCap)
      : trace_(trace),
        span_cap_(max_spans_per_lane == 0 ? SIZE_MAX : max_spans_per_lane),
        epoch_(Clock::now()) {}

  /// Register a lane (thread); returns its id. Thread-safe. Lanes must be
  /// registered before other threads record to them (the runtime registers
  /// every lane before spawning its resource threads).
  std::size_t add_lane(std::string name);

  /// Record a completed span on `lane`. Lock-free unless the full trace is
  /// on (busy time is a relaxed atomic add; span retention locks).
  void record(std::size_t lane, TaskKind kind, Clock::time_point start,
              Clock::time_point end);

  double seconds_since_epoch(Clock::time_point t) const {
    return std::chrono::duration<double>(t - epoch_).count();
  }

  /// The steady-clock origin of every span in this profiler; the trace
  /// exporter aligns multiple nodes' timelines by their epoch offsets.
  Clock::time_point epoch() const { return epoch_; }

  /// Span retention on/off (construction-time; busy accounting is
  /// independent of it).
  bool trace() const { return trace_; }

  /// Master switch: disabled, record() returns before any arithmetic and
  /// ScopedTask never reads the clock. Busy totals stop accumulating too —
  /// this is the "telemetry off" measurement configuration.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool armed() const { return enabled_.load(std::memory_order_relaxed); }

  /// Spans discarded because their lane hit max_spans_per_lane.
  std::uint64_t spans_dropped() const {
    return spans_dropped_.load(std::memory_order_relaxed);
  }

  /// Aggregate busy seconds per lane.
  std::vector<std::pair<std::string, double>> busy_per_lane() const;

  /// Busy seconds of one lane — the overlap accounting's input: a
  /// device's load-stall time is its run wall time minus its GPU lane's
  /// busy time.
  double lane_busy_seconds(std::size_t lane) const;

  /// Total busy seconds for a task kind across lanes (trace-on only: it
  /// sums retained spans).
  double busy_for_kind(TaskKind kind) const;

  /// ASCII timeline (Fig 6 style): one row per lane, `width` buckets.
  std::string render_timeline(std::size_t width = 80) const;

  /// Snapshot copy of every lane (name, busy, retained spans).
  std::vector<LaneView> lanes_view() const;

 private:
  /// Fixed lane slab: lanes are indexed without a lock on the busy path,
  /// so they must never relocate. The runtime registers a handful of lanes
  /// per device plus the CPU pool; 192 is far beyond any configuration.
  static constexpr std::size_t kMaxLanes = 192;

  struct Lane {
    std::string name;
    std::atomic<double> busy{0.0};
    std::vector<Span> spans;  // guarded by mutex_
  };

  bool trace_;
  std::size_t span_cap_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::size_t> lane_count_{0};
  std::atomic<std::uint64_t> spans_dropped_{0};
  Clock::time_point epoch_;
  mutable std::mutex mutex_;  // add_lane + span vectors
  std::unique_ptr<Lane[]> lanes_{new Lane[kMaxLanes]};
};

/// RAII span recorder. Arms itself against the profiler's master switch at
/// construction: a disarmed task costs two relaxed loads and zero clock
/// reads.
class ScopedTask {
 public:
  ScopedTask(Profiler& profiler, std::size_t lane, TaskKind kind)
      : profiler_(&profiler), lane_(lane), kind_(kind),
        armed_(profiler.armed()) {
    if (armed_) start_ = Profiler::Clock::now();
  }
  ScopedTask(const ScopedTask&) = delete;
  ScopedTask& operator=(const ScopedTask&) = delete;
  ~ScopedTask() {
    if (armed_) {
      profiler_->record(lane_, kind_, start_, Profiler::Clock::now());
    }
  }

 private:
  Profiler* profiler_;
  std::size_t lane_;
  TaskKind kind_;
  bool armed_;
  Profiler::Clock::time_point start_{};
};

}  // namespace rocket::runtime

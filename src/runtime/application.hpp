#pragma once

// The user-facing application interface (paper Fig 3).
//
// The user supplies exactly four application-specific functions plus the
// key → file mapping:
//   parse        — CPU: raw file bytes → pre-processed-input format
//   preprocess   — GPU: finalise the item in device memory (optional)
//   compare      — GPU: score one pair of pre-processed items
//   postprocess  — CPU: turn the raw score into the final result
//
// Rocket owns everything else: I/O, caching at all levels, transfers,
// scheduling and load balancing. In this (CUDA-free) live backend, "GPU"
// stages execute as real CPU code against device-resident buffers of a
// gpu::VirtualDevice; their placement, memory discipline and overlap
// behaviour are identical to the CUDA original.

#include <cstdint>
#include <string>
#include <vector>

#include "common/compress.hpp"
#include "common/units.hpp"
#include "gpu/virtual_device.hpp"

namespace rocket::runtime {

using ItemId = std::uint32_t;
using HostBuffer = std::vector<std::uint8_t>;

class Application {
 public:
  virtual ~Application() = default;

  virtual std::string name() const = 0;

  /// Number of items n; Rocket evaluates all C(n,2) pairs.
  virtual std::uint32_t item_count() const = 0;

  /// Object-store name of the i-th input file (Fig 3's getFilePathForKey).
  virtual std::string file_name(ItemId item) const = 0;

  /// CPU: parse raw file content into the device-upload format.
  virtual void parse(ItemId item, const ByteBuffer& file,
                     HostBuffer& out) const = 0;

  /// GPU: pre-process the uploaded item in place. Default: no-op (the
  /// microscopy application has no pre-processing).
  virtual void preprocess(ItemId item, gpu::DeviceBuffer& data) const {
    (void)item;
    (void)data;
  }

  /// GPU: compare two pre-processed items; returns the raw score.
  virtual double compare(ItemId left, const gpu::DeviceBuffer& left_data,
                         ItemId right,
                         const gpu::DeviceBuffer& right_data) const = 0;

  /// CPU: post-process the raw score (threshold, normalise, ...).
  virtual double postprocess(ItemId left, ItemId right, double score) const {
    (void)left;
    (void)right;
    return score;
  }

  /// Upper bound on a pre-processed item's size: the cache slot size.
  virtual Bytes slot_size() const = 0;
};

/// One completed comparison.
struct PairResult {
  ItemId left;
  ItemId right;
  double score;
};

}  // namespace rocket::runtime

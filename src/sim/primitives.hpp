#pragma once

// Synchronisation and resource-model primitives for simulation processes.
//
//  * Event           — one-shot broadcast (trigger wakes all waiters).
//  * WaitGroup       — join N children (arrive() counts down, wait() blocks).
//  * Resource        — counted FCFS resource with utilisation accounting;
//                      models CPU pools, GPU kernel engines, job limits.
//  * Mailbox<T>      — typed FIFO channel; models message endpoints.
//  * SharedBandwidth — processor-sharing link; concurrent transfers split
//                      the capacity equally (models a storage server NIC or
//                      a PCIe link with competing DMA streams).
//
// All primitives wake waiters through the event queue (never inline) so
// process interleaving is strictly timestamp+FIFO ordered.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "common/units.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rocket::sim {

/// One-shot broadcast event.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    for (const auto waiter : waiters_) sim_->schedule(0, waiter);
    waiters_.clear();
  }

  bool triggered() const { return triggered_; }

  struct Awaiter {
    Event* event;
    bool await_ready() const noexcept { return event->triggered_; }
    void await_suspend(std::coroutine_handle<> h) {
      event->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() { return Awaiter{this}; }

 private:
  Simulation* sim_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Join-counter for fan-out/fan-in: arrive() must be called `count` times.
class WaitGroup {
 public:
  WaitGroup(Simulation& sim, std::size_t count)
      : remaining_(count), done_(sim) {
    if (remaining_ == 0) done_.trigger();
  }

  void add(std::size_t n = 1) { remaining_ += n; }

  void arrive() {
    ROCKET_CHECK(remaining_ > 0, "WaitGroup::arrive underflow");
    if (--remaining_ == 0) done_.trigger();
  }

  std::size_t remaining() const { return remaining_; }

  auto operator co_await() { return done_.operator co_await(); }

 private:
  std::size_t remaining_;
  Event done_;
};

/// Counted FCFS resource. acquire(k) suspends until k units are free *and*
/// every earlier request has been served (no overtaking). Utilisation is
/// integrated over time for the per-resource busy-time reports (Fig 8).
class Resource {
 public:
  Resource(Simulation& sim, std::uint64_t capacity)
      : sim_(&sim), capacity_(capacity), available_(capacity) {}

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t available() const { return available_; }
  std::uint64_t in_use() const { return capacity_ - available_; }
  std::size_t queue_length() const { return waiters_.size(); }

  /// Total resource-seconds consumed so far (integral of in_use over time).
  double busy_time() const {
    return busy_integral_ + static_cast<double>(in_use()) *
                                (sim_->now() - last_change_);
  }

  struct AcquireAwaiter {
    Resource* resource;
    std::uint64_t amount;
    bool await_ready() const noexcept {
      return resource->waiters_.empty() && resource->available_ >= amount;
    }
    void await_suspend(std::coroutine_handle<> h) {
      resource->waiters_.push_back({h, amount});
    }
    void await_resume() const {
      // If we never suspended, the units are taken here; if we were woken
      // by release(), the units were reserved on our behalf already and
      // `reserved_` tells us not to double-take.
      if (!resource->woke_reserved_) {
        resource->take(amount);
      } else {
        resource->woke_reserved_ = false;
      }
    }
  };

  /// Awaitable acquisition of `amount` units.
  AcquireAwaiter acquire(std::uint64_t amount = 1) {
    ROCKET_CHECK(amount <= capacity_, "Resource::acquire amount > capacity");
    return AcquireAwaiter{this, amount};
  }

  void release(std::uint64_t amount = 1) {
    give_back(amount);
    // Serve the FIFO head(s) that now fit. Units are reserved immediately
    // (so no later arrival can steal them) and the waiter is scheduled.
    while (!waiters_.empty() && waiters_.front().amount <= available_) {
      const Waiter waiter = waiters_.front();
      waiters_.pop_front();
      take(waiter.amount);
      sim_->schedule_fn(0, [this, waiter] {
        woke_reserved_ = true;
        waiter.handle.resume();
      });
    }
  }

  /// Convenience: run `co_await use(dt)` to occupy one unit for dt.
  Process use(Time dt) {
    co_await acquire();
    co_await delay(dt);
    release();
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::uint64_t amount;
  };

  void integrate() {
    busy_integral_ +=
        static_cast<double>(in_use()) * (sim_->now() - last_change_);
    last_change_ = sim_->now();
  }
  void take(std::uint64_t amount) {
    integrate();
    ROCKET_CHECK(available_ >= amount, "Resource::take underflow");
    available_ -= amount;
  }
  void give_back(std::uint64_t amount) {
    integrate();
    available_ += amount;
    ROCKET_CHECK(available_ <= capacity_, "Resource::release overflow");
  }

  Simulation* sim_;
  std::uint64_t capacity_;
  std::uint64_t available_;
  std::deque<Waiter> waiters_;
  double busy_integral_ = 0.0;
  Time last_change_ = 0.0;
  bool woke_reserved_ = false;
};

/// RAII guard for one Resource unit within a coroutine scope.
class ResourceGuard {
 public:
  explicit ResourceGuard(Resource& r) : resource_(&r) {}
  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;
  ~ResourceGuard() {
    if (resource_) resource_->release();
  }
  void dismiss() { resource_ = nullptr; }

 private:
  Resource* resource_;
};

/// Typed FIFO channel. send() never blocks (unbounded); recv() suspends
/// until a message is available.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulation& sim) : sim_(&sim) {}

  void send(T value) {
    if (!receivers_.empty()) {
      Receiver r = receivers_.front();
      receivers_.pop_front();
      *r.slot = std::move(value);
      sim_->schedule(0, r.handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  std::size_t size() const { return items_.size(); }
  bool has_waiting_receiver() const { return !receivers_.empty(); }

  struct RecvAwaiter {
    Mailbox* box;
    std::optional<T> slot;
    bool await_ready() noexcept {
      if (!box->items_.empty()) {
        slot = std::move(box->items_.front());
        box->items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      box->receivers_.push_back({&slot, h});
    }
    T await_resume() {
      ROCKET_CHECK(slot.has_value(), "Mailbox: resumed without value");
      return std::move(*slot);
    }
  };

  RecvAwaiter recv() { return RecvAwaiter{this, std::nullopt}; }

 private:
  struct Receiver {
    std::optional<T>* slot;
    std::coroutine_handle<> handle;
  };

  Simulation* sim_;
  std::deque<T> items_;
  std::deque<Receiver> receivers_;
};

/// Processor-sharing bandwidth model: N concurrent transfers each progress
/// at capacity/N. Completion times are recomputed whenever the active set
/// changes; stale completion events are invalidated by a generation counter.
class SharedBandwidth {
 public:
  SharedBandwidth(Simulation& sim, Bandwidth bytes_per_second)
      : sim_(&sim), capacity_(bytes_per_second) {}

  Bandwidth capacity() const { return capacity_; }
  std::size_t active_transfers() const { return flows_.size(); }
  Bytes total_transferred() const { return total_bytes_; }
  double busy_time() const {
    // Time during which at least one transfer was active.
    return busy_integral_ +
           (flows_.empty() ? 0.0 : sim_->now() - busy_since_);
  }

  struct TransferAwaiter {
    SharedBandwidth* link;
    Bytes bytes;
    bool await_ready() const noexcept { return bytes == 0; }
    void await_suspend(std::coroutine_handle<> h) { link->begin(bytes, h); }
    void await_resume() const noexcept {}
  };

  /// Awaitable transfer of `bytes` over the shared link.
  TransferAwaiter transfer(Bytes bytes) { return TransferAwaiter{this, bytes}; }

 private:
  struct Flow {
    double remaining;  // bytes left
    std::coroutine_handle<> handle;
  };

  void begin(Bytes bytes, std::coroutine_handle<> h);
  void progress();
  void reschedule();
  void on_completion_event(std::uint64_t generation);

  Simulation* sim_;
  Bandwidth capacity_;
  std::vector<Flow> flows_;
  Time last_update_ = 0.0;
  std::uint64_t generation_ = 0;
  Bytes total_bytes_ = 0;
  double busy_integral_ = 0.0;
  Time busy_since_ = 0.0;
};

}  // namespace rocket::sim

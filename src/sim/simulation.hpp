#pragma once

// Discrete-event simulation (DES) kernel.
//
// Rocket's cluster-scale experiments run on this kernel: every node, GPU,
// link and cache protocol actor is a C++20 coroutine advancing in *virtual*
// time. The kernel is single-threaded and fully deterministic — given the
// same seed, a 96-GPU experiment replays event-for-event, which is what
// makes the paper's large-scale figures reproducible on a laptop.
//
// Design notes:
//  * The event queue is a binary heap of (time, sequence) pairs; the
//    sequence number makes same-timestamp ordering FIFO and deterministic.
//  * Entries resume either a coroutine handle (hot path, no allocation
//    beyond the heap slot) or run a std::function (used by cancellable
//    model events such as bandwidth-sharing recomputation).
//  * An event limit guards tests against accidental livelock.

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rocket::sim {

/// Virtual time in seconds.
using Time = double;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  /// Resume `h` at now() + delay. Negative delays clamp to zero.
  void schedule(Time delay, std::coroutine_handle<> h) {
    push(delay, h, {});
  }

  /// Run `fn` at now() + delay.
  void schedule_fn(Time delay, std::function<void()> fn) {
    push(delay, nullptr, std::move(fn));
  }

  /// Execute the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains. Returns the final virtual time.
  Time run();

  /// Run while events exist and now() <= t. Returns the current time.
  Time run_until(Time t);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

  /// Abort (throw std::runtime_error) if more than `limit` events execute.
  /// 0 disables the guard.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void push(Time delay, std::coroutine_handle<> h, std::function<void()> fn) {
    if (delay < 0) delay = 0;
    queue_.push(Entry{now_ + delay, next_seq_++, h, std::move(fn)});
  }

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t event_limit_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace rocket::sim

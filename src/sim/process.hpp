#pragma once

// Coroutine process type for the DES kernel.
//
// A `Process` is a coroutine that advances in virtual time. Inside a
// process, `co_await delay(dt)` sleeps, `co_await other_process` joins a
// child, and the primitives in sim/primitives.hpp (Event, Resource,
// Mailbox, SharedBandwidth) provide synchronisation. Awaitables that need
// the clock expose `bind(Simulation&)`; the promise's await_transform
// injects the simulation automatically, so process bodies never thread a
// context parameter through.
//
// Lifetime: the coroutine frame is reference-counted by Process handles.
// A process dropped by all handles while still running becomes detached
// and self-destructs at completion. Waiters are woken through the event
// queue (same timestamp, FIFO order) rather than resumed inline, keeping
// run-to-completion semantics and bounded stacks.

#include <coroutine>
#include <exception>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"

namespace rocket::sim {

class Process;

namespace detail {

struct ProcessPromise {
  Simulation* sim = nullptr;
  int refs = 0;
  bool started = false;
  bool done = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> waiters;

  Process get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<ProcessPromise> h) noexcept {
      auto& p = h.promise();
      p.done = true;
      // Wake joiners through the queue: deterministic FIFO at this instant.
      for (const auto waiter : p.waiters) p.sim->schedule(0, waiter);
      p.waiters.clear();
      if (p.refs == 0) h.destroy();  // detached process: self-destruct
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void return_void() {}
  void unhandled_exception() { error = std::current_exception(); }

  /// Inject the simulation into awaitables that want it (delay(), child
  /// processes, ...), then pass them through untouched.
  template <typename A>
  decltype(auto) await_transform(A&& awaitable) {
    if constexpr (requires(A& a, Simulation& s) { a.bind(s); }) {
      awaitable.bind(*sim);
    }
    return std::forward<A>(awaitable);
  }
};

}  // namespace detail

/// Handle to a simulation process (see file comment for semantics).
class Process {
 public:
  using promise_type = detail::ProcessPromise;
  using Handle = std::coroutine_handle<promise_type>;

  Process() = default;
  explicit Process(Handle h) : handle_(h) {
    if (handle_) ++handle_.promise().refs;
  }
  Process(const Process& other) : handle_(other.handle_) {
    if (handle_) ++handle_.promise().refs;
  }
  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Process& operator=(Process other) noexcept {
    std::swap(handle_, other.handle_);
    return *this;
  }
  ~Process() { release(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.promise().done; }

  /// Start the process on `simulation` (first resume happens at the current
  /// virtual time, through the event queue). Idempotent.
  void start(Simulation& simulation) {
    if (!handle_ || handle_.promise().started) return;
    auto& promise = handle_.promise();
    promise.sim = &simulation;
    promise.started = true;
    simulation.schedule(0, handle_);
  }

  /// await_transform hook: awaiting a process starts it if necessary.
  void bind(Simulation& simulation) { start(simulation); }

  /// Rethrow the process's failure, if any. Only meaningful once done.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

  bool failed() const {
    return handle_ && handle_.promise().done &&
           handle_.promise().error != nullptr;
  }

  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return handle.promise().done; }
    void await_suspend(std::coroutine_handle<> cont) const {
      handle.promise().waiters.push_back(cont);
    }
    void await_resume() const {
      if (handle.promise().error) {
        std::rethrow_exception(handle.promise().error);
      }
    }
  };

  Awaiter operator co_await() const { return Awaiter{handle_}; }

 private:
  void release() {
    if (!handle_) return;
    auto& promise = handle_.promise();
    if (--promise.refs == 0 && (promise.done || !promise.started)) {
      handle_.destroy();
    }
    handle_ = nullptr;
  }

  Handle handle_;
};

namespace detail {
inline Process ProcessPromise::get_return_object() {
  return Process(Process::Handle::from_promise(*this));
}
}  // namespace detail

/// Start a process and return a joinable handle to it.
inline Process spawn(Simulation& simulation, Process process) {
  process.start(simulation);
  return process;
}

/// Virtual-time sleep. `co_await delay(0)` yields (requeues at the same
/// timestamp behind already-scheduled events).
struct Delay {
  Time dt;
  Simulation* sim = nullptr;
  void bind(Simulation& s) { sim = &s; }
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const { sim->schedule(dt, h); }
  void await_resume() const noexcept {}
};

inline Delay delay(Time dt) { return Delay{dt}; }

}  // namespace rocket::sim

#include "sim/primitives.hpp"

#include <algorithm>
#include <limits>

namespace rocket::sim {

namespace {
// Completion tolerance in bytes: processor-sharing arithmetic accumulates
// floating-point error; anything below half a byte is complete.
constexpr double kEpsilonBytes = 0.5;
}  // namespace

void SharedBandwidth::begin(Bytes bytes, std::coroutine_handle<> h) {
  progress();
  if (flows_.empty()) busy_since_ = sim_->now();
  flows_.push_back(Flow{static_cast<double>(bytes), h});
  total_bytes_ += bytes;
  reschedule();
}

void SharedBandwidth::progress() {
  const Time now = sim_->now();
  if (flows_.empty() || now <= last_update_) {
    last_update_ = now;
    return;
  }
  const double rate_per_flow =
      capacity_ / static_cast<double>(flows_.size());
  const double served = (now - last_update_) * rate_per_flow;
  for (auto& flow : flows_) flow.remaining -= served;
  last_update_ = now;
}

void SharedBandwidth::reschedule() {
  ++generation_;
  if (flows_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& flow : flows_) {
    min_remaining = std::min(min_remaining, flow.remaining);
  }
  min_remaining = std::max(min_remaining, 0.0);
  const double dt =
      min_remaining * static_cast<double>(flows_.size()) / capacity_;
  const std::uint64_t generation = generation_;
  sim_->schedule_fn(dt, [this, generation] { on_completion_event(generation); });
}

void SharedBandwidth::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a newer arrival
  progress();
  // Collect completed flows first, then resume: resumption may start new
  // transfers re-entrantly.
  std::vector<std::coroutine_handle<>> finished;
  auto it = flows_.begin();
  while (it != flows_.end()) {
    if (it->remaining <= kEpsilonBytes) {
      finished.push_back(it->handle);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  if (flows_.empty()) {
    busy_integral_ += sim_->now() - busy_since_;
  }
  reschedule();
  for (const auto handle : finished) sim_->schedule(0, handle);
}

}  // namespace rocket::sim

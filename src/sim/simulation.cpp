#include "sim/simulation.hpp"

#include <stdexcept>

namespace rocket::sim {

bool Simulation::step() {
  if (queue_.empty()) return false;
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.t;
  ++executed_;
  if (event_limit_ != 0 && executed_ > event_limit_) {
    throw std::runtime_error("Simulation: event limit exceeded (livelock?)");
  }
  if (entry.handle) {
    entry.handle.resume();
  } else if (entry.fn) {
    entry.fn();
  }
  return true;
}

Time Simulation::run() {
  while (step()) {
  }
  return now_;
}

Time Simulation::run_until(Time t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    step();
  }
  if (now_ < t) now_ = t;
  return now_;
}

}  // namespace rocket::sim

#include "mesh/mesh_node.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/log.hpp"

namespace rocket::mesh {

namespace {

/// How long a thief waits for a steal reply before re-polling its local
/// deques. Replies normally arrive in microseconds (one inbox hop each
/// way); the timeout only matters when the victim's service thread is
/// busy, and the executor's idle backoff bounds how often we re-request.
constexpr auto kStealReplyTimeout = std::chrono::milliseconds(1);

std::chrono::steady_clock::duration seconds_to_duration(double s) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(s));
}

}  // namespace

PeerCacheStats& operator+=(PeerCacheStats& a, const PeerCacheStats& b) {
  a.requests += b.requests;
  a.chain_hits += b.chain_hits;
  a.chain_misses += b.chain_misses;
  a.retries += b.retries;
  a.timeouts += b.timeouts;
  if (a.hits_at_hop.size() < b.hits_at_hop.size()) {
    a.hits_at_hop.resize(b.hits_at_hop.size(), 0);
  }
  for (std::size_t h = 0; h < b.hits_at_hop.size(); ++h) {
    a.hits_at_hop[h] += b.hits_at_hop[h];
  }
  return a;
}

FailoverStats& operator+=(FailoverStats& a, const FailoverStats& b) {
  a.node_deaths += b.node_deaths;
  a.regions_reexecuted += b.regions_reexecuted;
  a.duplicate_results_dropped += b.duplicate_results_dropped;
  a.results_received += b.results_received;
  a.regions_adopted += b.regions_adopted;
  a.master_failovers += b.master_failovers;
  a.nodes_suspected += b.nodes_suspected;
  a.nodes_degraded += b.nodes_degraded;
  a.nodes_recovered += b.nodes_recovered;
  a.regions_speculated += b.regions_speculated;
  a.pairs_speculated += b.pairs_speculated;
  a.steals_avoided_degraded += b.steals_avoided_degraded;
  return a;
}

// --- causal tracing helpers (DESIGN.md §16) -------------------------------

double MeshNode::trace_now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       telemetry::process_epoch())
      .count();
}

void MeshNode::record_child_span(const telemetry::SpanContext& parent,
                                 std::uint64_t salt,
                                 telemetry::SpanPhase phase, double start,
                                 double end) {
  if (cfg_.spans == nullptr || !parent.sampled()) return;
  cfg_.spans->record(telemetry::child_of(parent, salt), phase, start, end);
}

MeshNode::MeshNode(Config config, Transport& transport,
                   std::shared_ptr<std::atomic<bool>> done)
    : cfg_(std::move(config)), transport_(transport), done_(std::move(done)),
      directory_(cfg_.hop_limit, cfg_.max_chain_hops),
      epoch_(std::chrono::steady_clock::now()) {
  stats_.hits_at_hop.assign(cfg_.hop_limit, 0);
  const auto p = transport_.num_nodes();
  dead_ = std::make_unique<std::atomic<bool>[]>(p);
  last_seen_ns_ = std::make_unique<std::atomic<std::int64_t>[]>(p);
  health_ = std::make_unique<std::atomic<std::uint8_t>[]>(p);
  for (std::uint32_t k = 0; k < p; ++k) {
    dead_[k].store(false, std::memory_order_relaxed);
    last_seen_ns_[k].store(0, std::memory_order_relaxed);
    health_[k].store(static_cast<std::uint8_t>(telemetry::NodeHealth::kAlive),
                     std::memory_order_relaxed);
  }
  health_states_.assign(p, HealthState{});
  declared_.assign(p, false);
  for (std::uint32_t w = 0; w < std::max(1u, cfg_.num_workers); ++w) {
    auto cell = std::make_unique<StealCell>();
    cell->rng.reseed(cfg_.seed * 0x9E3779B97F4A7C15ULL +
                     (static_cast<std::uint64_t>(cfg_.id) << 20) + w + 1);
    cells_.push_back(std::move(cell));
  }
  if (cfg_.ledger_items > 0 && !cfg_.initial_grants.empty() && is_master()) {
    ledger_ = std::make_unique<ResultLedger>(cfg_.ledger_items, p);
    for (NodeId node = 0; node < cfg_.initial_grants.size(); ++node) {
      for (const auto& region : cfg_.initial_grants[node]) {
        ledger_->grant(node, region, /*reexecution=*/false);
      }
    }
    // Resume: pairs a previous incarnation already delivered are marked
    // up front — they count toward completion but are never re-delivered
    // (the journal, not this run, is their system of record).
    for (const dnc::Pair& pair : cfg_.recovered) {
      if (ledger_->mark_recovered(pair.left, pair.right)) ++results_seen_;
    }
    init_region_watch();
  }
  snap_states_.assign(p, SnapState{});
  steal_rtt_ = &metrics_.histogram("steal.rtt");
  fetch_hit_ = &metrics_.histogram("peer_fetch.hit");
  fetch_miss_ = &metrics_.histogram("peer_fetch.miss");
  lease_slack_ = &metrics_.histogram("lease.slack");
  fetch_retries_ = &metrics_.counter("peer_fetch.retry");
  frame_corrupt_ = &metrics_.counter("net.frame_corrupt");
}

MeshNode::~MeshNode() { join(); }

void MeshNode::start() {
  const auto p = transport_.num_nodes();
  // Resume edge case: the journal already covered every pair. Nothing
  // will ever arrive to trigger completion, so fire it up front.
  if (is_master() && cfg_.expected_pairs > 0 &&
      results_seen_ >= cfg_.expected_pairs && !completed_ &&
      cfg_.on_complete) {
    completed_ = true;
    cfg_.on_complete();
  }
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  for (std::uint32_t k = 0; k < p; ++k) {
    last_seen_ns_[k].store(now_ns, std::memory_order_relaxed);
  }
  service_ = std::thread([this] { serve_loop(); });
  // With failover every node may end up master, so every node runs both
  // the detector and heartbeats; the ticker branches on the CURRENT role.
  const bool detector =
      (is_master() || cfg_.failover) && cfg_.lease_timeout_s > 0;
  const bool heartbeats = (!is_master() || cfg_.failover) &&
                          cfg_.heartbeat_interval_s > 0 && p > 1;
  const bool deadlines = cfg_.fetch_timeout_s > 0;
  const bool snapshots = cfg_.snapshot_interval_s > 0;
  const bool master_tick = (cfg_.failover || cfg_.journal != nullptr) &&
                           cfg_.heartbeat_interval_s > 0;
  if (detector || heartbeats || deadlines || snapshots || master_tick) {
    ticker_ = std::thread([this] { ticker_loop(); });
  }
}

void MeshNode::join() {
  {
    std::scoped_lock lock(ticker_mutex_);
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  if (service_.joinable()) service_.join();
}

void MeshNode::serve_loop() {
  while (auto msg = transport_.recv(cfg_.id)) {
    // A killed node observes its own death at the next message boundary
    // and goes silent: queued messages are discarded, nothing is acted
    // on. (Sends already fail at the transport; this stops the master
    // from journalling or delivering results as a corpse.)
    if (!crashed_ && transport_.is_node_down(cfg_.id)) crashed_ = true;
    if (crashed_) continue;
    // Frame integrity (satellite: CRC every transport payload). A
    // corrupted frame is dropped before it renews a lease or reaches a
    // handler — the injector always follows it with a clean retransmit,
    // so dropping is the whole recovery.
    if (msg->crc != 0 && frame_crc(msg->body) != msg->crc) {
      frame_corrupt_->add();
      continue;
    }
    const NodeId from = msg->from;
    if (from < transport_.num_nodes()) {
      // Any traffic renews the sender's lease, not just heartbeats — a
      // node busy shipping results is evidently alive.
      const std::int64_t now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - epoch_)
              .count();
      last_seen_ns_[from].store(now_ns, std::memory_order_release);
    }
    if (cfg_.flight != nullptr) {
      // Black box: every message that reached a handler, with its causal
      // ids when the body carries a sampled context (DESIGN.md §16).
      telemetry::SpanContext sc;
      std::visit(
          [&sc](const auto& body) {
            if constexpr (requires { body.span; }) sc = body.span;
          },
          msg->body);
      cfg_.flight->record(
          static_cast<std::uint16_t>(telemetry::kFlightMessageBase +
                                     msg->body.index()),
          cfg_.id, sc.trace_id, sc.span_id, from, 0);
    }
    std::visit(
        [this, from](auto&& body) {
          using Body = std::decay_t<decltype(body)>;
          if constexpr (std::is_same_v<Body, CacheRequest>) {
            on_cache_request(body);
          } else if constexpr (std::is_same_v<Body, CacheProbe>) {
            on_cache_probe(std::move(body));
          } else if constexpr (std::is_same_v<Body, CacheData>) {
            on_cache_data(std::move(body));
          } else if constexpr (std::is_same_v<Body, CacheFailure>) {
            on_cache_failure(body);
          } else if constexpr (std::is_same_v<Body, StealRequest>) {
            on_steal_request(body);
          } else if constexpr (std::is_same_v<Body, StealReply>) {
            on_steal_reply(body);
          } else if constexpr (std::is_same_v<Body, ResultMsg>) {
            on_result_msg(body);
          } else if constexpr (std::is_same_v<Body, Heartbeat>) {
            // Lease already renewed above; the body carries nothing else.
          } else if constexpr (std::is_same_v<Body, NodeDown>) {
            on_node_down(body, from);
          } else if constexpr (std::is_same_v<Body, StealExport>) {
            on_steal_export(body);
          } else if constexpr (std::is_same_v<Body, RegionGrant>) {
            on_region_grant(body);
          } else if constexpr (std::is_same_v<Body, TelemetrySnapshot>) {
            on_telemetry(body);
          } else if constexpr (std::is_same_v<Body, LedgerSync>) {
            on_ledger_sync(std::move(body));
          } else if constexpr (std::is_same_v<Body, MasterAnnounce>) {
            on_master_announce(body);
          } else if constexpr (std::is_same_v<Body, MasterTick>) {
            on_master_tick();
          } else if constexpr (std::is_same_v<Body, HealthUpdate>) {
            on_health_update(body);
          }
        },
        std::move(msg->body));
  }
}

// --- ticker: heartbeats, failure detection, fetch deadlines ---------------

void MeshNode::ticker_loop() {
  // Tick at the finest enabled granularity (heartbeats may renew more
  // often than their nominal interval, which is harmless).
  double period_s = 1.0;
  if (cfg_.heartbeat_interval_s > 0) {
    period_s = std::min(period_s, cfg_.heartbeat_interval_s);
  }
  if ((is_master() || cfg_.failover) && cfg_.lease_timeout_s > 0) {
    period_s = std::min(period_s, cfg_.lease_timeout_s / 4);
  }
  if (cfg_.fetch_timeout_s > 0) {
    period_s = std::min(period_s, cfg_.fetch_timeout_s / 2);
  }
  if (cfg_.snapshot_interval_s > 0) {
    period_s = std::min(period_s, cfg_.snapshot_interval_s);
  }
  const auto tick = seconds_to_duration(std::max(period_s, 1e-4));
  next_snapshot_ = std::chrono::steady_clock::now();

  std::unique_lock lock(ticker_mutex_);
  // Phase jitter (DESIGN.md §15 satellite): N nodes constructed together
  // would otherwise renew leases and publish snapshots in lockstep,
  // hammering the master's inbox in p-message bursts each interval. A
  // deterministic per-node phase offset in [0, tick) — BackoffPolicy's
  // jitter fn salted by the node id — spreads the arrivals evenly.
  {
    const BackoffPolicy phase{period_s, period_s, 1.0, 0};
    const double phase_s = 0.5 * phase.delay_seconds(0, cfg_.id + 1);
    if (phase_s > 0 &&
        ticker_cv_.wait_for(lock, seconds_to_duration(phase_s),
                            [this] { return ticker_stop_; })) {
      return;
    }
  }
  while (!ticker_cv_.wait_for(lock, tick, [this] { return ticker_stop_; })) {
    lock.unlock();
    const NodeId master_now = master_.load(std::memory_order_acquire);
    const bool i_am_master = cfg_.id == master_now;
    const auto p = transport_.num_nodes();
    if (cfg_.heartbeat_interval_s > 0 && p > 1) {
      if (!i_am_master) {
        transport_.send(cfg_.id, master_now, net::Tag::kHeartbeat,
                        Heartbeat{cfg_.id, ++heartbeat_seq_});
      } else if (cfg_.failover) {
        // Failover needs the master's liveness to be observable too:
        // broadcast its lease renewal so every standby's master-watch
        // has something to time out on.
        ++heartbeat_seq_;
        for (NodeId peer = 0; peer < p; ++peer) {
          if (peer == cfg_.id || dead_[peer].load(std::memory_order_acquire)) {
            continue;
          }
          transport_.send(cfg_.id, peer, net::Tag::kHeartbeat,
                          Heartbeat{cfg_.id, heartbeat_seq_});
        }
      }
    }
    if (i_am_master && cfg_.lease_timeout_s > 0) check_leases();
    if (!i_am_master && cfg_.failover && cfg_.lease_timeout_s > 0) {
      check_master_lease();
    }
    if (i_am_master && (cfg_.failover || cfg_.journal != nullptr)) {
      // Periodic master duties (standby resync, partial-batch flush) run
      // on the service thread, where the ledger lives.
      transport_.send(cfg_.id, cfg_.id, net::Tag::kControl, MasterTick{});
    }
    if (cfg_.fetch_timeout_s > 0) check_fetch_deadlines();
    if (cfg_.snapshot_interval_s > 0 &&
        std::chrono::steady_clock::now() >= next_snapshot_) {
      next_snapshot_ = std::chrono::steady_clock::now() +
                       seconds_to_duration(cfg_.snapshot_interval_s);
      publish_snapshot();
    }
    lock.lock();
  }
}

void MeshNode::check_leases() {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  const auto lease_ns =
      static_cast<std::int64_t>(cfg_.lease_timeout_s * 1e9);
  const auto p = transport_.num_nodes();
  for (NodeId k = 0; k < p; ++k) {
    if (k == cfg_.id || declared_[k]) continue;
    if (dead_[k].load(std::memory_order_acquire)) {
      declared_[k] = true;
      continue;
    }
    const std::int64_t silence_ns =
        now_ns - last_seen_ns_[k].load(std::memory_order_acquire);
    if (silence_ns < lease_ns) {
      // Lease slack: how much margin the node had left when the detector
      // looked. A slack distribution hugging zero means the timeout is
      // about to false-positive on a healthy-but-busy cluster.
      lease_slack_->record_ns(static_cast<std::uint64_t>(lease_ns - silence_ns));
      continue;
    }
    declared_[k] = true;
    // Deliver the verdict through our own inbox so every ledger mutation
    // happens on the service thread. A false positive (slow node, not a
    // dead one) is safe: its late results still dedup per pair.
    transport_.send(cfg_.id, cfg_.id, net::Tag::kFailover, NodeDown{k, 0});
  }
}

void MeshNode::check_master_lease() {
  // Standby side of failover: watch the CURRENT master's lease the same
  // way the master watches everyone else's. The verdict goes through our
  // own inbox; the service thread decides whether this node is the
  // lowest live survivor and must adopt.
  const NodeId m = master_.load(std::memory_order_acquire);
  if (m == cfg_.id || m >= transport_.num_nodes() || declared_[m]) return;
  if (dead_[m].load(std::memory_order_acquire)) {
    declared_[m] = true;
    return;
  }
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  const auto lease_ns = static_cast<std::int64_t>(cfg_.lease_timeout_s * 1e9);
  const std::int64_t silence_ns =
      now_ns - last_seen_ns_[m].load(std::memory_order_acquire);
  if (silence_ns < lease_ns) return;
  declared_[m] = true;
  transport_.send(cfg_.id, cfg_.id, net::Tag::kFailover, NodeDown{m, 0});
}

void MeshNode::check_fetch_deadlines() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::pair<ItemId, telemetry::SpanContext>> retry;
  std::vector<ItemId> expired;
  {
    std::scoped_lock lock(mutex_);
    for (auto& [item, pending] : pending_) {
      if (pending.deadline.time_since_epoch().count() == 0 ||
          now < pending.deadline) {
        continue;
      }
      if (pending.attempts < cfg_.max_fetch_retries) {
        ++pending.attempts;
        // Shared jittered-exponential policy (common/backoff.hpp): base =
        // one fetch timeout, doubling per attempt, salted by the item id
        // so concurrent retriers don't retransmit in lockstep.
        const BackoffPolicy policy{cfg_.fetch_timeout_s,
                                   cfg_.fetch_timeout_s * 1024.0, 0.25, 10};
        pending.deadline = now + seconds_to_duration(policy.delay_seconds(
                                     pending.attempts, item));
        ++stats_.retries;
        fetch_retries_->add();
        if (cfg_.events != nullptr) {
          cfg_.events->record(telemetry::EventKind::kFetchRetry,
                              static_cast<std::uint32_t>(item),
                              pending.attempts);
        }
        retry.emplace_back(item, pending.span);
      } else {
        ++stats_.timeouts;
        expired.push_back(item);
      }
    }
  }
  const auto p = transport_.num_nodes();
  for (const auto& [item, span] : retry) {
    const NodeId mediator = cache::DistributedDirectory::mediator_of(item, p);
    if (dead_[mediator].load(std::memory_order_acquire) ||
        !transport_.send(cfg_.id, mediator, net::Tag::kCacheRequest,
                         CacheRequest{item, cfg_.id, span})) {
      complete_fetch(item, {}, 0, false);
    }
  }
  for (const ItemId item : expired) complete_fetch(item, {}, 0, false);
}

// --- requester side: peer fetch ------------------------------------------

void MeshNode::fetch(ItemId item, DoneFn done, telemetry::SpanContext ctx) {
  const auto p = transport_.num_nodes();
  if (p < 2 || cfg_.hop_limit == 0) {
    done({});
    return;
  }
  if (cfg_.spans != nullptr && ctx.sampled()) {
    // The fetch's own peer.fetch span: closed by complete_fetch (aborted
    // on a miss or failure), or by the teardown sweep if this node dies
    // with the fetch still in flight.
    cfg_.spans->open(ctx, telemetry::SpanPhase::kPeerFetch, trace_now());
  }
  const NodeId mediator = cache::DistributedDirectory::mediator_of(item, p);
  {
    std::scoped_lock lock(mutex_);
    ++stats_.requests;
    // The host cache admits one writer per item, so one outstanding fetch
    // per item per node.
    ROCKET_CHECK(pending_.find(item) == pending_.end(),
                 "duplicate peer fetch for item");
    auto& pending = pending_[item];
    pending.done = std::move(done);
    pending.t0 = std::chrono::steady_clock::now();
    pending.span = ctx;
    if (cfg_.fetch_timeout_s > 0) {
      pending.deadline = pending.t0 + seconds_to_duration(cfg_.fetch_timeout_s);
    }
  }
  // Dead-peer fast path: a mediator already declared dead is not worth a
  // deadline wait; fall straight back to the object store.
  if (dead_[mediator].load(std::memory_order_acquire) ||
      !transport_.send(cfg_.id, mediator, net::Tag::kCacheRequest,
                       CacheRequest{item, cfg_.id, ctx})) {
    complete_fetch(item, {}, 0, false);  // mediator unreachable
  }
}

void MeshNode::complete_fetch(ItemId item, runtime::PeerPayload payload,
                              std::uint32_t hops, bool hit) {
  DoneFn done;
  std::chrono::steady_clock::time_point t0{};
  telemetry::SpanContext span;
  {
    std::scoped_lock lock(mutex_);
    const auto it = pending_.find(item);
    if (it == pending_.end()) return;
    done = std::move(it->second.done);
    t0 = it->second.t0;
    span = it->second.span;
    pending_.erase(it);
    if (hit) {
      ++stats_.chain_hits;
      if (hops >= 1 && hops <= stats_.hits_at_hop.size()) {
        ++stats_.hits_at_hop[hops - 1];
      }
    } else {
      ++stats_.chain_misses;
    }
    directory_.record_chain_outcome(hit, hops);
  }
  if (cfg_.spans != nullptr && span.sampled()) {
    // A miss closes the span as aborted: the causal chain ends here and
    // the tile falls back to the object-store load path.
    cfg_.spans->close(span.span_id, trace_now(), /*aborted=*/!hit);
  }
  if (t0.time_since_epoch().count() != 0) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    (hit ? fetch_hit_ : fetch_miss_)->record_seconds(elapsed);
  }
  done(std::move(payload));
}

void MeshNode::on_cache_data(CacheData data) {
  if (data.span.sampled()) {
    // Zero-width arrival span, child of the serving candidate's
    // peer.serve span: the return edge of the cross-node arrow pair.
    const double now = trace_now();
    record_child_span(data.span, 0x72656376 /* 'recv' */,
                      telemetry::SpanPhase::kPeerFetch, now, now);
  }
  complete_fetch(data.item,
                 runtime::PeerPayload{std::move(data.bytes), data.compressed},
                 data.hop, true);
}

void MeshNode::on_cache_failure(const CacheFailure& failure) {
  complete_fetch(failure.item, {}, failure.hops, false);
}

// --- mediator / candidate side -------------------------------------------

void MeshNode::on_cache_request(const CacheRequest& req) {
  std::vector<NodeId> chain;
  {
    std::scoped_lock lock(mutex_);
    // The directory retains at most h candidates, so the chain already
    // respects the hop limit (and the walk cap, when configured).
    chain = directory_.on_request(req.item, req.requester);
  }
  forward_probe(req.item, req.requester, std::move(chain), 0, req.span);
}

void MeshNode::forward_probe(ItemId item, NodeId requester,
                             std::vector<NodeId> chain, std::uint32_t index,
                             const telemetry::SpanContext& span) {
  const auto hops = static_cast<std::uint32_t>(chain.size());
  for (std::uint32_t k = index; k < chain.size(); ++k) {
    const NodeId candidate = chain[k];
    // Declared-dead candidates are skipped without a wire attempt; a
    // rejected send (transport-level down) skips the hop exactly like a
    // probe miss.
    if (dead_[candidate].load(std::memory_order_acquire)) continue;
    if (transport_.send(cfg_.id, candidate, net::Tag::kCacheForward,
                        CacheProbe{item, requester, chain, k, span})) {
      return;
    }
  }
  transport_.send(cfg_.id, requester, net::Tag::kCacheFailure,
                  CacheFailure{item, hops, span});
}

void MeshNode::on_cache_probe(CacheProbe probe) {
  const double t0 =
      cfg_.spans != nullptr && probe.span.sampled() ? trace_now() : 0.0;
  runtime::HostBuffer bytes;
  bool hit = false;
  {
    std::scoped_lock lock(probe_mutex_);
    if (probe_ != nullptr) hit = probe_->probe(probe.item, bytes);
  }
  if (hit) {
    telemetry::SpanContext serve;
    if (cfg_.spans != nullptr && probe.span.sampled()) {
      // peer.serve: this candidate's side of the fetch. Its id rides on
      // the CacheData so the requester's arrival span links back — the
      // pair of parent links is what Perfetto renders as two arrows
      // (requester → candidate, candidate → requester).
      serve = telemetry::child_of(probe.span, 0x73657276 /* 'serv' */);
      cfg_.spans->record(serve, telemetry::SpanPhase::kPeerServe, t0,
                         trace_now());
    }
    const Bytes payload = bytes.size();
    transport_.send(
        cfg_.id, probe.requester, net::Tag::kCacheData,
        CacheData{probe.item, probe.index + 1, false, std::move(bytes), serve},
        payload);
    return;
  }
  forward_probe(probe.item, probe.requester, std::move(probe.chain),
                probe.index + 1, probe.span);
}

// --- stealing -------------------------------------------------------------

std::optional<dnc::Region> MeshNode::remote_steal(std::uint32_t worker) {
  const auto p = transport_.num_nodes();
  if (p < 2) return std::nullopt;
  // Orphans first: re-execution grants parked here and regions this node
  // failed to ship to a dead thief.
  {
    std::scoped_lock lock(mutex_);
    if (!orphans_.empty()) {
      const dnc::Region out = orphans_.front();
      orphans_.pop_front();
      remote_steal_count_.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
  }
  auto& cell = *cells_[worker % cells_.size()];
  std::unique_lock lock(cell.mutex);
  if (!cell.regions.empty()) {
    const dnc::Region out = cell.regions.front();
    cell.regions.pop_front();
    remote_steal_count_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.events != nullptr) {
      cfg_.events->record(telemetry::EventKind::kRemoteSteal, worker, 1);
    }
    return out;
  }
  if (global_done()) return std::nullopt;
  const auto t0 = std::chrono::steady_clock::now();
  if (cell.outstanding == 0) {
    // Uniform victim among the other *live, healthy* nodes (with nobody
    // dead or degraded this draws the same victim sequence as the
    // pre-failure-model code). Suspected/degraded stragglers are skipped
    // while a healthy victim exists — stealing their deques would hand
    // MORE work to nodes near them in the result path and race the
    // master's speculation; their backlog drains through the bounded
    // speculative re-grants instead. With only stragglers left they are
    // still fair game: slow work beats idle workers.
    std::vector<NodeId> victims;
    std::vector<NodeId> stragglers;
    victims.reserve(p - 1);
    for (NodeId v = 0; v < p; ++v) {
      if (v == cfg_.id || dead_[v].load(std::memory_order_acquire)) continue;
      const auto health = health_of(v);
      if (health == telemetry::NodeHealth::kSuspected ||
          health == telemetry::NodeHealth::kDegraded) {
        stragglers.push_back(v);
        continue;
      }
      victims.push_back(v);
    }
    if (victims.empty()) {
      victims = std::move(stragglers);
    } else if (!stragglers.empty()) {
      steals_avoided_degraded_.fetch_add(stragglers.size(),
                                         std::memory_order_relaxed);
    }
    if (victims.empty()) return std::nullopt;
    const NodeId victim = victims[cell.rng.uniform_index(victims.size())];
    ++cell.outstanding;
    telemetry::SpanContext steal_ctx;
    if (tracing()) {
      // Mesh-rooted trace: a steal has no tile context of its own. One
      // node-wide key counter keeps every mesh-rooted key distinct; the
      // folded node id keeps concurrent nodes' draws independent.
      steal_ctx = mesh_trace(
          (std::uint64_t{cfg_.id} << 40) ^
          trace_key_seq_.fetch_add(1, std::memory_order_relaxed));
      if (steal_ctx.sampled()) {
        if (cell.span.sampled()) {
          // The previous request timed out and its reply never arrived
          // (dead victim): close it rather than leaking an open span.
          cfg_.spans->close(cell.span.span_id, trace_now(), true);
        }
        cell.span = steal_ctx;
        cfg_.spans->open(steal_ctx, telemetry::SpanPhase::kSteal,
                         trace_now());
      }
    }
    lock.unlock();
    const bool sent =
        transport_.send(cfg_.id, victim, net::Tag::kStealRequest,
                        StealRequest{cfg_.id, worker, steal_ctx});
    lock.lock();
    if (!sent) {
      --cell.outstanding;
      if (cfg_.spans != nullptr && steal_ctx.sampled()) {
        cfg_.spans->close(steal_ctx.span_id, trace_now(), true);
        cell.span = {};
      }
      return std::nullopt;
    }
  }
  cell.cv.wait_for(lock, kStealReplyTimeout, [&] {
    return !cell.regions.empty() || global_done();
  });
  if (!cell.regions.empty()) {
    const dnc::Region out = cell.regions.front();
    cell.regions.pop_front();
    remote_steal_count_.fetch_add(1, std::memory_order_relaxed);
    steal_rtt_->record_seconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    if (cfg_.events != nullptr) {
      cfg_.events->record(telemetry::EventKind::kRemoteSteal, worker, 1);
    }
    return out;
  }
  // Timed out: treat the request as lost so the next attempt may try
  // another victim. `outstanding` is a throttle, not an exact count — a
  // late reply still parks its region in the cell (never lost), and the
  // guarded decrement in on_steal_reply keeps it non-negative.
  if (cell.outstanding > 0) --cell.outstanding;
  return std::nullopt;
}

void MeshNode::on_steal_request(const StealRequest& req) {
  const double t0 =
      cfg_.spans != nullptr && req.span.sampled() ? trace_now() : 0.0;
  std::optional<dnc::Region> region;
  {
    std::scoped_lock lock(mutex_);
    if (exporter_ != nullptr) region = exporter_->try_steal();
  }
  telemetry::SpanContext serve;
  if (cfg_.spans != nullptr && req.span.sampled()) {
    // steal.serve: the victim's side, child of the thief's steal span
    // (forward arrow); its id rides on the reply for the return arrow.
    serve = telemetry::child_of(req.span, 0x76696374 /* 'vict' */);
    cfg_.spans->record(serve, telemetry::SpanPhase::kStealServe, t0,
                       trace_now(), /*aborted=*/!region.has_value());
  }
  StealReply reply{req.worker, region.has_value(),
                   region.value_or(dnc::Region{}), serve};
  if (!transport_.send(cfg_.id, req.thief, net::Tag::kStealReply,
                       std::move(reply))) {
    if (region.has_value()) {
      // The thief vanished after we popped the region: park it as an
      // orphan so this node's own idle workers re-adopt it (they keep
      // polling remote_steal until the cluster is done, and the orphan's
      // pairs keep the done flag false) — pairs are never lost to a dead
      // peer.
      std::scoped_lock lock(mutex_);
      orphans_.push_back(*region);
    }
    return;
  }
  if (region.has_value() && cfg_.export_leases) {
    // Lease transfer notice, sent only AFTER the reply demonstrably
    // reached the thief's inbox: from here on the thief owns the region,
    // and the master's ledger must re-grant it if the *thief* dies (the
    // victim's own death no longer covers these pairs).
    transport_.send(cfg_.id, current_master(), net::Tag::kFailover,
                    StealExport{*region, req.thief, serve});
  }
}

void MeshNode::on_steal_reply(const StealReply& reply) {
  auto& cell = *cells_[reply.worker % cells_.size()];
  telemetry::SpanContext steal_ctx;
  {
    std::scoped_lock lock(cell.mutex);
    if (cell.outstanding > 0) --cell.outstanding;
    if (reply.has_region) cell.regions.push_back(reply.region);
    steal_ctx = std::exchange(cell.span, telemetry::SpanContext{});
  }
  if (cfg_.spans != nullptr && steal_ctx.sampled()) {
    const double now = trace_now();
    cfg_.spans->close(steal_ctx.span_id, now, /*aborted=*/!reply.has_region);
    if (reply.span.sampled()) {
      // Return edge: the reply's arrival, child of the victim's serve.
      record_child_span(reply.span, 0x61646f70 /* 'adop' */,
                        telemetry::SpanPhase::kSteal, now, now);
    }
  }
  cell.cv.notify_all();
}

void MeshNode::wake() {
  for (auto& cell : cells_) {
    std::scoped_lock lock(cell->mutex);
    cell->cv.notify_all();
  }
}

// --- master: results, deaths, re-grants -----------------------------------

void MeshNode::on_result_msg(const ResultMsg& msg) {
  // A result can only land on a non-master through stale routing to a
  // corpse (whose sends already fail) — a live non-master never receives
  // one, but guard anyway: acting would fork the aggregation.
  if (!is_master()) return;
  if (msg.span.sampled()) {
    // Arrival edge of a sampled result-delivery hop (worker → master).
    const double now = trace_now();
    record_child_span(msg.span, 0x6d737472 /* 'mstr' */,
                      telemetry::SpanPhase::kDeliver, now, now);
  }
  ++failover_.results_received;
  if (ledger_ != nullptr &&
      !ledger_->record(msg.result.left, msg.result.right)) {
    // Duplicate: a re-executed pair whose original owner also delivered,
    // or a late result from a node declared dead. Dropped, never
    // double-counted — the exactly-once invariant (DESIGN.md §12).
    return;
  }
  const bool durable = cfg_.failover || cfg_.journal != nullptr;
  if (!durable) {
    // Pre-durability fast path: deliver immediately, bit-identical to
    // the behaviour before batching existed.
    if (cfg_.on_result) cfg_.on_result(msg.result);
    ++results_seen_;
    if (results_seen_ == cfg_.expected_pairs && !completed_ &&
        cfg_.on_complete) {
      completed_ = true;
      cfg_.on_complete();
    }
    return;
  }
  batch_.push_back(msg.result);
  note_region_progress(msg.result);
  if (batch_.size() >= cfg_.result_batch_pairs ||
      results_seen_ + batch_.size() >= cfg_.expected_pairs) {
    flush_results();
  }
}

// --- durability: flush ordering, standby mirror, adoption (§14) -----------

void MeshNode::flush_results() {
  if (batch_.empty()) return;
  // Step 1: a corpse flushes nothing. (The kill may have landed between
  // accepting the batch and now, via any thread's send firing the fault
  // injector.)
  if (transport_.is_node_down(cfg_.id)) {
    crashed_ = true;
    batch_.clear();
    regions_just_completed_.clear();
    return;
  }
  // Step 2: mirror before anything externally visible. A failed sync
  // means WE are down (sync_to_standby only fails for self-death):
  // abort the whole flush — no journal record, no user delivery — so
  // mirror, journal and delivered stay exactly equal and the adopter's
  // re-grant covers the dropped batch.
  if (cfg_.failover && !sync_to_standby()) {
    crashed_ = true;
    batch_.clear();
    regions_just_completed_.clear();
    return;
  }
  // Step 3: journal. No send happens between here and delivery, so the
  // injected crash model cannot separate them — a journalled batch IS a
  // delivered batch, which is what makes resume's replay exact.
  if (cfg_.journal != nullptr) {
    cfg_.journal->append_results(batch_);
    for (const dnc::Region& region : regions_just_completed_) {
      cfg_.journal->append_region_complete(region);
    }
  }
  regions_just_completed_.clear();
  // Step 4: deliver and account.
  for (const runtime::PairResult& result : batch_) {
    if (cfg_.on_result) cfg_.on_result(result);
  }
  results_seen_ += batch_.size();
  batch_.clear();
  if (results_seen_ >= cfg_.expected_pairs && !completed_ &&
      cfg_.on_complete) {
    completed_ = true;
    cfg_.on_complete();
  }
}

bool MeshNode::sync_to_standby() {
  const auto p = transport_.num_nodes();
  for (NodeId k = 0; k < p; ++k) {
    if (k == cfg_.id || dead_[k].load(std::memory_order_acquire)) continue;
    const bool fresh = (k != standby_) || standby_needs_snapshot_;
    LedgerSync sync;
    sync.master = cfg_.id;
    sync.seq = ++sync_seq_;
    sync.snapshot = fresh;
    sync.delivered = results_seen_ + batch_.size();
    if (fresh) {
      // Full snapshot: the ledger already recorded the pending batch at
      // accept time, so delivered_pairs() covers it — no separate delta.
      if (ledger_ != nullptr) sync.pairs = ledger_->delivered_pairs();
    } else {
      sync.pairs.reserve(batch_.size());
      for (const runtime::PairResult& result : batch_) {
        sync.pairs.push_back(dnc::Pair{result.left, result.right});
      }
    }
    const Bytes payload = sync.pairs.size() * sizeof(dnc::Pair);
    if (transport_.send(cfg_.id, k, net::Tag::kLedgerSync, std::move(sync),
                        payload)) {
      standby_ = k;
      standby_needs_snapshot_ = false;
      return true;
    }
    // Send failed: either the candidate just died (try the next, with a
    // snapshot) or we did (fatal for this flush).
    if (transport_.is_node_down(cfg_.id)) return false;
  }
  // No live peer to mirror to: a single survivor needs no standby.
  standby_ = kNoNode;
  standby_needs_snapshot_ = true;
  return !transport_.is_node_down(cfg_.id);
}

void MeshNode::on_ledger_sync(LedgerSync sync) {
  if (sync.master == cfg_.id) return;
  // In-process delivery is FIFO per sender; the seq guard only matters
  // across a master change (a stale ex-master's delta must not splice
  // into the new master's stream — snapshots reset the stream).
  if (!sync.snapshot && sync.seq <= mirror_seq_) return;
  mirror_seq_ = sync.seq;
  mirror_delivered_ = sync.delivered;
  if (sync.snapshot) {
    mirror_ = std::move(sync.pairs);
  } else {
    mirror_.insert(mirror_.end(), sync.pairs.begin(), sync.pairs.end());
  }
}

void MeshNode::on_master_announce(const MasterAnnounce& ann) {
  if (ann.master >= transport_.num_nodes() || ann.master == cfg_.id) return;
  master_.store(ann.master, std::memory_order_release);
  failover_epoch_ = std::max(failover_epoch_, ann.epoch);
  wake();
}

void MeshNode::on_master_tick() {
  if (crashed_ || !is_master()) return;
  if (!batch_.empty()) {
    // Bounded staleness: a partial batch flushes within one tick even if
    // results trickle in slower than result_batch_pairs.
    flush_results();
    return;
  }
  if (cfg_.failover && standby_needs_snapshot_) sync_to_standby();
}

void MeshNode::adopt_master(NodeId dead_master) {
  const auto p = transport_.num_nodes();
  master_.store(cfg_.id, std::memory_order_release);
  ++failover_epoch_;
  ++failover_.master_failovers;
  // The master's death verdict is issued here, by the node that acts on
  // it — the old master obviously cannot count its own death.
  ++death_epoch_;
  ++failover_.node_deaths;
  if (cfg_.events != nullptr) {
    cfg_.events->record(telemetry::EventKind::kNodeDeath, dead_master,
                        death_epoch_);
    cfg_.events->record(telemetry::EventKind::kMasterFailover, cfg_.id,
                        failover_epoch_);
  }
  // Rebuild the aggregation state: everything starts as the dead
  // master's lease, then the mirrored + recovered pairs are marked
  // delivered. The mirror equals the dead master's user-delivered set
  // exactly (flush step 2 precedes step 4 with no send between), so
  // results_seen_ resumes at the true delivered count.
  ledger_ = std::make_unique<ResultLedger>(cfg_.ledger_items, p);
  ledger_->grant(dead_master, dnc::root_region(cfg_.ledger_items),
                 /*reexecution=*/false);
  results_seen_ = 0;
  for (const dnc::Pair& pair : cfg_.recovered) {
    if (ledger_->mark_recovered(pair.left, pair.right)) ++results_seen_;
  }
  for (const dnc::Pair& pair : mirror_) {
    if (ledger_->mark_recovered(pair.left, pair.right)) ++results_seen_;
  }
  mirror_.clear();
  init_region_watch();
  batch_.clear();
  regions_just_completed_.clear();
  standby_ = kNoNode;
  standby_needs_snapshot_ = true;
  // Fresh leases for everyone: the new master's detector must not
  // declare survivors dead for silence accumulated under the old reign.
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  for (NodeId k = 0; k < p; ++k) {
    last_seen_ns_[k].store(now_ns, std::memory_order_release);
  }
  // Announce, and spread the death verdict (peers that detected the
  // master's death themselves dedup on dead_).
  for (NodeId peer = 0; peer < p; ++peer) {
    if (peer == cfg_.id || dead_[peer].load(std::memory_order_acquire)) {
      continue;
    }
    transport_.send(cfg_.id, peer, net::Tag::kFailover,
                    MasterAnnounce{cfg_.id, failover_epoch_});
    transport_.send(cfg_.id, peer, net::Tag::kFailover,
                    NodeDown{dead_master, death_epoch_});
  }
  // Conservative re-grant of the ENTIRE undelivered frontier. Required,
  // not an optimisation: results in flight to the dead master were
  // silently dropped with its inbox, and a live node that already sent a
  // pair there will never resend it — only re-execution recovers those
  // pairs, and the ledger's dedup absorbs the overlap with regions still
  // being computed.
  if (results_seen_ >= cfg_.expected_pairs) {
    if (!completed_ && cfg_.on_complete) {
      completed_ = true;
      cfg_.on_complete();
    }
    return;
  }
  for (const dnc::Region& region : ledger_->undelivered_of(dead_master)) {
    regrant_region(region);
  }
}

void MeshNode::init_region_watch() {
  region_watch_.clear();
  regions_just_completed_.clear();
  if (ledger_ == nullptr || cfg_.journal == nullptr) return;
  for (const auto& grants : cfg_.initial_grants) {
    for (const dnc::Region& region : grants) {
      std::uint64_t remaining = 0;
      dnc::for_each_pair(region, [&](const dnc::Pair& pair) {
        if (!ledger_->is_delivered(pair.left, pair.right)) ++remaining;
      });
      if (remaining > 0) region_watch_.push_back({region, remaining});
    }
  }
}

void MeshNode::note_region_progress(const runtime::PairResult& result) {
  if (region_watch_.empty()) return;
  for (RegionWatch& watch : region_watch_) {
    const dnc::Region& r = watch.region;
    if (result.left < r.row_begin || result.left >= r.row_end ||
        result.right < r.col_begin || result.right >= r.col_end) {
      continue;
    }
    if (--watch.remaining == 0) {
      regions_just_completed_.push_back(r);
      watch = region_watch_.back();
      region_watch_.pop_back();
    }
    return;  // initial-partition regions are disjoint in pair space
  }
}

void MeshNode::on_node_down(const NodeDown& down, NodeId from) {
  const auto p = transport_.num_nodes();
  if (down.node >= p || down.node == cfg_.id) return;
  if (dead_[down.node].exchange(true, std::memory_order_acq_rel)) return;
  // Death terminates the health machine from any state (DESIGN.md §15).
  health_[down.node].store(
      static_cast<std::uint8_t>(telemetry::NodeHealth::kDead),
      std::memory_order_release);
  {
    std::scoped_lock lock(mutex_);
    // Mediator prune: never hand a dead node out as a candidate again.
    directory_.remove_node(down.node);
  }
  if (cfg_.failover && !is_master() &&
      down.node == master_.load(std::memory_order_acquire)) {
    // The master is gone. The lowest live node adopts; everyone else
    // waits for its MasterAnnounce (re-routing on dead_ in the
    // meantime). Every node ranks survivors the same way, so at most
    // one adopter emerges per death.
    NodeId lowest = cfg_.id;
    for (NodeId k = 0; k < p; ++k) {
      if (!dead_[k].load(std::memory_order_acquire)) {
        lowest = k;
        break;
      }
    }
    if (lowest == cfg_.id) adopt_master(down.node);
    wake();
    return;
  }
  if (is_master() && down.node == standby_) {
    // The mirror target died: re-establish it immediately so the
    // exposure window (results flushed but mirrored nowhere live) stays
    // one batch wide.
    standby_ = kNoNode;
    standby_needs_snapshot_ = true;
    if (cfg_.failover && !crashed_) sync_to_standby();
  }
  if (is_master() && from == cfg_.id) {
    // Locally-originated verdict (our own failure detector): broadcast to
    // the survivors, then re-grant the dead node's uncompleted lease.
    ++death_epoch_;
    ++failover_.node_deaths;
    if (cfg_.events != nullptr) {
      cfg_.events->record(telemetry::EventKind::kNodeDeath, down.node,
                          death_epoch_);
    }
    for (NodeId peer = 0; peer < p; ++peer) {
      if (peer == cfg_.id || dead_[peer].load(std::memory_order_acquire)) {
        continue;
      }
      transport_.send(cfg_.id, peer, net::Tag::kFailover,
                      NodeDown{down.node, death_epoch_});
    }
    if (ledger_ != nullptr) {
      for (const auto& region : ledger_->undelivered_of(down.node)) {
        regrant_region(region);
      }
    }
  }
  wake();
}

void MeshNode::on_steal_export(const StealExport& exp) {
  if (exp.span.sampled()) {
    // Third leg of a sampled steal: the lease-transfer notice reaching
    // the master (victim → master arrow, child of the serve span).
    const double now = trace_now();
    record_child_span(exp.span, 0x78707274 /* 'xprt' */,
                      telemetry::SpanPhase::kSteal, now, now);
  }
  if (ledger_ == nullptr || exp.thief >= transport_.num_nodes()) return;
  if (!dead_[exp.thief].load(std::memory_order_acquire)) {
    ledger_->transfer(exp.region, exp.thief);
    return;
  }
  // The thief died between the victim's reply and this notice landing:
  // no live node holds the region any more — re-grant it immediately.
  regrant_region(exp.region);
}

void MeshNode::on_region_grant(const RegionGrant& grant) {
  if (grant.span.sampled()) {
    // Adoption edge of a sampled re-grant (master → survivor arrow).
    const double now = trace_now();
    record_child_span(grant.span, 0x61646f70 /* 'adop' */,
                      telemetry::SpanPhase::kGrant, now, now);
  }
  {
    std::scoped_lock lock(mutex_);
    orphans_.push_back(grant.region);
  }
  ++failover_.regions_adopted;
  if (cfg_.events != nullptr) {
    cfg_.events->record(telemetry::EventKind::kRegionAdopt, cfg_.id,
                        grant.epoch);
  }
  wake();
}

NodeId MeshNode::pick_survivor() {
  const auto p = transport_.num_nodes();
  // Round-robin over live nodes, preferring healthy ones: a degraded
  // straggler receives no new grants until it recovers (hysteresis,
  // DESIGN.md §15). If every survivor is degraded, grant to one anyway —
  // slow progress beats a stranded region.
  NodeId fallback = kNoNode;
  for (std::uint32_t step = 0; step < p; ++step) {
    const NodeId candidate = next_regrant_;
    next_regrant_ = (next_regrant_ + 1) % p;
    if (dead_[candidate].load(std::memory_order_acquire)) continue;
    if (health_of(candidate) != telemetry::NodeHealth::kAlive) {
      if (fallback == kNoNode) fallback = candidate;
      continue;
    }
    return candidate;
  }
  if (fallback != kNoNode) return fallback;
  return cfg_.id;  // everyone else is gone: the master executes it
}

void MeshNode::regrant_region(const dnc::Region& region) {
  if (dnc::count_pairs(region) == 0) return;
  const NodeId to = pick_survivor();
  if (cfg_.events != nullptr) {
    const std::uint64_t pairs = dnc::count_pairs(region);
    cfg_.events->record(
        telemetry::EventKind::kRegionRegrant, to,
        static_cast<std::uint32_t>(
            std::min<std::uint64_t>(pairs, UINT32_MAX)));
  }
  regrant_region_to(region, to);
}

void MeshNode::regrant_region_to(const dnc::Region& region, NodeId to) {
  if (to != cfg_.id) {
    ledger_->grant(to, region, /*reexecution=*/true);
    telemetry::SpanContext grant;
    double t0 = 0.0;
    if (tracing()) {
      // region.grant roots its own mesh trace (same key counter as the
      // steal spans, so keys never collide within this node).
      grant = mesh_trace(
          (std::uint64_t{cfg_.id} << 40) ^
          trace_key_seq_.fetch_add(1, std::memory_order_relaxed));
      t0 = trace_now();
    }
    if (transport_.send(cfg_.id, to, net::Tag::kFailover,
                        RegionGrant{region, death_epoch_, grant})) {
      if (cfg_.spans != nullptr && grant.sampled()) {
        cfg_.spans->record(grant, telemetry::SpanPhase::kGrant, t0,
                           trace_now());
      }
      return;
    }
    // The chosen survivor is unreachable after all: take the lease back
    // so the ledger matches who will actually run it.
    ledger_->grant(cfg_.id, region, /*reexecution=*/false);
  } else {
    ledger_->grant(cfg_.id, region, /*reexecution=*/true);
  }
  {
    std::scoped_lock lock(mutex_);
    orphans_.push_back(region);
  }
  ++failover_.regions_adopted;
  wake();
}

// --- telemetry: snapshot stream (DESIGN.md §13) ---------------------------

void MeshNode::publish_snapshot() {
  telemetry::NodeStats stats;
  {
    // The sampler is invoked under mutex_ — the same contract as the
    // probe's lock — so register_stats({}) at engine teardown strictly
    // happens-before or happens-after any sampling, never mid-destruction.
    // The sampler only reads engine atomics and cache shard stats; nothing
    // it touches takes mutex_ back.
    std::scoped_lock lock(mutex_);
    if (stats_fn_) stats = stats_fn_();
    stats.peer_loads = stats_.chain_hits;
  }
  stats.remote_steals = remote_steal_count_.load(std::memory_order_relaxed);
  transport_.send(cfg_.id, current_master(), net::Tag::kTelemetry,
                  TelemetrySnapshot{cfg_.id, ++snapshot_seq_, stats});
}

void MeshNode::on_telemetry(const TelemetrySnapshot& snap) {
  if (!is_master() || snap.node >= snap_states_.size()) return;
  const auto now = std::chrono::steady_clock::now();
  SnapState& state = snap_states_[snap.node];
  if (state.seen) {
    state.prev = state.last;
    state.prev_at = state.last_at;
  }
  state.last = snap.stats;
  state.last_at = now;
  state.seen = true;

  // One evaluation per master interval: the master publishes through its
  // own inbox like everyone else, so its own sample is the metronome.
  if (snap.node != cfg_.id) return;
  if (health_enabled()) evaluate_health();
  if (!cfg_.on_snapshot) return;

  telemetry::ClusterSnapshot cluster;
  cluster.seq = ++cluster_snapshot_seq_;
  cluster.uptime_seconds =
      std::chrono::duration<double>(now - epoch_).count();
  for (NodeId k = 0; k < snap_states_.size(); ++k) {
    const SnapState& s = snap_states_[k];
    if (!s.seen) continue;
    telemetry::NodeSnapshot ns;
    ns.node = k;
    ns.alive = !dead_[k].load(std::memory_order_acquire);
    ns.health = ns.alive ? health_of(k) : telemetry::NodeHealth::kDead;
    ns.age_seconds = std::chrono::duration<double>(now - s.last_at).count();
    ns.stats = s.last;
    const double dt =
        std::chrono::duration<double>(s.last_at - s.prev_at).count();
    if (s.prev_at.time_since_epoch().count() != 0 && dt > 0) {
      ns.pairs_per_sec =
          static_cast<double>(s.last.pairs - s.prev.pairs) / dt;
      const std::uint32_t lanes = std::max(s.last.lanes, 1u);
      ns.busy_fraction = (s.last.busy_seconds - s.prev.busy_seconds) /
                         (dt * static_cast<double>(lanes));
    }
    // Staleness fix: a publisher two intervals silent is not still
    // delivering at its last-known rate — the frozen delta above would
    // otherwise report a phantom rate for as long as the node stays
    // quiet (a dead node's last sample never decays). Zero the
    // instantaneous fields; the cumulative stats keep their last sample.
    if (!ns.alive || ns.age_seconds > 2.0 * cfg_.snapshot_interval_s) {
      ns.pairs_per_sec = 0.0;
      ns.busy_fraction = 0.0;
    }
    const std::uint64_t lookups = s.last.cache_hits + s.last.cache_fills;
    if (lookups > 0) {
      ns.cache_hit_rate = static_cast<double>(s.last.cache_hits) /
                          static_cast<double>(lookups);
    }
    cluster.total_pairs += s.last.pairs;
    cluster.cluster_pairs_per_sec += ns.pairs_per_sec;
    cluster.nodes.push_back(std::move(ns));
  }
  cfg_.on_snapshot(cluster);
}

// --- grey-failure health state machine (DESIGN.md §15) --------------------

void MeshNode::evaluate_health() {
  using telemetry::NodeHealth;
  const auto p = transport_.num_nodes();
  // EWMA-smooth each live publisher's instantaneous delivered-pairs rate
  // (delta of the last two samples over their arrival spacing).
  std::vector<double> rates;
  rates.reserve(p);
  for (NodeId k = 0; k < p; ++k) {
    if (dead_[k].load(std::memory_order_acquire)) continue;
    // A node with no undelivered lease is idle by completion, not a
    // straggler: its delivered-pairs rate legitimately falls to zero at
    // the tail of the run. Keep it out of the median and its EWMA frozen
    // so the detector never degrades a finished node.
    if (ledger_ != nullptr && ledger_->pairs_owed(k) == 0) continue;
    const SnapState& s = snap_states_[k];
    if (!s.seen || s.prev_at.time_since_epoch().count() == 0) continue;
    const double dt =
        std::chrono::duration<double>(s.last_at - s.prev_at).count();
    if (dt <= 0) continue;
    const double inst =
        static_cast<double>(s.last.pairs - s.prev.pairs) / dt;
    HealthState& h = health_states_[k];
    h.ewma = h.ewma < 0 ? inst
                        : cfg_.health_ewma_alpha * inst +
                              (1.0 - cfg_.health_ewma_alpha) * h.ewma;
    rates.push_back(h.ewma);
  }
  // Already-degraded stragglers drain a bounded slice every interval,
  // whether or not a median is computable right now: late in a run the
  // healthy nodes finish, leave the rating set, and the straggler's
  // remaining backlog must keep migrating or the tail serialises on it.
  for (NodeId k = 0; k < p; ++k) {
    if (dead_[k].load(std::memory_order_acquire)) continue;
    if (health_of(k) == NodeHealth::kDegraded) speculate_for(k);
  }
  if (rates.size() < 2) return;  // a "cluster median" needs a cluster
  auto mid = rates.begin() + rates.size() / 2;
  std::nth_element(rates.begin(), mid, rates.end());
  const double median = *mid;
  // No median progress means the run is idle, starting, or draining —
  // every rate is near zero and "fraction of the median" is noise, so the
  // detector holds its current verdicts rather than inventing new ones.
  if (median <= 0) return;

  const double suspect_below = cfg_.degraded_rate_fraction * median;
  const double recover_above =
      std::max(cfg_.recover_rate_fraction, cfg_.degraded_rate_fraction) *
      median;
  for (NodeId k = 0; k < p; ++k) {
    if (dead_[k].load(std::memory_order_acquire)) continue;
    // Same idle-by-completion guard as the rating pass: no owed work means
    // no verdict change in either direction (a degraded node whose backlog
    // was fully speculated away recovers by stealing and delivering).
    if (ledger_ != nullptr && ledger_->pairs_owed(k) == 0) continue;
    HealthState& h = health_states_[k];
    if (h.ewma < 0) continue;  // never rated: no verdict either way
    switch (health_of(k)) {
      case NodeHealth::kAlive:
        if (h.ewma < suspect_below) {
          h.below = 1;
          ++failover_.nodes_suspected;
          set_health(k, NodeHealth::kSuspected);
          if (cfg_.events != nullptr) {
            cfg_.events->record(telemetry::EventKind::kNodeSuspected, k);
          }
        }
        break;
      case NodeHealth::kSuspected:
        if (h.ewma < suspect_below) {
          if (++h.below >= cfg_.suspect_intervals) {
            h.above = 0;
            ++failover_.nodes_degraded;
            set_health(k, NodeHealth::kDegraded);
            if (cfg_.events != nullptr) {
              cfg_.events->record(telemetry::EventKind::kNodeDegraded, k);
            }
            speculate_for(k);
          }
        } else {
          // A one-interval dip: clear immediately, no hysteresis needed
          // before the degraded verdict was ever confirmed.
          h.below = 0;
          set_health(k, NodeHealth::kAlive);
        }
        break;
      case NodeHealth::kDegraded:
        if (h.ewma >= recover_above) {
          if (++h.above >= cfg_.recover_intervals) {
            h.below = 0;
            h.above = 0;
            ++failover_.nodes_recovered;
            set_health(k, NodeHealth::kAlive);
            if (cfg_.events != nullptr) {
              cfg_.events->record(telemetry::EventKind::kNodeRecovered, k);
            }
          }
        } else {
          // Still degraded: the drain pass above keeps peeling its
          // backlog; here we only reset the recovery streak.
          h.above = 0;
        }
        break;
      case NodeHealth::kDead:
        break;
    }
  }
}

void MeshNode::set_health(NodeId node, telemetry::NodeHealth state) {
  health_[node].store(static_cast<std::uint8_t>(state),
                      std::memory_order_release);
  // Broadcast so every node's steal-victim selection sees the straggler,
  // not just the master's. Best effort: a lost update only costs a peer
  // some avoidable steals from a slow victim.
  const auto p = transport_.num_nodes();
  ++health_seq_;
  for (NodeId peer = 0; peer < p; ++peer) {
    if (peer == cfg_.id || dead_[peer].load(std::memory_order_acquire)) {
      continue;
    }
    transport_.send(
        cfg_.id, peer, net::Tag::kFailover,
        HealthUpdate{node, static_cast<std::uint8_t>(state), health_seq_});
  }
}

void MeshNode::on_health_update(const HealthUpdate& update) {
  if (update.node >= transport_.num_nodes()) return;
  if (update.state > static_cast<std::uint8_t>(telemetry::NodeHealth::kDead)) {
    return;
  }
  // A death verdict this node already holds outranks any health gossip.
  if (dead_[update.node].load(std::memory_order_acquire)) return;
  health_[update.node].store(update.state, std::memory_order_release);
}

void MeshNode::speculate_for(NodeId node) {
  if (ledger_ == nullptr || cfg_.speculation_regions_per_interval == 0) {
    return;
  }
  // Bounded speculative re-grant: peel up to N of the straggler's
  // undelivered regions per interval and hand each to the fastest healthy
  // node. The ledger transfers ownership, so a region is never speculated
  // twice and the straggler's late results for it dedup as duplicates —
  // first result wins (Schoeneman & Zola's speculation argument, made
  // safe by PR 6's exactly-once ledger). The straggler keeps its lease
  // and whatever it is currently computing; only its *backlog* migrates.
  std::uint32_t granted = 0;
  for (const dnc::Region& region : ledger_->undelivered_of(node)) {
    if (granted >= cfg_.speculation_regions_per_interval) break;
    const std::uint64_t pairs = dnc::count_pairs(region);
    if (pairs == 0) continue;
    const NodeId to = pick_speculation_target(node);
    if (to == node) break;  // nobody healthy to speculate on
    ++failover_.regions_speculated;
    failover_.pairs_speculated += pairs;
    if (cfg_.events != nullptr) {
      cfg_.events->record(
          telemetry::EventKind::kRegionSpeculated, to,
          static_cast<std::uint32_t>(
              std::min<std::uint64_t>(pairs, UINT32_MAX)));
    }
    regrant_region_to(region, to);
    ++granted;
  }
}

NodeId MeshNode::pick_speculation_target(NodeId degraded) {
  // Rotate over the healthy nodes so an interval's slice spreads across
  // the whole healthy set instead of serialising on one adoptive node
  // (the per-region work is uniform enough that breadth beats chasing the
  // single fastest EWMA). Returns `degraded` itself when no healthy
  // candidate exists (the caller gives up rather than shuffling work
  // between stragglers).
  const auto p = transport_.num_nodes();
  std::vector<NodeId> healthy;
  healthy.reserve(p);
  for (NodeId k = 0; k < p; ++k) {
    if (k == degraded || dead_[k].load(std::memory_order_acquire)) continue;
    if (health_of(k) != telemetry::NodeHealth::kAlive) continue;
    healthy.push_back(k);
  }
  if (healthy.empty()) return degraded;
  return healthy[spec_rr_++ % healthy.size()];
}

void MeshNode::register_stats(telemetry::NodeStatsFn fn) {
  std::scoped_lock lock(mutex_);
  stats_fn_ = std::move(fn);
}

// --- wiring & metrics -----------------------------------------------------

void MeshNode::register_probe(runtime::HostCacheProbe* probe) {
  std::scoped_lock lock(probe_mutex_);
  probe_ = probe;
}

void MeshNode::register_exporter(steal::StealExporter* exporter) {
  std::scoped_lock lock(mutex_);
  exporter_ = exporter;
}

PeerCacheStats MeshNode::peer_stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

cache::DirectoryStats MeshNode::directory_stats() const {
  std::scoped_lock lock(mutex_);
  return directory_.stats();
}

FailoverStats MeshNode::failover_stats() const {
  FailoverStats out = failover_;
  out.steals_avoided_degraded =
      steals_avoided_degraded_.load(std::memory_order_relaxed);
  if (ledger_ != nullptr) {
    out.duplicate_results_dropped = ledger_->duplicates();
    out.regions_reexecuted = ledger_->regions_regranted();
  }
  return out;
}

std::vector<NodeId> MeshNode::directory_candidates(ItemId item) const {
  std::scoped_lock lock(mutex_);
  return directory_.candidates(item);
}

}  // namespace rocket::mesh

#include "mesh/mesh_node.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/log.hpp"

namespace rocket::mesh {

namespace {

/// How long a thief waits for a steal reply before re-polling its local
/// deques. Replies normally arrive in microseconds (one inbox hop each
/// way); the timeout only matters when the victim's service thread is
/// busy, and the executor's idle backoff bounds how often we re-request.
constexpr auto kStealReplyTimeout = std::chrono::milliseconds(1);

}  // namespace

PeerCacheStats& operator+=(PeerCacheStats& a, const PeerCacheStats& b) {
  a.requests += b.requests;
  a.chain_hits += b.chain_hits;
  a.chain_misses += b.chain_misses;
  if (a.hits_at_hop.size() < b.hits_at_hop.size()) {
    a.hits_at_hop.resize(b.hits_at_hop.size(), 0);
  }
  for (std::size_t h = 0; h < b.hits_at_hop.size(); ++h) {
    a.hits_at_hop[h] += b.hits_at_hop[h];
  }
  return a;
}

MeshNode::MeshNode(Config config, Transport& transport,
                   std::shared_ptr<std::atomic<bool>> done)
    : cfg_(std::move(config)), transport_(transport), done_(std::move(done)),
      directory_(cfg_.hop_limit) {
  stats_.hits_at_hop.assign(cfg_.hop_limit, 0);
  for (std::uint32_t w = 0; w < std::max(1u, cfg_.num_workers); ++w) {
    auto cell = std::make_unique<StealCell>();
    cell->rng.reseed(cfg_.seed * 0x9E3779B97F4A7C15ULL +
                     (static_cast<std::uint64_t>(cfg_.id) << 20) + w + 1);
    cells_.push_back(std::move(cell));
  }
}

MeshNode::~MeshNode() { join(); }

void MeshNode::start() {
  service_ = std::thread([this] { serve_loop(); });
}

void MeshNode::join() {
  if (service_.joinable()) service_.join();
}

void MeshNode::serve_loop() {
  while (auto msg = transport_.recv(cfg_.id)) {
    std::visit(
        [this](auto&& body) {
          using Body = std::decay_t<decltype(body)>;
          if constexpr (std::is_same_v<Body, CacheRequest>) {
            on_cache_request(body);
          } else if constexpr (std::is_same_v<Body, CacheProbe>) {
            on_cache_probe(std::move(body));
          } else if constexpr (std::is_same_v<Body, CacheData>) {
            on_cache_data(std::move(body));
          } else if constexpr (std::is_same_v<Body, CacheFailure>) {
            on_cache_failure(body);
          } else if constexpr (std::is_same_v<Body, StealRequest>) {
            on_steal_request(body);
          } else if constexpr (std::is_same_v<Body, StealReply>) {
            on_steal_reply(body);
          } else if constexpr (std::is_same_v<Body, ResultMsg>) {
            on_result_msg(body);
          }
        },
        std::move(msg->body));
  }
}

// --- requester side: peer fetch ------------------------------------------

void MeshNode::fetch(ItemId item, DoneFn done) {
  const auto p = transport_.num_nodes();
  if (p < 2 || cfg_.hop_limit == 0) {
    done({});
    return;
  }
  const NodeId mediator = cache::DistributedDirectory::mediator_of(item, p);
  {
    std::scoped_lock lock(mutex_);
    ++stats_.requests;
    // The host cache admits one writer per item, so one outstanding fetch
    // per item per node.
    ROCKET_CHECK(pending_.find(item) == pending_.end(),
                 "duplicate peer fetch for item");
    pending_[item] = std::move(done);
  }
  if (!transport_.send(cfg_.id, mediator, net::Tag::kCacheRequest,
                       CacheRequest{item, cfg_.id})) {
    complete_fetch(item, {}, 0, false);  // mediator unreachable
  }
}

void MeshNode::complete_fetch(ItemId item, runtime::PeerPayload payload,
                              std::uint32_t hops, bool hit) {
  DoneFn done;
  {
    std::scoped_lock lock(mutex_);
    const auto it = pending_.find(item);
    if (it == pending_.end()) return;
    done = std::move(it->second);
    pending_.erase(it);
    if (hit) {
      ++stats_.chain_hits;
      if (hops >= 1 && hops <= stats_.hits_at_hop.size()) {
        ++stats_.hits_at_hop[hops - 1];
      }
    } else {
      ++stats_.chain_misses;
    }
    directory_.record_chain_outcome(hit, hops);
  }
  done(std::move(payload));
}

void MeshNode::on_cache_data(CacheData data) {
  complete_fetch(data.item,
                 runtime::PeerPayload{std::move(data.bytes), data.compressed},
                 data.hop, true);
}

void MeshNode::on_cache_failure(const CacheFailure& failure) {
  complete_fetch(failure.item, {}, failure.hops, false);
}

// --- mediator / candidate side -------------------------------------------

void MeshNode::on_cache_request(const CacheRequest& req) {
  std::vector<NodeId> chain;
  {
    std::scoped_lock lock(mutex_);
    // The directory retains at most h candidates, so the chain already
    // respects the hop limit.
    chain = directory_.on_request(req.item, req.requester);
  }
  forward_probe(req.item, req.requester, std::move(chain), 0);
}

void MeshNode::forward_probe(ItemId item, NodeId requester,
                             std::vector<NodeId> chain, std::uint32_t index) {
  const auto hops = static_cast<std::uint32_t>(chain.size());
  for (std::uint32_t k = index; k < chain.size(); ++k) {
    const NodeId candidate = chain[k];
    if (transport_.send(cfg_.id, candidate, net::Tag::kCacheForward,
                        CacheProbe{item, requester, chain, k})) {
      return;
    }
    // Candidate down: skip the hop, exactly like a probe miss.
  }
  transport_.send(cfg_.id, requester, net::Tag::kCacheFailure,
                  CacheFailure{item, hops});
}

void MeshNode::on_cache_probe(CacheProbe probe) {
  runtime::HostBuffer bytes;
  bool hit = false;
  {
    std::scoped_lock lock(probe_mutex_);
    if (probe_ != nullptr) hit = probe_->probe(probe.item, bytes);
  }
  if (hit) {
    const Bytes payload = bytes.size();
    transport_.send(
        cfg_.id, probe.requester, net::Tag::kCacheData,
        CacheData{probe.item, probe.index + 1, false, std::move(bytes)},
        payload);
    return;
  }
  forward_probe(probe.item, probe.requester, std::move(probe.chain),
                probe.index + 1);
}

// --- stealing -------------------------------------------------------------

std::optional<dnc::Region> MeshNode::remote_steal(std::uint32_t worker) {
  const auto p = transport_.num_nodes();
  if (p < 2) return std::nullopt;
  // Orphans first: regions this node failed to ship to a dead thief.
  {
    std::scoped_lock lock(mutex_);
    if (!orphans_.empty()) {
      const dnc::Region out = orphans_.front();
      orphans_.pop_front();
      return out;
    }
  }
  auto& cell = *cells_[worker % cells_.size()];
  std::unique_lock lock(cell.mutex);
  if (!cell.regions.empty()) {
    const dnc::Region out = cell.regions.front();
    cell.regions.pop_front();
    return out;
  }
  if (global_done()) return std::nullopt;
  if (cell.outstanding == 0) {
    // Uniform victim among the other p-1 nodes.
    auto victim = static_cast<NodeId>(cell.rng.uniform_index(p - 1));
    if (victim >= cfg_.id) ++victim;
    ++cell.outstanding;
    lock.unlock();
    const bool sent =
        transport_.send(cfg_.id, victim, net::Tag::kStealRequest,
                        StealRequest{cfg_.id, worker});
    lock.lock();
    if (!sent) {
      --cell.outstanding;
      return std::nullopt;
    }
  }
  cell.cv.wait_for(lock, kStealReplyTimeout, [&] {
    return !cell.regions.empty() || global_done();
  });
  if (!cell.regions.empty()) {
    const dnc::Region out = cell.regions.front();
    cell.regions.pop_front();
    return out;
  }
  // Timed out: treat the request as lost so the next attempt may try
  // another victim. `outstanding` is a throttle, not an exact count — a
  // late reply still parks its region in the cell (never lost), and the
  // guarded decrement in on_steal_reply keeps it non-negative.
  if (cell.outstanding > 0) --cell.outstanding;
  return std::nullopt;
}

void MeshNode::on_steal_request(const StealRequest& req) {
  std::optional<dnc::Region> region;
  {
    std::scoped_lock lock(mutex_);
    if (exporter_ != nullptr) region = exporter_->try_steal();
  }
  StealReply reply{req.worker, region.has_value(),
                   region.value_or(dnc::Region{})};
  if (!transport_.send(cfg_.id, req.thief, net::Tag::kStealReply,
                       std::move(reply)) &&
      region.has_value()) {
    // The thief vanished after we popped the region: park it as an orphan
    // so this node's own idle workers re-adopt it (they keep polling
    // remote_steal until the cluster is done, and the orphan's pairs keep
    // the done flag false) — pairs are never lost to a dead peer.
    std::scoped_lock lock(mutex_);
    orphans_.push_back(*region);
  }
}

void MeshNode::on_steal_reply(const StealReply& reply) {
  auto& cell = *cells_[reply.worker % cells_.size()];
  {
    std::scoped_lock lock(cell.mutex);
    if (cell.outstanding > 0) --cell.outstanding;
    if (reply.has_region) cell.regions.push_back(reply.region);
  }
  cell.cv.notify_all();
}

void MeshNode::wake() {
  for (auto& cell : cells_) {
    std::scoped_lock lock(cell->mutex);
    cell->cv.notify_all();
  }
}

// --- master ---------------------------------------------------------------

void MeshNode::on_result_msg(const ResultMsg& msg) {
  if (cfg_.on_result) cfg_.on_result(msg.result);
  ++results_seen_;
  if (results_seen_ == cfg_.expected_pairs && cfg_.on_complete) {
    cfg_.on_complete();
  }
}

// --- wiring & metrics -----------------------------------------------------

void MeshNode::register_probe(runtime::HostCacheProbe* probe) {
  std::scoped_lock lock(probe_mutex_);
  probe_ = probe;
}

void MeshNode::register_exporter(steal::StealExporter* exporter) {
  std::scoped_lock lock(mutex_);
  exporter_ = exporter;
}

PeerCacheStats MeshNode::peer_stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

cache::DirectoryStats MeshNode::directory_stats() const {
  std::scoped_lock lock(mutex_);
  return directory_.stats();
}

std::vector<NodeId> MeshNode::directory_candidates(ItemId item) const {
  std::scoped_lock lock(mutex_);
  return directory_.candidates(item);
}

}  // namespace rocket::mesh

#pragma once

// Live multi-node mesh: N NodeRuntime peers running as one cluster inside
// a single process, on real threads and wall-clock time.
//
// This is the cluster layer of §4 brought to the live runtime: the pair
// space is statically partitioned across nodes (dnc::partition_root),
// imbalances are corrected by cross-node steal request/reply messages,
// host-cache misses consult the §4.1.3 mediator/candidates directory and
// probe peers for the parsed item before falling back to the shared
// object store, and every completed pair is aggregated to the master
// node's user callback. All protocol traffic flows through a
// mesh::Transport with the same net::Tag accounting as the simulated
// fabric, so a live run's traffic table is directly comparable to a
// SimCluster run's.
//
// Failure behaviour mirrors the simulator's no-hang invariant (§6.1): a
// dead or evicted candidate chain degrades to the local-load path, a dead
// steal victim to an empty-handed sweep; the run always terminates.

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "cache/distributed_directory.hpp"
#include "mesh/mesh_node.hpp"
#include "mesh/transport.hpp"
#include "net/tag.hpp"
#include "runtime/node_runtime.hpp"
#include "storage/object_store.hpp"
#include "telemetry/critical_path.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/span.hpp"

namespace rocket::mesh {

struct LiveClusterConfig {
  /// Number of in-process nodes (p). 1 degenerates to a single-node run
  /// through the same code path.
  std::uint32_t num_nodes = 2;

  /// Per-node runtime configuration, replicated across nodes (devices,
  /// caches, execution mode, ...).
  runtime::NodeRuntime::Config node{};

  /// Third-level (distributed) cache on/off and its hop limit h (§4.1.3).
  bool distributed_cache = true;
  std::uint32_t hop_limit = 1;  // paper: h=1 after the Fig 11 study

  /// Regions per node in the static partition; stealing fixes the rest.
  std::uint32_t partition_granularity = 4;

  /// Wire size charged per control message (traffic-report comparability
  /// with the simulated fabric).
  Bytes control_message_size = 128;

  /// Peer-fetch payloads at or above this size are lz-compressed on the
  /// wire (traffic table records compressed bytes; the requester's load
  /// pipeline decompresses). 0 disables.
  Bytes peer_compress_threshold = 64_KiB;

  // --- failure model (DESIGN.md §12) ---

  /// Heartbeat period for each node's liveness lease at the master.
  /// 0 disables heartbeats and the failure detector entirely.
  double heartbeat_interval_s = 0.025;

  /// Master silence threshold before a node is declared dead. Generous by
  /// default so a healthy-but-busy node is never declared dead in normal
  /// runs (a false positive is safe — dedup — but wastes re-execution);
  /// chaos tests shrink it aggressively.
  double lease_timeout_s = 5.0;

  /// Peer-fetch deadline: a pending fetch older than this is
  /// retransmitted with exponential backoff, then completed as a miss
  /// (object-store fallback) after `max_fetch_retries`. This is also what
  /// unblocks a killed node's own in-flight fetches so its threads can
  /// drain. 0 disables deadlines.
  double fetch_timeout_s = 0.25;
  std::uint32_t max_fetch_retries = 3;

  /// Mediator chain-walk cap (0 = the hop limit h); truncations are
  /// counted in DirectoryStats::chain_aborts.
  std::uint32_t max_chain_hops = 0;

  /// Scripted, replayable node kills (chaos tests, the demo's
  /// --kill-node / --kill-master). Killing node 0 is survivable when
  /// `master_failover` is on (the lowest live node adopts the role,
  /// DESIGN.md §14); without failover a master kill ends the run early
  /// via the termination watchdog.
  FaultSchedule faults;

  // --- telemetry (DESIGN.md §13) ---

  /// Snapshot streaming period: every node samples its runtime and ships
  /// a telemetry::NodeStats to the master this often; the master folds
  /// the streams into ClusterSnapshots (cluster_snapshot(), the callback
  /// below, `live_mesh_demo --live-stats`). 0 disables the stream.
  double snapshot_interval_s = 0.0;

  /// Called on the master's service thread with each new ClusterSnapshot.
  /// Must be cheap and must not re-enter the cluster.
  std::function<void(const telemetry::ClusterSnapshot&)> on_cluster_snapshot;

  // --- causal tracing (DESIGN.md §16) ---

  /// Every Nth tile / item / steal — deterministically, by seeded hash of
  /// its identity — gets a full causal trace: a span DAG spanning nodes,
  /// recorded into the per-node span logs, rendered with cross-node flow
  /// arrows by the TraceExporter, and fed to the critical-path analyzer.
  /// 0 disables causal tracing entirely; 1 traces everything.
  std::uint32_t trace_sample_n = 0;

  /// Capacity of each node's black-box flight-recorder ring (last K span
  /// closes + received messages), dumped to `checkpoint_store` as
  /// `rocket.flightrec.node<i>` on node death, master failover, assertion
  /// failure, or end of a chaos run. 0 disables the flight recorder.
  /// Active only while causal tracing is on.
  std::size_t flight_recorder_entries = 1024;

  // --- durability (DESIGN.md §14) ---

  /// Write-ahead run journal target. Non-null enables journalling: the
  /// master appends a manifest, flushed result batches and completed
  /// regions through this store (must support_write()). Null disables
  /// the whole checkpoint path.
  storage::ObjectStore* checkpoint_store = nullptr;
  std::string checkpoint_name = "rocket.journal";

  /// Replay an existing journal before running: already-delivered pairs
  /// are NOT re-delivered, only the remaining frontier executes. A
  /// journal whose manifest fingerprint mismatches this config is
  /// ignored (fresh start). Requires checkpoint_store.
  bool resume = false;

  /// Master result-batch size for the mirror→journal→deliver flush unit
  /// (only active when failover or a journal is enabled).
  std::uint32_t journal_batch_pairs = 64;

  /// Master failover: mirror aggregation state to a standby and let the
  /// lowest live node adopt the master role when the master's lease
  /// expires. Effective only with heartbeats + lease timeout enabled on
  /// a multi-node mesh.
  bool master_failover = true;

  /// Chaos: probability that a sent frame is first delivered corrupted
  /// (then retransmitted clean). Exercises the transport CRC path.
  double frame_corrupt_rate = 0.0;
  std::uint64_t frame_corrupt_seed = 1;

  // --- grey-failure resilience (DESIGN.md §15) ---

  /// Straggler detection: a node whose EWMA delivered-pairs rate stays
  /// below this fraction of the cluster median for `suspect_intervals`
  /// consecutive telemetry intervals is marked degraded. Needs the
  /// snapshot stream (snapshot_interval_s > 0) for rate input. 0 keeps
  /// the binary alive/dead model.
  double degraded_rate_fraction = 0.0;
  std::uint32_t suspect_intervals = 2;

  /// Hysteresis: a degraded node recovers (and becomes grantable again)
  /// after holding its rate above recover_rate_fraction × median for
  /// recover_intervals consecutive intervals.
  double recover_rate_fraction = 0.7;
  std::uint32_t recover_intervals = 2;
  double health_ewma_alpha = 0.4;

  /// Straggler speculation bound: regions of a degraded node's
  /// undelivered backlog re-granted to the fastest healthy node per
  /// telemetry interval (first result wins; the ledger drops duplicates).
  /// 0 disables speculation while keeping health tracking.
  std::uint32_t speculation_regions_per_interval = 2;

  /// Grey-failure straggler injection (chaos tests, the demo's
  /// --slow-node): node `slow_node` runs every kernel `slow_factor`×
  /// slower and sees `slow_store_latency_us` of extra latency per
  /// object-store read. kNoSlowNode disables.
  static constexpr NodeId kNoSlowNode = ~NodeId{0};
  NodeId slow_node = kNoSlowNode;
  double slow_factor = 1.0;
  std::uint64_t slow_store_latency_us = 0;
};

/// Journal/resume observability (zero/false when checkpointing is off).
struct CheckpointStats {
  bool enabled = false;
  bool resumed = false;             // a prior journal was replayed
  bool torn_tail = false;           // replay found (and cut) a torn tail
  std::uint64_t pairs_recovered = 0;   // pairs restored from the journal
  std::uint64_t records_replayed = 0;  // valid records walked on resume
  std::uint64_t records_appended = 0;  // records written by this run
};

struct LiveClusterReport {
  std::uint64_t pairs = 0;        // results delivered to the master
  double wall_seconds = 0.0;
  std::uint64_t loads = 0;        // object-store load pipelines, all nodes
  std::uint64_t peer_loads = 0;   // loads served from a peer's host cache
  std::uint64_t remote_steals = 0;  // successful cross-node steals

  net::TrafficCounters traffic;
  cache::DirectoryStats directory;  // aggregated over all nodes
  PeerCacheStats peer_cache;        // aggregated requester-side chain stats
  cache::CacheStats host_cache;     // merged over all nodes' cache shards
  std::uint64_t cache_fast_hits = 0;  // lock-free fast-path pins, all nodes
  /// Tiles whose loads fully overlapped computation, all nodes (the
  /// prefetch pipeline's hit count; peer fetches prefetched ahead of need
  /// count exactly like store loads — the window drives the same load
  /// pipeline).
  std::uint64_t prefetch_hits = 0;
  double stall_seconds = 0.0;  // summed device load-stall time, all nodes

  // --- failure model (all zero in a fault-free run) ---
  std::uint64_t node_deaths = 0;        // death verdicts issued
  std::uint64_t regions_reexecuted = 0; // regions re-granted to survivors
  std::uint64_t duplicate_results_dropped = 0;  // master dedup drops
  std::uint64_t peer_retries = 0;       // fetch retransmits, all nodes
  FailoverStats failover;               // full failover detail, aggregated
  std::uint64_t master_failovers = 0;   // master-role adoptions
  std::uint64_t corrupted_frames = 0;   // injected corrupt frames (chaos)
  CheckpointStats checkpoint;           // journal/resume detail (§14)

  // --- grey-failure resilience (DESIGN.md §15) ---
  std::uint64_t regions_speculated = 0;  // straggler backlog re-grants
  std::uint64_t nodes_degraded = 0;      // degradation verdicts
  std::uint64_t nodes_recovered = 0;     // hysteresis recoveries
  std::uint64_t steals_avoided_degraded = 0;  // victim draws that skipped
                                              // stragglers
  std::uint64_t load_retries = 0;   // transient store-read retries, all nodes
  std::uint64_t failed_loads = 0;   // loads that fell to the failed-item path

  // --- causal tracing (DESIGN.md §16) ---

  /// Offline critical-path attribution over every sampled span of the
  /// run: percent of wall time per phase (sums to 100 by construction —
  /// idle is the uncovered remainder) and the top-k slowest traced tiles
  /// with their causal chains. Always populated: with tracing off the
  /// window is attributed 100% idle.
  telemetry::CriticalPathReport critical_path;

  /// Sampled spans still open when a node's engine wound down, closed
  /// forcibly with the aborted flag (the satellite-3 invariant: a killed
  /// node leaks no unclosed spans).
  std::uint64_t spans_aborted = 0;

  /// Flight-recorder rings written to the checkpoint store post-mortem.
  std::uint64_t flight_dumps = 0;

  /// Name-merged metrics over every node's engine and mesh registries
  /// (DESIGN.md §13): latency histograms add bucket-wise, counters add.
  telemetry::MetricsSnapshot metrics;
  /// Per-source-node traffic tables (indexed by node id); `traffic` above
  /// is their element-wise sum.
  std::vector<net::TrafficCounters> node_traffic;

  std::vector<runtime::NodeRuntime::Report> nodes;  // per-node detail
};

class LiveCluster {
 public:
  using Config = LiveClusterConfig;
  using Report = LiveClusterReport;

  explicit LiveCluster(Config config) : config_(std::move(config)) {}

  /// Evaluate every pair (i, j), i < j, of `app`'s items across the mesh.
  /// `on_result` is the master callback: invoked serially (on the master's
  /// service thread) exactly once per pair, in completion order. The
  /// result multiset is identical to a single-node run over the same
  /// store. Blocks until the whole cluster has finished.
  Report run_all_pairs(const runtime::Application& app,
                       storage::ObjectStore& store,
                       const runtime::NodeRuntime::ResultFn& on_result);

  /// Latest ClusterSnapshot the master has folded (empty, seq 0, before
  /// the first interval elapses or when snapshot_interval_s == 0). Safe to
  /// poll from any thread while run_all_pairs blocks another.
  telemetry::ClusterSnapshot cluster_snapshot() const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  mutable std::mutex snapshot_mutex_;
  telemetry::ClusterSnapshot latest_snapshot_;
};

}  // namespace rocket::mesh

#include "mesh/transport.hpp"

#include "common/compress.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"

namespace rocket::mesh {

namespace {

// frame_crc helpers: hash one scalar field at a time (structs have
// indeterminate padding bytes), sizes before variable-length contents.

template <typename T>
void fold(std::uint32_t& crc, const T& v) {
  static_assert(std::is_arithmetic_v<T>, "fold scalar fields only");
  crc = crc32_update(crc, &v, sizeof v);
}

void fold_bool(std::uint32_t& crc, bool v) {
  const std::uint8_t b = v ? 1 : 0;
  fold(crc, b);
}

void fold_region(std::uint32_t& crc, const dnc::Region& r) {
  fold(crc, r.row_begin);
  fold(crc, r.row_end);
  fold(crc, r.col_begin);
  fold(crc, r.col_end);
  fold(crc, r.depth);
}

void fold_span(std::uint32_t& crc, const telemetry::SpanContext& s) {
  fold(crc, s.trace_id);
  fold(crc, s.span_id);
  fold(crc, s.parent_id);
}

void fold_body(std::uint32_t& crc, const CacheRequest& b) {
  fold(crc, b.item);
  fold(crc, b.requester);
  fold_span(crc, b.span);
}

void fold_body(std::uint32_t& crc, const CacheProbe& b) {
  fold(crc, b.item);
  fold(crc, b.requester);
  fold(crc, static_cast<std::uint64_t>(b.chain.size()));
  for (const NodeId node : b.chain) fold(crc, node);
  fold(crc, b.index);
  fold_span(crc, b.span);
}

void fold_body(std::uint32_t& crc, const CacheData& b) {
  fold(crc, b.item);
  fold(crc, b.hop);
  fold_bool(crc, b.compressed);
  fold(crc, static_cast<std::uint64_t>(b.bytes.size()));
  crc = crc32_update(crc, b.bytes.data(), b.bytes.size());
  fold_span(crc, b.span);
}

void fold_body(std::uint32_t& crc, const CacheFailure& b) {
  fold(crc, b.item);
  fold(crc, b.hops);
  fold_span(crc, b.span);
}

void fold_body(std::uint32_t& crc, const StealRequest& b) {
  fold(crc, b.thief);
  fold(crc, b.worker);
  fold_span(crc, b.span);
}

void fold_body(std::uint32_t& crc, const StealReply& b) {
  fold(crc, b.worker);
  fold_bool(crc, b.has_region);
  fold_region(crc, b.region);
  fold_span(crc, b.span);
}

void fold_body(std::uint32_t& crc, const ResultMsg& b) {
  fold(crc, b.result.left);
  fold(crc, b.result.right);
  fold(crc, b.result.score);
  fold_span(crc, b.span);
}

void fold_body(std::uint32_t& crc, const Heartbeat& b) {
  fold(crc, b.node);
  fold(crc, b.seq);
}

void fold_body(std::uint32_t& crc, const NodeDown& b) {
  fold(crc, b.node);
  fold(crc, b.epoch);
}

void fold_body(std::uint32_t& crc, const StealExport& b) {
  fold_region(crc, b.region);
  fold(crc, b.thief);
  fold_span(crc, b.span);
}

void fold_body(std::uint32_t& crc, const RegionGrant& b) {
  fold_region(crc, b.region);
  fold(crc, b.epoch);
  fold_span(crc, b.span);
}

void fold_body(std::uint32_t& crc, const TelemetrySnapshot& b) {
  // NodeStats is a wide plain struct whose fields evolve with the
  // telemetry schema; (node, seq) identifies the frame, which is all the
  // corrupt-drop path needs (a corrupted stats sample is cosmetic, a
  // corrupted node/seq would misattribute it).
  fold(crc, b.node);
  fold(crc, b.seq);
}

void fold_body(std::uint32_t& crc, const LedgerSync& b) {
  fold(crc, b.master);
  fold(crc, b.seq);
  fold_bool(crc, b.snapshot);
  fold(crc, b.delivered);
  fold(crc, static_cast<std::uint64_t>(b.pairs.size()));
  for (const dnc::Pair& pair : b.pairs) {
    fold(crc, pair.left);
    fold(crc, pair.right);
  }
}

void fold_body(std::uint32_t& crc, const MasterAnnounce& b) {
  fold(crc, b.master);
  fold(crc, b.epoch);
}

void fold_body(std::uint32_t& crc, const MasterTick&) {}

void fold_body(std::uint32_t& crc, const HealthUpdate& b) {
  fold(crc, b.node);
  fold(crc, b.state);
  fold(crc, b.seq);
}

/// Mutate one semantic field of the body — simulating bit rot on the wire
/// AFTER the CRC was stamped, so verification must fail.
void corrupt_body(MessageBody& body) {
  std::visit(
      [](auto& b) {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, CacheRequest>) {
          b.item ^= 1u;
        } else if constexpr (std::is_same_v<T, CacheProbe>) {
          b.item ^= 1u;
        } else if constexpr (std::is_same_v<T, CacheData>) {
          if (!b.bytes.empty()) {
            b.bytes[b.bytes.size() / 2] ^= 0x40;
          } else {
            b.item ^= 1u;
          }
        } else if constexpr (std::is_same_v<T, CacheFailure>) {
          b.item ^= 1u;
        } else if constexpr (std::is_same_v<T, StealRequest>) {
          b.thief ^= 1u;
        } else if constexpr (std::is_same_v<T, StealReply>) {
          b.region.col_end ^= 1u;
        } else if constexpr (std::is_same_v<T, ResultMsg>) {
          b.result.left ^= 1u;
        } else if constexpr (std::is_same_v<T, Heartbeat>) {
          b.seq ^= 1u;
        } else if constexpr (std::is_same_v<T, NodeDown>) {
          b.node ^= 1u;
        } else if constexpr (std::is_same_v<T, StealExport>) {
          b.region.row_begin ^= 1u;
        } else if constexpr (std::is_same_v<T, RegionGrant>) {
          b.region.col_begin ^= 1u;
        } else if constexpr (std::is_same_v<T, TelemetrySnapshot>) {
          b.seq ^= 1u;
        } else if constexpr (std::is_same_v<T, LedgerSync>) {
          b.delivered ^= 1u;
        } else if constexpr (std::is_same_v<T, MasterAnnounce>) {
          b.master ^= 1u;
        } else if constexpr (std::is_same_v<T, HealthUpdate>) {
          b.node ^= 1u;
        } else {
          static_assert(std::is_same_v<T, MasterTick>, "unhandled body");
        }
      },
      body);
}

}  // namespace

std::uint32_t frame_crc(const MessageBody& body) {
  std::uint32_t crc = 0;
  const auto index = static_cast<std::uint32_t>(body.index());
  fold(crc, index);
  std::visit([&crc](const auto& b) { fold_body(crc, b); }, body);
  return crc;
}

FaultSchedule FaultSchedule::single_kill(std::uint64_t seed,
                                         std::uint32_t num_nodes,
                                         std::uint64_t max_messages) {
  FaultSchedule schedule;
  if (num_nodes < 2 || max_messages == 0) return schedule;
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  Fault fault;
  // Node 0 is the master by LiveCluster convention; master death is a
  // documented abort, not a survivable fault (DESIGN.md §12).
  fault.node = 1 + static_cast<NodeId>(rng.uniform_index(num_nodes - 1));
  fault.after_messages = 1 + rng.uniform_index(max_messages);
  schedule.faults.push_back(fault);
  return schedule;
}

InProcessTransport::InProcessTransport(std::uint32_t num_nodes, Config config)
    : config_(std::move(config)), down_(new std::atomic<bool>[num_nodes]),
      link_down_(new std::atomic<bool>[static_cast<std::size_t>(num_nodes) *
                                       num_nodes]),
      epoch_(std::chrono::steady_clock::now()),
      fault_fired_(config_.faults.faults.size(), false),
      node_counters_(num_nodes) {
  inboxes_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    inboxes_.push_back(std::make_unique<MpmcQueue<Message>>());
    down_[i].store(false, std::memory_order_relaxed);
  }
  for (std::size_t l = 0; l < static_cast<std::size_t>(num_nodes) * num_nodes;
       ++l) {
    link_down_[l].store(false, std::memory_order_relaxed);
  }
  faults_pending_.store(!config_.faults.empty(), std::memory_order_relaxed);
  corrupt_state_ = mix64(config_.corrupt_seed + 0x66726D63ULL);  // "frmc"
}

void InProcessTransport::check_faults() {
  if (!faults_pending_.load(std::memory_order_acquire)) return;
  const std::uint64_t delivered = delivered_.load(std::memory_order_acquire);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
          .count();
  std::scoped_lock lock(fault_mutex_);
  bool remaining = false;
  for (std::size_t f = 0; f < config_.faults.faults.size(); ++f) {
    if (fault_fired_[f]) continue;
    const Fault& fault = config_.faults.faults[f];
    const bool by_messages =
        fault.after_messages > 0 && delivered >= fault.after_messages;
    const bool by_time =
        fault.after_seconds > 0.0 && elapsed >= fault.after_seconds;
    if (by_messages || by_time) {
      fault_fired_[f] = true;
      set_down(fault.node);
    } else {
      remaining = true;
    }
  }
  if (!remaining) faults_pending_.store(false, std::memory_order_release);
}

bool InProcessTransport::send(NodeId src, NodeId dst, net::Tag tag,
                              MessageBody body, Bytes payload_bytes) {
  check_faults();
  // A dead node is dead in both directions: it cannot receive (dst down)
  // and it cannot speak (src down) — a killed node's unsent results are
  // lost exactly as a crashed process's would be.
  if (dst >= num_nodes() || closed_.load(std::memory_order_acquire) ||
      down_[dst].load(std::memory_order_acquire) ||
      (src < num_nodes() && down_[src].load(std::memory_order_acquire)) ||
      (src < num_nodes() &&
       link_down_[static_cast<std::size_t>(src) * num_nodes() + dst].load(
           std::memory_order_acquire))) {
    return false;
  }
  // Wire compression of bulk peer-fetch payloads: the traffic table must
  // account what a real transport would move, so compress before
  // recording (raw_bytes keeps the pre-compression payload size, which is
  // what the compressed-vs-raw split in the traffic report is built on).
  // Kept only when it actually shrinks the payload; the requester's load
  // pipeline decompresses (CacheData::compressed).
  Bytes raw_payload_bytes = payload_bytes;
  if (auto* data = std::get_if<CacheData>(&body)) {
    raw_payload_bytes = data->bytes.size();
    if (config_.compress_threshold > 0 && !data->compressed &&
        data->bytes.size() >= config_.compress_threshold) {
      ByteBuffer packed = lz_compress(data->bytes);
      if (packed.size() < data->bytes.size()) {
        data->bytes = std::move(packed);
        data->compressed = true;
      }
    }
    payload_bytes = data->bytes.size();
  }
  // The integrity stamp a wire transport would compute over its
  // serialised frame — after compression, so the receiver checks what was
  // actually on the wire.
  const std::uint32_t crc = frame_crc(body);
  bool corrupt = false;
  {
    std::scoped_lock lock(counters_mutex_);
    counters_.record(tag, payload_bytes + config_.control_message_size,
                     raw_payload_bytes + config_.control_message_size);
    if (src < node_counters_.size()) {
      node_counters_[src].record(
          tag, payload_bytes + config_.control_message_size,
          raw_payload_bytes + config_.control_message_size);
    }
    if (config_.corrupt_rate > 0.0) {
      const double u =
          static_cast<double>(splitmix64(corrupt_state_) >> 11) * 0x1.0p-53;
      corrupt = u < config_.corrupt_rate;
    }
  }
  if (corrupt) {
    // Deliver a mangled copy first, then the clean frame: a corrupted
    // wire frame followed by its link-layer retransmit. The receiver must
    // drop the first on CRC mismatch — a corrupted frame is never acted
    // on, and never the only delivery.
    Message mangled{src, dst, tag, crc, body};
    corrupt_body(mangled.body);
    if (frame_crc(mangled.body) == crc) mangled.crc = ~crc;  // MasterTick
    corrupted_.fetch_add(1, std::memory_order_acq_rel);
    inboxes_[dst]->push(std::move(mangled));
  }
  delivered_.fetch_add(1, std::memory_order_acq_rel);
  inboxes_[dst]->push(Message{src, dst, tag, crc, std::move(body)});
  return true;
}

std::optional<Message> InProcessTransport::recv(NodeId node) {
  return inboxes_[node]->pop();
}

void InProcessTransport::close() {
  closed_.store(true, std::memory_order_release);
  for (auto& inbox : inboxes_) inbox->close();
}

net::TrafficCounters InProcessTransport::counters() const {
  std::scoped_lock lock(counters_mutex_);
  return counters_;
}

net::TrafficCounters InProcessTransport::node_counters(NodeId node) const {
  std::scoped_lock lock(counters_mutex_);
  if (node >= node_counters_.size()) return {};
  return node_counters_[node];
}

void InProcessTransport::set_down(NodeId node, bool down) {
  down_[node].store(down, std::memory_order_release);
}

void InProcessTransport::set_link_down(NodeId src, NodeId dst, bool down) {
  link_down_[static_cast<std::size_t>(src) * num_nodes() + dst].store(
      down, std::memory_order_release);
}

}  // namespace rocket::mesh

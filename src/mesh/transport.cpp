#include "mesh/transport.hpp"

#include "common/compress.hpp"

namespace rocket::mesh {

InProcessTransport::InProcessTransport(std::uint32_t num_nodes, Config config)
    : config_(config), down_(new std::atomic<bool>[num_nodes]) {
  inboxes_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    inboxes_.push_back(std::make_unique<MpmcQueue<Message>>());
    down_[i].store(false, std::memory_order_relaxed);
  }
}

bool InProcessTransport::send(NodeId src, NodeId dst, net::Tag tag,
                              MessageBody body, Bytes payload_bytes) {
  if (dst >= num_nodes() || closed_.load(std::memory_order_acquire) ||
      down_[dst].load(std::memory_order_acquire)) {
    return false;
  }
  // Wire compression of bulk peer-fetch payloads: the traffic table must
  // account what a real transport would move, so compress before
  // recording. Kept only when it actually shrinks the payload; the
  // requester's load pipeline decompresses (CacheData::compressed).
  if (auto* data = std::get_if<CacheData>(&body)) {
    if (config_.compress_threshold > 0 && !data->compressed &&
        data->bytes.size() >= config_.compress_threshold) {
      ByteBuffer packed = lz_compress(data->bytes);
      if (packed.size() < data->bytes.size()) {
        data->bytes = std::move(packed);
        data->compressed = true;
      }
    }
    payload_bytes = data->bytes.size();
  }
  {
    std::scoped_lock lock(counters_mutex_);
    counters_.record(tag, payload_bytes + config_.control_message_size);
  }
  inboxes_[dst]->push(Message{src, dst, tag, std::move(body)});
  return true;
}

std::optional<Message> InProcessTransport::recv(NodeId node) {
  return inboxes_[node]->pop();
}

void InProcessTransport::close() {
  closed_.store(true, std::memory_order_release);
  for (auto& inbox : inboxes_) inbox->close();
}

net::TrafficCounters InProcessTransport::counters() const {
  std::scoped_lock lock(counters_mutex_);
  return counters_;
}

void InProcessTransport::set_down(NodeId node, bool down) {
  down_[node].store(down, std::memory_order_release);
}

}  // namespace rocket::mesh

#include "mesh/transport.hpp"

#include "common/compress.hpp"
#include "common/rng.hpp"

namespace rocket::mesh {

FaultSchedule FaultSchedule::single_kill(std::uint64_t seed,
                                         std::uint32_t num_nodes,
                                         std::uint64_t max_messages) {
  FaultSchedule schedule;
  if (num_nodes < 2 || max_messages == 0) return schedule;
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  Fault fault;
  // Node 0 is the master by LiveCluster convention; master death is a
  // documented abort, not a survivable fault (DESIGN.md §12).
  fault.node = 1 + static_cast<NodeId>(rng.uniform_index(num_nodes - 1));
  fault.after_messages = 1 + rng.uniform_index(max_messages);
  schedule.faults.push_back(fault);
  return schedule;
}

InProcessTransport::InProcessTransport(std::uint32_t num_nodes, Config config)
    : config_(std::move(config)), down_(new std::atomic<bool>[num_nodes]),
      link_down_(new std::atomic<bool>[static_cast<std::size_t>(num_nodes) *
                                       num_nodes]),
      epoch_(std::chrono::steady_clock::now()),
      fault_fired_(config_.faults.faults.size(), false),
      node_counters_(num_nodes) {
  inboxes_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    inboxes_.push_back(std::make_unique<MpmcQueue<Message>>());
    down_[i].store(false, std::memory_order_relaxed);
  }
  for (std::size_t l = 0; l < static_cast<std::size_t>(num_nodes) * num_nodes;
       ++l) {
    link_down_[l].store(false, std::memory_order_relaxed);
  }
  faults_pending_.store(!config_.faults.empty(), std::memory_order_relaxed);
}

void InProcessTransport::check_faults() {
  if (!faults_pending_.load(std::memory_order_acquire)) return;
  const std::uint64_t delivered = delivered_.load(std::memory_order_acquire);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
          .count();
  std::scoped_lock lock(fault_mutex_);
  bool remaining = false;
  for (std::size_t f = 0; f < config_.faults.faults.size(); ++f) {
    if (fault_fired_[f]) continue;
    const Fault& fault = config_.faults.faults[f];
    const bool by_messages =
        fault.after_messages > 0 && delivered >= fault.after_messages;
    const bool by_time =
        fault.after_seconds > 0.0 && elapsed >= fault.after_seconds;
    if (by_messages || by_time) {
      fault_fired_[f] = true;
      set_down(fault.node);
    } else {
      remaining = true;
    }
  }
  if (!remaining) faults_pending_.store(false, std::memory_order_release);
}

bool InProcessTransport::send(NodeId src, NodeId dst, net::Tag tag,
                              MessageBody body, Bytes payload_bytes) {
  check_faults();
  // A dead node is dead in both directions: it cannot receive (dst down)
  // and it cannot speak (src down) — a killed node's unsent results are
  // lost exactly as a crashed process's would be.
  if (dst >= num_nodes() || closed_.load(std::memory_order_acquire) ||
      down_[dst].load(std::memory_order_acquire) ||
      (src < num_nodes() && down_[src].load(std::memory_order_acquire)) ||
      (src < num_nodes() &&
       link_down_[static_cast<std::size_t>(src) * num_nodes() + dst].load(
           std::memory_order_acquire))) {
    return false;
  }
  // Wire compression of bulk peer-fetch payloads: the traffic table must
  // account what a real transport would move, so compress before
  // recording (raw_bytes keeps the pre-compression payload size, which is
  // what the compressed-vs-raw split in the traffic report is built on).
  // Kept only when it actually shrinks the payload; the requester's load
  // pipeline decompresses (CacheData::compressed).
  Bytes raw_payload_bytes = payload_bytes;
  if (auto* data = std::get_if<CacheData>(&body)) {
    raw_payload_bytes = data->bytes.size();
    if (config_.compress_threshold > 0 && !data->compressed &&
        data->bytes.size() >= config_.compress_threshold) {
      ByteBuffer packed = lz_compress(data->bytes);
      if (packed.size() < data->bytes.size()) {
        data->bytes = std::move(packed);
        data->compressed = true;
      }
    }
    payload_bytes = data->bytes.size();
  }
  {
    std::scoped_lock lock(counters_mutex_);
    counters_.record(tag, payload_bytes + config_.control_message_size,
                     raw_payload_bytes + config_.control_message_size);
    if (src < node_counters_.size()) {
      node_counters_[src].record(
          tag, payload_bytes + config_.control_message_size,
          raw_payload_bytes + config_.control_message_size);
    }
  }
  delivered_.fetch_add(1, std::memory_order_acq_rel);
  inboxes_[dst]->push(Message{src, dst, tag, std::move(body)});
  return true;
}

std::optional<Message> InProcessTransport::recv(NodeId node) {
  return inboxes_[node]->pop();
}

void InProcessTransport::close() {
  closed_.store(true, std::memory_order_release);
  for (auto& inbox : inboxes_) inbox->close();
}

net::TrafficCounters InProcessTransport::counters() const {
  std::scoped_lock lock(counters_mutex_);
  return counters_;
}

net::TrafficCounters InProcessTransport::node_counters(NodeId node) const {
  std::scoped_lock lock(counters_mutex_);
  if (node >= node_counters_.size()) return {};
  return node_counters_[node];
}

void InProcessTransport::set_down(NodeId node, bool down) {
  down_[node].store(down, std::memory_order_release);
}

void InProcessTransport::set_link_down(NodeId src, NodeId dst, bool down) {
  link_down_[static_cast<std::size_t>(src) * num_nodes() + dst].store(
      down, std::memory_order_release);
}

}  // namespace rocket::mesh

#pragma once

// Crash-safe run journal (DESIGN.md §14).
//
// A LiveCluster run with a checkpoint store attached writes a write-ahead
// journal through storage::ObjectStore::append: one Manifest record up
// front (config fingerprint, so a resume against a different run is
// rejected), then ResultBatch records as the master flushes accepted
// results and RegionComplete records as whole grants drain. Every record
// is length-prefixed and CRC32-guarded:
//
//   [u32 length][u32 crc32(payload)][payload = u8 type + body]
//
// all little-endian. A crash mid-append leaves a torn tail — short frame,
// bad length, or CRC mismatch — which replay() detects; everything before
// the tear is trusted, the tail is discarded, and truncate_to_valid()
// rewrites the object to the valid prefix so the resumed run appends from
// a clean boundary. The journal never needs an fsync barrier beyond what
// the store provides: a record is either fully present and CRC-clean or
// it is the tear, and the master only acts on results AFTER their append
// returns (journal >= user-delivered, so replay can only over-cover, and
// the ledger's first-wins dedup absorbs over-coverage).

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "dnc/pair_space.hpp"
#include "runtime/application.hpp"
#include "storage/object_store.hpp"

namespace rocket::mesh::checkpoint {

/// Identifies the run a journal belongs to. A resume whose fingerprint
/// differs (different item count, node count, granularity or seed) must
/// start fresh — the pair space would not line up.
struct Manifest {
  std::uint64_t fingerprint = 0;
  std::uint32_t items = 0;
  std::uint32_t num_nodes = 0;
  std::uint32_t granularity = 0;
  std::uint64_t seed = 0;
  std::uint64_t expected_pairs = 0;

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

/// Everything replay() could recover from an existing journal object.
struct Replay {
  bool found = false;         // the object exists in the store
  bool has_manifest = false;  // a valid Manifest record was read
  Manifest manifest;
  std::vector<runtime::PairResult> results;   // journalled result batches
  std::vector<dnc::Region> completed_regions;  // fully-drained grants
  std::uint64_t records = 0;  // valid records walked
  Bytes valid_bytes = 0;      // byte offset of the first invalid/torn byte
  bool torn = false;          // trailing bytes past valid_bytes exist
};

class Journal {
 public:
  static constexpr std::uint8_t kManifest = 1;
  static constexpr std::uint8_t kResultBatch = 2;
  static constexpr std::uint8_t kRegionComplete = 3;

  Journal(storage::ObjectStore& store, std::string name);

  /// Config fingerprint folding every field that shapes the pair space.
  static std::uint64_t fingerprint(std::uint32_t items,
                                   std::uint32_t num_nodes,
                                   std::uint32_t granularity,
                                   std::uint64_t seed);

  /// Walk the named journal object, validating record framing and CRCs.
  /// Returns found=false when the object does not exist. Stops at the
  /// first invalid byte (torn tail) and reports the valid prefix length.
  static Replay replay(storage::ObjectStore& store, const std::string& name);

  /// Rewrite the journal object to the valid prefix replay() reported —
  /// the resumed run then appends from a record boundary.
  static void truncate_to_valid(storage::ObjectStore& store,
                                const std::string& name, const Replay& replay);

  /// Reset the journal object to exactly one Manifest record.
  void start_fresh(const Manifest& manifest);

  void append_results(const std::vector<runtime::PairResult>& results);
  void append_region_complete(const dnc::Region& region);

  std::uint64_t records_appended() const;

 private:
  void append_record(std::uint8_t type, const ByteBuffer& body);

  storage::ObjectStore* store_;
  std::string name_;
  mutable std::mutex mutex_;
  std::uint64_t records_appended_ = 0;
};

}  // namespace rocket::mesh::checkpoint

#pragma once

// Live cluster transport.
//
// mesh::Transport is the live counterpart of the simulated net::Fabric:
// typed point-to-point messages between p nodes, recorded through the same
// net::Tag traffic taxonomy so live and simulated traffic reports are
// directly comparable (a control message costs `control_message_size` wire
// bytes; a data message additionally counts its payload, mirroring
// Fabric::send_bulk).
//
// The in-process implementation delivers over one MpmcQueue inbox per
// node — N NodeRuntime peers run as one cluster inside a single process,
// which is the mesh's first deployment shape (real-socket transports slot
// in behind the same interface). It also provides per-node failure
// injection (`set_down`): sends to a down node fail fast, and every
// protocol layer above treats a failed send as a lost peer and degrades to
// its local fallback path.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <variant>
#include <vector>

#include "common/queue.hpp"
#include "common/units.hpp"
#include "dnc/pair_space.hpp"
#include "net/tag.hpp"
#include "runtime/application.hpp"

namespace rocket::mesh {

using NodeId = net::NodeId;
using runtime::ItemId;

// --- typed message bodies -------------------------------------------------

/// Requester → mediator: "who has item i?" (§4.1.3).
struct CacheRequest {
  ItemId item = 0;
  NodeId requester = 0;
};

/// Mediator/candidate → candidate chain[index]: probe for the item; on a
/// miss the candidate forwards to chain[index + 1].
struct CacheProbe {
  ItemId item = 0;
  NodeId requester = 0;
  std::vector<NodeId> chain;
  std::uint32_t index = 0;
};

/// Candidate → requester: the host-level item payload, found at 1-based
/// `hop` of the chain. Large payloads may be lz-compressed by the
/// transport (see InProcessTransport::Config::compress_threshold); the
/// flag rides along so the requester's load pipeline can decompress on a
/// runtime thread.
struct CacheData {
  ItemId item = 0;
  std::uint32_t hop = 0;
  bool compressed = false;
  runtime::HostBuffer bytes;
};

/// Exhausted chain → requester: distributed-cache miss after `hops`
/// candidates were handed out.
struct CacheFailure {
  ItemId item = 0;
  std::uint32_t hops = 0;
};

/// Idle worker `worker` on node `thief` → victim node.
struct StealRequest {
  NodeId thief = 0;
  std::uint32_t worker = 0;
};

/// Victim → thief: a region, or empty-handed.
struct StealReply {
  std::uint32_t worker = 0;
  bool has_region = false;
  dnc::Region region;
};

/// Worker node → master: one completed pair.
struct ResultMsg {
  runtime::PairResult result{0, 0, 0.0};
};

using MessageBody = std::variant<CacheRequest, CacheProbe, CacheData,
                                 CacheFailure, StealRequest, StealReply,
                                 ResultMsg>;

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  net::Tag tag = net::Tag::kControl;
  MessageBody body;
};

// --- transport ------------------------------------------------------------

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::uint32_t num_nodes() const = 0;

  /// Deliver `body` to `dst`'s inbox. Returns false when the destination
  /// is down or the transport is closed — the caller treats that exactly
  /// like a lost peer (skip the candidate, fail the fetch, give up the
  /// steal). Accounting is recorded only for delivered messages;
  /// `payload_bytes` adds bulk bytes on top of the control envelope.
  virtual bool send(NodeId src, NodeId dst, net::Tag tag, MessageBody body,
                    Bytes payload_bytes = 0) = 0;

  /// Blocking receive for `node`'s service thread; nullopt once the
  /// transport is closed and the inbox drained.
  virtual std::optional<Message> recv(NodeId node) = 0;

  /// Close every inbox (wakes all service threads).
  virtual void close() = 0;

  virtual net::TrafficCounters counters() const = 0;
};

class InProcessTransport final : public Transport {
 public:
  struct Config {
    /// Wire size charged per message envelope (matches the simulated
    /// fabric's control_message_size so traffic tables line up).
    Bytes control_message_size = 128;

    /// Peer-fetch payloads at or above this size are lz-compressed before
    /// delivery, and the traffic table records the compressed byte count
    /// (what a wire transport would actually move). Compression is kept
    /// only when it shrinks the payload. 0 disables.
    Bytes compress_threshold = 64_KiB;
  };

  explicit InProcessTransport(std::uint32_t num_nodes)
      : InProcessTransport(num_nodes, Config()) {}
  InProcessTransport(std::uint32_t num_nodes, Config config);

  std::uint32_t num_nodes() const override {
    return static_cast<std::uint32_t>(inboxes_.size());
  }
  bool send(NodeId src, NodeId dst, net::Tag tag, MessageBody body,
            Bytes payload_bytes = 0) override;
  std::optional<Message> recv(NodeId node) override;
  void close() override;
  net::TrafficCounters counters() const override;

  /// Failure injection (tests): a down node rejects all future sends; its
  /// already-queued messages still drain.
  void set_down(NodeId node, bool down = true);

 private:
  Config config_;
  std::vector<std::unique_ptr<MpmcQueue<Message>>> inboxes_;
  std::unique_ptr<std::atomic<bool>[]> down_;
  std::atomic<bool> closed_{false};
  mutable std::mutex counters_mutex_;
  net::TrafficCounters counters_;
};

}  // namespace rocket::mesh

#pragma once

// Live cluster transport.
//
// mesh::Transport is the live counterpart of the simulated net::Fabric:
// typed point-to-point messages between p nodes, recorded through the same
// net::Tag traffic taxonomy so live and simulated traffic reports are
// directly comparable (a control message costs `control_message_size` wire
// bytes; a data message additionally counts its payload, mirroring
// Fabric::send_bulk).
//
// The in-process implementation delivers over one MpmcQueue inbox per
// node — N NodeRuntime peers run as one cluster inside a single process,
// which is the mesh's first deployment shape (real-socket transports slot
// in behind the same interface). It also provides per-node failure
// injection (`set_down`): sends to a down node fail fast, and every
// protocol layer above treats a failed send as a lost peer and degrades to
// its local fallback path.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <variant>
#include <vector>

#include "common/queue.hpp"
#include "common/units.hpp"
#include "dnc/pair_space.hpp"
#include "net/tag.hpp"
#include "runtime/application.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/span.hpp"

namespace rocket::mesh {

using NodeId = net::NodeId;
using runtime::ItemId;

// --- typed message bodies -------------------------------------------------

/// Requester → mediator: "who has item i?" (§4.1.3).
struct CacheRequest {
  ItemId item = 0;
  NodeId requester = 0;
  telemetry::SpanContext span;  // causal context (DESIGN.md §16); 0 ids = unsampled
};

/// Mediator/candidate → candidate chain[index]: probe for the item; on a
/// miss the candidate forwards to chain[index + 1].
struct CacheProbe {
  ItemId item = 0;
  NodeId requester = 0;
  std::vector<NodeId> chain;
  std::uint32_t index = 0;
  telemetry::SpanContext span;
};

/// Candidate → requester: the host-level item payload, found at 1-based
/// `hop` of the chain. Large payloads may be lz-compressed by the
/// transport (see InProcessTransport::Config::compress_threshold); the
/// flag rides along so the requester's load pipeline can decompress on a
/// runtime thread.
struct CacheData {
  ItemId item = 0;
  std::uint32_t hop = 0;
  bool compressed = false;
  runtime::HostBuffer bytes;
  telemetry::SpanContext span;  // serving candidate's span (flow arrow source)
};

/// Exhausted chain → requester: distributed-cache miss after `hops`
/// candidates were handed out.
struct CacheFailure {
  ItemId item = 0;
  std::uint32_t hops = 0;
  telemetry::SpanContext span;
};

/// Idle worker `worker` on node `thief` → victim node.
struct StealRequest {
  NodeId thief = 0;
  std::uint32_t worker = 0;
  telemetry::SpanContext span;
};

/// Victim → thief: a region, or empty-handed.
struct StealReply {
  std::uint32_t worker = 0;
  bool has_region = false;
  dnc::Region region;
  telemetry::SpanContext span;  // victim's serve span (flow arrow source)
};

/// Worker node → master: one completed pair.
struct ResultMsg {
  runtime::PairResult result{0, 0, 0.0};
  telemetry::SpanContext span;  // sampled deliver hop (every Nth message)
};

/// Node → master: periodic liveness lease renewal. The master's failure
/// detector declares a node dead after a configurable run of missed
/// leases (MeshNode::Config::lease_timeout_s).
struct Heartbeat {
  NodeId node = 0;
  std::uint64_t seq = 0;
};

/// Master → everyone (and master → itself, so the verdict is serialised
/// with result handling): `node` is declared dead. Mediators prune it
/// from candidate chains, thieves stop picking it as a victim, and the
/// master re-grants its uncompleted regions to survivors.
struct NodeDown {
  NodeId node = 0;
  std::uint32_t epoch = 0;  // cluster-wide death count when declared
};

/// Victim → master: lease transfer notice — `region` moved from this
/// victim's deques to `thief` through a successful steal reply. Keeps the
/// master's re-execution ledger current so a later death re-grants
/// exactly the regions the dead node actually owned.
struct StealExport {
  dnc::Region region;
  NodeId thief = 0;
  telemetry::SpanContext span;
};

/// Master → survivor: re-execution lease for a dead node's uncompleted
/// region. The receiver parks it in its orphan queue (the same machinery
/// that re-adopts regions whose thief vanished) and its idle workers
/// pick it up via remote_steal.
struct RegionGrant {
  dnc::Region region;
  std::uint32_t epoch = 0;  // re-execution epoch of the region's pairs
  telemetry::SpanContext span;
};

/// Node → master: periodic metrics sample on the heartbeat ticker
/// (DESIGN.md §13). The master folds the per-node streams into the live
/// ClusterSnapshot; a dead node simply stops publishing and its last
/// sample ages out in the master's staleness accounting.
struct TelemetrySnapshot {
  NodeId node = 0;
  std::uint64_t seq = 0;
  telemetry::NodeStats stats;
};

/// Master → standby: aggregation-state mirror (DESIGN.md §14). `snapshot`
/// carries the master's full delivered set (sent when a standby is first
/// chosen or replaced); a delta carries only the pairs of one flushed
/// batch. `delivered` is the master's post-flush delivered count — the
/// standby adopts it so a failover knows how much of the run is done.
struct LedgerSync {
  NodeId master = 0;
  std::uint64_t seq = 0;
  bool snapshot = false;
  std::uint64_t delivered = 0;
  std::vector<dnc::Pair> pairs;
};

/// New master → everyone: `master` has adopted the master role for
/// failover epoch `epoch` (count of adoptions so far + 1). Receivers
/// redirect results, heartbeats and telemetry to the new master.
struct MasterAnnounce {
  NodeId master = 0;
  std::uint32_t epoch = 0;
};

/// Master → itself on the heartbeat ticker: drives master-side periodic
/// work (standby sync, journal upkeep) on the service thread, where the
/// ledger lives.
struct MasterTick {};

/// Master → everyone: `node` transitioned to health `state` (a
/// telemetry::NodeHealth value, DESIGN.md §15). Receivers update their
/// local health view so steal-victim selection skips stragglers
/// cluster-wide, not just at the master. `seq` orders updates from one
/// master; the in-process transport is FIFO per sender so it is
/// informational here, but a reordering wire transport would drop stale
/// ones.
struct HealthUpdate {
  NodeId node = 0;
  std::uint8_t state = 0;
  std::uint32_t seq = 0;
};

using MessageBody = std::variant<CacheRequest, CacheProbe, CacheData,
                                 CacheFailure, StealRequest, StealReply,
                                 ResultMsg, Heartbeat, NodeDown, StealExport,
                                 RegionGrant, TelemetrySnapshot, LedgerSync,
                                 MasterAnnounce, MasterTick, HealthUpdate>;

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  net::Tag tag = net::Tag::kControl;
  /// frame_crc(body) stamped by the transport at send time; receivers
  /// verify before acting (satellite 1 of DESIGN.md §14). 0 only for
  /// messages that never crossed a transport (unit-test fabrication).
  std::uint32_t crc = 0;
  MessageBody body;
};

/// CRC32 over a message body: variant index plus every semantic field,
/// hashed field-by-field (never whole structs — padding bytes are
/// indeterminate). The integrity guard a wire transport would compute
/// over its serialised frame.
std::uint32_t frame_crc(const MessageBody& body);

// --- fault injection ------------------------------------------------------

/// One scripted node kill: the node goes down (both directions — a dead
/// node neither receives nor sends) once either trigger fires. Message
/// triggers are checked against the transport's global delivered-message
/// counter, which makes schedules replayable independent of wall-clock
/// speed; time triggers exist for interactive demos.
struct Fault {
  NodeId node = 0;
  /// Fire once `after_messages` messages have been delivered (0 = unused).
  std::uint64_t after_messages = 0;
  /// Fire once this much wall time elapsed since construction (0 = unused).
  double after_seconds = 0.0;
};

/// A scripted, replayable set of node kills, evaluated by the transport on
/// every send. `single_kill` derives a deterministic one-kill schedule
/// from a seed (never the master, node 0), for randomized chaos sweeps.
struct FaultSchedule {
  std::vector<Fault> faults;

  bool empty() const { return faults.empty(); }

  static FaultSchedule single_kill(std::uint64_t seed,
                                   std::uint32_t num_nodes,
                                   std::uint64_t max_messages);
};

// --- transport ------------------------------------------------------------

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::uint32_t num_nodes() const = 0;

  /// Deliver `body` to `dst`'s inbox. Returns false when the destination
  /// is down or the transport is closed — the caller treats that exactly
  /// like a lost peer (skip the candidate, fail the fetch, give up the
  /// steal). Accounting is recorded only for delivered messages;
  /// `payload_bytes` adds bulk bytes on top of the control envelope.
  virtual bool send(NodeId src, NodeId dst, net::Tag tag, MessageBody body,
                    Bytes payload_bytes = 0) = 0;

  /// Blocking receive for `node`'s service thread; nullopt once the
  /// transport is closed and the inbox drained.
  virtual std::optional<Message> recv(NodeId node) = 0;

  /// Close every inbox (wakes all service threads).
  virtual void close() = 0;

  /// Whether `node` is known dead. The in-process transport answers from
  /// its fault injector; a wire transport may always answer false (a real
  /// crashed process simply stops executing — this hook is how an
  /// in-process "crashed" node observes its own death and goes silent).
  virtual bool is_node_down(NodeId node) const {
    (void)node;
    return false;
  }

  virtual net::TrafficCounters counters() const = 0;
};

class InProcessTransport final : public Transport {
 public:
  struct Config {
    /// Wire size charged per message envelope (matches the simulated
    /// fabric's control_message_size so traffic tables line up).
    Bytes control_message_size = 128;

    /// Peer-fetch payloads at or above this size are lz-compressed before
    /// delivery, and the traffic table records the compressed byte count
    /// (what a wire transport would actually move). Compression is kept
    /// only when it shrinks the payload. 0 disables.
    Bytes compress_threshold = 64_KiB;

    /// Scripted node kills, evaluated before every delivery (chaos tests
    /// and the demo's --kill-node flag). Empty = no injected faults.
    FaultSchedule faults;

    /// Chaos corrupt-frame injector: with this probability a send first
    /// delivers a copy whose body was mutated AFTER the CRC was stamped
    /// (the receiver must detect and drop it), then the clean frame —
    /// modelling a corrupted wire frame plus link-layer retransmit. A
    /// corrupted frame is therefore never the only delivery. 0 disables.
    double corrupt_rate = 0.0;
    std::uint64_t corrupt_seed = 1;
  };

  explicit InProcessTransport(std::uint32_t num_nodes)
      : InProcessTransport(num_nodes, Config()) {}
  InProcessTransport(std::uint32_t num_nodes, Config config);

  std::uint32_t num_nodes() const override {
    return static_cast<std::uint32_t>(inboxes_.size());
  }
  bool send(NodeId src, NodeId dst, net::Tag tag, MessageBody body,
            Bytes payload_bytes = 0) override;
  std::optional<Message> recv(NodeId node) override;
  void close() override;
  net::TrafficCounters counters() const override;

  /// Sender-side per-tag table for one node (what `node` put on the wire,
  /// incl. the compressed-vs-raw byte split). Summing over all nodes
  /// reproduces counters().
  net::TrafficCounters node_counters(NodeId node) const;

  /// Failure injection: a down node is dead in both directions — sends to
  /// it AND from it fail fast. Its already-queued messages still drain
  /// (they were on the wire before the crash).
  void set_down(NodeId node, bool down = true);
  bool is_down(NodeId node) const {
    return down_[node].load(std::memory_order_acquire);
  }
  bool is_node_down(NodeId node) const override {
    return node < num_nodes() && is_down(node);
  }

  /// Corrupted frames injected so far (each was followed by its clean
  /// retransmit).
  std::uint64_t corrupted_frames() const {
    return corrupted_.load(std::memory_order_acquire);
  }

  /// Asymmetric link failure: sends from `src` to `dst` fail while every
  /// other direction keeps working (models a one-way partition, which is
  /// how real failure detectors get fooled).
  void set_link_down(NodeId src, NodeId dst, bool down = true);

  /// Messages delivered so far (the clock FaultSchedule message triggers
  /// run on).
  std::uint64_t delivered_messages() const {
    return delivered_.load(std::memory_order_acquire);
  }

 private:
  void check_faults();

  Config config_;
  std::vector<std::unique_ptr<MpmcQueue<Message>>> inboxes_;
  std::unique_ptr<std::atomic<bool>[]> down_;
  std::unique_ptr<std::atomic<bool>[]> link_down_;  // [src * p + dst]
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> corrupted_{0};
  std::atomic<bool> faults_pending_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::mutex fault_mutex_;
  std::vector<bool> fault_fired_;  // guarded by fault_mutex_
  mutable std::mutex counters_mutex_;
  net::TrafficCounters counters_;
  std::vector<net::TrafficCounters> node_counters_;  // by src node
  std::uint64_t corrupt_state_ = 0;  // splitmix64 state; counters_mutex_
};

}  // namespace rocket::mesh

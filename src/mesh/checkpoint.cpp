#include "mesh/checkpoint.hpp"

#include <bit>
#include <cstring>

#include "common/crc32.hpp"
#include "common/rng.hpp"

namespace rocket::mesh::checkpoint {

namespace {

// Little-endian primitives. The in-memory journal buffer is plain bytes;
// memcpy keeps the access alignment-safe on every target.

void put_u32(ByteBuffer& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

void put_u64(ByteBuffer& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

void put_f64(ByteBuffer& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked cursor over a replayed journal. Every get_* refuses to
/// run past `end` — a malformed body inside a CRC-clean record (can only
/// happen through store corruption that preserved the CRC, or a writer
/// bug) surfaces as ok=false rather than UB.
struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || static_cast<std::size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    return true;
  }

  std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return *p++;
  }

  std::uint32_t get_u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    return v;
  }

  std::uint64_t get_u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    return v;
  }

  double get_f64() { return std::bit_cast<double>(get_u64()); }
};

// Records bigger than this are framing garbage, not data: the largest
// legitimate record is a result batch of a few thousand pairs.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

bool parse_payload(const std::uint8_t* payload, std::uint32_t len,
                   Replay& out) {
  Reader r{payload, payload + len};
  const std::uint8_t type = r.get_u8();
  switch (type) {
    case Journal::kManifest: {
      Manifest m;
      m.fingerprint = r.get_u64();
      m.items = r.get_u32();
      m.num_nodes = r.get_u32();
      m.granularity = r.get_u32();
      m.seed = r.get_u64();
      m.expected_pairs = r.get_u64();
      if (!r.ok || r.p != r.end) return false;
      out.manifest = m;
      out.has_manifest = true;
      return true;
    }
    case Journal::kResultBatch: {
      const std::uint32_t count = r.get_u32();
      if (!r.ok || static_cast<std::uint64_t>(r.end - r.p) !=
                       static_cast<std::uint64_t>(count) * 16) {
        return false;
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        runtime::PairResult res;
        res.left = r.get_u32();
        res.right = r.get_u32();
        res.score = r.get_f64();
        if (!r.ok) return false;
        out.results.push_back(res);
      }
      return true;
    }
    case Journal::kRegionComplete: {
      dnc::Region region;
      region.row_begin = r.get_u32();
      region.row_end = r.get_u32();
      region.col_begin = r.get_u32();
      region.col_end = r.get_u32();
      region.depth = r.get_u32();
      if (!r.ok || r.p != r.end) return false;
      out.completed_regions.push_back(region);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

Journal::Journal(storage::ObjectStore& store, std::string name)
    : store_(&store), name_(std::move(name)) {}

std::uint64_t Journal::fingerprint(std::uint32_t items,
                                   std::uint32_t num_nodes,
                                   std::uint32_t granularity,
                                   std::uint64_t seed) {
  std::uint64_t h = mix64(0x726F636B65746A6CULL);  // "rocketjl"
  h = mix64(h ^ items);
  h = mix64(h ^ num_nodes);
  h = mix64(h ^ granularity);
  h = mix64(h ^ seed);
  return h;
}

Replay Journal::replay(storage::ObjectStore& store, const std::string& name) {
  Replay out;
  if (!store.exists(name)) return out;
  out.found = true;
  const ByteBuffer data = store.read(name);
  const std::uint8_t* base = data.data();
  std::size_t off = 0;
  while (off < data.size()) {
    // A record needs at least its 8-byte header plus a 1-byte payload.
    if (data.size() - off < 9) break;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, base + off, 4);
    std::memcpy(&crc, base + off + 4, 4);
    if constexpr (std::endian::native == std::endian::big) {
      len = __builtin_bswap32(len);
      crc = __builtin_bswap32(crc);
    }
    if (len == 0 || len > kMaxRecordBytes || data.size() - off - 8 < len) break;
    const std::uint8_t* payload = base + off + 8;
    if (crc32(payload, len) != crc) break;
    // CRC-clean but semantically malformed is also a tear: nothing after
    // an untrusted record can be trusted to line up with the run.
    if (!parse_payload(payload, len, out)) break;
    ++out.records;
    off += 8 + static_cast<std::size_t>(len);
  }
  out.valid_bytes = off;
  out.torn = off < data.size();
  return out;
}

void Journal::truncate_to_valid(storage::ObjectStore& store,
                                const std::string& name,
                                const Replay& replay) {
  if (!replay.found || !replay.torn) return;
  const ByteBuffer data = store.read(name);
  ByteBuffer prefix(data.begin(),
                    data.begin() + static_cast<std::ptrdiff_t>(std::min(
                                       replay.valid_bytes, data.size())));
  store.put(name, prefix);
}

void Journal::start_fresh(const Manifest& manifest) {
  std::scoped_lock lock(mutex_);
  store_->put(name_, ByteBuffer{});
  ByteBuffer body;
  put_u64(body, manifest.fingerprint);
  put_u32(body, manifest.items);
  put_u32(body, manifest.num_nodes);
  put_u32(body, manifest.granularity);
  put_u64(body, manifest.seed);
  put_u64(body, manifest.expected_pairs);
  append_record(kManifest, body);
}

void Journal::append_results(const std::vector<runtime::PairResult>& results) {
  if (results.empty()) return;
  std::scoped_lock lock(mutex_);
  ByteBuffer body;
  body.reserve(4 + results.size() * 16);
  put_u32(body, static_cast<std::uint32_t>(results.size()));
  for (const auto& res : results) {
    put_u32(body, res.left);
    put_u32(body, res.right);
    put_f64(body, res.score);
  }
  append_record(kResultBatch, body);
}

void Journal::append_region_complete(const dnc::Region& region) {
  std::scoped_lock lock(mutex_);
  ByteBuffer body;
  put_u32(body, region.row_begin);
  put_u32(body, region.row_end);
  put_u32(body, region.col_begin);
  put_u32(body, region.col_end);
  put_u32(body, region.depth);
  append_record(kRegionComplete, body);
}

std::uint64_t Journal::records_appended() const {
  std::scoped_lock lock(mutex_);
  return records_appended_;
}

void Journal::append_record(std::uint8_t type, const ByteBuffer& body) {
  ByteBuffer record;
  record.reserve(8 + 1 + body.size());
  ByteBuffer payload;
  payload.reserve(1 + body.size());
  payload.push_back(type);
  payload.insert(payload.end(), body.begin(), body.end());
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_u32(record, crc32(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  store_->append(name_, record);
  ++records_appended_;
}

}  // namespace rocket::mesh::checkpoint

#pragma once

// Master-side exactly-once result accounting and re-execution ledger.
//
// The master of a LiveCluster owns one ResultLedger, mutated only on its
// mesh service thread (result handling, steal-transfer notices and death
// verdicts are all inbox messages, so ledger access is serialised for
// free). It tracks two things per pair of the root region:
//
//   * owner     — which node currently holds the lease to execute the
//                 pair. Set by the initial partition, moved by StealExport
//                 transfer notices, and re-granted to a survivor when the
//                 owner dies.
//   * delivered — whether a result for the pair has been accepted.
//
// The dedup invariant (DESIGN.md §12): the FIRST result received for a
// pair is delivered to the user callback; every later one is dropped and
// counted, whatever its sender's liveness. Ownership only decides what is
// RE-EXECUTED on a death — it can lag reality (a transfer notice in
// flight when the victim dies), and the worst such lag re-runs a region
// twice, which dedup absorbs. Nothing is ever lost: a region is re-granted
// unless a live node provably holds it, and every re-granted pair's
// result flows through the same ResultMsg path.
//
// Representation: flat per-pair arrays indexed by the closed-form upper-
// triangle index — O(1) record, O(n^2) memory. That is the right trade at
// the mesh's current in-process scale (the simulator covers the
// million-item regime); a region-interval ledger drops the memory to
// O(grants) when a wire transport raises n.

#include <cstdint>
#include <vector>

#include "dnc/pair_space.hpp"
#include "net/tag.hpp"

namespace rocket::mesh {

class ResultLedger {
 public:
  using NodeId = net::NodeId;

  ResultLedger(dnc::ItemIndex n, std::uint32_t num_nodes);

  /// Lease every pair of `region` to `owner` (initial partition grant or
  /// survivor re-grant; re-grants bump the pairs' re-execution epoch).
  void grant(NodeId owner, const dnc::Region& region, bool reexecution);

  /// Steal-transfer notice: undelivered pairs of `region` now belong to
  /// `thief`. Delivered pairs are left alone (their race is already over).
  void transfer(const dnc::Region& region, NodeId thief);

  /// Record an incoming result. Returns true when this is the first result
  /// for the pair (deliver it); false for a duplicate (drop it).
  bool record(dnc::ItemIndex left, dnc::ItemIndex right);

  /// Pre-mark a pair as delivered without counting a duplicate: journal
  /// replay on resume, and a standby's mirrored state on master adoption
  /// (DESIGN.md §14). Returns true when the pair was newly marked.
  bool mark_recovered(dnc::ItemIndex left, dnc::ItemIndex right);

  /// Every delivered pair, row-major. O(n^2) scan — failover-time only.
  std::vector<dnc::Pair> delivered_pairs() const;

  bool is_delivered(dnc::ItemIndex left, dnc::ItemIndex right) const {
    return delivered_[index_of(left, right)] != 0;
  }

  /// The dead node's uncompleted lease, coalesced into row-run regions
  /// (ready to re-grant). Does not change ownership — call grant() with
  /// the chosen survivor for each returned region.
  std::vector<dnc::Region> undelivered_of(NodeId owner) const;

  /// Undelivered pairs currently leased to `owner` — O(1), maintained
  /// incrementally. Zero means the node is idle by completion: the health
  /// detector (DESIGN.md §15) must not read its zero delivered-pairs rate
  /// as straggling.
  std::uint64_t pairs_owed(NodeId owner) const {
    return owner < owed_.size() ? owed_[owner] : 0;
  }

  std::uint64_t delivered() const { return delivered_count_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t regions_regranted() const { return regions_regranted_; }
  /// Highest re-execution epoch any pair reached (0 = no re-execution).
  std::uint32_t max_epoch() const { return max_epoch_; }

 private:
  std::uint64_t index_of(dnc::ItemIndex i, dnc::ItemIndex j) const {
    // Row-major rank of (i, j), i < j, in the strict upper triangle.
    const std::uint64_t row_start =
        static_cast<std::uint64_t>(i) * n_ -
        (static_cast<std::uint64_t>(i) * (i + 1)) / 2;
    return row_start + (j - i - 1);
  }

  void dec_owed(NodeId owner) {
    if (owner < owed_.size() && owed_[owner] > 0) --owed_[owner];
  }
  void inc_owed(NodeId owner) {
    if (owner < owed_.size()) ++owed_[owner];
  }

  dnc::ItemIndex n_ = 0;
  std::vector<NodeId> owner_;          // per pair
  std::vector<std::uint8_t> delivered_;  // per pair (bool; uint8 for speed)
  std::vector<std::uint8_t> epoch_;    // per pair, re-execution count
  std::vector<std::uint64_t> owed_;    // per node, undelivered leased pairs
  std::uint64_t delivered_count_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t regions_regranted_ = 0;
  std::uint32_t max_epoch_ = 0;
};

}  // namespace rocket::mesh

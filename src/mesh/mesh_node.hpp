#pragma once

// Per-node mesh service: the live counterpart of the cluster-layer
// protocols the simulator runs in virtual time.
//
// Each node of a LiveCluster owns one MeshNode. A dedicated service
// thread drains the node's transport inbox and serves four duties:
//   * mediator  — §4.1.3 directory lookups for the items this node
//                 mediates (item mod p), answered by forwarding a probe
//                 along the candidate chain;
//   * candidate — host-cache probes on behalf of remote requesters,
//                 through the HostCacheProbe the NodeRuntime registers
//                 while its engine is live;
//   * victim    — steal requests answered from the registered
//                 StealExporter;
//   * master    — on the master node only: per-pair result aggregation to
//                 the user callback and the cluster-wide completion
//                 signal.
//
// Requester-side flows never block a runtime thread unboundedly:
// PeerFetchClient::fetch is fully asynchronous (its callback fires when
// the data or a failure message arrives, and a failed send completes the
// fetch as a miss immediately), and remote_steal waits on its reply with
// a timeout. Together with the rule that the service thread only ever
// blocks on its own inbox, this is the mesh's deadlock-freedom argument
// (DESIGN.md §9).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/distributed_directory.hpp"
#include "common/rng.hpp"
#include "mesh/transport.hpp"
#include "runtime/application.hpp"
#include "runtime/peer_fetch.hpp"
#include "steal/executor.hpp"

namespace rocket::mesh {

/// Requester-side chain-walk statistics (the live analogue of the
/// simulator's DistCacheMetrics).
struct PeerCacheStats {
  std::uint64_t requests = 0;      // peer fetches issued by this node
  std::uint64_t chain_hits = 0;    // served from a peer's host cache
  std::uint64_t chain_misses = 0;  // exhausted or failed chains
  std::vector<std::uint64_t> hits_at_hop;  // index 0 = first hop

  std::uint64_t total_hits() const {
    std::uint64_t sum = 0;
    for (const auto h : hits_at_hop) sum += h;
    return sum;
  }
};

PeerCacheStats& operator+=(PeerCacheStats& a, const PeerCacheStats& b);

class MeshNode final : public runtime::PeerFetchClient {
 public:
  using ResultFn = std::function<void(const runtime::PairResult&)>;

  struct Config {
    NodeId id = 0;
    std::uint32_t num_workers = 1;  // steal cells, one per executor worker
    std::uint32_t hop_limit = 1;    // the paper's h
    std::uint64_t seed = 1;

    // Master duties: set on the node that results are routed to (node 0 in
    // a LiveCluster); activated by a non-empty on_result/on_complete.
    std::uint64_t expected_pairs = 0;
    ResultFn on_result;                // user callback, invoked serially
    std::function<void()> on_complete; // fired once, on the service thread
  };

  MeshNode(Config config, Transport& transport,
           std::shared_ptr<std::atomic<bool>> done);
  ~MeshNode();

  MeshNode(const MeshNode&) = delete;
  MeshNode& operator=(const MeshNode&) = delete;

  /// Launch the service thread. Call join() only after Transport::close().
  void start();
  void join();

  // ---- NodeRuntime wiring (MeshPort hooks) ----

  /// PeerFetchClient: mediator lookup + candidate chain walk, §4.1.3.
  void fetch(ItemId item, DoneFn done) override;

  /// Cross-node steal with a bounded reply wait; nullopt on timeout,
  /// empty-handed victim, or cluster completion.
  std::optional<dnc::Region> remote_steal(std::uint32_t worker);

  bool global_done() const {
    return done_->load(std::memory_order_acquire);
  }

  void register_probe(runtime::HostCacheProbe* probe);
  void register_exporter(steal::StealExporter* exporter);

  /// Wake blocked steal waiters (called cluster-wide on completion).
  void wake();

  // ---- metrics (stable once the cluster has quiesced) ----
  PeerCacheStats peer_stats() const;
  cache::DirectoryStats directory_stats() const;
  std::vector<NodeId> directory_candidates(ItemId item) const;  // testing

 private:
  struct StealCell {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<dnc::Region> regions;  // stolen regions awaiting pickup
    std::uint32_t outstanding = 0;    // unanswered requests
    Rng rng{1};
  };

  void serve_loop();
  void on_cache_request(const CacheRequest& req);
  void on_cache_probe(CacheProbe probe);
  void on_cache_data(CacheData data);
  void on_cache_failure(const CacheFailure& failure);
  void on_steal_request(const StealRequest& req);
  void on_steal_reply(const StealReply& reply);
  void on_result_msg(const ResultMsg& msg);

  /// Forward the probe to chain[index], skipping unreachable candidates;
  /// an exhausted chain reports a miss to the requester.
  void forward_probe(ItemId item, NodeId requester, std::vector<NodeId> chain,
                     std::uint32_t index);

  /// Resolve the pending fetch for `item` and record the chain outcome.
  void complete_fetch(ItemId item, runtime::PeerPayload payload,
                      std::uint32_t hops, bool hit);

  Config cfg_;
  Transport& transport_;
  std::shared_ptr<std::atomic<bool>> done_;
  std::thread service_;

  mutable std::mutex mutex_;  // directory, exporter, pending, stats, orphans
  cache::DistributedDirectory directory_;
  steal::StealExporter* exporter_ = nullptr;
  std::unordered_map<ItemId, DoneFn> pending_;
  PeerCacheStats stats_;
  std::deque<dnc::Region> orphans_;  // steal exports whose thief vanished

  /// Separate lock for the probe pointer: serving a probe copies a whole
  /// slot-sized buffer, which must not stall requester-side fetch
  /// bookkeeping or mediator lookups under mutex_.
  mutable std::mutex probe_mutex_;
  runtime::HostCacheProbe* probe_ = nullptr;

  std::vector<std::unique_ptr<StealCell>> cells_;
  std::uint64_t results_seen_ = 0;  // master only; service thread only
};

}  // namespace rocket::mesh

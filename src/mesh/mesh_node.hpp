#pragma once

// Per-node mesh service: the live counterpart of the cluster-layer
// protocols the simulator runs in virtual time.
//
// Each node of a LiveCluster owns one MeshNode. A dedicated service
// thread drains the node's transport inbox and serves four duties:
//   * mediator  — §4.1.3 directory lookups for the items this node
//                 mediates (item mod p), answered by forwarding a probe
//                 along the candidate chain;
//   * candidate — host-cache probes on behalf of remote requesters,
//                 through the HostCacheProbe the NodeRuntime registers
//                 while its engine is live;
//   * victim    — steal requests answered from the registered
//                 StealExporter;
//   * master    — on the master node only: exactly-once per-pair result
//                 aggregation (ResultLedger dedup), the failure detector's
//                 death verdicts with re-execution grants, and the
//                 cluster-wide completion signal.
//
// A second, low-rate ticker thread drives everything timeout-shaped
// (DESIGN.md §12): heartbeat leases to the master, the master's
// missed-lease failure detector, and pending-peer-fetch deadlines (retry
// with backoff, then complete as a miss so the load pipeline falls back
// to the object store — the mechanism that also unblocks a *killed*
// node's own in-flight fetches). The ticker never mutates protocol state
// directly: death verdicts travel through the master's own inbox, so the
// ledger stays single-threaded on the service thread.
//
// Requester-side flows never block a runtime thread unboundedly:
// PeerFetchClient::fetch is fully asynchronous (its callback fires when
// the data or a failure message arrives, a failed send completes the
// fetch as a miss immediately, and the ticker bounds how long a silent
// peer can stall it), and remote_steal waits on its reply with a timeout.
// Together with the rule that the service thread only ever blocks on its
// own inbox, this is the mesh's deadlock-freedom argument (DESIGN.md §9).

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/distributed_directory.hpp"
#include "common/backoff.hpp"
#include "common/rng.hpp"
#include "mesh/checkpoint.hpp"
#include "mesh/result_ledger.hpp"
#include "mesh/transport.hpp"
#include "runtime/application.hpp"
#include "runtime/peer_fetch.hpp"
#include "steal/executor.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/trace.hpp"

namespace rocket::mesh {

/// Requester-side chain-walk statistics (the live analogue of the
/// simulator's DistCacheMetrics).
struct PeerCacheStats {
  std::uint64_t requests = 0;      // peer fetches issued by this node
  std::uint64_t chain_hits = 0;    // served from a peer's host cache
  std::uint64_t chain_misses = 0;  // exhausted or failed chains
  std::uint64_t retries = 0;       // fetch retransmits after a deadline
  std::uint64_t timeouts = 0;      // fetches failed after the retry budget
  std::vector<std::uint64_t> hits_at_hop;  // index 0 = first hop

  std::uint64_t total_hits() const {
    std::uint64_t sum = 0;
    for (const auto h : hits_at_hop) sum += h;
    return sum;
  }
};

PeerCacheStats& operator+=(PeerCacheStats& a, const PeerCacheStats& b);

/// Failure-model observability (DESIGN.md §12). Master fields are zero on
/// non-master nodes; stable once the cluster has quiesced.
struct FailoverStats {
  std::uint64_t node_deaths = 0;        // master: death verdicts issued
  std::uint64_t regions_reexecuted = 0; // master: regions re-granted
  std::uint64_t duplicate_results_dropped = 0;  // master: dedup drops
  std::uint64_t results_received = 0;   // master: raw ResultMsg count
  std::uint64_t regions_adopted = 0;    // re-execution grants parked here
  std::uint64_t master_failovers = 0;   // this node adopted the master role

  // --- grey-failure health (DESIGN.md §15) ---
  std::uint64_t nodes_suspected = 0;    // master: alive → suspected
  std::uint64_t nodes_degraded = 0;     // master: suspected → degraded
  std::uint64_t nodes_recovered = 0;    // master: degraded → alive
  std::uint64_t regions_speculated = 0; // master: straggler re-grants
  std::uint64_t pairs_speculated = 0;   // pairs covered by those grants
  std::uint64_t steals_avoided_degraded = 0;  // victim draws that skipped
                                              // suspected/degraded nodes
};

FailoverStats& operator+=(FailoverStats& a, const FailoverStats& b);

class MeshNode final : public runtime::PeerFetchClient {
 public:
  using ResultFn = std::function<void(const runtime::PairResult&)>;

  /// The LiveCluster master (aggregator, failure detector, ledger).
  static constexpr NodeId kMaster = 0;

  struct Config {
    NodeId id = 0;
    std::uint32_t num_workers = 1;  // steal cells, one per executor worker
    std::uint32_t hop_limit = 1;    // the paper's h
    std::uint32_t max_chain_hops = 0;  // mediator hand-out cap (0 = h)
    std::uint64_t seed = 1;

    // --- failure model (DESIGN.md §12) ---

    /// Period of the liveness lease this node renews at the master.
    /// 0 disables heartbeats (single-node runs, protocol unit tests).
    double heartbeat_interval_s = 0.0;

    /// Master only: a non-master node silent for longer than this is
    /// declared dead. 0 disables the failure detector.
    double lease_timeout_s = 0.0;

    /// Pending peer fetches older than this are retransmitted with
    /// exponential backoff, then completed as a miss once
    /// `max_fetch_retries` is spent (the load pipeline falls back to the
    /// object store). 0 disables deadlines: a fetch then fails fast only
    /// when its send is rejected.
    double fetch_timeout_s = 0.0;
    std::uint32_t max_fetch_retries = 3;

    /// Victim side: notify the master of every successful steal transfer
    /// (StealExport) so the re-execution ledger tracks real ownership.
    /// Enabled by LiveCluster together with the master's ledger.
    bool export_leases = false;

    // --- telemetry (DESIGN.md §13) ---

    /// Period of this node's TelemetrySnapshot stream to the master
    /// (published on the ticker; the master publishes to itself so every
    /// node goes through the same path). 0 disables the stream.
    double snapshot_interval_s = 0.0;

    /// Optional sink for discrete trace events (steals, deaths, region
    /// re-grants); owned by the caller, may be null.
    telemetry::EventLog* events = nullptr;

    // --- causal tracing (DESIGN.md §16) ---

    /// Sampled-span sink shared with this node's runtime; null disables
    /// causal tracing at the mesh layer.
    telemetry::SpanLog* spans = nullptr;

    /// Black-box ring of recent span/transport events, dumped to the
    /// checkpoint store post-mortem. Null disables.
    telemetry::FlightRecorder* flight = nullptr;

    /// Deterministic message-level sampling for spans the mesh roots
    /// itself (steals, re-grants, result-delivery hops): every Nth by
    /// seeded hash. 0 disables mesh-rooted spans; propagated contexts on
    /// incoming messages are honoured regardless.
    std::uint32_t trace_sample_n = 0;

    /// Master only: fired on the service thread with each fresh
    /// ClusterSnapshot (once per master snapshot interval).
    std::function<void(const telemetry::ClusterSnapshot&)> on_snapshot;

    // --- grey-failure health (DESIGN.md §15) ---

    /// Master: a node whose EWMA delivered-pairs rate stays below this
    /// fraction of the cluster median for `suspect_intervals` consecutive
    /// telemetry intervals is marked degraded (a straggler — alive but
    /// slow). Rates come from the TelemetrySnapshot stream, so the state
    /// machine only engages while snapshots flow. 0 disables it entirely
    /// (the binary alive/dead model of DESIGN.md §12).
    double degraded_rate_fraction = 0.0;

    /// Consecutive below-threshold intervals before a suspected node is
    /// confirmed degraded (the first below-threshold interval moves it
    /// alive → suspected).
    std::uint32_t suspect_intervals = 2;

    /// Hysteresis: a degraded node must hold its EWMA rate above
    /// recover_rate_fraction × cluster median for recover_intervals
    /// consecutive intervals before it is healthy (and grantable) again.
    double recover_rate_fraction = 0.7;
    std::uint32_t recover_intervals = 2;

    /// EWMA smoothing factor for the per-node rate estimate (weight of
    /// the newest interval's instantaneous rate).
    double health_ewma_alpha = 0.4;

    /// Straggler speculation bound: up to this many of a degraded node's
    /// undelivered regions are re-granted to the fastest healthy node per
    /// telemetry interval (first result wins; the ledger drops the
    /// duplicates). The degraded node keeps its lease and its in-flight
    /// work — speculation only drains its backlog at this bounded rate.
    /// 0 disables speculation while keeping health tracking.
    std::uint32_t speculation_regions_per_interval = 2;

    // Master duties: set on the node that results are routed to (node 0 in
    // a LiveCluster); activated by a non-empty on_result/on_complete.
    std::uint64_t expected_pairs = 0;
    ResultFn on_result;                // user callback, invoked serially
    std::function<void()> on_complete; // fired once, on the service thread

    /// Master only: item count and initial partition (indexed by node) —
    /// seeds the exactly-once ResultLedger. Zero items / empty grants
    /// disable the ledger (no dedup, pre-failure-model aggregation).
    /// With `failover` these are set on EVERY node (any node may adopt
    /// the master role), but only the current master builds a ledger.
    std::uint32_t ledger_items = 0;
    std::vector<std::vector<dnc::Region>> initial_grants;

    // --- durability (DESIGN.md §14) ---

    /// Master failover: the master mirrors its aggregation state to a
    /// standby (kLedgerSync), every node heartbeat-watches the current
    /// master, and on master lease expiry the lowest live node adopts
    /// the role, dedups against its mirror, and re-grants the frontier.
    bool failover = false;

    /// Crash-safe run journal (shared across nodes; internally locked).
    /// The current master appends flushed result batches and completed
    /// regions. Null disables journalling.
    checkpoint::Journal* journal = nullptr;

    /// Pairs already delivered by a previous incarnation of this run
    /// (journal replay). The master pre-marks them in its ledger; they
    /// count toward expected_pairs but are NOT re-delivered.
    std::vector<dnc::Pair> recovered;

    /// Master: accepted results buffer until this many are pending (or
    /// the run completes), then flush as one unit: standby mirror →
    /// journal append → user delivery. Only batched when failover or a
    /// journal is active — otherwise results deliver immediately, as
    /// before the durability layer existed.
    std::uint32_t result_batch_pairs = 64;
  };

  MeshNode(Config config, Transport& transport,
           std::shared_ptr<std::atomic<bool>> done);
  ~MeshNode();

  MeshNode(const MeshNode&) = delete;
  MeshNode& operator=(const MeshNode&) = delete;

  /// Launch the service thread (and the ticker when any timeout feature
  /// is enabled). Call join() only after Transport::close().
  void start();
  void join();

  // ---- NodeRuntime wiring (MeshPort hooks) ----

  /// PeerFetchClient: mediator lookup + candidate chain walk, §4.1.3.
  /// A sampled `ctx` opens a peer.fetch span closed by complete_fetch
  /// (aborted when the fetch failed), and rides the request across the
  /// wire so the serving candidate's span links back (DESIGN.md §16).
  void fetch(ItemId item, DoneFn done,
             telemetry::SpanContext ctx = {}) override;

  /// Cross-node steal with a bounded reply wait; nullopt on timeout,
  /// empty-handed victim, or cluster completion. Nodes declared dead are
  /// skipped as victims.
  std::optional<dnc::Region> remote_steal(std::uint32_t worker);

  bool global_done() const {
    return done_->load(std::memory_order_acquire);
  }

  void register_probe(runtime::HostCacheProbe* probe);
  void register_exporter(steal::StealExporter* exporter);

  /// Runtime-stats sampler for the telemetry stream; install before the
  /// engine starts, clear (empty function) once it drains — same contract
  /// as register_probe.
  void register_stats(telemetry::NodeStatsFn fn);

  /// Wake blocked steal waiters (called cluster-wide on completion).
  void wake();

  // ---- metrics (stable once the cluster has quiesced) ----
  PeerCacheStats peer_stats() const;
  cache::DirectoryStats directory_stats() const;
  /// Master aggregation + this node's adoption counters. Unlocked master
  /// fields: call only after join() (reads are ordered by the thread
  /// join, like the report aggregation in LiveCluster).
  FailoverStats failover_stats() const;
  /// Mesh-side latency instruments (steal RTT, peer-fetch hit/miss, lease
  /// slack) — merged into the node's report next to the engine's metrics.
  telemetry::MetricsSnapshot metrics_snapshot() const {
    return metrics_.snapshot();
  }
  std::vector<NodeId> directory_candidates(ItemId item) const;  // testing
  bool is_dead(NodeId node) const {
    return dead_[node].load(std::memory_order_acquire);
  }

  /// This node's view of `node`'s health (DESIGN.md §15): the master's
  /// detector decides transitions and broadcasts them; every node reads
  /// the view in steal-victim and grant-target selection.
  telemetry::NodeHealth health_of(NodeId node) const {
    return static_cast<telemetry::NodeHealth>(
        health_[node].load(std::memory_order_acquire));
  }

  /// The node currently holding the master role, as this node knows it.
  /// Result routing reads this so post-failover results reach the
  /// adopter, not the corpse.
  NodeId current_master() const {
    return master_.load(std::memory_order_acquire);
  }

 private:
  struct StealCell {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<dnc::Region> regions;  // stolen regions awaiting pickup
    std::uint32_t outstanding = 0;    // unanswered requests
    telemetry::SpanContext span;      // in-flight steal's context (§16)
    Rng rng{1};
  };

  /// One in-flight peer fetch (requester side). `deadline`/`attempts`
  /// drive the ticker's retry sweep when fetch_timeout_s > 0.
  struct PendingFetch {
    DoneFn done;
    std::uint32_t attempts = 0;
    std::chrono::steady_clock::time_point deadline{};
    std::chrono::steady_clock::time_point t0{};  // issue time (latency)
    telemetry::SpanContext span;  // sampled peer.fetch span (§16)
  };

  /// Master-side telemetry fold state for one publisher (service thread
  /// only): the last two samples, for rate-from-delta computation.
  struct SnapState {
    bool seen = false;
    telemetry::NodeStats last{};
    telemetry::NodeStats prev{};
    std::chrono::steady_clock::time_point last_at{};
    std::chrono::steady_clock::time_point prev_at{};
  };

  void serve_loop();
  void ticker_loop();
  void check_leases();
  void check_master_lease();
  void check_fetch_deadlines();
  void on_cache_request(const CacheRequest& req);
  void on_cache_probe(CacheProbe probe);
  void on_cache_data(CacheData data);
  void on_cache_failure(const CacheFailure& failure);
  void on_steal_request(const StealRequest& req);
  void on_steal_reply(const StealReply& reply);
  void on_result_msg(const ResultMsg& msg);
  void on_node_down(const NodeDown& down, NodeId from);
  void on_steal_export(const StealExport& exp);
  void on_region_grant(const RegionGrant& grant);
  void on_telemetry(const TelemetrySnapshot& snap);
  void on_ledger_sync(LedgerSync sync);
  void on_master_announce(const MasterAnnounce& ann);
  void on_master_tick();
  void on_health_update(const HealthUpdate& update);

  // --- grey-failure health (master, service thread; DESIGN.md §15) ---

  bool health_enabled() const { return cfg_.degraded_rate_fraction > 0.0; }

  /// Run the health state machine over the folded telemetry samples; the
  /// master's own sample arrival is the metronome, so this fires once per
  /// telemetry interval.
  void evaluate_health();

  /// Record a transition locally and broadcast it to every live peer.
  void set_health(NodeId node, telemetry::NodeHealth state);

  /// Speculatively re-grant a bounded slice of a degraded node's
  /// undelivered backlog to the fastest healthy node.
  void speculate_for(NodeId node);
  NodeId pick_speculation_target(NodeId degraded);

  // --- durability (master, service thread; DESIGN.md §14) ---

  /// Flush the pending result batch: liveness check → standby mirror →
  /// journal append → user delivery, in that order. A failure at the
  /// mirror step means this node is dead: the batch is dropped whole (the
  /// adopter re-grants it), never partially delivered.
  void flush_results();

  /// Mirror the current aggregation state to the lowest live peer; full
  /// snapshot when the standby changed, delta (the pending batch)
  /// otherwise. Returns false only when this node itself is down.
  bool sync_to_standby();

  /// Adopt the master role after `dead_master`'s lease expired: rebuild
  /// the ledger from the mirror, announce, and re-grant the frontier.
  void adopt_master(NodeId dead_master);

  /// Rebuild the initial-grant completion watch (journal RegionComplete
  /// records) from the ledger's current delivered state.
  void init_region_watch();
  void note_region_progress(const runtime::PairResult& result);

  /// Ticker: sample this node's runtime and ship it to the master.
  void publish_snapshot();

  /// Master, service thread: re-grant `region` to a live survivor (or
  /// park it locally when no send succeeds).
  void regrant_region(const dnc::Region& region);
  void regrant_region_to(const dnc::Region& region, NodeId to);
  NodeId pick_survivor();

  /// Forward the probe to chain[index], skipping unreachable candidates;
  /// an exhausted chain reports a miss to the requester. `span` is the
  /// requester's causal context, carried along the whole chain walk.
  void forward_probe(ItemId item, NodeId requester, std::vector<NodeId> chain,
                     std::uint32_t index, const telemetry::SpanContext& span);

  /// Resolve the pending fetch for `item` and record the chain outcome.
  void complete_fetch(ItemId item, runtime::PeerPayload payload,
                      std::uint32_t hops, bool hit);

  bool is_master() const {
    return cfg_.id == master_.load(std::memory_order_acquire);
  }

  // --- causal tracing helpers (DESIGN.md §16) ---

  bool tracing() const {
    return cfg_.spans != nullptr && cfg_.trace_sample_n > 0;
  }

  /// Seconds since the process trace epoch (the span timeline).
  static double trace_now();

  /// Root context for a mesh-originated trace (steal, grant, deliver),
  /// deterministically sampled by `key` under the node seed.
  telemetry::SpanContext mesh_trace(std::uint64_t key) const {
    return tracing() ? telemetry::make_trace(cfg_.seed, key,
                                             cfg_.trace_sample_n)
                     : telemetry::SpanContext{};
  }

  /// Record a closed child span of `parent` on this node's span log.
  void record_child_span(const telemetry::SpanContext& parent,
                         std::uint64_t salt, telemetry::SpanPhase phase,
                         double start, double end);

  static constexpr NodeId kNoNode = ~NodeId{0};

  Config cfg_;
  Transport& transport_;
  std::shared_ptr<std::atomic<bool>> done_;
  std::thread service_;

  mutable std::mutex mutex_;  // directory, exporter, pending, stats, orphans
  cache::DistributedDirectory directory_;
  steal::StealExporter* exporter_ = nullptr;
  std::unordered_map<ItemId, PendingFetch> pending_;
  PeerCacheStats stats_;
  std::deque<dnc::Region> orphans_;  // regions awaiting local re-adoption
  telemetry::NodeStatsFn stats_fn_;  // guarded by mutex_; invoked outside

  // --- telemetry instruments (lock-free recording) ---
  telemetry::MetricsRegistry metrics_;
  telemetry::LatencyHistogram* steal_rtt_ = nullptr;
  telemetry::LatencyHistogram* fetch_hit_ = nullptr;
  telemetry::LatencyHistogram* fetch_miss_ = nullptr;
  telemetry::LatencyHistogram* lease_slack_ = nullptr;
  telemetry::Counter* fetch_retries_ = nullptr;
  telemetry::Counter* frame_corrupt_ = nullptr;
  std::atomic<std::uint64_t> remote_steal_count_{0};
  std::atomic<std::uint64_t> trace_key_seq_{0};  // mesh-rooted trace keys

  /// Separate lock for the probe pointer: serving a probe copies a whole
  /// slot-sized buffer, which must not stall requester-side fetch
  /// bookkeeping or mediator lookups under mutex_.
  mutable std::mutex probe_mutex_;
  runtime::HostCacheProbe* probe_ = nullptr;

  std::vector<std::unique_ptr<StealCell>> cells_;

  // --- master state (service thread only) ---
  std::uint64_t results_seen_ = 0;   // user-delivered results (incl. recovered)
  std::unique_ptr<ResultLedger> ledger_;
  FailoverStats failover_;
  std::uint32_t death_epoch_ = 0;
  NodeId next_regrant_ = 0;  // round-robin survivor cursor
  std::vector<SnapState> snap_states_;  // telemetry fold, by publisher
  std::uint64_t cluster_snapshot_seq_ = 0;

  // --- grey-failure health (DESIGN.md §15) ---
  /// Cluster-wide health view: written by the service thread (master
  /// verdicts, broadcast updates), read by steal-victim and grant-target
  /// selection on any thread.
  std::unique_ptr<std::atomic<std::uint8_t>[]> health_;
  /// Master-side detector state per node (service thread only).
  struct HealthState {
    double ewma = -1.0;       // delivered-pairs rate estimate; <0 = unseeded
    std::uint32_t below = 0;  // consecutive below-threshold intervals
    std::uint32_t above = 0;  // consecutive above-recovery intervals
  };
  std::vector<HealthState> health_states_;  // service thread only
  std::uint32_t health_seq_ = 0;            // service thread only
  std::uint32_t spec_rr_ = 0;               // speculation round-robin cursor
  std::atomic<std::uint64_t> steals_avoided_degraded_{0};

  // --- durability state (service thread only; DESIGN.md §14) ---
  /// Which node holds the master role. Atomic because the ticker and the
  /// result-routing path read it from other threads; written only by the
  /// service thread (adoption, announce).
  std::atomic<NodeId> master_{kMaster};
  bool crashed_ = false;  // this node observed its own injected death
  bool completed_ = false;  // on_complete fired (guard across failover)
  std::vector<runtime::PairResult> batch_;  // accepted, awaiting flush
  NodeId standby_ = kNoNode;
  bool standby_needs_snapshot_ = true;
  std::uint64_t sync_seq_ = 0;
  std::uint32_t failover_epoch_ = 0;
  /// Standby side: the mirrored delivered set and count.
  std::vector<dnc::Pair> mirror_;
  std::uint64_t mirror_delivered_ = 0;
  std::uint64_t mirror_seq_ = 0;
  /// Initial-grant regions with undelivered-pair countdowns; a zeroed
  /// entry becomes a journal RegionComplete record at the next flush.
  struct RegionWatch {
    dnc::Region region;
    std::uint64_t remaining = 0;
  };
  std::vector<RegionWatch> region_watch_;
  std::vector<dnc::Region> regions_just_completed_;

  // --- liveness (shared between service thread and ticker) ---
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::unique_ptr<std::atomic<std::int64_t>[]> last_seen_ns_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t heartbeat_seq_ = 0;  // ticker thread only
  std::vector<bool> declared_;       // ticker thread only: verdicts sent
  std::uint64_t snapshot_seq_ = 0;   // ticker thread only
  std::chrono::steady_clock::time_point next_snapshot_{};  // ticker only

  std::thread ticker_;
  std::mutex ticker_mutex_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;  // guarded by ticker_mutex_
};

}  // namespace rocket::mesh

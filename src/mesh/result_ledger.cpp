#include "mesh/result_ledger.hpp"

#include "common/log.hpp"

namespace rocket::mesh {

namespace {

constexpr net::NodeId kNoOwner = ~net::NodeId{0};

}  // namespace

ResultLedger::ResultLedger(dnc::ItemIndex n, std::uint32_t num_nodes)
    : n_(n) {
  const std::uint64_t pairs = dnc::count_pairs(dnc::root_region(n));
  owner_.assign(pairs, kNoOwner);
  delivered_.assign(pairs, 0);
  epoch_.assign(pairs, 0);
  owed_.assign(num_nodes, 0);
}

void ResultLedger::grant(NodeId owner, const dnc::Region& region,
                         bool reexecution) {
  if (reexecution) ++regions_regranted_;
  dnc::for_each_pair(region, [&](const dnc::Pair& pair) {
    const std::uint64_t k = index_of(pair.left, pair.right);
    if (!delivered_[k] && owner_[k] != owner) {
      dec_owed(owner_[k]);
      inc_owed(owner);
    }
    owner_[k] = owner;
    if (reexecution && !delivered_[k]) {
      if (epoch_[k] < 0xFF) ++epoch_[k];
      if (epoch_[k] > max_epoch_) max_epoch_ = epoch_[k];
    }
  });
}

void ResultLedger::transfer(const dnc::Region& region, NodeId thief) {
  dnc::for_each_pair(region, [&](const dnc::Pair& pair) {
    const std::uint64_t k = index_of(pair.left, pair.right);
    if (!delivered_[k] && owner_[k] != thief) {
      dec_owed(owner_[k]);
      inc_owed(thief);
      owner_[k] = thief;
    }
  });
}

bool ResultLedger::record(dnc::ItemIndex left, dnc::ItemIndex right) {
  ROCKET_CHECK(left < right && right < n_, "result outside the root region");
  const std::uint64_t k = index_of(left, right);
  if (delivered_[k]) {
    ++duplicates_;
    return false;
  }
  delivered_[k] = 1;
  ++delivered_count_;
  dec_owed(owner_[k]);
  return true;
}

bool ResultLedger::mark_recovered(dnc::ItemIndex left, dnc::ItemIndex right) {
  ROCKET_CHECK(left < right && right < n_, "recovered pair outside the root");
  const std::uint64_t k = index_of(left, right);
  if (delivered_[k]) return false;
  delivered_[k] = 1;
  ++delivered_count_;
  dec_owed(owner_[k]);
  return true;
}

std::vector<dnc::Pair> ResultLedger::delivered_pairs() const {
  std::vector<dnc::Pair> pairs;
  pairs.reserve(delivered_count_);
  for (dnc::ItemIndex i = 0; i + 1 < n_; ++i) {
    for (dnc::ItemIndex j = i + 1; j < n_; ++j) {
      if (delivered_[index_of(i, j)]) pairs.push_back(dnc::Pair{i, j});
    }
  }
  return pairs;
}

std::vector<dnc::Region> ResultLedger::undelivered_of(NodeId owner) const {
  // Coalesce the dead node's undelivered pairs into maximal row runs:
  // contiguous (i, [j0, j1)) strips become one Region each. Row runs are
  // exact (no over- or under-coverage) and already large in practice —
  // the initial partition and steal leaves are rectangles, so a death
  // leaves long contiguous strips per row.
  std::vector<dnc::Region> regions;
  for (dnc::ItemIndex i = 0; i + 1 < n_; ++i) {
    dnc::ItemIndex run_start = 0;
    bool in_run = false;
    for (dnc::ItemIndex j = i + 1; j < n_; ++j) {
      const std::uint64_t k = index_of(i, j);
      const bool mine = owner_[k] == owner && !delivered_[k];
      if (mine && !in_run) {
        run_start = j;
        in_run = true;
      } else if (!mine && in_run) {
        regions.push_back(dnc::Region{i, i + 1, run_start, j, 0});
        in_run = false;
      }
    }
    if (in_run) regions.push_back(dnc::Region{i, i + 1, run_start, n_, 0});
  }
  return regions;
}

}  // namespace rocket::mesh
